#include "sysinfo/system_info.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/expect.h"

namespace dramdig::sysinfo {

namespace {

constexpr std::uint64_t MiB = 1024ull * 1024;

/// Size of one DIMM in MiB (all DIMMs identical on the paper machines).
std::uint64_t dimm_mib(const dram::machine_spec& m) {
  const unsigned dimm_count = m.channels * m.dimms_per_channel;
  return m.memory_bytes / dimm_count / MiB;
}

/// Find the first integer after `key` on any line containing it, starting
/// the scan at `from`. Returns the value and advances `from` past the line.
bool scan_int_after(const std::string& text, const std::string& key,
                    std::size_t& from, std::uint64_t& value) {
  const std::size_t at = text.find(key, from);
  if (at == std::string::npos) return false;
  std::size_t i = at + key.size();
  while (i < text.size() && !std::isdigit(static_cast<unsigned char>(text[i]))) {
    if (text[i] == '\n') return false;  // key line carries no number
    ++i;
  }
  if (i >= text.size()) return false;
  value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    ++i;
  }
  from = i;
  return true;
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// the store file format pins these hashes, so the function can never
/// change without a schema version bump.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string machine_fingerprint::canonical() const {
  return "cpu=" + cpu_model + "|" + geometry_canonical();
}

std::string machine_fingerprint::geometry_canonical() const {
  std::ostringstream out;
  out << "gen=" << to_string(generation) << "|bytes=" << total_bytes
      << "|channels=" << channels << "|dimms=" << dimms_per_channel
      << "|ranks=" << ranks_per_dimm << "|banks=" << banks_per_rank
      << "|ecc=" << (ecc ? 1 : 0);
  return out.str();
}

std::uint64_t machine_fingerprint::hash() const { return fnv1a(canonical()); }

std::uint64_t machine_fingerprint::geometry_hash() const {
  return fnv1a(geometry_canonical());
}

machine_fingerprint fingerprint(const system_info& info,
                                const std::string& cpu_model) {
  machine_fingerprint fp;
  fp.cpu_model = cpu_model;
  fp.generation = info.generation;
  fp.total_bytes = info.total_bytes;
  fp.channels = info.channels;
  fp.dimms_per_channel = info.dimms_per_channel;
  fp.ranks_per_dimm = info.ranks_per_dimm;
  fp.banks_per_rank = info.banks_per_rank;
  fp.ecc = info.ecc;
  return fp;
}

machine_fingerprint fingerprint(const dram::machine_spec& m) {
  return fingerprint(probe(m), m.cpu_model);
}

std::string render_dmidecode(const dram::machine_spec& m) {
  std::ostringstream out;
  out << "# dmidecode 3.2\n"
      << "Getting SMBIOS data from sysfs.\n"
      << "SMBIOS 3.0 present.\n\n"
      << "Handle 0x0040, DMI type 16, 23 bytes\n"
      << "Physical Memory Array\n"
      << "\tLocation: System Board Or Motherboard\n"
      << "\tUse: System Memory\n"
      << "\tError Correction Type: " << (m.ecc ? "Single-bit ECC" : "None")
      << "\n"
      << "\tNumber Of Devices: " << m.channels * m.dimms_per_channel << "\n\n";
  unsigned handle = 0x41;
  for (unsigned ch = 0; ch < m.channels; ++ch) {
    for (unsigned d = 0; d < m.dimms_per_channel; ++d) {
      out << "Handle 0x00" << std::hex << handle++ << std::dec
          << ", DMI type 17, 40 bytes\n"
          << "Memory Device\n"
          << "\tSize: " << dimm_mib(m) << " MB\n"
          << "\tForm Factor: " << (m.memory_bytes <= (8ull << 30) &&
                                   m.cpu_model.find('U') != std::string::npos
                                       ? "SODIMM"
                                       : "DIMM")
          << "\n"
          << "\tLocator: ChannelA-DIMM" << d << "\n"
          << "\tBank Locator: BANK " << ch * m.dimms_per_channel + d << "\n"
          << "\tType: " << to_string(m.generation) << "\n"
          << "\tSpeed: "
          << (m.generation == dram::ddr_generation::ddr3 ? 1600 : 2400)
          << " MT/s\n"
          << "\tRank: " << m.ranks_per_dimm << "\n\n";
    }
  }
  return out.str();
}

std::string render_decode_dimms(const dram::machine_spec& m) {
  std::ostringstream out;
  out << "# decode-dimms\n\n";
  const unsigned dimm_count = m.channels * m.dimms_per_channel;
  for (unsigned i = 0; i < dimm_count; ++i) {
    out << "Decoding EEPROM: /sys/bus/i2c/drivers/eeprom/" << i << "-0050\n"
        << "---=== SPD EEPROM Information ===---\n"
        << "Fundamental Memory type                          "
        << to_string(m.generation) << " SDRAM\n"
        << "---=== Memory Characteristics ===---\n"
        << "Size                                             " << dimm_mib(m)
        << " MB\n"
        << "Banks x Rows x Columns x Bits                    "
        << m.banks_per_rank << " x "
        << (16 + (m.generation == dram::ddr_generation::ddr4 ? 1 : 0))
        << " x 10 x 64\n"
        << "Ranks                                            "
        << m.ranks_per_dimm << "\n"
        << "SDRAM Device Width                               8 bits\n"
        << "Module Configuration Type                        "
        << (m.ecc ? "ECC" : "No Parity") << "\n\n";
  }
  out << "Number of SDRAM DIMMs detected and decoded: " << dimm_count << "\n";
  return out.str();
}

system_info parse_reports(const std::string& dmidecode_out,
                          const std::string& decode_dimms_out) {
  system_info info{};

  // DDR generation from the SPD report.
  if (decode_dimms_out.find("DDR4 SDRAM") != std::string::npos) {
    info.generation = dram::ddr_generation::ddr4;
  } else if (decode_dimms_out.find("DDR3 SDRAM") != std::string::npos) {
    info.generation = dram::ddr_generation::ddr3;
  } else {
    throw std::runtime_error("decode-dimms: no recognizable DDR generation");
  }

  // Per-DIMM size, rank, and bank counts from dmidecode/decode-dimms.
  std::uint64_t dimm_count = 0;
  std::uint64_t size_mb_total = 0;
  std::uint64_t ranks = 0;
  {
    std::size_t pos = 0;
    std::uint64_t size_mb = 0;
    while (scan_int_after(dmidecode_out, "Size:", pos, size_mb)) {
      size_mb_total += size_mb;
      ++dimm_count;
    }
    pos = 0;
    if (!scan_int_after(dmidecode_out, "Rank:", pos, ranks)) {
      throw std::runtime_error("dmidecode: missing Rank field");
    }
  }
  if (dimm_count == 0 || size_mb_total == 0) {
    throw std::runtime_error("dmidecode: no populated memory devices");
  }

  std::uint64_t banks = 0;
  {
    std::size_t pos = 0;
    if (!scan_int_after(decode_dimms_out, "Banks x Rows x Columns x Bits",
                        pos, banks)) {
      throw std::runtime_error("decode-dimms: missing bank geometry");
    }
  }

  info.total_bytes = size_mb_total * MiB;
  info.ranks_per_dimm = static_cast<unsigned>(ranks);
  info.banks_per_rank = static_cast<unsigned>(banks);
  info.ecc = dmidecode_out.find("Error Correction Type: None") ==
             std::string::npos;

  // Channel topology from the locators: count distinct channel letters is
  // overkill for the simulated reports; the paper machines populate one
  // DIMM per channel, so channels = DIMMs unless the locator says
  // otherwise. Keep the simple rule and let dimms_per_channel absorb the
  // remainder.
  info.channels = static_cast<unsigned>(dimm_count);
  info.dimms_per_channel = 1;

  DRAMDIG_ENSURES(info.total_banks() > 0);
  return info;
}

system_info probe(const dram::machine_spec& m) {
  system_info info =
      parse_reports(render_dmidecode(m), render_decode_dimms(m));
  DRAMDIG_ENSURES(info.total_bytes == m.memory_bytes);
  DRAMDIG_ENSURES(info.total_banks() == m.total_banks());
  return info;
}

}  // namespace dramdig::sysinfo

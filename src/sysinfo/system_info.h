// System-information domain knowledge (paper Section III-A, second bullet):
// "the total number of banks, physical memory size, and whether DRAM chips
// support ECC protection. This information can be obtained from the output
// of system commands such as decode-dimms and dmidecode."
//
// To exercise the same interface the real tool uses, the simulated machine
// *renders* dmidecode/decode-dimms style text and DRAMDig *parses* it back;
// the parsers are deliberately tolerant of the formatting quirks those
// tools actually ship.
#pragma once

#include <cstdint>
#include <string>

#include "dram/presets.h"
#include "dram/spec.h"

namespace dramdig::sysinfo {

/// What the tools can learn about a machine without any timing channel.
struct system_info {
  dram::ddr_generation generation = dram::ddr_generation::ddr3;
  std::uint64_t total_bytes = 0;
  unsigned channels = 0;
  unsigned dimms_per_channel = 0;
  unsigned ranks_per_dimm = 0;
  unsigned banks_per_rank = 0;
  bool ecc = false;

  [[nodiscard]] unsigned total_banks() const {
    return channels * dimms_per_channel * ranks_per_dimm * banks_per_rank;
  }
};

/// Canonical machine identity for the fleet mapping store (src/store).
///
/// Two machines with the same fingerprint are expected to share an address
/// mapping: the fields are exactly the mapping-relevant ones a tool can
/// read without a timing channel (CPU model plus the DIMM geometry and ECC
/// flag from the dmidecode/decode-dimms reports). Deliberately excluded:
/// the paper's machine number, microarchitecture label, vulnerability
/// profile and timing-quality knobs — none of them changes the mapping,
/// and the stability tests perturb them to prove the hash ignores them.
struct machine_fingerprint {
  std::string cpu_model;
  dram::ddr_generation generation = dram::ddr_generation::ddr3;
  std::uint64_t total_bytes = 0;
  unsigned channels = 0;
  unsigned dimms_per_channel = 0;
  unsigned ranks_per_dimm = 0;
  unsigned banks_per_rank = 0;
  bool ecc = false;

  /// Fixed-field-order `key=value|...` serialization — the hash input, so
  /// source-report field order can never leak into the identity.
  [[nodiscard]] std::string canonical() const;
  /// canonical() without the CPU model: the fleet-family key. Machines
  /// that share DIMM geometry but not a CPU get a warm start (stored
  /// evidence seeds the run) instead of a verification-only job.
  [[nodiscard]] std::string geometry_canonical() const;
  /// Stable FNV-1a over canonical(); the store's exact-hit key.
  [[nodiscard]] std::uint64_t hash() const;
  /// Stable FNV-1a over geometry_canonical(); the store's partial-hit key.
  [[nodiscard]] std::uint64_t geometry_hash() const;

  friend bool operator==(const machine_fingerprint&,
                         const machine_fingerprint&) = default;
};

/// Fingerprint from a probed system_info plus the CPU model string (the
/// one identity field the memory reports do not carry).
[[nodiscard]] machine_fingerprint fingerprint(const system_info& info,
                                              const std::string& cpu_model);

/// Fingerprint of a machine spec, via the same rendered-report round trip
/// the tools use — so a spec and its probed info can never disagree.
[[nodiscard]] machine_fingerprint fingerprint(const dram::machine_spec& m);

/// Render the `dmidecode --type memory` style report a machine would give.
[[nodiscard]] std::string render_dmidecode(const dram::machine_spec& m);

/// Render a `decode-dimms` style per-DIMM SPD report.
[[nodiscard]] std::string render_decode_dimms(const dram::machine_spec& m);

/// Parse both reports back into the struct the tools consume. Throws
/// std::runtime_error on malformed input (missing sections, zero sizes).
[[nodiscard]] system_info parse_reports(const std::string& dmidecode_out,
                                        const std::string& decode_dimms_out);

/// Convenience: what the tools would gather on this machine.
[[nodiscard]] system_info probe(const dram::machine_spec& m);

}  // namespace dramdig::sysinfo

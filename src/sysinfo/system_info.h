// System-information domain knowledge (paper Section III-A, second bullet):
// "the total number of banks, physical memory size, and whether DRAM chips
// support ECC protection. This information can be obtained from the output
// of system commands such as decode-dimms and dmidecode."
//
// To exercise the same interface the real tool uses, the simulated machine
// *renders* dmidecode/decode-dimms style text and DRAMDig *parses* it back;
// the parsers are deliberately tolerant of the formatting quirks those
// tools actually ship.
#pragma once

#include <cstdint>
#include <string>

#include "dram/presets.h"
#include "dram/spec.h"

namespace dramdig::sysinfo {

/// What the tools can learn about a machine without any timing channel.
struct system_info {
  dram::ddr_generation generation = dram::ddr_generation::ddr3;
  std::uint64_t total_bytes = 0;
  unsigned channels = 0;
  unsigned dimms_per_channel = 0;
  unsigned ranks_per_dimm = 0;
  unsigned banks_per_rank = 0;
  bool ecc = false;

  [[nodiscard]] unsigned total_banks() const {
    return channels * dimms_per_channel * ranks_per_dimm * banks_per_rank;
  }
};

/// Render the `dmidecode --type memory` style report a machine would give.
[[nodiscard]] std::string render_dmidecode(const dram::machine_spec& m);

/// Render a `decode-dimms` style per-DIMM SPD report.
[[nodiscard]] std::string render_decode_dimms(const dram::machine_spec& m);

/// Parse both reports back into the struct the tools consume. Throws
/// std::runtime_error on malformed input (missing sections, zero sizes).
[[nodiscard]] system_info parse_reports(const std::string& dmidecode_out,
                                        const std::string& decode_dimms_out);

/// Convenience: what the tools would gather on this machine.
[[nodiscard]] system_info probe(const dram::machine_spec& m);

}  // namespace dramdig::sysinfo

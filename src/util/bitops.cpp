// decode_banks kernels and their one-time runtime dispatch.
//
// The decode loop is pure bit arithmetic (mask, parity, shift, or), so the
// AVX2 and scalar kernels are exactly equivalent — the dispatch is a wall-
// time decision only. Layout: function-major over 64-address blocks. A
// block's 64 outputs live in L1 (one cache line of addresses feeds eight
// outputs) while every function sweeps it, instead of streaming the whole
// output array once per function.
#include "util/bitops.h"

#include <bit>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#define DRAMDIG_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

namespace dramdig {

namespace {

constexpr std::size_t kBlock = 64;

void decode_block_scalar(const std::uint64_t* addrs, std::size_t n,
                         const std::uint64_t* functions,
                         std::size_t function_count, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = 0;
  for (std::size_t f = 0; f < function_count; ++f) {
    const std::uint64_t mask = functions[f];
    for (std::size_t i = 0; i < n; ++i) {
      out[i] |= static_cast<std::uint64_t>(std::popcount(addrs[i] & mask) & 1)
                << f;
    }
  }
}

#if DRAMDIG_HAVE_AVX2_KERNEL

/// Vector parity: reduce each 64-bit lane of `v` to its parity bit via an
/// XOR-fold (the lane-local equivalent of popcount & 1, with no cross-lane
/// traffic).
__attribute__((target("avx2"))) inline __m256i parity_epi64(__m256i v) {
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 32));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 16));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 8));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 4));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 2));
  v = _mm256_xor_si256(v, _mm256_srli_epi64(v, 1));
  return _mm256_and_si256(v, _mm256_set1_epi64x(1));
}

__attribute__((target("avx2"))) void decode_block_avx2(
    const std::uint64_t* addrs, std::size_t n, const std::uint64_t* functions,
    std::size_t function_count, std::uint64_t* out) {
  std::size_t i = 0;
  const std::size_t vec_n = n & ~std::size_t{3};
  for (; i < vec_n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_setzero_si256());
  }
  for (; i < n; ++i) out[i] = 0;
  for (std::size_t f = 0; f < function_count; ++f) {
    const __m256i mask = _mm256_set1_epi64x(
        static_cast<long long>(functions[f]));
    for (i = 0; i < vec_n; i += 4) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(addrs + i));
      const __m256i bit = _mm256_slli_epi64(
          parity_epi64(_mm256_and_si256(a, mask)),
          static_cast<int>(f));
      const __m256i acc = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(out + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_or_si256(acc, bit));
    }
    const std::uint64_t m = functions[f];
    for (i = vec_n; i < n; ++i) {
      out[i] |= static_cast<std::uint64_t>(std::popcount(addrs[i] & m) & 1)
                << f;
    }
  }
}

__attribute__((target("avx2"))) void decode_banks_avx2(
    const std::uint64_t* addrs, std::size_t n, const std::uint64_t* functions,
    std::size_t function_count, std::uint64_t* out) {
  for (std::size_t at = 0; at < n; at += kBlock) {
    const std::size_t len = n - at < kBlock ? n - at : kBlock;
    decode_block_avx2(addrs + at, len, functions, function_count, out + at);
  }
}

bool avx2_usable() {
  if (std::getenv("DRAMDIG_FORCE_SCALAR_DECODE") != nullptr) return false;
  return __builtin_cpu_supports("avx2") != 0;
}

#endif  // DRAMDIG_HAVE_AVX2_KERNEL

using decode_fn = void (*)(const std::uint64_t*, std::size_t,
                           const std::uint64_t*, std::size_t, std::uint64_t*);

decode_fn resolve_decode() {
#if DRAMDIG_HAVE_AVX2_KERNEL
  if (avx2_usable()) return &decode_banks_avx2;
#endif
  return &decode_banks_scalar;
}

decode_fn resolved_decode() {
  static const decode_fn fn = resolve_decode();
  return fn;
}

}  // namespace

void decode_banks_scalar(const std::uint64_t* addrs, std::size_t n,
                         const std::uint64_t* functions,
                         std::size_t function_count, std::uint64_t* out) {
  for (std::size_t at = 0; at < n; at += kBlock) {
    const std::size_t len = n - at < kBlock ? n - at : kBlock;
    decode_block_scalar(addrs + at, len, functions, function_count, out + at);
  }
}

void decode_banks(const std::uint64_t* addrs, std::size_t n,
                  const std::uint64_t* functions, std::size_t function_count,
                  std::uint64_t* out) {
  resolved_decode()(addrs, n, functions, function_count, out);
}

bool decode_banks_uses_simd() {
#if DRAMDIG_HAVE_AVX2_KERNEL
  return resolved_decode() == &decode_banks_avx2;
#else
  return false;
#endif
}

}  // namespace dramdig

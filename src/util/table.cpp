#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/expect.h"

namespace dramdig {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DRAMDIG_EXPECTS(!headers_.empty());
}

void text_table::add_row(std::vector<std::string> cells) {
  DRAMDIG_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_duration_s(double seconds) {
  char buf[64];
  if (seconds < 0) return "n/a";
  const int mins = static_cast<int>(seconds) / 60;
  const double rem = seconds - 60.0 * mins;
  if (mins == 0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%dm %04.1fs", mins, rem);
  }
  return buf;
}

}  // namespace dramdig

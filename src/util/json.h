// Minimal JSON emission for the benchmark harnesses.
//
// Every bench binary writes a machine-readable BENCH_*.json next to its
// ASCII tables so the perf trajectory (wall time, virtual-clock time,
// access/measurement counts) can be tracked across PRs by CI without
// scraping stdout. Emission only — the project never parses JSON — so a
// small append-style writer with automatic comma/indent management is all
// that is needed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/expect.h"

namespace dramdig {

class json_writer {
 public:
  json_writer& begin_object() {
    open("{");
    return *this;
  }
  json_writer& end_object() {
    close("}");
    return *this;
  }
  json_writer& begin_array() {
    open("[");
    return *this;
  }
  json_writer& end_array() {
    close("]");
    return *this;
  }

  /// Emit `"name":` — must be followed by a value or container.
  json_writer& key(const std::string& name) {
    separate();
    out_ << quote(name) << ": ";
    after_key_ = true;
    return *this;
  }

  /// JSON null — e.g. a tool_result with no recovered mapping.
  json_writer& null_value() { return scalar("null"); }

  json_writer& value(const std::string& v) { return scalar(quote(v)); }
  json_writer& value(const char* v) { return scalar(quote(v)); }
  json_writer& value(bool v) { return scalar(v ? "true" : "false"); }
  /// One template for every integer width so size_t/uint64_t call sites
  /// resolve identically on LP64 and LLP64 platforms.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  json_writer& value(T v) {
    return scalar(std::to_string(v));
  }
  json_writer& value(double v) {
    // JSON has no NaN/Inf; clamp to null, which consumers treat as absent.
    if (v != v || v > 1.7e308 || v < -1.7e308) return scalar("null");
    std::ostringstream s;
    s.precision(15);
    s << v;
    return scalar(s.str());
  }

  /// Finished document; valid only when every container was closed.
  [[nodiscard]] std::string str() const {
    DRAMDIG_EXPECTS(depth_.empty());
    return out_.str() + "\n";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) out_ << ",";
      out_ << "\n" << std::string(2 * depth_.size(), ' ');
      depth_.back() = true;
    }
  }

  void open(const char* bracket) {
    separate();
    out_ << bracket;
    depth_.push_back(false);
  }

  void close(const char* bracket) {
    DRAMDIG_EXPECTS(!depth_.empty());
    const bool had_items = depth_.back();
    depth_.pop_back();
    if (had_items) out_ << "\n" << std::string(2 * depth_.size(), ' ');
    out_ << bracket;
  }

  json_writer& scalar(const std::string& rendered) {
    separate();
    out_ << rendered;
    return *this;
  }

  std::ostringstream out_;
  std::vector<bool> depth_;  ///< per open container: has emitted an item
  bool after_key_ = false;
};

/// Write `contents` to `path`, replacing any previous file.
void write_file(const std::string& path, const std::string& contents);

}  // namespace dramdig

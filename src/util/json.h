// Minimal JSON emission and parsing.
//
// Every bench binary writes a machine-readable BENCH_*.json next to its
// ASCII tables so the perf trajectory (wall time, virtual-clock time,
// access/measurement counts) can be tracked across PRs by CI, via a small
// append-style writer with automatic comma/indent management. The fleet
// mapping store (src/store) also *reads* its files back, so the header
// pairs the writer with `json_value`: a strict recursive-descent parser
// whose round-trip guarantee the store relies on — anything json_writer
// emits parses back to the same values (numbers are kept as their source
// token, so a uint64 hash survives exactly), and malformed or truncated
// input throws json_parse_error instead of yielding a partial tree.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/expect.h"

namespace dramdig {

class json_writer {
 public:
  json_writer& begin_object() {
    open("{");
    return *this;
  }
  json_writer& end_object() {
    close("}");
    return *this;
  }
  json_writer& begin_array() {
    open("[");
    return *this;
  }
  json_writer& end_array() {
    close("]");
    return *this;
  }

  /// Emit `"name":` — must be followed by a value or container.
  json_writer& key(const std::string& name) {
    separate();
    out_ << quote(name) << ": ";
    after_key_ = true;
    return *this;
  }

  /// JSON null — e.g. a tool_result with no recovered mapping.
  json_writer& null_value() { return scalar("null"); }

  json_writer& value(const std::string& v) { return scalar(quote(v)); }
  json_writer& value(const char* v) { return scalar(quote(v)); }
  json_writer& value(bool v) { return scalar(v ? "true" : "false"); }
  /// One template for every integer width so size_t/uint64_t call sites
  /// resolve identically on LP64 and LLP64 platforms.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  json_writer& value(T v) {
    return scalar(std::to_string(v));
  }
  json_writer& value(double v) {
    // JSON has no NaN/Inf; clamp to null, which consumers treat as absent.
    if (v != v || v > 1.7e308 || v < -1.7e308) return scalar("null");
    std::ostringstream s;
    s.precision(15);
    s << v;
    return scalar(s.str());
  }

  /// Finished document; valid only when every container was closed.
  [[nodiscard]] std::string str() const {
    DRAMDIG_EXPECTS(depth_.empty());
    return out_.str() + "\n";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) out_ << ",";
      out_ << "\n" << std::string(2 * depth_.size(), ' ');
      depth_.back() = true;
    }
  }

  void open(const char* bracket) {
    separate();
    out_ << bracket;
    depth_.push_back(false);
  }

  void close(const char* bracket) {
    DRAMDIG_EXPECTS(!depth_.empty());
    const bool had_items = depth_.back();
    depth_.pop_back();
    if (had_items) out_ << "\n" << std::string(2 * depth_.size(), ' ');
    out_ << bracket;
  }

  json_writer& scalar(const std::string& rendered) {
    separate();
    out_ << rendered;
    return *this;
  }

  std::ostringstream out_;
  std::vector<bool> depth_;  ///< per open container: has emitted an item
  bool after_key_ = false;
};

/// Write `contents` to `path`, replacing any previous file.
void write_file(const std::string& path, const std::string& contents);

/// Whole file as a string. Throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Thrown by json_value::parse on malformed, truncated, or trailing-garbage
/// input; what() carries the byte offset of the failure.
class json_parse_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An immutable parsed JSON document node.
///
/// Numbers keep their source token and convert on demand (as_double /
/// as_u64 / as_i64), so 64-bit integers — the store's fingerprint hashes
/// and XOR masks — round-trip exactly instead of through a double.
/// Object members preserve document order. Accessors throw
/// contract_violation when the node has the wrong kind.
class json_value {
 public:
  enum class kind { null, boolean, number, string, array, object };
  using member_list = std::vector<std::pair<std::string, json_value>>;

  /// Parse a complete document (one value, optional surrounding
  /// whitespace, nothing after it). Throws json_parse_error otherwise.
  [[nodiscard]] static json_value parse(std::string_view text);

  json_value() = default;  ///< null

  [[nodiscard]] kind type() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Element count (array or object).
  [[nodiscard]] std::size_t size() const;
  /// Array element by index.
  [[nodiscard]] const json_value& operator[](std::size_t i) const;
  /// Object member by key, or nullptr when absent (first match wins).
  [[nodiscard]] const json_value* find(std::string_view key) const;
  /// Object member by key; throws json_parse_error when absent, so store
  /// loaders report a missing field like any other malformed document.
  [[nodiscard]] const json_value& at(std::string_view key) const;
  /// Object members in document order.
  [[nodiscard]] const member_list& members() const;

 private:
  kind kind_ = kind::null;
  bool bool_ = false;
  std::string scalar_;  ///< string payload, or the number's source token
  std::vector<json_value> items_;
  member_list members_;

  friend class json_parser;
};

}  // namespace dramdig

// Combination enumeration over bit positions. Algorithm 3 ("gen_xor_masks")
// tries every XOR mask over the detected bank bits from 1-bit combinations
// up to all of them; DRAMA's brute force enumerates combinations over the
// whole physical address range. Both consume this enumerator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/bitops.h"
#include "util/expect.h"

namespace dramdig {

/// Invoke `visit` with every k-combination mask of the given bit positions,
/// for k in [min_bits, max_bits]. Enumeration order is k ascending, then
/// lexicographic over the position list — which realizes the paper's
/// "starting from one bit to the number of bank bits" priority order.
/// `visit` returning false stops the enumeration early.
inline void for_each_bit_combination(
    const std::vector<unsigned>& positions, unsigned min_bits,
    unsigned max_bits, const std::function<bool(std::uint64_t)>& visit) {
  DRAMDIG_EXPECTS(min_bits >= 1);
  const unsigned n = static_cast<unsigned>(positions.size());
  if (max_bits > n) max_bits = n;
  for (unsigned k = min_bits; k <= max_bits; ++k) {
    std::vector<unsigned> idx(k);
    for (unsigned i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      std::uint64_t mask = 0;
      for (unsigned i : idx) mask |= std::uint64_t{1} << positions[i];
      if (!visit(mask)) return;
      // Advance to the next combination.
      int i = static_cast<int>(k) - 1;
      while (i >= 0 && idx[static_cast<unsigned>(i)] ==
                           n - k + static_cast<unsigned>(i)) {
        --i;
      }
      if (i < 0) break;
      ++idx[static_cast<unsigned>(i)];
      for (unsigned j = static_cast<unsigned>(i) + 1; j < k; ++j) {
        idx[j] = idx[j - 1] + 1;
      }
    }
  }
}

/// Collect all combination masks (small inputs only; the count is
/// sum_k C(n,k)).
[[nodiscard]] inline std::vector<std::uint64_t> all_bit_combinations(
    const std::vector<unsigned>& positions, unsigned min_bits,
    unsigned max_bits) {
  std::vector<std::uint64_t> out;
  for_each_bit_combination(positions, min_bits, max_bits,
                           [&](std::uint64_t m) {
                             out.push_back(m);
                             return true;
                           });
  return out;
}

/// Number of k-combinations C(n, k) without overflow for the small n used
/// here (n <= 40).
[[nodiscard]] inline std::uint64_t choose(unsigned n, unsigned k) {
  if (k > n) return 0;
  std::uint64_t r = 1;
  for (unsigned i = 1; i <= k; ++i) {
    r = r * (n - k + i) / i;
  }
  return r;
}

}  // namespace dramdig

#include "util/gf2.h"

#include <algorithm>
#include <bit>

#include "util/bitops.h"
#include "util/expect.h"

namespace dramdig::gf2 {

matrix row_echelon(matrix m) {
  matrix basis;
  for (std::uint64_t row : m) {
    for (std::uint64_t b : basis) {
      // Reduce by the existing basis: clear this row's copy of each pivot.
      const int pivot = 63 - std::countl_zero(b);
      if (pivot >= 0 && ((row >> pivot) & 1u)) row ^= b;
    }
    if (row != 0) basis.push_back(row);
  }
  // Back-substitute so each pivot column appears in exactly one row, then
  // order rows by descending pivot for a canonical form.
  std::sort(basis.begin(), basis.end(), std::greater<>());
  for (std::size_t i = 0; i < basis.size(); ++i) {
    const int pivot = 63 - std::countl_zero(basis[i]);
    for (std::size_t j = 0; j < i; ++j) {
      if ((basis[j] >> pivot) & 1u) basis[j] ^= basis[i];
    }
  }
  std::sort(basis.begin(), basis.end(), std::greater<>());
  return basis;
}

std::size_t rank(const matrix& m) { return row_echelon(m).size(); }

bool in_span(const matrix& m, std::uint64_t v) {
  const matrix basis = row_echelon(m);
  for (std::uint64_t b : basis) {
    const int pivot = 63 - std::countl_zero(b);
    if (pivot >= 0 && ((v >> pivot) & 1u)) v ^= b;
  }
  return v == 0;
}

bool same_span(const matrix& a, const matrix& b) {
  return row_echelon(a) == row_echelon(b);
}

matrix minimal_basis(matrix funcs) {
  std::sort(funcs.begin(), funcs.end(), [](std::uint64_t x, std::uint64_t y) {
    const int px = std::popcount(x), py = std::popcount(y);
    return px != py ? px < py : x < y;
  });
  matrix kept;
  for (std::uint64_t f : funcs) {
    if (f != 0 && !in_span(kept, f)) kept.push_back(f);
  }
  return kept;
}

std::optional<std::uint64_t> solve(const matrix& a, std::uint64_t b,
                                   std::uint64_t support_mask) {
  DRAMDIG_EXPECTS(a.size() <= 64);
  // Gaussian elimination on the system restricted to support columns.
  // Represent each equation as (coefficients over support, rhs bit).
  struct eq {
    std::uint64_t coeff;
    unsigned rhs;
  };
  std::vector<eq> eqs;
  eqs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eqs.push_back({a[i] & support_mask,
                   static_cast<unsigned>((b >> i) & 1u)});
    // Bits of a[i] outside the support are fixed to zero in x, so they do
    // not contribute to the rhs.
  }
  std::uint64_t x = 0;
  std::uint64_t used_pivots = 0;
  for (std::size_t i = 0; i < eqs.size(); ++i) {
    // Find a pivot column for equation i.
    if (eqs[i].coeff == 0) {
      if (eqs[i].rhs != 0) return std::nullopt;  // 0 = 1: inconsistent
      continue;
    }
    const unsigned pivot =
        static_cast<unsigned>(std::countr_zero(eqs[i].coeff));
    used_pivots |= std::uint64_t{1} << pivot;
    // Eliminate this pivot from all other equations.
    for (std::size_t j = 0; j < eqs.size(); ++j) {
      if (j != i && ((eqs[j].coeff >> pivot) & 1u)) {
        eqs[j].coeff ^= eqs[i].coeff;
        eqs[j].rhs ^= eqs[i].rhs;
      }
    }
  }
  // Assign pivot variables; free variables stay zero.
  for (const eq& e : eqs) {
    if (e.coeff == 0) {
      if (e.rhs != 0) return std::nullopt;
      continue;
    }
    const unsigned pivot = static_cast<unsigned>(std::countr_zero(e.coeff));
    if (e.rhs) x |= std::uint64_t{1} << pivot;
    // Other coefficients of e are free variables (zero), so bit `pivot`
    // of x equals the rhs directly.
  }
  // Verify (also guards the case of duplicated pivots).
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (parity(x, a[i] & support_mask) != ((b >> i) & 1u)) return std::nullopt;
  }
  return x;
}

matrix nullspace(const matrix& a, std::uint64_t support_mask) {
  // Columns = support bits; rows = functionals. Compute the kernel by
  // echelonizing the transposed system column by column.
  const std::vector<unsigned> cols = bits_of_mask(support_mask);
  // Build the column vectors: for support bit c, vec[c] has bit i set when
  // functional i uses c.
  std::vector<std::uint64_t> colvec(cols.size(), 0);
  for (std::size_t ci = 0; ci < cols.size(); ++ci) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if ((a[i] >> cols[ci]) & 1u) colvec[ci] |= std::uint64_t{1} << i;
    }
  }
  // Track combinations: comb[ci] records which original columns were folded
  // into colvec[ci] (as a mask over physical-address bits).
  std::vector<std::uint64_t> comb(cols.size());
  for (std::size_t ci = 0; ci < cols.size(); ++ci) {
    comb[ci] = std::uint64_t{1} << cols[ci];
  }
  matrix kernel;
  std::vector<std::uint64_t> pivots;  // echelon rows over functional index
  std::vector<std::uint64_t> pivot_comb;
  for (std::size_t ci = 0; ci < cols.size(); ++ci) {
    std::uint64_t v = colvec[ci];
    std::uint64_t c = comb[ci];
    for (std::size_t k = 0; k < pivots.size(); ++k) {
      const int pivot = 63 - std::countl_zero(pivots[k]);
      if (pivot >= 0 && ((v >> pivot) & 1u)) {
        v ^= pivots[k];
        c ^= pivot_comb[k];
      }
    }
    if (v == 0) {
      kernel.push_back(c);  // combination of columns summing to zero
    } else {
      pivots.push_back(v);
      pivot_comb.push_back(c);
    }
  }
  return kernel;
}

matrix enumerate_span(const matrix& basis) {
  const matrix reduced = row_echelon(basis);
  DRAMDIG_EXPECTS(reduced.size() <= 24);
  const std::uint64_t count = std::uint64_t{1} << reduced.size();
  matrix out;
  out.reserve(count - 1);
  // Gray-code walk: consecutive combination indices differ in one basis
  // vector, so each span vector is one XOR away from the previous.
  std::uint64_t current = 0;
  for (std::uint64_t i = 1; i < count; ++i) {
    const std::uint64_t gray_flip = i ^ (i >> 1);
    const std::uint64_t prev_gray = (i - 1) ^ ((i - 1) >> 1);
    const unsigned flipped =
        static_cast<unsigned>(std::countr_zero(gray_flip ^ prev_gray));
    current ^= reduced[flipped];
    out.push_back(current);
  }
  return out;
}

}  // namespace dramdig::gf2

// Deterministic work sharding for batch-oriented hot paths.
//
// The batched measurement engine and the bench drivers fan independent work
// (address decodes, whole machine runs) across threads. Reproducibility is
// non-negotiable in this project — every table and test is seeded — so the
// split is computed from item indices alone: shard i always owns the same
// contiguous index range regardless of how many threads actually run, and
// callers merge results by shard index. Combined with one forked rng per
// shard, the output is bit-identical on 1 thread and on 16.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/expect.h"
#include "util/rng.h"

namespace dramdig {

/// One contiguous slice of a [0, n) index range.
struct shard {
  std::size_t begin = 0;  ///< first index owned (inclusive)
  std::size_t end = 0;    ///< one past the last index owned
  unsigned index = 0;     ///< shard number, 0-based
};

/// Threads worth spawning on this host, clamped to [1, 16]. A value of 1
/// makes every parallel_for_shards call run inline.
[[nodiscard]] inline unsigned default_shard_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : (hw > 16 ? 16 : hw);
}

/// Split [0, n) into at most `shards` near-equal contiguous slices (never
/// more than n) — the deterministic partition both the runner and tests
/// rely on.
[[nodiscard]] inline std::vector<shard> make_shards(std::size_t n,
                                                    unsigned shards) {
  DRAMDIG_EXPECTS(shards >= 1);
  std::vector<shard> out;
  if (n == 0) return out;
  const std::size_t count =
      std::min<std::size_t>(shards, n);
  const std::size_t base = n / count;
  const std::size_t extra = n % count;  // first `extra` shards get one more
  std::size_t at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.push_back({at, at + len, static_cast<unsigned>(i)});
    at += len;
  }
  return out;
}

/// Run `fn` once per shard of [0, n), on worker threads when more than one
/// shard exists. `fn` must confine writes to shard-private state (slots of
/// a pre-sized output vector indexed by item or shard index are the
/// intended pattern). Exceptions thrown by `fn` are rethrown on the caller
/// thread after all workers join.
inline void parallel_for_shards(std::size_t n, unsigned shards,
                                const std::function<void(const shard&)>& fn) {
  const std::vector<shard> plan = make_shards(n, shards);
  if (plan.empty()) return;
  if (plan.size() == 1) {
    fn(plan.front());
    return;
  }
  std::vector<std::exception_ptr> errors(plan.size());
  std::vector<std::thread> workers;
  workers.reserve(plan.size());
  for (const shard& s : plan) {
    workers.emplace_back([&fn, &errors, s] {
      try {
        fn(s);
      } catch (...) {
        errors[s.index] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Fork `n` independent child streams from `parent` — one per shard, drawn
/// in shard order so the set of streams does not depend on thread count.
[[nodiscard]] inline std::vector<rng> fork_rngs(rng& parent, std::size_t n) {
  std::vector<rng> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(parent.fork());
  return out;
}

}  // namespace dramdig

// Deterministic work sharding for batch-oriented hot paths.
//
// The batched measurement engine and the bench drivers fan independent work
// (address decodes, whole machine runs) across threads. Reproducibility is
// non-negotiable in this project — every table and test is seeded — so the
// split is computed from item indices alone: shard i always owns the same
// contiguous index range regardless of how many threads actually run, and
// callers merge results by shard index. Combined with one forked rng per
// shard, the output is bit-identical on 1 thread and on 16.
//
// Dispatch goes through a persistent worker_pool: threads are started once
// (lazily, on the first multi-shard call) and reused for every batch, so a
// hot loop issuing thousands of measure_pairs batches pays a queue handoff
// per batch instead of a thread spawn per shard — spawn cost is why the
// batched engine used to lose to the scalar loop below ~100k pairs. The
// submitting thread always participates in its own batch, which makes
// nested submissions (a pool worker running a mapping_service job whose
// measure_pairs fans out again) deadlock-free: a caller can never block on
// work that only itself could run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/expect.h"
#include "util/rng.h"

namespace dramdig {

/// One contiguous slice of a [0, n) index range.
struct shard {
  std::size_t begin = 0;  ///< first index owned (inclusive)
  std::size_t end = 0;    ///< one past the last index owned
  unsigned index = 0;     ///< shard number, 0-based
};

/// Threads worth spawning on this host, clamped to [1, 16]. A value of 1
/// makes every parallel_for_shards call run inline.
[[nodiscard]] inline unsigned default_shard_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : (hw > 16 ? 16 : hw);
}

/// Split [0, n) into at most `shards` near-equal contiguous slices (never
/// more than n) — the deterministic partition both the runner and tests
/// rely on.
[[nodiscard]] inline std::vector<shard> make_shards(std::size_t n,
                                                    unsigned shards) {
  DRAMDIG_EXPECTS(shards >= 1);
  std::vector<shard> out;
  if (n == 0) return out;
  const std::size_t count =
      std::min<std::size_t>(shards, n);
  const std::size_t base = n / count;
  const std::size_t extra = n % count;  // first `extra` shards get one more
  std::size_t at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.push_back({at, at + len, static_cast<unsigned>(i)});
    at += len;
  }
  return out;
}

/// A persistent pool of worker threads servicing index-based task batches.
///
/// run(count, fn) executes fn(0..count-1) with the pool's workers *and* the
/// calling thread claiming indices from a shared atomic counter. Which
/// thread runs which index is scheduling — never observable, because every
/// caller follows the shard discipline above (task i writes only slot i).
/// Exceptions are captured per task and rethrown on the caller in index
/// order after the batch drains, matching the old thread-per-shard
/// semantics. Submissions from several threads queue FIFO; a submission
/// from inside a worker (nested batch) is legal and cannot deadlock, since
/// the submitter itself drains any index no idle worker picks up.
class worker_pool {
 public:
  explicit worker_pool(unsigned threads = default_shard_count()) {
    DRAMDIG_EXPECTS(threads >= 1);
    // threads-1 workers: the caller of run() is always the remaining lane.
    threads_.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  ~worker_pool() {
    {
      std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// The process-wide pool every parallel_for_shards call dispatches to,
  /// started on first use and reused for the life of the process.
  static worker_pool& global() {
    static worker_pool pool;
    return pool;
  }

  /// Worker threads plus the caller lane.
  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Run fn(i) for every i in [0, count). Blocks until all tasks finished;
  /// rethrows the lowest-index captured exception, if any.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (count == 1 || threads_.empty()) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    batch b;
    b.fn = &fn;
    b.count = count;
    b.errors.assign(count, nullptr);
    {
      std::scoped_lock lock(mutex_);
      queue_.push_back(&b);
    }
    work_cv_.notify_all();
    // The caller lane: claim indices from its own batch until exhausted.
    while (true) {
      const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.count) break;
      run_task(b, i);
    }
    {
      std::unique_lock lock(mutex_);
      done_cv_.wait(lock, [&] { return b.done.load() >= b.count; });
      // The batch may still sit (exhausted) at the queue front; remove it
      // before its stack frame dies.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == &b) {
          queue_.erase(it);
          break;
        }
      }
    }
    for (const std::exception_ptr& e : b.errors) {
      if (e) std::rethrow_exception(e);
    }
  }

 private:
  struct batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::vector<std::exception_ptr> errors;
  };

  void run_task(batch& b, std::size_t i) {
    try {
      (*b.fn)(i);
    } catch (...) {
      b.errors[i] = std::current_exception();
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.count) {
      // Empty critical section: the waiter checks the predicate under the
      // mutex, so acquiring it here closes the missed-wakeup window.
      { std::scoped_lock lock(mutex_); }
      done_cv_.notify_all();
    }
  }

  void worker_loop() {
    while (true) {
      batch* b = nullptr;
      std::size_t i = 0;
      {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        b = queue_.front();
        i = b->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b->count) {
          // Exhausted batch: retire it from the queue (its submitter may
          // still be executing claimed tasks) and look again.
          queue_.pop_front();
          continue;
        }
      }
      run_task(*b, i);
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
  std::condition_variable done_cv_;  ///< submitters: batch fully drained
  std::deque<batch*> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Run `fn` once per shard of [0, n), on `pool` when more than one shard
/// exists. `fn` must confine writes to shard-private state (slots of a
/// pre-sized output vector indexed by item or shard index are the intended
/// pattern). Exceptions thrown by `fn` are rethrown on the caller thread
/// after the batch drains, lowest shard index first. The shard *split* is a
/// function of (n, shards) alone — which pool services it is never
/// observable, so benches may inject oversized pools to measure scaling
/// without touching results.
inline void parallel_for_shards(worker_pool& pool, std::size_t n,
                                unsigned shards,
                                const std::function<void(const shard&)>& fn) {
  const std::vector<shard> plan = make_shards(n, shards);
  if (plan.empty()) return;
  if (plan.size() == 1) {
    fn(plan.front());
    return;
  }
  pool.run(plan.size(), [&](std::size_t i) { fn(plan[i]); });
}

/// Convenience overload dispatching to the process-wide pool.
inline void parallel_for_shards(std::size_t n, unsigned shards,
                                const std::function<void(const shard&)>& fn) {
  parallel_for_shards(worker_pool::global(), n, shards, fn);
}

/// Fork `n` independent child streams from `parent` — one per shard, drawn
/// in shard order so the set of streams does not depend on thread count.
[[nodiscard]] inline std::vector<rng> fork_rngs(rng& parent, std::size_t n) {
  std::vector<rng> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(parent.fork());
  return out;
}

}  // namespace dramdig

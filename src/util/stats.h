// Small statistics toolkit used by the timing primitive (median filtering,
// threshold calibration) and the benchmark reporters.
#pragma once

#include <cstdint>
#include <vector>

namespace dramdig {

[[nodiscard]] double mean(const std::vector<double>& xs);
[[nodiscard]] double variance(const std::vector<double>& xs);
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// Median; copies and partially sorts. Empty input is a precondition
/// violation.
[[nodiscard]] double median(std::vector<double> xs);
[[nodiscard]] std::uint64_t median_u64(std::vector<std::uint64_t> xs);

/// p-th percentile (0..100) by nearest-rank on a copy.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Min / max over a nonempty vector.
[[nodiscard]] double min_of(const std::vector<double>& xs);
[[nodiscard]] double max_of(const std::vector<double>& xs);

}  // namespace dramdig

// Linear algebra over GF(2) on 64-bit row vectors.
//
// Every DRAM address-mapping component handled in this project is linear
// over GF(2): a bank address function is a parity over selected physical
// address bits, i.e. a row vector, and a set of functions is a matrix. The
// reverse-engineering tools need rank computation (how many independent
// functions), span membership (is a candidate function a linear combination
// of already-accepted ones — Algorithm 3's "remove redundant"), basis
// reduction (canonicalizing a function set), and linear solving (inverting a
// mapping to synthesize a physical address with a desired bank/row — used by
// the rowhammer harness).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace dramdig::gf2 {

/// A matrix over GF(2); each element of `rows` is a 64-column row vector.
using matrix = std::vector<std::uint64_t>;

/// Row-reduce `m` to row echelon form (in place variant returns the basis):
/// returns the nonzero rows of the reduced matrix, pivot columns descending
/// from the most significant bit. The result spans the same row space.
[[nodiscard]] matrix row_echelon(matrix m);

/// Rank of the row space.
[[nodiscard]] std::size_t rank(const matrix& m);

/// True if `v` lies in the row space of `m`.
[[nodiscard]] bool in_span(const matrix& m, std::uint64_t v);

/// True if the two matrices span the same row space. This is the right
/// notion of "the reverse-engineered bank functions equal the ground
/// truth": any basis of the same space addresses banks identically up to
/// renumbering.
[[nodiscard]] bool same_span(const matrix& a, const matrix& b);

/// Reduce `funcs` to a minimal independent subset, preferring vectors with
/// fewer set bits (the paper: "functions that have fewer bits have higher
/// priority"), then lower numeric value as a tiebreak. Output is sorted by
/// (popcount, value) and spans the same space.
[[nodiscard]] matrix minimal_basis(matrix funcs);

/// Solve x * A^T = b where the rows of `a` are the linear functionals and
/// `b` supplies one target bit per functional (bit i of `b` is the desired
/// output of functional a[i]). The solution is constrained to the bit
/// positions in `support_mask` (all other bits of x are zero). Returns
/// nullopt when the system is inconsistent over that support.
[[nodiscard]] std::optional<std::uint64_t> solve(const matrix& a,
                                                 std::uint64_t b,
                                                 std::uint64_t support_mask);

/// A basis for the null space of the functionals in `a` restricted to the
/// bit positions in `support_mask`: vectors x (subsets of support_mask) with
/// parity(x, a[i]) == 0 for every i. Two consumers: fine-grained detection
/// builds bank-invariant address deltas from it, and function detection
/// recovers the *entire* candidate-mask set from a pile's XOR-difference
/// matrix — a mask is constant on a pile iff it annihilates every
/// difference, so the candidates are exactly this null space.
[[nodiscard]] matrix nullspace(const matrix& a, std::uint64_t support_mask);

/// Legacy spelling of nullspace().
[[nodiscard]] inline matrix null_space(const matrix& a,
                                       std::uint64_t support_mask) {
  return nullspace(a, support_mask);
}

/// Every nonzero vector of the row space of `basis` (which need not be
/// reduced): 2^rank - 1 vectors, enumerated by Gray code so each step costs
/// one XOR. Precondition: rank(basis) <= 24 — the caller is expected to
/// have collapsed the space first; function detection's spaces have rank
/// log2(#banks).
[[nodiscard]] matrix enumerate_span(const matrix& basis);

}  // namespace dramdig::gf2

#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/stats.h"

namespace dramdig {

histogram::histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bin_count)),
      counts_(bin_count, 0) {
  DRAMDIG_EXPECTS(hi > lo);
  DRAMDIG_EXPECTS(bin_count > 0);
}

void histogram::add(double sample) {
  double idx = (sample - lo_) / bin_width_;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void histogram::add_all(const std::vector<double>& samples) {
  for (double s : samples) add(s);
}

std::uint64_t histogram::count(std::size_t bin) const {
  DRAMDIG_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double histogram::bin_low(std::size_t bin) const {
  DRAMDIG_EXPECTS(bin < counts_.size());
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double histogram::bin_center(std::size_t bin) const {
  return bin_low(bin) + bin_width_ / 2.0;
}

std::size_t histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string histogram::ascii(std::size_t width) const {
  std::string out;
  const std::uint64_t peak =
      std::max<std::uint64_t>(1, counts_[mode_bin()]);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%8.1f | ", bin_low(i));
    out += buf;
    const std::size_t bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
  }
  return out;
}

double valley_threshold(const std::vector<double>& samples) {
  DRAMDIG_EXPECTS(samples.size() >= 16);
  const double lo = min_of(samples);
  const double hi = max_of(samples) + 1e-9;
  constexpr std::size_t kBins = 128;
  histogram h(lo, hi, kBins);
  for (double s : samples) h.add(s);

  // Find the global peak, then the best peak separated from it by at least
  // a tenth of the range, then the emptiest bin between them.
  const std::size_t p1 = h.mode_bin();
  const std::size_t min_sep = kBins / 10;
  std::size_t p2 = kBins;  // invalid
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    const std::size_t sep = i > p1 ? i - p1 : p1 - i;
    if (sep >= min_sep && h.count(i) > best) {
      best = h.count(i);
      p2 = i;
    }
  }
  if (p2 == kBins) {
    // Unimodal sample: fall back to Otsu which degrades gracefully.
    return otsu_threshold(samples);
  }
  // The emptiest stretch between the two peaks; with narrow modes many
  // bins tie at zero, so take the centre of the tie run for a threshold
  // that is robust to both modes drifting.
  const auto [a, b] = std::minmax(p1, p2);
  std::uint64_t valley_count = h.count(a);
  for (std::size_t i = a; i <= b; ++i) {
    valley_count = std::min(valley_count, h.count(i));
  }
  std::size_t first = a, last = a;
  bool seen = false;
  for (std::size_t i = a; i <= b; ++i) {
    if (h.count(i) == valley_count) {
      if (!seen) first = i;
      last = i;
      seen = true;
    }
  }
  return h.bin_center((first + last) / 2);
}

double otsu_threshold(const std::vector<double>& samples) {
  DRAMDIG_EXPECTS(samples.size() >= 2);
  const double lo = min_of(samples);
  const double hi = max_of(samples) + 1e-9;
  constexpr std::size_t kBins = 128;
  histogram h(lo, hi, kBins);
  for (double s : samples) h.add(s);

  // Standard Otsu over the binned distribution.
  const double total = static_cast<double>(h.total());
  double sum_all = 0;
  for (std::size_t i = 0; i < kBins; ++i) {
    sum_all += static_cast<double>(h.count(i)) * h.bin_center(i);
  }
  // Between-class variance is flat across an empty valley, so track the
  // whole plateau of (near-)maximal variance and cut in its middle — a
  // threshold robust to either mode drifting.
  double sum_b = 0, weight_b = 0, best_var = -1.0;
  std::size_t best_first = kBins / 2, best_last = kBins / 2;
  for (std::size_t i = 0; i < kBins; ++i) {
    weight_b += static_cast<double>(h.count(i));
    if (weight_b == 0) continue;
    const double weight_f = total - weight_b;
    if (weight_f == 0) break;
    sum_b += static_cast<double>(h.count(i)) * h.bin_center(i);
    const double mean_b = sum_b / weight_b;
    const double mean_f = (sum_all - sum_b) / weight_f;
    const double between =
        weight_b * weight_f * (mean_b - mean_f) * (mean_b - mean_f);
    if (between > best_var * (1.0 + 1e-9)) {
      best_var = between;
      best_first = best_last = i;
    } else if (between >= best_var * (1.0 - 1e-9)) {
      best_last = i;
    }
  }
  return h.bin_center((best_first + best_last) / 2);
}

}  // namespace dramdig

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/expect.h"

namespace dramdig {

double mean(const std::vector<double>& xs) {
  DRAMDIG_EXPECTS(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  DRAMDIG_EXPECTS(!xs.empty());
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  DRAMDIG_EXPECTS(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

std::uint64_t median_u64(std::vector<std::uint64_t> xs) {
  DRAMDIG_EXPECTS(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  return xs[mid];
}

double percentile(std::vector<double> xs, double p) {
  DRAMDIG_EXPECTS(!xs.empty());
  DRAMDIG_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(const std::vector<double>& xs) {
  DRAMDIG_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  DRAMDIG_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace dramdig

// Minimal leveled logger. The reverse-engineering tools narrate their steps
// (like the real DRAMDig binary would); examples enable info-level output,
// tests and benches keep it off by default.
#pragma once

#include <functional>
#include <string>

namespace dramdig {

enum class log_level { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

/// Global verbosity; defaults to off so library users opt in.
void set_log_level(log_level level);
[[nodiscard]] log_level current_log_level();

/// Optional tap receiving EVERY log line regardless of the global level
/// (the level still gates the stderr print). Tests pin warnings through
/// it; pass nullptr/empty to remove. Not thread-compartmentalized: install
/// before spawning workers and remove after they join.
using log_sink = std::function<void(log_level, const std::string&)>;
void set_log_sink(log_sink sink);

void log_line(log_level level, const std::string& message);

inline void log_info(const std::string& message) {
  log_line(log_level::info, message);
}
inline void log_debug(const std::string& message) {
  log_line(log_level::debug, message);
}
inline void log_error(const std::string& message) {
  log_line(log_level::error, message);
}
/// Degradations that change behavior without failing it — e.g. a corrupt
/// mapping store falling back to a cold run.
inline void log_warn(const std::string& message) {
  log_line(log_level::warn, message);
}

}  // namespace dramdig

#include "util/log.h"

#include <cstdio>

namespace dramdig {

namespace {
log_level g_level = log_level::off;
log_sink g_sink;

const char* prefix(log_level level) {
  switch (level) {
    case log_level::error: return "[error] ";
    case log_level::warn: return "[warn ] ";
    case log_level::info: return "[info ] ";
    case log_level::debug: return "[debug] ";
    case log_level::off: break;
  }
  return "";
}
}  // namespace

void set_log_level(log_level level) { g_level = level; }

log_level current_log_level() { return g_level; }

void set_log_sink(log_sink sink) { g_sink = std::move(sink); }

void log_line(log_level level, const std::string& message) {
  if (level != log_level::off && g_sink) g_sink(level, message);
  if (static_cast<int>(level) <= static_cast<int>(g_level) &&
      level != log_level::off) {
    std::fprintf(stderr, "%s%s\n", prefix(level), message.c_str());
  }
}

}  // namespace dramdig

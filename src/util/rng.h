// Deterministic random number generation. Every stochastic component in the
// project (timing noise, allocator fragmentation, DRAMA's random pools, the
// rowhammer cell lottery) draws from an explicitly seeded rng so that tests
// and benchmark tables are reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

#include "util/expect.h"

namespace dramdig {

class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    DRAMDIG_EXPECTS(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi].
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) {
    DRAMDIG_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal deviate.
  [[nodiscard]] double gaussian(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Derive an independent child stream; lets subsystems own their rngs
  /// without coupling their draw order.
  [[nodiscard]] rng fork() { return rng(engine_()); }

  /// Access the underlying engine (for std::shuffle and distributions).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dramdig

// Deterministic random number generation. Every stochastic component in the
// project (timing noise, allocator fragmentation, DRAMA's random pools, the
// rowhammer cell lottery) draws from an explicitly seeded rng so that tests
// and benchmark tables are reproducible run to run.
//
// Two substrates live here:
//   * `rng` — a sequential mt19937_64 stream. Sample i depends on every
//     draw before it, so consumers that share one stream serialize.
//   * `noise_stream` — a counter-based (Philox-style, Salmon et al.,
//     "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11) generator:
//     sample i is a pure function of (key, domain, i), with constant
//     consumption per sample. This is what lets the simulator's
//     measurement tail evaluate its noise shard-parallel and still stay
//     bit-identical on any thread count.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>

#include "util/expect.h"

namespace dramdig {

class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    DRAMDIG_EXPECTS(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi].
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) {
    DRAMDIG_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  ///
  /// Distribution construction notes (why nothing is hoisted here): the
  /// integer/real/bernoulli distributions are stateless — constructing one
  /// stores its parameters and nothing else, so the per-call temporaries
  /// below cost nothing and hoisting them would buy nothing.
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial. Stateless distribution — see uniform().
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal deviate.
  ///
  /// std::normal_distribution is the one *stateful* distribution used here
  /// (Marsaglia polar: each refill produces two deviates and caches the
  /// spare). A hoisted member distribution would serve every second call
  /// from that spare and consume zero engine draws for it — changing the
  /// engine's draw sequence relative to the historical per-call form, which
  /// the differential oracles (timing_model::use_counter_rng = false et al.)
  /// pin bit-for-bit. The construction cost therefore cannot be hoisted
  /// sequence-compatibly; hot paths that need cheap gaussians use the
  /// counter-based noise_stream below instead.
  [[nodiscard]] double gaussian(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Derive an independent child stream; lets subsystems own their rngs
  /// without coupling their draw order.
  [[nodiscard]] rng fork() { return rng(engine_()); }

  /// Access the underlying engine (for std::shuffle and distributions).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// ---------------------------------------------------------------------------
// Counter-based noise streams.

/// One 256-bit output block of the counter engine.
struct counter_block {
  std::uint64_t v0 = 0, v1 = 0, v2 = 0, v3 = 0;
};

namespace detail {

/// 64x64 -> 128-bit multiply split into (hi, lo).
inline void mulhilo64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                      std::uint64_t& lo) noexcept {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  hi = static_cast<std::uint64_t>(p >> 64);
  lo = static_cast<std::uint64_t>(p);
#else
  const std::uint64_t a_lo = a & 0xffffffffu, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffu, b_hi = b >> 32;
  const std::uint64_t t = a_hi * b_lo + ((a_lo * b_lo) >> 32);
  const std::uint64_t u = a_lo * b_hi + (t & 0xffffffffu);
  hi = a_hi * b_hi + (t >> 32) + (u >> 32);
  lo = a * b;
#endif
}

/// splitmix64 step — used to expand one seed into independent key words.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace detail

/// philox4x64-10: the keyed counter->block function. Pure — the block is a
/// function of (key, counter) alone, so any sample indexed through it can
/// be evaluated on any thread, in any order, with identical results.
/// Multiplier/Weyl constants are the published Random123 values.
[[nodiscard]] inline counter_block philox4x64(std::uint64_t key0,
                                              std::uint64_t key1,
                                              std::uint64_t ctr0,
                                              std::uint64_t ctr1,
                                              std::uint64_t ctr2 = 0,
                                              std::uint64_t ctr3 = 0) noexcept {
  constexpr std::uint64_t kMul0 = 0xD2E7470EE14C6C93ull;
  constexpr std::uint64_t kMul1 = 0xCA5A826395121157ull;
  constexpr std::uint64_t kWeyl0 = 0x9E3779B97F4A7C15ull;
  constexpr std::uint64_t kWeyl1 = 0xBB67AE8584CAA73Bull;
  std::uint64_t c0 = ctr0, c1 = ctr1, c2 = ctr2, c3 = ctr3;
  std::uint64_t k0 = key0, k1 = key1;
  for (int round = 0; round < 10; ++round) {
    std::uint64_t hi0, lo0, hi1, lo1;
    detail::mulhilo64(kMul0, c0, hi0, lo0);
    detail::mulhilo64(kMul1, c2, hi1, lo1);
    c0 = hi1 ^ c1 ^ k0;
    c1 = lo1;
    c2 = hi0 ^ c3 ^ k1;
    c3 = lo0;
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  return {c0, c1, c2, c3};
}

/// Map a 64-bit word to a uniform double in [0, 1) (53-bit mantissa).
[[nodiscard]] constexpr double counter_unit(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Fixed-consumption standard-normal deviate from ONE uniform word, via
/// the inverse normal CDF (Acklam's rational approximation, |rel err| <
/// 1.2e-9 — far below the simulator's noise floor). No rejection loop, no
/// cached spare: deviate i never depends on deviate i-1, which is the
/// property that lets the measurement tail evaluate deviates in parallel.
[[nodiscard]] inline double counter_gaussian(std::uint64_t x) noexcept {
  // Half-ulp offset keeps u away from 0; the top lattice point would round
  // to exactly 1.0 (double spacing near 1 is 2^-53, so 1 - 2^-53 + 2^-54
  // ties-to-even upward), so it is clamped one ulp below — both tails stay
  // finite for every input word.
  const double u =
      std::min(counter_unit(x) + 0x1.0p-54, 1.0 - 0x1.0p-53);
  constexpr double a0 = -3.969683028665376e+01, a1 = 2.209460984245205e+02,
                   a2 = -2.759285104469687e+02, a3 = 1.383577518672690e+02,
                   a4 = -3.066479806614716e+01, a5 = 2.506628277459239e+00;
  constexpr double b0 = -5.447609879822406e+01, b1 = 1.615858368580409e+02,
                   b2 = -1.556989798598866e+02, b3 = 6.680131188771972e+01,
                   b4 = -1.328068155288572e+01;
  constexpr double c0 = -7.784894002430293e-03, c1 = -3.223964580411365e-01,
                   c2 = -2.400758277161838e+00, c3 = -2.549732539343734e+00,
                   c4 = 4.374664141464968e+00, c5 = 2.938163982698783e+00;
  constexpr double d0 = 7.784695709041462e-03, d1 = 3.224671290700398e-01,
                   d2 = 2.445134137142996e+00, d3 = 3.754408661907416e+00;
  constexpr double kLow = 0.02425;
  if (u < kLow) {
    const double q = std::sqrt(-2.0 * std::log(u));
    return (((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5) /
           ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0);
  }
  if (u > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - u));
    return -(((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5) /
           ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0);
  }
  const double q = u - 0.5;
  const double r = q * q;
  return (((((a0 * r + a1) * r + a2) * r + a3) * r + a4) * r + a5) * q /
         (((((b0 * r + b1) * r + b2) * r + b3) * r + b4) * r + 1.0);
}

/// A keyed counter-based noise source. Every draw is addressed by a
/// (domain, index) pair: `domain` separates independent consumers sharing
/// one key (access noise vs measurement noise), `index` is the consumer's
/// own monotone counter (access number, measurement number). Copying a
/// noise_stream is free and never entangles streams — there is no state to
/// share.
struct noise_stream {
  std::uint64_t key0 = 0;
  std::uint64_t key1 = 0;

  /// Expand one seed into a full key via splitmix64 (the mt19937-seeding
  /// idiom; avoids correlated keys for adjacent seeds).
  [[nodiscard]] static noise_stream from_seed(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    const std::uint64_t k0 = detail::splitmix64(s);
    const std::uint64_t k1 = detail::splitmix64(s);
    return {k0, k1};
  }

  [[nodiscard]] counter_block block(std::uint64_t domain,
                                    std::uint64_t index) const noexcept {
    return philox4x64(key0, key1, index, domain);
  }

  /// Uniform double in [0, 1) at (domain, index).
  [[nodiscard]] double uniform(std::uint64_t domain,
                               std::uint64_t index) const noexcept {
    return counter_unit(block(domain, index).v0);
  }

  /// Bernoulli trial at (domain, index).
  [[nodiscard]] bool bernoulli(std::uint64_t domain, std::uint64_t index,
                               double p) const noexcept {
    return counter_unit(block(domain, index).v0) < p;
  }

  /// Normal deviate at (domain, index).
  [[nodiscard]] double gaussian(std::uint64_t domain, std::uint64_t index,
                                double mean, double sigma) const noexcept {
    return mean + sigma * counter_gaussian(block(domain, index).v0);
  }

  /// Batch samplers: out[i] equals the corresponding scalar call at index
  /// base_index + i — the fill is just the loop, written once so callers
  /// (and the noise_sampling bench) share one definition. Each sample
  /// touches its own counter only, so callers may split a fill across
  /// threads at any granularity and concatenate.
  void fill_gaussian(std::uint64_t domain, std::uint64_t base_index,
                     std::size_t n, double mean, double sigma,
                     double* out) const noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = gaussian(domain, base_index + i, mean, sigma);
    }
  }

  void fill_uniform(std::uint64_t domain, std::uint64_t base_index,
                    std::size_t n, double* out) const noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = uniform(domain, base_index + i);
    }
  }

  void fill_bernoulli(std::uint64_t domain, std::uint64_t base_index,
                      std::size_t n, double p,
                      std::uint8_t* out) const noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = bernoulli(domain, base_index + i, p) ? 1 : 0;
    }
  }
};

}  // namespace dramdig

// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw so that tests can assert on
// them; they are never compiled out because every caller in this project is
// either a tool or a simulator where correctness dominates speed.
#pragma once

#include <stdexcept>
#include <string>

namespace dramdig {

/// Thrown when a precondition or postcondition is violated.
class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw contract_violation(std::string(kind) + " failed: " + expr + " at " +
                           file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace dramdig

#define DRAMDIG_EXPECTS(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dramdig::detail::contract_fail("precondition", #cond, __FILE__,    \
                                       __LINE__);                          \
  } while (false)

#define DRAMDIG_ENSURES(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dramdig::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                       __LINE__);                          \
  } while (false)

// Bit-manipulation helpers shared by the mapping model and the
// reverse-engineering tools. All operate on 64-bit physical addresses or
// XOR masks over physical-address bits.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/expect.h"

namespace dramdig {

/// XOR-reduce the bits of `value` selected by `mask` to a single bit.
/// This is exactly the Intel bank-address-function primitive the paper
/// describes: "a tuple of multiple physical address bits, which are XORed
/// to output a single bit".
[[nodiscard]] constexpr unsigned parity(std::uint64_t value,
                                        std::uint64_t mask) noexcept {
  return static_cast<unsigned>(std::popcount(value & mask) & 1);
}

/// Test a single bit.
[[nodiscard]] constexpr bool bit(std::uint64_t value, unsigned index) noexcept {
  return ((value >> index) & 1u) != 0;
}

/// Set or clear a single bit, returning the new value.
[[nodiscard]] constexpr std::uint64_t with_bit(std::uint64_t value,
                                               unsigned index,
                                               bool on) noexcept {
  const std::uint64_t m = std::uint64_t{1} << index;
  return on ? (value | m) : (value & ~m);
}

/// Build a mask with the given bit indices set.
[[nodiscard]] inline std::uint64_t mask_of_bits(
    const std::vector<unsigned>& bits) {
  std::uint64_t m = 0;
  for (unsigned b : bits) {
    DRAMDIG_EXPECTS(b < 64);
    m |= std::uint64_t{1} << b;
  }
  return m;
}

/// List the set-bit indices of `mask`, ascending.
[[nodiscard]] inline std::vector<unsigned> bits_of_mask(std::uint64_t mask) {
  std::vector<unsigned> out;
  while (mask != 0) {
    const unsigned b = static_cast<unsigned>(std::countr_zero(mask));
    out.push_back(b);
    mask &= mask - 1;
  }
  return out;
}

/// Gather the bits of `value` selected by ascending indices `bits` into a
/// dense integer (bits[0] becomes bit 0 of the result). This is how a row
/// or column index is extracted from a physical address.
[[nodiscard]] inline std::uint64_t gather_bits(
    std::uint64_t value, const std::vector<unsigned>& bits) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out |= static_cast<std::uint64_t>(bit(value, bits[i])) << i;
  }
  return out;
}

/// Inverse of gather_bits: scatter the low bits of `dense` to positions
/// `bits` (other positions zero).
[[nodiscard]] inline std::uint64_t scatter_bits(
    std::uint64_t dense, const std::vector<unsigned>& bits) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out |= static_cast<std::uint64_t>((dense >> i) & 1u) << bits[i];
  }
  return out;
}

/// Decode the flat bank index of `n` addresses at once: out[i] gets bit f
/// equal to parity(addrs[i], functions[f]). This is the simulator's decode
/// hot loop (see sim::memory_controller::decode_pairs): function-major over
/// 64-address blocks so the per-block output stays register/L1 resident
/// across functions. Dispatches once, at first call, to an AVX2 kernel
/// when the CPU supports it (and DRAMDIG_FORCE_SCALAR_DECODE is not set in
/// the environment), else to the portable scalar kernel; both kernels are
/// exact bit operations and produce identical output — pinned by
/// tests/util/test_bitops.cpp on random function sets.
void decode_banks(const std::uint64_t* addrs, std::size_t n,
                  const std::uint64_t* functions, std::size_t function_count,
                  std::uint64_t* out);

/// The portable kernel, callable directly (tests, the decode_simd bench).
void decode_banks_scalar(const std::uint64_t* addrs, std::size_t n,
                         const std::uint64_t* functions,
                         std::size_t function_count, std::uint64_t* out);

/// True when decode_banks resolved to a SIMD kernel on this host — i.e.
/// the CPU supports it and the scalar fallback was not forced via the
/// DRAMDIG_FORCE_SCALAR_DECODE environment variable.
[[nodiscard]] bool decode_banks_uses_simd();

/// Number of contiguous low bits needed to address `size` bytes; requires a
/// power-of-two size.
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t size) {
  DRAMDIG_EXPECTS(size != 0 && (size & (size - 1)) == 0);
  return static_cast<unsigned>(std::countr_zero(size));
}

}  // namespace dramdig

// Disjoint-set forest with union by size and path halving. unite()
// reports the surviving and absorbed roots so callers that key per-class
// state by root id can migrate it on merges.
//
// Ids are dense (0..count-1) in make_set order, so callers that create
// nodes in a deterministic order get a fully deterministic structure —
// no pointer identity or hash order ever leaks into results.
#pragma once

#include <cstddef>
#include <vector>

#include "util/expect.h"

namespace dramdig {

class union_find {
 public:
  /// Create a fresh singleton class; returns its id.
  std::size_t make_set() {
    parent_.push_back(parent_.size());
    size_.push_back(1);
    ++sets_;
    return parent_.size() - 1;
  }

  /// Root of x's class, with path halving.
  [[nodiscard]] std::size_t find(std::size_t x) {
    DRAMDIG_EXPECTS(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Outcome of a unite: `merged` is false when a and b already shared a
  /// class (winner == loser == the common root).
  struct merge_result {
    bool merged = false;
    std::size_t winner = 0;  ///< surviving root
    std::size_t loser = 0;   ///< absorbed root (== winner when !merged)
  };

  /// Merge the classes of a and b (union by size; ties keep the smaller
  /// root id so the structure is independent of call order history).
  merge_result unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a), rb = find(b);
    if (ra == rb) return {false, ra, ra};
    if (size_[ra] < size_[rb] || (size_[ra] == size_[rb] && ra > rb)) {
      std::swap(ra, rb);
    }
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --sets_;
    return {true, ra, rb};
  }

  /// True when a and b are known to share a class.
  [[nodiscard]] bool same(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  /// Members in x's class.
  [[nodiscard]] std::size_t class_size(std::size_t x) {
    return size_[find(x)];
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return parent_.size();
  }
  [[nodiscard]] std::size_t set_count() const noexcept { return sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;  ///< valid at roots only
  std::size_t sets_ = 0;
};

}  // namespace dramdig

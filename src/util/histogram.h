// Latency histogramming and bimodal threshold calibration.
//
// The row-buffer timing channel produces a bimodal latency distribution:
// a fast mode (row hit / different bank) and a slow mode (row conflict).
// The tools calibrate a decision threshold by sampling random address pairs
// and locating the valley between the two modes; this file provides the
// histogram container and two calibration strategies (valley search and
// Otsu's method) so that thresholding behaviour itself can be unit tested.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dramdig {

class histogram {
 public:
  /// Fixed-width bins spanning [lo, hi); samples outside clamp to the edge
  /// bins so that outliers remain visible.
  histogram(double lo, double hi, std::size_t bin_count);

  void add(double sample);
  void add_all(const std::vector<double>& samples);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Index of the fullest bin.
  [[nodiscard]] std::size_t mode_bin() const;

  /// Render as ASCII art (for the timing_channel_viz example).
  [[nodiscard]] std::string ascii(std::size_t width = 60) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Threshold between the two modes of a bimodal sample set, found as the
/// emptiest bin between the two tallest well-separated peaks. Returns the
/// bin-center latency value.
[[nodiscard]] double valley_threshold(const std::vector<double>& samples);

/// Otsu's method: threshold maximizing inter-class variance. More robust
/// when the slow mode is small (few conflicting pairs in the sample).
[[nodiscard]] double otsu_threshold(const std::vector<double>& samples);

}  // namespace dramdig

#include "util/json.h"

#include <fstream>
#include <stdexcept>

namespace dramdig {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw std::runtime_error("write_file: cannot open '" + path +
                             "' for writing");
  }
  out << contents;
  if (!out.good()) {
    throw std::runtime_error("write_file: short write to '" + path + "'");
  }
}

}  // namespace dramdig

#include "util/json.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dramdig {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw std::runtime_error("write_file: cannot open '" + path +
                             "' for writing");
  }
  out << contents;
  if (!out.good()) {
    throw std::runtime_error("write_file: short write to '" + path + "'");
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("read_file: cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("read_file: read failure on '" + path + "'");
  }
  return out.str();
}

namespace {

/// Corrupted store files must degrade, never crash — a hostile level of
/// nesting would otherwise overflow the recursive-descent stack.
constexpr int kMaxDepth = 128;

}  // namespace

/// Strict recursive-descent parser over the grammar json_writer emits
/// (RFC 8259 minus unpaired-surrogate pedantry: \uXXXX escapes decode to
/// UTF-8, which covers everything quote() produces).
class json_parser {
 public:
  explicit json_parser(std::string_view text) : text_(text) {}

  json_value run() {
    json_value v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw json_parse_error("json parse error at byte " +
                           std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  json_value value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        json_value v;
        v.kind_ = json_value::kind::string;
        v.scalar_ = string_token();
        return v;
      }
      case 't': literal("true"); return boolean(true);
      case 'f': literal("false"); return boolean(false);
      case 'n': {
        literal("null");
        return json_value{};
      }
      default: return number();
    }
  }

  static json_value boolean(bool b) {
    json_value v;
    v.kind_ = json_value::kind::boolean;
    v.bool_ = b;
    return v;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }

  json_value object(int depth) {
    expect('{');
    json_value v;
    v.kind_ = json_value::kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = string_token();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  json_value array(int depth) {
    expect('[');
    json_value v;
    v.kind_ = json_value::kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string_token() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = peek();
            ++pos_;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode; quote() only ever emits codes below 0x20, but a
          // hand-edited store file may carry anything in the BMP.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  json_value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      fail("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // JSON: a leading zero stands alone ("01" is malformed)
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    json_value v;
    v.kind_ = json_value::kind::number;
    v.scalar_.assign(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

json_value json_value::parse(std::string_view text) {
  return json_parser(text).run();
}

bool json_value::as_bool() const {
  DRAMDIG_EXPECTS(kind_ == kind::boolean);
  return bool_;
}

double json_value::as_double() const {
  DRAMDIG_EXPECTS(kind_ == kind::number);
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t json_value::as_u64() const {
  DRAMDIG_EXPECTS(kind_ == kind::number);
  // The token was validated at parse time; reject fractions/exponents and
  // negatives here so a double can never silently truncate into a hash.
  if (scalar_.find_first_of(".eE-") != std::string::npos) {
    throw json_parse_error("as_u64 on non-integer token '" + scalar_ + "'");
  }
  errno = 0;
  const std::uint64_t v = std::strtoull(scalar_.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    throw json_parse_error("u64 overflow in token '" + scalar_ + "'");
  }
  return v;
}

std::int64_t json_value::as_i64() const {
  DRAMDIG_EXPECTS(kind_ == kind::number);
  if (scalar_.find_first_of(".eE") != std::string::npos) {
    throw json_parse_error("as_i64 on non-integer token '" + scalar_ + "'");
  }
  errno = 0;
  const std::int64_t v = std::strtoll(scalar_.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    throw json_parse_error("i64 overflow in token '" + scalar_ + "'");
  }
  return v;
}

const std::string& json_value::as_string() const {
  DRAMDIG_EXPECTS(kind_ == kind::string);
  return scalar_;
}

std::size_t json_value::size() const {
  DRAMDIG_EXPECTS(kind_ == kind::array || kind_ == kind::object);
  return kind_ == kind::array ? items_.size() : members_.size();
}

const json_value& json_value::operator[](std::size_t i) const {
  DRAMDIG_EXPECTS(kind_ == kind::array);
  DRAMDIG_EXPECTS(i < items_.size());
  return items_[i];
}

const json_value* json_value::find(std::string_view key) const {
  DRAMDIG_EXPECTS(kind_ == kind::object);
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const json_value& json_value::at(std::string_view key) const {
  const json_value* v = find(key);
  if (v == nullptr) {
    throw json_parse_error("missing object member '" + std::string(key) + "'");
  }
  return *v;
}

const json_value::member_list& json_value::members() const {
  DRAMDIG_EXPECTS(kind_ == kind::object);
  return members_;
}

}  // namespace dramdig

// ASCII table rendering for the benchmark harnesses. Every bench binary
// reprints a paper table/figure as rows of text; this keeps the formatting
// in one place so the output stays visually consistent across experiments.
#pragma once

#include <string>
#include <vector>

namespace dramdig {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column auto-sizing, `|` separators and a header rule.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper: fixed decimals, no locale traps.
[[nodiscard]] std::string fmt_double(double v, int decimals = 1);

/// Seconds rendered as "Xm YYs" for readability in time-cost tables.
[[nodiscard]] std::string fmt_duration_s(double seconds);

}  // namespace dramdig

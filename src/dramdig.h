// Umbrella header: the public API surface of the DRAMDig reproduction.
//
//   #include "dramdig.h"
//
//   dramdig::core::environment env(dramdig::dram::machine_by_number(2), 42);
//   auto report = dramdig::core::dramdig_tool(env).run();
//
// Layering (each header is independently includable):
//   util     -> gf2 algebra, bit ops, rng, stats, histograms
//   dram     -> address-mapping model, machine presets, JEDEC specs
//   sim      -> memory controller, timing channel physics, rowhammer faults
//   os       -> physical memory, address spaces, pagemap
//   sysinfo  -> dmidecode/decode-dimms reports and parsing
//   timing   -> the SBDR timing primitive
//   core     -> the DRAMDig pipeline (this paper's contribution)
//   baselines-> DRAMA and Xiao et al. comparison tools
//   rowhammer-> the hypothesis-driven hammer harness
#pragma once

#include "baselines/drama.h"     // IWYU pragma: export
#include "baselines/xiao.h"      // IWYU pragma: export
#include "core/dramdig.h"        // IWYU pragma: export
#include "core/environment.h"    // IWYU pragma: export
#include "core/measurement_plan.h"  // IWYU pragma: export
#include "dram/mapping.h"        // IWYU pragma: export
#include "dram/presets.h"        // IWYU pragma: export
#include "dram/spec.h"           // IWYU pragma: export
#include "rowhammer/harness.h"   // IWYU pragma: export
#include "sim/machine.h"         // IWYU pragma: export
#include "sim/profiles.h"        // IWYU pragma: export
#include "sysinfo/system_info.h" // IWYU pragma: export
#include "timing/channel.h"      // IWYU pragma: export
#include "util/log.h"            // IWYU pragma: export

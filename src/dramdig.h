// Umbrella header: the public API surface of the DRAMDig reproduction.
//
//   #include "dramdig.h"
//
// The one-tool path — construct a device-under-test and run a tool on it:
//
//   dramdig::core::environment env(dramdig::dram::machine_by_number(2), 42);
//   auto result = dramdig::api::make_tool("dramdig")->run(env);
//
// The many-run path — every bench and multi-machine example goes through
// the job engine, which executes (machine, tool, options, seed) specs
// across a worker pool with results bit-identical to a sequential loop:
//
//   dramdig::api::mapping_service service({.threads = 8});
//   auto outcomes = service.run(jobs);            // one per submission index
//   outcomes[0].result.to_json(writer);           // unified result schema
//
// (The concrete tool classes — core::dramdig_tool, baselines::drama_tool,
// baselines::xiao_tool — remain directly usable; the api layer wraps them
// without changing a single measurement.)
//
// Layering (each header is independently includable):
//   util     -> gf2 algebra, bit ops, rng, stats, histograms
//   dram     -> address-mapping model, machine presets, JEDEC specs
//   sim      -> memory controller, timing channel physics, rowhammer faults
//   os       -> physical memory, address spaces, pagemap
//   sysinfo  -> dmidecode/decode-dimms reports and parsing
//   timing   -> the SBDR timing primitive
//   core     -> the DRAMDig pipeline (this paper's contribution)
//   baselines-> DRAMA and Xiao et al. comparison tools
//   api      -> the unified mapping_tool interface, tool registry and the
//               concurrent mapping_service job engine
//   rowhammer-> the hypothesis-driven hammer harness
#pragma once

#include "api/mapping_service.h" // IWYU pragma: export
#include "api/tool.h"            // IWYU pragma: export
#include "baselines/drama.h"     // IWYU pragma: export
#include "baselines/xiao.h"      // IWYU pragma: export
#include "core/dramdig.h"        // IWYU pragma: export
#include "core/environment.h"    // IWYU pragma: export
#include "core/measurement_plan.h"  // IWYU pragma: export
#include "dram/mapping.h"        // IWYU pragma: export
#include "dram/presets.h"        // IWYU pragma: export
#include "dram/spec.h"           // IWYU pragma: export
#include "rowhammer/harness.h"   // IWYU pragma: export
#include "sim/machine.h"         // IWYU pragma: export
#include "sim/profiles.h"        // IWYU pragma: export
#include "sysinfo/system_info.h" // IWYU pragma: export
#include "timing/channel.h"      // IWYU pragma: export
#include "util/json.h"           // IWYU pragma: export
#include "util/log.h"            // IWYU pragma: export

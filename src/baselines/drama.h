// DRAMA baseline (Pessl et al., USENIX Security'16), reimplemented from the
// paper so the comparisons in Table I, Fig. 2 and Table III run live.
//
// DRAMA is generic but blind: it samples a random address pool, clusters it
// into same-bank sets with single-sample timing sweeps, then brute-forces
// XOR functions over *all* physical address bits (up to a bounded function
// width), tolerating a fraction of violations per set. It has no concept
// of the machine's bank count or of row/column structure, so:
//   * pool sampling and clustering dominate its runtime (hours on
//     many-bank machines vs DRAMDig's designed pools),
//   * a background-load burst during the single-sample sweep pollutes the
//     clusters of that trial, and the tool only notices when two
//     consecutive trials disagree — the published non-determinism,
//   * on persistently noisy units no trial ever validates and the tool
//     runs until its budget expires (the paper's No.3 / No.7 outcome).
//
// The implementation runs through the same measurement substrate as
// DRAMDig — a timing::channel (with DRAMA's own crude threshold injected)
// feeding the bank classifier's peel mode, cache off — so the clustering
// sweeps are serviced as controller batches while staying bit-identical
// to the original scalar measure_pair loops.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/environment.h"
#include "core/phase.h"
#include "dram/mapping.h"

namespace dramdig::baselines {

struct drama_config {
  std::uint64_t buffer_bytes = std::uint64_t{1} << 30;  ///< 1 GiB mapping
  std::size_t pool_size = 8000;
  unsigned rounds_per_measurement = 4000;  ///< long hammer loops per pair
  unsigned calibration_pairs = 800;
  double threshold_factor = 1.35;   ///< threshold = modal latency x factor
  double violation_tolerance = 0.05;  ///< aggregate minority fraction
  double per_set_violation_cap = 0.25;
  unsigned max_function_bits = 7;
  unsigned max_candidate_bit = 33;
  std::size_t min_set_size = 30;
  unsigned max_trials = 150;         ///< the timeout binds first in practice
  unsigned agreements_required = 2;  ///< consecutive equal outputs
  double timeout_seconds = 7200.0;   ///< the paper killed it at ~2 hours
  double cpu_ns_per_mask = 1500.0;   ///< virtual cost of the brute force
  /// Ablation arm ("what if DRAMA had the algebra"): recover each trial's
  /// candidate masks from the GF(2) null space of the clusters'
  /// pivot-difference matrix instead of enumerating every
  /// <=max_function_bits mask over all physical bits, then re-apply the
  /// published acceptance filter. Identical output on clean trials (the
  /// null space is exactly the masks constant on every set); on polluted
  /// trials the strict algebra can drop a tolerated-noise function the
  /// sweep would keep. Off by default — the legacy sweep is the published
  /// tool and the differential oracle.
  bool use_nullspace = false;
  std::uint64_t tool_seed = 1;
  /// Per-trial progress events: one "trial" event per completed trial with
  /// that trial's clock/measurement delta (the trials are where every
  /// measurement happens, so the deltas sum to the run's totals). The
  /// drama adapter chains the mapping_service observer hook in here, so a
  /// driver can watch a hopeless unit live instead of reading one terminal
  /// event after the 2-hour budget expires.
  core::phase_callback on_phase{};
  /// Cooperative abort: polled before each trial; when it returns true the
  /// run stops at that trial boundary with report.aborted set. The
  /// mapping_service binds its cancellation token here, which is what lets
  /// a driver kill a no-agreement unit early.
  std::function<bool()> should_abort{};
};

struct drama_trial {
  std::vector<std::uint64_t> functions;  ///< minimal-weight basis (display)
  std::vector<std::uint64_t> canonical;  ///< row-echelon form (comparison)
  std::size_t set_count = 0;
  bool valid = false;  ///< produced at least two independent functions
};

struct drama_report {
  bool completed = false;  ///< two consecutive agreeing valid trials
  bool timed_out = false;
  bool aborted = false;    ///< stopped by drama_config::should_abort
  std::optional<dram::address_mapping> mapping;  ///< best-effort hypothesis
  std::vector<std::uint64_t> functions;
  unsigned trials_run = 0;
  double total_seconds = 0.0;
  std::uint64_t total_measurements = 0;
  /// Verdicts answered from a reuse cache. DRAMA runs its sweeps through
  /// the shared classification engine but with the cache off — the
  /// original tool remeasures everything — so this stays 0 and exists to
  /// make the Fig. 2 cost record structurally comparable across tools.
  std::uint64_t measurements_saved = 0;
  std::vector<drama_trial> trials;  ///< per-trial outputs (determinism study)
};

class drama_tool {
 public:
  explicit drama_tool(core::environment& env, drama_config config = {});

  [[nodiscard]] drama_report run();

 private:
  core::environment& env_;
  drama_config config_;

  [[nodiscard]] drama_trial run_trial(const os::mapping_region& buffer,
                                      rng& r);
};

/// The row/column guess DRAMA-based attacks use: rows are the top bits
/// left over after 13 column bits and the discovered functions. Produces a
/// (possibly wrong, possibly non-bijective) hypothesis for hammering.
[[nodiscard]] dram::address_mapping drama_hypothesis(
    const std::vector<std::uint64_t>& functions, unsigned address_bits);

}  // namespace dramdig::baselines

// Xiao et al. baseline (USENIX Security'16, "One Bit Flips, One Cloud
// Flops"), modelled on the behaviour the DRAMDig authors observed when
// running the code shared with them (paper §IV-A): efficient and
// deterministic on the DDR3 configurations the tool was developed for,
// stuck on everything else — e.g. on machine No.6 it resolved
// (16,20), (17,21), (18,22) as 3 of the 6 functions and then hung.
//
// The model: a library of per-microarchitecture templates (Sandy Bridge,
// single-channel Ivy Bridge, Haswell — the authors' machines), verified by
// timing before being accepted; off-template machines fall back to a
// stride scan that can only discover XOR pairs (i, i+k) for small k whose
// bits feed no wider function, which is precisely why the multi-bit
// channel functions of newer parts starve it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/environment.h"
#include "core/phase.h"
#include "dram/mapping.h"

namespace dramdig::baselines {

struct xiao_config {
  unsigned rounds_per_measurement = 2000;
  unsigned samples_per_latency = 3;
  unsigned verification_pairs = 60;     ///< template acceptance checks
  double verification_agreement = 0.9;  ///< fraction that must match
  std::vector<unsigned> scan_strides{2, 3, 4};
  double stall_timeout_seconds = 1800.0;  ///< give up "stuck" after 30 min
  std::uint64_t tool_seed = 1;
  /// Per-stage progress events, DRAMA-style: one event per completed stage
  /// ("calibration", "template", "row-scan", "bit-scan", "stride-scan",
  /// and "stall" when the stall budget is charged) carrying that stage's
  /// clock/measurement delta — the deltas sum to the run's totals. The
  /// xiao adapter chains the mapping_service observer hook in here, so a
  /// driver can watch an off-template unit crawl through its scan instead
  /// of reading one terminal event after the 30-minute stall.
  core::phase_callback on_phase{};
  /// Cooperative abort: polled at stage boundaries and per bit inside the
  /// scan loops; when it returns true the run stops there with
  /// report.aborted set. The mapping_service binds its cancellation token
  /// here, which is what lets a driver kill a stalling unit early.
  std::function<bool()> should_abort{};
};

struct xiao_report {
  bool success = false;
  bool stalled = false;  ///< ran out of search space / time
  bool aborted = false;  ///< stopped by xiao_config::should_abort
  std::optional<dram::address_mapping> mapping;
  std::vector<std::uint64_t> resolved_functions;  ///< partial when stalled
  std::string note;
  double total_seconds = 0.0;
  std::uint64_t total_measurements = 0;
};

class xiao_tool {
 public:
  explicit xiao_tool(core::environment& env, xiao_config config = {});

  [[nodiscard]] xiao_report run();

 private:
  core::environment& env_;
  xiao_config config_;
};

/// True when the machine belongs to the tool's supported family (DDR3
/// Sandy Bridge, single-channel DDR3 Ivy Bridge, DDR3 Haswell).
[[nodiscard]] bool xiao_supports(const dram::machine_spec& spec);

}  // namespace dramdig::baselines

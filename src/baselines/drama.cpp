#include "baselines/drama.h"

#include <algorithm>
#include <bit>
#include <set>

#include "core/classifier.h"
#include "core/measurement_plan.h"
#include "core/probe_util.h"
#include "timing/channel.h"
#include "util/bitops.h"
#include "util/combinatorics.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/histogram.h"
#include "util/log.h"

namespace dramdig::baselines {

namespace {

/// DRAMA's cruder threshold: modal latency of random pairs x a factor.
/// Pair draws are independent of the measurements, so the batch is drawn
/// up front and serviced in one channel pass — bit-identical samples to
/// the original scalar measure_pair loop.
double drama_threshold(timing::channel& channel,
                       const std::vector<std::uint64_t>& pool,
                       unsigned calibration_pairs, double factor, rng& r) {
  std::vector<sim::addr_pair> pairs;
  pairs.reserve(calibration_pairs);
  for (unsigned i = 0; i < calibration_pairs; ++i) {
    const std::uint64_t a = pool[r.below(pool.size())];
    const std::uint64_t b = pool[r.below(pool.size())];
    if (a == b) {
      --i;
      continue;
    }
    pairs.emplace_back(a, b);
  }
  const std::vector<double> samples = channel.measure_batch(pairs);
  histogram h(0.0, 700.0, 140);
  h.add_all(samples);
  return h.bin_center(h.mode_bin()) * factor;
}

/// DRAMA's published mask acceptance: a statistical pre-filter (a random
/// non-function mask violates ~50% of a set; 11+ minority hits in a
/// 32-member sample already puts it beyond any tolerance this search
/// accepts, while a true function under realistic pollution essentially
/// never trips it), then majority parity per set with a per-set violation
/// cap, an aggregate violation tolerance, and the discrimination
/// requirement (both parities must occur across sets). Shared verbatim by
/// the brute-force sweep and the null-space ablation so the two paths
/// differ only in how candidates are generated.
bool mask_accepted(std::uint64_t mask,
                   const std::vector<std::vector<std::uint64_t>>& sets,
                   std::size_t total_addresses, const drama_config& cfg) {
  for (const auto& s : sets) {
    const std::size_t probe = std::min<std::size_t>(32, s.size());
    std::size_t ones = 0;
    for (std::size_t i = 0; i < probe; ++i) ones += parity(s[i], mask);
    if (std::min(ones, probe - ones) >= 11) return false;
  }
  std::size_t total_violations = 0;
  bool saw_zero = false, saw_one = false;
  for (const auto& s : sets) {
    // Majority parity per set, counting the minority as violations.
    std::size_t ones = 0;
    for (std::uint64_t a : s) ones += parity(a, mask);
    const std::size_t minority = std::min(ones, s.size() - ones);
    if (static_cast<double>(minority) >
        cfg.per_set_violation_cap * static_cast<double>(s.size())) {
      return false;  // hopeless in this set
    }
    total_violations += minority;
    (ones * 2 > s.size() ? saw_one : saw_zero) = true;
  }
  if (static_cast<double>(total_violations) >
      cfg.violation_tolerance * static_cast<double>(total_addresses)) {
    return false;
  }
  // A function must discriminate: both parities across sets.
  return saw_zero && saw_one;
}

}  // namespace

drama_tool::drama_tool(core::environment& env, drama_config config)
    : env_(env), config_(config) {
  DRAMDIG_EXPECTS(config_.pool_size >= 64);
  DRAMDIG_EXPECTS(config_.max_function_bits >= 1);
}

drama_trial drama_tool::run_trial(const os::mapping_region& buffer, rng& r) {
  auto& mc = env_.mach().controller();
  drama_trial trial;

  // Random pool — no structure, no knowledge.
  std::vector<std::uint64_t> pool =
      core::sample_addresses(buffer, config_.pool_size, r);
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // One measurement substrate for every tool: DRAMA measures through the
  // timing channel and the classification engine, but keeps its published
  // behavior — single-sample verdicts against its own crude threshold, no
  // verification, no reuse cache (the original remeasures everything).
  timing::channel channel(
      mc,
      {.rounds_per_measurement = config_.rounds_per_measurement,
       .samples_per_latency = 1,
       .calibration_pairs = config_.calibration_pairs},
      rng(config_.tool_seed ^ 0xD4A2Au));
  channel.set_threshold(drama_threshold(channel, pool,
                                        config_.calibration_pairs,
                                        config_.threshold_factor, r));
  core::measurement_plan plan(channel, {.reuse_verdicts = false});
  core::bank_classifier engine(plan);

  // --- Clustering: peel same-bank sets with single-sample sweeps. --------
  core::bank_classifier::peel_config peel{};
  peel.stop_remaining = config_.pool_size / 10;
  peel.max_sweeps = 100;
  peel.min_set_size = config_.min_set_size;
  auto peeled = engine.peel(pool, r, peel);
  std::vector<std::vector<std::uint64_t>>& sets = peeled.sets;
  trial.set_count = sets.size();
  if (sets.size() < 2) return trial;

  // --- Brute force over all physical-address bits. -----------------------
  const unsigned max_bit = std::min<unsigned>(
      config_.max_candidate_bit, log2_exact(env_.spec().memory_bytes) - 1);
  std::vector<unsigned> positions;
  for (unsigned b = 6; b <= max_bit; ++b) positions.push_back(b);

  std::size_t total_addresses = 0;
  for (const auto& s : sets) total_addresses += s.size();

  std::vector<std::uint64_t> candidates;
  std::uint64_t cpu_work = 0;  ///< charged to the virtual clock per unit
  if (config_.use_nullspace) {
    // The algebra ablation: a mask is constant on a clean set iff it
    // annihilates each member's XOR difference to the set's pivot, so the
    // candidate space is the null space of a difference matrix restricted
    // to the candidate bits. Single-sample clustering leaves ~1% polluted
    // members even on clean machines, and one polluted difference ejects a
    // true function from a strict null space — so the differences are
    // split into deterministic index-group assemblies (each set member
    // joins group j mod G), one null space per assembly, and the published
    // acceptance filter arbitrates the union of the spans. A polluted
    // member corrupts only its own assembly; the clean assemblies recover
    // every mask the filter tolerates, while the filter still rejects any
    // spurious span member, so the candidate set matches the brute-force
    // sweep's (brute force additionally burns CPU on the ~2^20 masks that
    // never came close).
    std::uint64_t support = 0;
    for (unsigned b : positions) support |= std::uint64_t{1} << b;
    std::size_t smallest_set = sets.front().size();
    for (const auto& s : sets) smallest_set = std::min(smallest_set, s.size());
    // Enough members per group for each assembly to pin the null space,
    // enough groups to quarantine the polluted minority.
    const std::size_t assemblies =
        std::clamp<std::size_t>(smallest_set / 4, 4, 32);
    std::set<std::uint64_t> tested, accepted;
    for (std::size_t g = 0; g < assemblies; ++g) {
      gf2::matrix diffs;
      for (const auto& s : sets) {
        bool have_pivot = false;
        std::uint64_t pivot = 0;
        for (std::size_t j = g; j < s.size(); j += assemblies) {
          if (!have_pivot) {
            pivot = s[j];
            have_pivot = true;
          } else {
            diffs.push_back((s[j] ^ pivot) & support);
          }
        }
      }
      if (diffs.empty()) continue;
      const gf2::matrix basis = gf2::nullspace(diffs, support);
      cpu_work += diffs.size();  // one row reduction per difference
      // An under-determined assembly would explode the span; skip it (the
      // other assemblies carry the trial).
      if (basis.size() > 16) continue;
      for (std::uint64_t mask : gf2::enumerate_span(basis)) {
        ++cpu_work;
        if (static_cast<unsigned>(std::popcount(mask)) >
            config_.max_function_bits) {
          continue;  // the sweep never considers wider masks
        }
        if (!tested.insert(mask).second) continue;
        if (mask_accepted(mask, sets, total_addresses, config_)) {
          accepted.insert(mask);
        }
      }
    }
    candidates.assign(accepted.begin(), accepted.end());
  } else {
    for_each_bit_combination(
        positions, 1, config_.max_function_bits, [&](std::uint64_t mask) {
          ++cpu_work;
          if (mask_accepted(mask, sets, total_addresses, config_)) {
            candidates.push_back(mask);
          }
          return true;
        });
  }
  mc.clock().advance_ns(static_cast<std::uint64_t>(
      static_cast<double>(cpu_work) * config_.cpu_ns_per_mask));

  // Minimal-weight basis for reporting; echelon form for run-to-run
  // comparison (two trials agree iff they found the same span). DRAMA has
  // no bank-count knowledge to validate against, so "valid" just means the
  // search produced a usable function set.
  trial.functions = gf2::minimal_basis(candidates);
  trial.canonical = gf2::row_echelon(trial.functions);
  trial.valid = trial.functions.size() >= 2;
  return trial;
}

drama_report drama_tool::run() {
  auto& mc = env_.mach().controller();
  drama_report report;
  rng r(env_.seed() ^ (config_.tool_seed * 0xD4A2Au + 0x9e3779b9u));

  const std::uint64_t t0 = mc.clock().now_ns();
  const std::uint64_t m0 = mc.measurement_count();

  const std::uint64_t buffer_bytes =
      std::min<std::uint64_t>(config_.buffer_bytes,
                              env_.spec().memory_bytes * 2 / 5);
  const os::mapping_region& buffer = env_.space().map_buffer(buffer_bytes);

  std::optional<std::vector<std::uint64_t>> prev_valid_functions;
  for (unsigned t = 0; t < config_.max_trials; ++t) {
    if (config_.should_abort && config_.should_abort()) {
      report.aborted = true;
      break;
    }
    if (mc.clock().seconds_since(t0) > config_.timeout_seconds) {
      report.timed_out = true;
      break;
    }
    const std::uint64_t trial_t0 = mc.clock().now_ns();
    const std::uint64_t trial_m0 = mc.measurement_count();
    report.trials.push_back(run_trial(buffer, r));
    ++report.trials_run;
    if (config_.on_phase) {
      config_.on_phase("trial",
                       core::phase_stats{mc.clock().seconds_since(trial_t0),
                                         mc.measurement_count() - trial_m0, 0});
    }
    const drama_trial& cur = report.trials.back();
    log_info("drama: trial " + std::to_string(t) + " sets=" +
             std::to_string(cur.set_count) + " funcs=" +
             std::to_string(cur.functions.size()) +
             (cur.valid ? " (valid)" : " (invalid)"));
    if (cur.valid && prev_valid_functions &&
        cur.canonical == *prev_valid_functions) {
      report.completed = true;
      report.functions = cur.functions;
      break;
    }
    prev_valid_functions =
        cur.valid ? std::optional(cur.canonical) : std::nullopt;
  }
  if (!report.completed) {
    if (mc.clock().seconds_since(t0) > config_.timeout_seconds) {
      report.timed_out = true;
    }
    // Best effort: the most recent valid trial, else the last trial.
    for (auto it = report.trials.rbegin(); it != report.trials.rend(); ++it) {
      if (it->valid) {
        report.functions = it->functions;
        break;
      }
    }
    if (report.functions.empty() && !report.trials.empty()) {
      report.functions = report.trials.back().functions;
    }
  }

  if (!report.functions.empty()) {
    report.mapping = drama_hypothesis(report.functions,
                                      log2_exact(env_.spec().memory_bytes));
  }
  report.total_seconds = mc.clock().seconds_since(t0);
  report.total_measurements = mc.measurement_count() - m0;
  return report;
}

dram::address_mapping drama_hypothesis(
    const std::vector<std::uint64_t>& functions, unsigned address_bits) {
  DRAMDIG_EXPECTS(!functions.empty());
  // DRAMA-based attacks assume 8 KiB rows: 13 column bits at the bottom,
  // rows on top, with as many row bits as the function count leaves over.
  const unsigned rank = static_cast<unsigned>(gf2::rank(functions));
  const unsigned column_bits = 13;
  const unsigned row_bits =
      address_bits > column_bits + rank ? address_bits - column_bits - rank : 1;
  std::vector<unsigned> rows, cols;
  for (unsigned b = address_bits - row_bits; b < address_bits; ++b) {
    rows.push_back(b);
  }
  for (unsigned b = 0; b < column_bits && b < address_bits - row_bits; ++b) {
    cols.push_back(b);
  }
  return dram::address_mapping(functions, rows, cols, address_bits);
}

}  // namespace dramdig::baselines

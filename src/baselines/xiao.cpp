#include "baselines/xiao.h"

#include <algorithm>
#include <set>

#include "core/probe_util.h"
#include "dram/presets.h"
#include "timing/channel.h"
#include "util/bitops.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/log.h"

namespace dramdig::baselines {

namespace {

/// The template library: exact published mappings for the author machines.
/// Templates are keyed on (microarchitecture, channels, ranks, size) and
/// verified against the actual timing channel before acceptance, so a
/// template machine with different DIMMs would be rejected, not
/// mis-reported.
std::optional<dram::address_mapping> lookup_template(
    const dram::machine_spec& spec) {
  if (!xiao_supports(spec)) return std::nullopt;
  for (const auto& m : dram::paper_machines()) {
    if (m.microarchitecture == spec.microarchitecture &&
        m.channels == spec.channels && m.ranks_per_dimm == spec.ranks_per_dimm &&
        m.memory_bytes == spec.memory_bytes &&
        m.generation == spec.generation) {
      return m.mapping;
    }
  }
  return std::nullopt;
}

/// Detect row-only bits with single-bit flips (same technique as
/// DRAMDig's Step 1 — the paper notes DRAMDig uses "the same approach as
/// the work [14]", i.e. this tool). Stops at the current bit when `abort`
/// fires; the caller re-checks and reports the abort.
std::vector<unsigned> scan_row_bits(timing::channel& channel,
                                    const os::mapping_region& buffer,
                                    unsigned address_bits, rng& r,
                                    const std::function<bool()>& abort) {
  std::vector<unsigned> rows;
  for (unsigned b = 6; b < address_bits; ++b) {
    if (abort && abort()) break;
    unsigned high = 0, cast = 0;
    for (unsigned v = 0; v < 5; ++v) {
      const auto pair =
          core::pick_pair_with_delta(buffer, std::uint64_t{1} << b, r);
      if (!pair) continue;
      ++cast;
      if (channel.is_sbdr(pair->first, pair->second)) ++high;
    }
    if (cast > 0 && high * 2 > cast) rows.push_back(b);
  }
  return rows;
}

}  // namespace

bool xiao_supports(const dram::machine_spec& spec) {
  if (spec.generation != dram::ddr_generation::ddr3) return false;
  if (spec.microarchitecture == "Sandy Bridge") return true;
  if (spec.microarchitecture == "Haswell") return true;
  if (spec.microarchitecture == "Ivy Bridge") return spec.channels == 1;
  return false;
}

xiao_tool::xiao_tool(core::environment& env, xiao_config config)
    : env_(env), config_(std::move(config)) {}

xiao_report xiao_tool::run() {
  auto& mc = env_.mach().controller();
  xiao_report report;
  rng r(env_.seed() ^ (config_.tool_seed * 0x1A0Bu + 0x5D2Eu));

  const std::uint64_t t0 = mc.clock().now_ns();
  const std::uint64_t m0 = mc.measurement_count();
  const unsigned address_bits = log2_exact(env_.spec().memory_bytes);

  // Stage metering, DRAMA-style: each emit() reports the clock/measurement
  // delta since the previous one, so the per-stage deltas sum exactly to
  // the run's totals whatever path the run takes.
  std::uint64_t phase_t = t0;
  std::uint64_t phase_m = m0;
  const auto emit = [&](std::string_view stage) {
    const std::uint64_t now = mc.clock().now_ns();
    const std::uint64_t m = mc.measurement_count();
    if (config_.on_phase) {
      config_.on_phase(stage, {.seconds = mc.clock().seconds_since(phase_t),
                               .measurements = m - phase_m,
                               .pairs_used = 0});
    }
    phase_t = now;
    phase_m = m;
  };
  const auto abort_requested = [&] {
    return config_.should_abort && config_.should_abort();
  };
  const auto finish_aborted = [&] {
    report.aborted = true;
    report.success = false;
    report.stalled = false;
    report.note += (report.note.empty() ? "" : "; ");
    report.note += "aborted";
    report.total_seconds = mc.clock().seconds_since(t0);
    report.total_measurements = mc.measurement_count() - m0;
    return report;
  };

  const os::mapping_region& buffer = env_.space().map_buffer(
      std::min<std::uint64_t>(std::uint64_t{1} << 29,
                              env_.spec().memory_bytes / 4));
  timing::channel channel(
      mc,
      {.rounds_per_measurement = config_.rounds_per_measurement,
       .samples_per_latency = config_.samples_per_latency,
       .calibration_pairs = 1000},
      r.fork());
  channel.calibrate(core::sample_addresses(buffer, 1024, r));
  emit("calibration");
  if (abort_requested()) return finish_aborted();

  // --- Template path -------------------------------------------------------
  // Verification is stratified: half the checks are pairs the template
  // *predicts* to conflict (synthesized through its encode), half are
  // random. Random pairs rarely conflict, so they alone cannot tell a
  // near-miss template from the truth; predicted-conflict pairs collapse
  // to ~50% agreement the moment a bank function is wrong.
  if (const auto tmpl = lookup_template(env_.spec())) {
    unsigned agree = 0, cast = 0;
    for (unsigned i = 0; i < config_.verification_pairs; ++i) {
      std::uint64_t a = core::random_buffer_address(buffer, r);
      std::uint64_t b = core::random_buffer_address(buffer, r);
      if (i % 2 == 0) {
        // Same predicted bank, different predicted rows. The forged
        // partner must be backed by the buffer; retry row choices until
        // one lands (the buffer covers a fraction of physical memory).
        const auto da = tmpl->decode(a);
        bool forged_ok = false;
        for (unsigned attempt = 0; attempt < 64 && !forged_ok; ++attempt) {
          const std::uint64_t other_row =
              (da.row ^ (1 + r.below((1ull << tmpl->row_bits().size()) - 1))) &
              ((1ull << tmpl->row_bits().size()) - 1);
          const auto forged =
              tmpl->encode(da.flat_bank, other_row, da.column);
          if (forged && buffer.contains_page(*forged / os::kPageSize)) {
            b = *forged;
            forged_ok = true;
          }
        }
        if (!forged_ok) continue;
      }
      if (a == b) continue;
      ++cast;
      const bool predicted = dram::same_bank_different_row(tmpl->decode(a),
                                                           tmpl->decode(b));
      if (channel.is_sbdr(a, b) == predicted) ++agree;
    }
    emit("template");
    if (abort_requested()) return finish_aborted();
    if (cast >= config_.verification_pairs / 4 &&
        static_cast<double>(agree) >= config_.verification_agreement *
                                          static_cast<double>(cast)) {
      report.success = true;
      report.mapping = *tmpl;
      report.resolved_functions = tmpl->bank_functions();
      report.note = "template verified (" + env_.spec().microarchitecture + ")";
      report.total_seconds = mc.clock().seconds_since(t0);
      report.total_measurements = mc.measurement_count() - m0;
      return report;
    }
    report.note = "template rejected by timing; falling back to scan";
  }

  // --- Generic stride scan --------------------------------------------------
  const std::vector<unsigned> rows =
      scan_row_bits(channel, buffer, address_bits, r, config_.should_abort);
  emit("row-scan");
  if (abort_requested()) return finish_aborted();
  if (rows.empty()) {
    report.note = "no row bits found";
    report.stalled = true;
    report.total_seconds = mc.clock().seconds_since(t0);
    report.total_measurements = mc.measurement_count() - m0;
    return report;
  }
  const std::uint64_t row_ref = std::uint64_t{1} << rows.front();
  std::set<unsigned> row_set(rows.begin(), rows.end());

  // Bank-breaking single bits: flipping them alone (plus a row bit, to rule
  // out column behaviour) stays fast => the bit feeds a bank function.
  std::vector<unsigned> bankish;
  for (unsigned b = 6; b < address_bits; ++b) {
    if (abort_requested()) break;
    if (row_set.contains(b)) continue;
    const auto pair = core::pick_pair_with_delta(
        buffer, row_ref | (std::uint64_t{1} << b), r);
    if (pair && !channel.is_sbdr(pair->first, pair->second)) {
      bankish.push_back(b);
    }
  }
  emit("bit-scan");
  if (abort_requested()) return finish_aborted();

  // Stride pairs: (i, i+k) is a function when flipping both (with a row
  // flip on top) restores the bank.
  std::vector<std::uint64_t> found;
  for (unsigned k : config_.scan_strides) {
    for (unsigned i : bankish) {
      if (abort_requested()) break;
      const unsigned j = i + k;
      if (j >= address_bits) continue;
      const std::uint64_t func =
          (std::uint64_t{1} << i) | (std::uint64_t{1} << j);
      const auto pair = core::pick_pair_with_delta(buffer, row_ref | func, r);
      if (!pair) continue;
      if (channel.is_sbdr(pair->first, pair->second)) {
        if (!gf2::in_span(found, func)) found.push_back(func);
      }
    }
  }
  // DDR3 dual-channel knowledge: a lone low bit may select the channel.
  if (env_.spec().generation == dram::ddr_generation::ddr3) {
    for (unsigned b : {6u, 7u}) {
      if (std::find(bankish.begin(), bankish.end(), b) == bankish.end()) {
        continue;
      }
      bool in_found = false;
      for (std::uint64_t f : found) {
        if (bit(f, b)) in_found = true;
      }
      const std::uint64_t func = std::uint64_t{1} << b;
      if (!in_found && !gf2::in_span(found, func)) found.push_back(func);
    }
  }
  report.resolved_functions = found;
  emit("stride-scan");
  if (abort_requested()) return finish_aborted();

  const unsigned want = log2_exact(env_.spec().total_banks());
  if (found.size() < want) {
    // The real tool kept searching; the paper observed it simply hung.
    // Charge the stall budget and report the partial resolution.
    mc.clock().advance_ns(static_cast<std::uint64_t>(
        config_.stall_timeout_seconds * 1e9));
    emit("stall");
    report.stalled = true;
    report.note += (report.note.empty() ? "" : "; ");
    report.note += "stuck after resolving " + std::to_string(found.size()) +
                   " of " + std::to_string(want) + " bank address functions";
    report.total_seconds = mc.clock().seconds_since(t0);
    report.total_measurements = mc.measurement_count() - m0;
    return report;
  }

  // Assemble a mapping the way the tool's DDR3-era assumptions dictate:
  // the higher bit of every stride pair is a row bit, remaining low bits
  // are columns.
  std::set<unsigned> row_out(rows.begin(), rows.end());
  std::set<unsigned> pure;
  for (std::uint64_t f : found) {
    const auto bits = bits_of_mask(f);
    if (bits.size() == 2) {
      row_out.insert(bits.back());
      pure.insert(bits.front());
    } else {
      pure.insert(bits.front());
    }
  }
  std::vector<unsigned> cols;
  for (unsigned b = 0; b < address_bits; ++b) {
    if (!row_out.contains(b) && !pure.contains(b)) cols.push_back(b);
  }
  dram::address_mapping hypothesis(
      found, std::vector<unsigned>(row_out.begin(), row_out.end()), cols,
      address_bits);
  if (hypothesis.is_bijective()) {
    report.success = true;
    report.mapping = std::move(hypothesis);
    report.note = "stride scan resolved all functions";
  } else {
    // An inconsistent assembly sends the real tool back into its search
    // loop, where it hangs just like the too-few-functions case.
    mc.clock().advance_ns(static_cast<std::uint64_t>(
        config_.stall_timeout_seconds * 1e9));
    emit("stall");
    report.stalled = true;
    report.note += (report.note.empty() ? "" : "; ");
    report.note += "stride scan produced an inconsistent mapping";
  }
  report.total_seconds = mc.clock().seconds_since(t0);
  report.total_measurements = mc.measurement_count() - m0;
  return report;
}

}  // namespace dramdig::baselines

#include "timing/channel.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace dramdig::timing {

channel::channel(sim::memory_controller& controller, channel_config config,
                 rng r)
    : controller_(controller), config_(config), rng_(std::move(r)) {
  DRAMDIG_EXPECTS(config_.rounds_per_measurement > 0);
  DRAMDIG_EXPECTS(config_.samples_per_latency >= 1);
}

std::size_t channel::sample_calibration_chunk(
    const std::vector<std::uint64_t>& pool, std::size_t pairs) {
  // Pair draws are independent of the measurements, so the chunk is drawn
  // up front and serviced as one controller batch — each pair duplicated,
  // min-of-two over the adjacent readings (contamination is one-sided, so
  // the lower reading is always the cleaner one). Bit-identical to the
  // scalar two-measurement loop, at batch host cost.
  std::vector<sim::addr_pair> batch;
  batch.reserve(pairs * 2);
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::uint64_t a = pool[rng_.below(pool.size())];
    const std::uint64_t b = pool[rng_.below(pool.size())];
    if (a == b) {
      --i;
      continue;
    }
    batch.emplace_back(a, b);
    batch.emplace_back(a, b);
  }
  const std::vector<double> latencies = measure_batch(batch);
  for (std::size_t i = 0; i < pairs; ++i) {
    calibration_samples_.push_back(
        std::min(latencies[2 * i], latencies[2 * i + 1]));
  }
  calibration_pairs_used_ += pairs;
  return pairs;
}

double channel::calibrate(const std::vector<std::uint64_t>& pool) {
  DRAMDIG_EXPECTS(pool.size() >= 2);
  calibration_pairs_used_ = 0;
  // Up to three calibration rounds: a background-load burst can smear the
  // fast mode across the whole histogram and put the valley in a useless
  // place, which a sanity check on the slow-fraction detects (random pairs
  // conflict with probability ~1/#banks, so anywhere outside [0.5%, 35%]
  // means the threshold is lying).
  for (unsigned round = 0; round < 3; ++round) {
    calibration_samples_.clear();
    calibration_samples_.reserve(config_.calibration_pairs);
    if (!config_.adaptive_calibration) {
      sample_calibration_chunk(pool, config_.calibration_pairs);
    } else {
      // Adaptive schedule: re-estimate the valley after every chunk and
      // stop once the last few estimates agree within the stability band.
      // The budget (calibration_pairs) still bounds the worst case. A
      // sibling-threshold prior (fleet warm start) authorizes a lighter
      // schedule: smaller chunks, earlier first estimate, and a stop as
      // soon as the local estimates agree with each other AND the prior —
      // the threshold is still this machine's own valley, the prior only
      // decides when sampling more pairs stops being informative. A wrong
      // prior never matches and falls through to the normal schedule.
      const bool prior = config_.calibration_prior_ns > 0;
      const std::size_t min_first =
          prior ? std::min<std::size_t>(config_.calibration_prior_min_pairs,
                                        config_.calibration_min_pairs)
                : config_.calibration_min_pairs;
      const std::size_t chunk = std::max<std::size_t>(
          1, prior ? std::min(config_.calibration_chunk,
                              std::max(1u, config_.calibration_prior_min_pairs /
                                               2))
                   : config_.calibration_chunk);
      std::vector<double> estimates;
      while (calibration_samples_.size() < config_.calibration_pairs) {
        const std::size_t want = std::min<std::size_t>(
            chunk, config_.calibration_pairs - calibration_samples_.size());
        sample_calibration_chunk(pool, want);
        if (calibration_samples_.size() < min_first) continue;
        estimates.push_back(valley_threshold(calibration_samples_));
        if (prior) {
          const unsigned pneed = std::max(1u, config_.calibration_prior_checks);
          if (estimates.size() >= pneed) {
            double lo = estimates.back(), hi = estimates.back();
            for (std::size_t k = estimates.size() - pneed;
                 k < estimates.size(); ++k) {
              lo = std::min(lo, estimates[k]);
              hi = std::max(hi, estimates[k]);
            }
            const double band = config_.calibration_prior_band *
                                std::max(config_.calibration_prior_ns, 1e-9);
            if (hi - lo <= band &&
                std::abs(estimates.back() - config_.calibration_prior_ns) <=
                    band) {
              break;  // local estimates confirm the sibling threshold
            }
          }
        }
        if (calibration_samples_.size() < config_.calibration_min_pairs) {
          continue;
        }
        const unsigned need = std::max(2u, config_.calibration_stable_checks);
        if (estimates.size() < need) continue;
        double lo = estimates.back(), hi = estimates.back();
        for (std::size_t k = estimates.size() - need; k < estimates.size();
             ++k) {
          lo = std::min(lo, estimates[k]);
          hi = std::max(hi, estimates[k]);
        }
        if (hi - lo <= config_.calibration_stability * std::max(hi, 1e-9)) {
          break;  // the valley stopped moving: further pairs buy nothing
        }
      }
    }
    threshold_ns_ = valley_threshold(calibration_samples_);
    std::size_t above = 0;
    for (double s : calibration_samples_) above += s > threshold_ns_;
    const double frac =
        static_cast<double>(above) /
        static_cast<double>(calibration_samples_.size());
    if (frac > 0.005 && frac < 0.35) break;
  }
  return threshold_ns_;
}

void channel::set_threshold(double ns) {
  DRAMDIG_EXPECTS(ns > 0);
  threshold_ns_ = ns;
}

double channel::latency(std::uint64_t p1, std::uint64_t p2) {
  std::vector<double> samples;
  samples.reserve(config_.samples_per_latency);
  for (unsigned i = 0; i < config_.samples_per_latency; ++i) {
    samples.push_back(
        controller_.measure_pair(p1, p2, config_.rounds_per_measurement)
            .mean_access_ns);
  }
  return median(std::move(samples));
}

bool channel::is_sbdr(std::uint64_t p1, std::uint64_t p2) {
  DRAMDIG_EXPECTS(calibrated());
  return latency(p1, p2) > threshold_ns_;
}

bool channel::is_sbdr_fast(std::uint64_t p1, std::uint64_t p2) {
  DRAMDIG_EXPECTS(calibrated());
  return controller_.measure_pair(p1, p2, config_.rounds_per_measurement)
             .mean_access_ns > threshold_ns_;
}

bool channel::is_sbdr_strict(std::uint64_t p1, std::uint64_t p2) {
  const sim::addr_pair pair{p1, p2};
  return is_sbdr_strict_batch({&pair, 1}).front() != 0;
}

void channel::measure_batch(std::span<const sim::addr_pair> pairs,
                            std::vector<double>& out) {
  controller_.measure_pairs(pairs, config_.rounds_per_measurement,
                            measurement_scratch_);
  out.resize(measurement_scratch_.size());
  for (std::size_t i = 0; i < measurement_scratch_.size(); ++i) {
    out[i] = measurement_scratch_[i].mean_access_ns;
  }
}

std::vector<double> channel::measure_batch(
    std::span<const sim::addr_pair> pairs) {
  std::vector<double> out;
  measure_batch(pairs, out);
  return out;
}

void channel::is_sbdr_fast_batch(std::uint64_t pivot,
                                 std::span<const std::uint64_t> partners,
                                 std::vector<char>& out) {
  DRAMDIG_EXPECTS(calibrated());
  pair_scratch_.clear();
  pair_scratch_.reserve(partners.size());
  for (std::uint64_t p : partners) pair_scratch_.emplace_back(pivot, p);
  measure_batch(pair_scratch_, latency_scratch_);
  out.resize(latency_scratch_.size());
  for (std::size_t i = 0; i < latency_scratch_.size(); ++i) {
    out[i] = latency_scratch_[i] > threshold_ns_ ? 1 : 0;
  }
}

std::vector<char> channel::is_sbdr_fast_batch(
    std::uint64_t pivot, std::span<const std::uint64_t> partners) {
  std::vector<char> out;
  is_sbdr_fast_batch(pivot, partners, out);
  return out;
}

void channel::is_sbdr_strict_batch(std::span<const sim::addr_pair> pairs,
                                   std::vector<char>& out) {
  DRAMDIG_EXPECTS(calibrated());
  const unsigned per_pair = strict_samples();
  pair_scratch_.clear();
  pair_scratch_.reserve(pairs.size() * per_pair);
  for (const sim::addr_pair& p : pairs) {
    for (unsigned i = 0; i < per_pair; ++i) pair_scratch_.push_back(p);
  }
  measure_batch(pair_scratch_, latency_scratch_);
  out.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    double lowest = 1e300;
    for (unsigned k = 0; k < per_pair; ++k) {
      lowest = std::min(lowest, latency_scratch_[i * per_pair + k]);
    }
    out[i] = lowest > threshold_ns_ ? 1 : 0;
  }
}

std::vector<char> channel::is_sbdr_strict_batch(
    std::span<const sim::addr_pair> pairs) {
  std::vector<char> out;
  is_sbdr_strict_batch(pairs, out);
  return out;
}

}  // namespace dramdig::timing

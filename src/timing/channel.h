// The timing primitive (paper Section III-B).
//
// Row-buffer conflicts make alternating access to two rows of the same bank
// measurably slower than any other address relationship. This wrapper
// turns the raw simulated latencies into the boolean the algorithms
// consume — "are these two physical addresses same-bank-different-row?" —
// via (1) calibration: sample random pairs, find the valley between the
// fast and slow modes; (2) measurement: median-of-k pair latencies against
// the calibrated threshold.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/memory_controller.h"
#include "util/rng.h"

namespace dramdig::timing {

struct channel_config {
  /// Accesses per address per measurement (the paper's tools hammer a pair
  /// thousands of times; 500 keeps the virtual-time budget realistic).
  unsigned rounds_per_measurement = 500;
  /// Independent measurements medianed per latency() call.
  unsigned samples_per_latency = 3;
  /// Random pairs sampled during threshold calibration. With the adaptive
  /// calibrator this is the budget ceiling, not the schedule.
  unsigned calibration_pairs = 1200;
  /// Adaptive calibration: sample in chunks and stop as soon as the
  /// valley estimate is stable over a sliding window of re-estimates —
  /// the small machines spend about half their measurement budget on the
  /// fixed schedule, almost all of it after the threshold has converged.
  /// false restores the fixed calibration_pairs schedule (the
  /// differential baseline, same shape as the other oracle flags).
  bool adaptive_calibration = true;
  /// Minimum pairs before the first stability check: the valley estimator
  /// needs both latency modes populated before its output means anything.
  unsigned calibration_min_pairs = 300;
  /// Pairs sampled per adaptive chunk (one re-estimate per chunk).
  unsigned calibration_chunk = 150;
  /// Stop once the last calibration_stable_checks consecutive estimates
  /// all sit within this relative band of each other.
  double calibration_stability = 0.02;
  unsigned calibration_stable_checks = 3;
  /// Fleet warm start: a threshold recovered on a geometry sibling
  /// (mapping-store evidence). 0 disables. The threshold itself is ALWAYS
  /// computed from this machine's own samples — the prior only authorizes
  /// an earlier stop: once calibration_prior_min_pairs samples are in and
  /// calibration_prior_checks consecutive estimates agree both with each
  /// other and with the prior (within calibration_prior_band), further
  /// pairs buy nothing. A wrong prior never matches the local estimates,
  /// so it silently falls through to the normal adaptive schedule.
  double calibration_prior_ns = 0.0;
  double calibration_prior_band = 0.1;   ///< relative agreement band
  unsigned calibration_prior_min_pairs = 120;
  unsigned calibration_prior_checks = 2;
};

class channel {
 public:
  channel(sim::memory_controller& controller, channel_config config, rng r);

  /// Calibrate the high/low decision threshold from random pairs drawn
  /// from `pool` (physical addresses). Returns the threshold in ns.
  double calibrate(const std::vector<std::uint64_t>& pool);

  /// Median-filtered pair latency in ns.
  [[nodiscard]] double latency(std::uint64_t p1, std::uint64_t p2);

  /// The paper's `latency(p, p') == high` predicate.
  [[nodiscard]] bool is_sbdr(std::uint64_t p1, std::uint64_t p2);

  /// Cheap single-sample variant used inside the O(pool * banks) partition
  /// loop, where the pile-size tolerance absorbs rare misreads.
  [[nodiscard]] bool is_sbdr_fast(std::uint64_t p1, std::uint64_t p2);

  /// Contamination-proof variant: minimum of `samples_per_latency + 2`
  /// measurements. Timing noise in this channel is one-sided (events only
  /// inflate latency), so the minimum is the robust estimator; a pair is
  /// SBDR only if even its fastest observation conflicts. Used where a
  /// single false positive would corrupt the output (fine-grained
  /// shared-bit acceptance).
  [[nodiscard]] bool is_sbdr_strict(std::uint64_t p1, std::uint64_t p2);

  /// Single-sample mean latencies for a whole batch of pairs, serviced by
  /// the controller in one pass. Element i equals what a scalar
  /// measure_pair on pairs[i] would have returned at that point in the
  /// measurement sequence. The out-param form reuses the caller's buffer
  /// (and the channel's internal scratch) so the partition/probe hot loops
  /// allocate nothing per call; the returning form is a convenience
  /// wrapper.
  void measure_batch(std::span<const sim::addr_pair> pairs,
                     std::vector<double>& out);
  [[nodiscard]] std::vector<double> measure_batch(
      std::span<const sim::addr_pair> pairs);

  /// Batched fast predicate: one single-sample verdict per partner,
  /// measured against the shared pivot. Identical results (and identical
  /// simulated-noise consumption) to calling is_sbdr_fast(pivot, partner)
  /// in partner order — this is the partition fast-scan workhorse.
  void is_sbdr_fast_batch(std::uint64_t pivot,
                          std::span<const std::uint64_t> partners,
                          std::vector<char>& out);
  [[nodiscard]] std::vector<char> is_sbdr_fast_batch(
      std::uint64_t pivot, std::span<const std::uint64_t> partners);

  /// Batched strict predicate: each pair gets `samples_per_latency + 2`
  /// measurements in one controller pass; the min-filter verdict per pair
  /// matches a scalar is_sbdr_strict call sequence.
  void is_sbdr_strict_batch(std::span<const sim::addr_pair> pairs,
                            std::vector<char>& out);
  [[nodiscard]] std::vector<char> is_sbdr_strict_batch(
      std::span<const sim::addr_pair> pairs);

  [[nodiscard]] double threshold_ns() const noexcept { return threshold_ns_; }
  [[nodiscard]] bool calibrated() const noexcept { return threshold_ns_ > 0; }
  /// Inject an externally derived threshold instead of calibrate() — the
  /// baselines compute their own cruder thresholds but still measure
  /// through this channel, so every tool shares one measurement substrate.
  void set_threshold(double ns);
  /// Pair samples the last calibrate() actually measured, summed across
  /// its sanity-check rounds (the adaptive calibrator stops early; the
  /// fixed schedule reports calibration_pairs per round).
  [[nodiscard]] std::uint64_t calibration_pairs_used() const noexcept {
    return calibration_pairs_used_;
  }
  /// Measurements the strict (min-filtered) predicate takes per pair —
  /// exposed so schedulers layered above can account and partially reuse.
  [[nodiscard]] unsigned strict_samples() const noexcept {
    return config_.samples_per_latency + 2;
  }
  [[nodiscard]] sim::memory_controller& controller() noexcept {
    return controller_;
  }
  [[nodiscard]] const channel_config& config() const noexcept {
    return config_;
  }

  /// Raw calibration samples from the last calibrate() call (for the
  /// histogram example and tests).
  [[nodiscard]] const std::vector<double>& calibration_samples()
      const noexcept {
    return calibration_samples_;
  }

 private:
  /// One chunk of min-of-two calibration samples appended to
  /// calibration_samples_; returns the number of pairs measured.
  std::size_t sample_calibration_chunk(const std::vector<std::uint64_t>& pool,
                                       std::size_t pairs);

  sim::memory_controller& controller_;
  channel_config config_;
  rng rng_;
  double threshold_ns_ = 0.0;
  std::uint64_t calibration_pairs_used_ = 0;
  std::vector<double> calibration_samples_;
  // Batch scratch, reused across calls so the hot loops allocate nothing
  // once warm. pair_scratch_ holds the expanded pair list the fast/strict
  // wrappers build; the others hold intermediate measurement results.
  std::vector<sim::pair_measurement> measurement_scratch_;
  std::vector<sim::addr_pair> pair_scratch_;
  std::vector<double> latency_scratch_;
};

}  // namespace dramdig::timing

#include "os/physical_memory.h"

#include <algorithm>
#include <cmath>
#include <new>

#include "util/expect.h"

namespace dramdig::os {

physical_memory::physical_memory(physical_memory_config config, rng r)
    : config_(config), rng_(std::move(r)) {
  DRAMDIG_EXPECTS(config_.total_bytes >= 64 * kPageSize);
  DRAMDIG_EXPECTS(config_.total_bytes % kPageSize == 0);
  DRAMDIG_EXPECTS(config_.reserved_fraction >= 0 &&
                  config_.reserved_fraction < 0.5);
  DRAMDIG_EXPECTS(config_.fragmentation >= 0 && config_.fragmentation <= 1);

  const std::uint64_t total_pages = config_.total_bytes / kPageSize;

  // Carve reserved holes: the kernel text around the bottom plus scattered
  // firmware/driver reservations, each a small power-of-two block.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> holes;  // [pfn, count)
  const std::uint64_t kernel_pages =
      std::max<std::uint64_t>(16, total_pages / 256);
  holes.emplace_back(0, kernel_pages);
  std::uint64_t reserved_budget = static_cast<std::uint64_t>(
      static_cast<double>(total_pages) * config_.reserved_fraction);
  reserved_budget = reserved_budget > kernel_pages
                        ? reserved_budget - kernel_pages
                        : 0;
  while (reserved_budget > 0) {
    // Reservations come in 256 KiB..4 MiB blocks; keeping them coarse
    // leaves the multi-MiB contiguous free runs a freshly booted kernel
    // really has (Algorithm 1 needs runs of up to 2^(b_max+1) bytes).
    const std::uint64_t chunk = std::min<std::uint64_t>(
        reserved_budget, std::uint64_t{64} << rng_.below(5));
    const std::uint64_t at = rng_.below(total_pages - chunk);
    holes.emplace_back(at, chunk);
    reserved_budget -= chunk;
  }
  // Fragmentation pins used pages on a jittered grid whose spacing shrinks
  // exponentially with the level — at 0.1 free runs span tens of MiB, near
  // 1.0 nothing larger than a few hundred KiB survives. Uniform random
  // holes would NOT model this: even thousands of them leave multi-MiB
  // gaps with high probability.
  if (config_.fragmentation > 0.0) {
    const double exponent = 16.0 * (1.0 - config_.fragmentation);
    const std::uint64_t spacing = std::max<std::uint64_t>(
        32, static_cast<std::uint64_t>(std::pow(2.0, exponent)));
    for (std::uint64_t at = spacing / 2; at + 16 < total_pages;
         at += spacing) {
      const std::uint64_t jitter = rng_.below(std::max<std::uint64_t>(
          1, spacing / 2));
      const std::uint64_t pos =
          std::min(at + jitter, total_pages - 16);
      holes.emplace_back(pos, 4 + rng_.below(12));
    }
  }
  std::sort(holes.begin(), holes.end());

  // Free list = complement of the holes.
  std::uint64_t cursor = 0;
  for (const auto& [at, count] : holes) {
    if (at > cursor) free_list_.push_back({cursor, at - cursor});
    cursor = std::max(cursor, at + count);
  }
  if (cursor < total_pages) free_list_.push_back({cursor, total_pages - cursor});
}

std::uint64_t physical_memory::free_bytes() const noexcept {
  std::uint64_t pages = 0;
  for (const extent& e : free_list_) pages += e.page_count;
  return pages * kPageSize;
}

std::vector<extent> physical_memory::allocate(std::uint64_t bytes) {
  DRAMDIG_EXPECTS(bytes > 0);
  std::uint64_t pages_needed = (bytes + kPageSize - 1) / kPageSize;
  std::vector<extent> out;

  // Buddy-like behaviour: one allocation is served in grabs that
  // *continue the same free extent* most of the time, so a big request
  // yields long physically contiguous runs — the property Algorithm 1
  // depends on. Fragmentation both raises the chance of jumping to a
  // different extent between grabs and shrinks the grab itself (a
  // fragmented buddy system only has small free blocks), so a fragmented
  // system yields short runs scattered across the space.
  const std::uint64_t grab_pages = std::max<std::uint64_t>(
      8, static_cast<std::uint64_t>(
             static_cast<double>(kHugePageSize / kPageSize) *
             (1.0 - config_.fragmentation)));
  std::size_t current = free_list_.size();  // invalid -> pick fresh
  while (pages_needed > 0) {
    if (free_list_.empty()) {
      free(out);
      throw std::bad_alloc();
    }
    if (current >= free_list_.size() || rng_.chance(config_.fragmentation)) {
      current = rng_.below(free_list_.size());
    }
    extent& src = free_list_[current];
    const std::uint64_t take =
        std::min({pages_needed, src.page_count, grab_pages});
    extent grabbed{src.first_pfn, take};
    src.first_pfn += take;
    src.page_count -= take;
    if (src.page_count == 0) {
      free_list_.erase(free_list_.begin() +
                       static_cast<std::ptrdiff_t>(current));
      current = free_list_.size();  // force re-pick
    }
    // Merge into the previous grab when physically adjacent, so callers
    // see true run lengths.
    if (!out.empty() &&
        out.back().first_pfn + out.back().page_count == grabbed.first_pfn) {
      out.back().page_count += grabbed.page_count;
    } else {
      out.push_back(grabbed);
    }
    pages_needed -= take;
  }
  return out;
}

void physical_memory::insert_free(extent e) {
  if (e.page_count == 0) return;
  auto it = std::lower_bound(free_list_.begin(), free_list_.end(), e,
                             [](const extent& a, const extent& b) {
                               return a.first_pfn < b.first_pfn;
                             });
  it = free_list_.insert(it, e);
  // Coalesce with neighbours.
  if (it != free_list_.begin()) {
    auto prev = it - 1;
    if (prev->first_pfn + prev->page_count == it->first_pfn) {
      prev->page_count += it->page_count;
      it = free_list_.erase(it) - 1;
    }
  }
  if (it + 1 != free_list_.end()) {
    auto next = it + 1;
    if (it->first_pfn + it->page_count == next->first_pfn) {
      it->page_count += next->page_count;
      free_list_.erase(next);
    }
  }
}

std::vector<extent> physical_memory::allocate_huge_pages(unsigned count) {
  std::vector<extent> out;
  const std::uint64_t huge_pages = kHugePageSize / kPageSize;
  for (unsigned i = 0; i < count; ++i) {
    // Find a free extent containing an aligned 2 MiB run.
    bool found = false;
    // Randomize the scan start so huge pages also scatter.
    const std::size_t n = free_list_.size();
    const std::size_t start = n == 0 ? 0 : rng_.below(n);
    for (std::size_t k = 0; k < n && !found; ++k) {
      const std::size_t idx = (start + k) % n;
      extent e = free_list_[idx];
      const std::uint64_t aligned_first =
          (e.first_pfn + huge_pages - 1) / huge_pages * huge_pages;
      if (aligned_first + huge_pages > e.first_pfn + e.page_count) continue;
      // Split: [e.first, aligned_first) stays free, the run is taken,
      // the tail is re-inserted.
      free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(idx));
      insert_free({e.first_pfn, aligned_first - e.first_pfn});
      insert_free({aligned_first + huge_pages,
                   e.first_pfn + e.page_count - aligned_first - huge_pages});
      out.push_back({aligned_first, huge_pages});
      found = true;
    }
    if (!found) break;  // partial success, like a real THP allocation
  }
  return out;
}

void physical_memory::free(const std::vector<extent>& extents) {
  for (const extent& e : extents) insert_free(e);
}

}  // namespace dramdig::os

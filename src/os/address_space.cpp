#include "os/address_space.h"

#include <algorithm>

#include "util/expect.h"

namespace dramdig::os {

mapping_region::mapping_region(std::uint64_t va_base,
                               std::vector<extent> backing)
    : va_base_(va_base), backing_(std::move(backing)) {
  DRAMDIG_EXPECTS(va_base_ % kPageSize == 0);
  for (const extent& e : backing_) {
    for (std::uint64_t i = 0; i < e.page_count; ++i) {
      page_to_pfn_.push_back(e.first_pfn + i);
    }
  }
  sorted_pfns_ = page_to_pfn_;
  std::sort(sorted_pfns_.begin(), sorted_pfns_.end());
}

bool mapping_region::contains_page(std::uint64_t pfn) const {
  return std::binary_search(sorted_pfns_.begin(), sorted_pfns_.end(), pfn);
}

std::uint64_t mapping_region::translate(std::uint64_t va) const {
  DRAMDIG_EXPECTS(va >= va_base_);
  const std::uint64_t offset = va - va_base_;
  const std::uint64_t page = offset / kPageSize;
  DRAMDIG_EXPECTS(page < page_to_pfn_.size());
  return page_to_pfn_[page] * kPageSize + offset % kPageSize;
}

std::optional<std::uint64_t> mapping_region::reverse(std::uint64_t pa) const {
  const std::uint64_t pfn = pa / kPageSize;
  if (!contains_page(pfn)) return std::nullopt;
  // Linear probe over the page table; fine for tool-scale usage.
  for (std::uint64_t page = 0; page < page_to_pfn_.size(); ++page) {
    if (page_to_pfn_[page] == pfn) {
      return va_base_ + page * kPageSize + pa % kPageSize;
    }
  }
  return std::nullopt;
}

bool mapping_region::covers_range(std::uint64_t pa_begin,
                                  std::uint64_t pa_end) const {
  DRAMDIG_EXPECTS(pa_begin <= pa_end);
  // Contiguous range check via the sorted frame list: find pa_begin's
  // frame, then the whole run must be consecutive entries.
  const std::uint64_t first = pa_begin / kPageSize;
  const std::uint64_t last = (pa_end + kPageSize - 1) / kPageSize;  // excl.
  const auto it =
      std::lower_bound(sorted_pfns_.begin(), sorted_pfns_.end(), first);
  if (it == sorted_pfns_.end() || *it != first) return false;
  const std::uint64_t need = last - first;
  if (static_cast<std::uint64_t>(sorted_pfns_.end() - it) < need) return false;
  // Frames are unique, so covering [first, last) means the next `need`
  // entries are exactly first, first+1, ...
  return *(it + static_cast<std::ptrdiff_t>(need - 1)) == first + need - 1;
}

address_space::address_space(physical_memory& phys) : phys_(phys) {}

mapping_region& address_space::map_buffer(std::uint64_t bytes) {
  auto backing = phys_.allocate(bytes);
  regions_.emplace_back(next_va_, std::move(backing));
  next_va_ += ((bytes + kPageSize - 1) / kPageSize + 16) * kPageSize;
  return regions_.back();
}

mapping_region& address_space::map_buffer_hugepage(std::uint64_t bytes) {
  const unsigned huge_count =
      static_cast<unsigned>(bytes / kHugePageSize);
  auto backing = phys_.allocate_huge_pages(huge_count);
  std::uint64_t got = 0;
  for (const extent& e : backing) got += e.byte_count();
  if (got < bytes) {
    auto tail = phys_.allocate(bytes - got);
    backing.insert(backing.end(), tail.begin(), tail.end());
  }
  regions_.emplace_back(next_va_, std::move(backing));
  next_va_ += ((bytes + kPageSize - 1) / kPageSize + 16) * kPageSize;
  return regions_.back();
}

}  // namespace dramdig::os

#include "os/address_space.h"

#include <algorithm>

#include "util/expect.h"

namespace dramdig::os {

mapping_region::mapping_region(std::uint64_t va_base,
                               std::vector<extent> backing)
    : va_base_(va_base), backing_(std::move(backing)) {
  DRAMDIG_EXPECTS(va_base_ % kPageSize == 0);
  va_prefix_.reserve(backing_.size() + 1);
  by_pfn_.reserve(backing_.size());
  va_prefix_.push_back(0);
  for (const extent& e : backing_) {
    by_pfn_.push_back({e.first_pfn, e.page_count, total_pages_, 0});
    total_pages_ += e.page_count;
    va_prefix_.push_back(total_pages_);
  }
  std::sort(by_pfn_.begin(), by_pfn_.end(),
            [](const pfn_run& a, const pfn_run& b) {
              return a.first_pfn < b.first_pfn;
            });
  std::uint64_t prefix = 0;
  for (pfn_run& run : by_pfn_) {
    run.pfn_prefix = prefix;
    prefix += run.page_count;
  }
}

const pfn_run* mapping_region::run_of_pfn(std::uint64_t pfn) const {
  // Last run starting at or before pfn; runs are disjoint, so it is the
  // only candidate.
  const auto it = std::upper_bound(
      by_pfn_.begin(), by_pfn_.end(), pfn,
      [](std::uint64_t v, const pfn_run& run) { return v < run.first_pfn; });
  if (it == by_pfn_.begin()) return nullptr;
  const pfn_run& run = *(it - 1);
  return pfn < run.end_pfn() ? &run : nullptr;
}

bool mapping_region::contains_page(std::uint64_t pfn) const {
  return run_of_pfn(pfn) != nullptr;
}

std::uint64_t mapping_region::pfn_at(std::uint64_t i) const {
  DRAMDIG_EXPECTS(i < total_pages_);
  const auto it = std::upper_bound(
      by_pfn_.begin(), by_pfn_.end(), i,
      [](std::uint64_t v, const pfn_run& run) { return v < run.pfn_prefix; });
  const pfn_run& run = *(it - 1);
  return run.first_pfn + (i - run.pfn_prefix);
}

std::uint64_t mapping_region::translate(std::uint64_t va) const {
  DRAMDIG_EXPECTS(va >= va_base_);
  const std::uint64_t offset = va - va_base_;
  const std::uint64_t page = offset / kPageSize;
  DRAMDIG_EXPECTS(page < total_pages_);
  const auto it =
      std::upper_bound(va_prefix_.begin(), va_prefix_.end(), page);
  const std::size_t idx = static_cast<std::size_t>(it - va_prefix_.begin()) - 1;
  const extent& e = backing_[idx];
  return (e.first_pfn + (page - va_prefix_[idx])) * kPageSize +
         offset % kPageSize;
}

std::optional<std::uint64_t> mapping_region::reverse(std::uint64_t pa) const {
  const std::uint64_t pfn = pa / kPageSize;
  const pfn_run* run = run_of_pfn(pfn);
  if (run == nullptr) return std::nullopt;
  const std::uint64_t page = run->first_page + (pfn - run->first_pfn);
  return va_base_ + page * kPageSize + pa % kPageSize;
}

bool mapping_region::covers_range(std::uint64_t pa_begin,
                                  std::uint64_t pa_end) const {
  DRAMDIG_EXPECTS(pa_begin <= pa_end);
  const std::uint64_t first = pa_begin / kPageSize;
  const std::uint64_t last = (pa_end + kPageSize - 1) / kPageSize;  // excl.
  if (first >= last) return true;  // empty page range
  // Walk runs ascending from the one containing `first`: covering
  // [first, last) means each run ends exactly where a physically adjacent
  // run begins (runs are sorted by frame and disjoint).
  const pfn_run* run = run_of_pfn(first);
  if (run == nullptr) return false;
  std::uint64_t at = run->end_pfn();
  while (at < last) {
    const std::size_t next =
        static_cast<std::size_t>(run - by_pfn_.data()) + 1;
    if (next >= by_pfn_.size() || by_pfn_[next].first_pfn != at) return false;
    run = &by_pfn_[next];
    at = run->end_pfn();
  }
  return true;
}

address_space::address_space(physical_memory& phys) : phys_(phys) {}

mapping_region& address_space::map_buffer(std::uint64_t bytes) {
  auto backing = phys_.allocate(bytes);
  regions_.emplace_back(next_va_, std::move(backing));
  next_va_ += ((bytes + kPageSize - 1) / kPageSize + 16) * kPageSize;
  return regions_.back();
}

mapping_region& address_space::map_buffer_hugepage(std::uint64_t bytes) {
  const unsigned huge_count =
      static_cast<unsigned>(bytes / kHugePageSize);
  auto backing = phys_.allocate_huge_pages(huge_count);
  std::uint64_t got = 0;
  for (const extent& e : backing) got += e.byte_count();
  if (got < bytes) {
    auto tail = phys_.allocate(bytes - got);
    backing.insert(backing.end(), tail.begin(), tail.end());
  }
  regions_.emplace_back(next_va_, std::move(backing));
  next_va_ += ((bytes + kPageSize - 1) / kPageSize + 16) * kPageSize;
  return regions_.back();
}

}  // namespace dramdig::os

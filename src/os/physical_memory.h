// Simulated physical memory management.
//
// The reverse-engineering tools live in userspace: they mmap big buffers
// and learn the backing physical frames from /proc/self/pagemap (or rely on
// transparent huge pages). What the OS hands out — how contiguous it is,
// which frames are reserved — directly shapes Algorithm 1's search for a
// physically contiguous range covering all bank bits. This allocator
// models a buddy-style kernel: memory is carved into power-of-two free
// extents, a few ranges are reserved (firmware, kernel), and allocation
// requests are served from extents under a configurable fragmentation
// level.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dramdig::os {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kHugePageSize = 2 * 1024 * 1024;

/// A run of physically contiguous frames [first_pfn, first_pfn + count).
struct extent {
  std::uint64_t first_pfn = 0;
  std::uint64_t page_count = 0;

  [[nodiscard]] std::uint64_t first_byte() const { return first_pfn * kPageSize; }
  [[nodiscard]] std::uint64_t byte_count() const {
    return page_count * kPageSize;
  }
};

struct physical_memory_config {
  std::uint64_t total_bytes = 0;
  /// Fraction of frames the "kernel" holds back, scattered (default ~3%).
  double reserved_fraction = 0.03;
  /// 0 = pristine buddy (multi-MiB runs available); 1 = badly fragmented
  /// (mostly isolated 4 KiB frames). Controls extent sizes handed out.
  double fragmentation = 0.1;
};

class physical_memory {
 public:
  physical_memory(physical_memory_config config, rng r);

  /// Allocate `bytes` worth of frames the way a buddy allocator would:
  /// a list of contiguous extents, largest-first, scattered across the
  /// address space. Throws std::bad_alloc when memory is exhausted.
  [[nodiscard]] std::vector<extent> allocate(std::uint64_t bytes);

  /// Allocate one naturally aligned contiguous run (huge-page style).
  /// Returns an extent of exactly `bytes` aligned to `bytes` granularity,
  /// or nullopt when no such run is free.
  [[nodiscard]] std::vector<extent> allocate_huge_pages(unsigned count);

  void free(const std::vector<extent>& extents);

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return config_.total_bytes;
  }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept;

 private:
  physical_memory_config config_;
  rng rng_;
  /// Free extents, kept sorted by first_pfn and coalesced.
  std::vector<extent> free_list_;

  void insert_free(extent e);
};

}  // namespace dramdig::os

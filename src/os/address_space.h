// A process-eye view of memory: contiguous virtual ranges backed by the
// frames the simulated kernel handed out, plus the pagemap interface the
// real tools use (DRAMDig reads /proc/self/pagemap as root) to translate
// virtual to physical addresses.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "os/physical_memory.h"

namespace dramdig::os {

/// One physically contiguous run of a region's backing, in frame order.
/// The region keeps its lookup structures at run granularity — an
/// allocation is a few hundred runs even for multi-GiB buffers, so every
/// query is a short binary search and construction never materializes a
/// per-page table (which used to cost tens of milliseconds of sort time
/// per buffer, dominating whole-pipeline walls).
struct pfn_run {
  std::uint64_t first_pfn = 0;    ///< lowest frame of the run
  std::uint64_t page_count = 0;   ///< frames in the run
  std::uint64_t first_page = 0;   ///< VA page index backing first_pfn
  std::uint64_t pfn_prefix = 0;   ///< frames in runs before this one

  [[nodiscard]] std::uint64_t end_pfn() const noexcept {
    return first_pfn + page_count;
  }
};

/// One mmap'd buffer: virtually contiguous, physically scattered extents.
class mapping_region {
 public:
  mapping_region(std::uint64_t va_base, std::vector<extent> backing);

  [[nodiscard]] std::uint64_t va_base() const noexcept { return va_base_; }
  [[nodiscard]] std::uint64_t byte_count() const noexcept {
    return total_pages_ * kPageSize;
  }

  /// pagemap lookup: virtual address -> physical address.
  [[nodiscard]] std::uint64_t translate(std::uint64_t va) const;

  /// Reverse lookup: physical address -> virtual address, if this region
  /// backs that frame.
  [[nodiscard]] std::optional<std::uint64_t> reverse(std::uint64_t pa) const;

  /// Total pages backing the region.
  [[nodiscard]] std::uint64_t page_count() const noexcept {
    return total_pages_;
  }

  /// The i-th smallest backing frame number, i in [0, page_count()).
  /// O(log runs) — the indexed view tools use to draw uniform frames.
  [[nodiscard]] std::uint64_t pfn_at(std::uint64_t i) const;

  /// Backing runs ascending by frame number (disjoint, frames unique).
  /// Tools run their physical-side logic (Algorithm 1) over these;
  /// iterating runs in order visits every frame ascending.
  [[nodiscard]] const std::vector<pfn_run>& pfn_runs() const noexcept {
    return by_pfn_;
  }

  /// O(log runs) membership: is this physical page part of the buffer?
  [[nodiscard]] bool contains_page(std::uint64_t pfn) const;
  /// Is every page of [pa_begin, pa_end) backed? (Algorithm 1's
  /// page_miss check.)
  [[nodiscard]] bool covers_range(std::uint64_t pa_begin,
                                  std::uint64_t pa_end) const;

  [[nodiscard]] const std::vector<extent>& backing() const noexcept {
    return backing_;
  }

 private:
  /// The run containing `pfn`, or nullptr when no run does.
  [[nodiscard]] const pfn_run* run_of_pfn(std::uint64_t pfn) const;

  std::uint64_t va_base_;
  std::uint64_t total_pages_ = 0;
  std::vector<extent> backing_;
  std::vector<std::uint64_t> va_prefix_;  ///< pages before backing_[i], VA order
  std::vector<pfn_run> by_pfn_;           ///< runs ascending by first_pfn
};

/// The process address space: owns regions, hands out va ranges.
class address_space {
 public:
  explicit address_space(physical_memory& phys);

  /// mmap + touch all pages (so frames are committed), 4 KiB granularity.
  mapping_region& map_buffer(std::uint64_t bytes);

  /// mmap with THP: as many 2 MiB huge pages as the kernel can find, the
  /// remainder in 4 KiB pages. Mirrors MADV_HUGEPAGE behaviour.
  mapping_region& map_buffer_hugepage(std::uint64_t bytes);

  /// Regions live in a deque so references returned by map_buffer stay
  /// valid across later mappings.
  [[nodiscard]] const std::deque<mapping_region>& regions() const noexcept {
    return regions_;
  }

 private:
  physical_memory& phys_;
  std::deque<mapping_region> regions_;
  std::uint64_t next_va_ = 0x7f0000000000ull;
};

}  // namespace dramdig::os

// A process-eye view of memory: contiguous virtual ranges backed by the
// frames the simulated kernel handed out, plus the pagemap interface the
// real tools use (DRAMDig reads /proc/self/pagemap as root) to translate
// virtual to physical addresses.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "os/physical_memory.h"

namespace dramdig::os {

/// One mmap'd buffer: virtually contiguous, physically scattered extents.
class mapping_region {
 public:
  mapping_region(std::uint64_t va_base, std::vector<extent> backing);

  [[nodiscard]] std::uint64_t va_base() const noexcept { return va_base_; }
  [[nodiscard]] std::uint64_t byte_count() const noexcept {
    return static_cast<std::uint64_t>(page_to_pfn_.size()) * kPageSize;
  }

  /// pagemap lookup: virtual address -> physical address.
  [[nodiscard]] std::uint64_t translate(std::uint64_t va) const;

  /// Reverse lookup: physical address -> virtual address, if this region
  /// backs that frame.
  [[nodiscard]] std::optional<std::uint64_t> reverse(std::uint64_t pa) const;

  /// All backing frame numbers, ascending. Tools run their physical-side
  /// logic (Algorithm 1) over this.
  [[nodiscard]] const std::vector<std::uint64_t>& sorted_pfns() const noexcept {
    return sorted_pfns_;
  }

  /// O(log n) membership: is this physical page part of the buffer?
  [[nodiscard]] bool contains_page(std::uint64_t pfn) const;
  /// Is every page of [pa_begin, pa_end) backed? (Algorithm 1's
  /// page_miss check.)
  [[nodiscard]] bool covers_range(std::uint64_t pa_begin,
                                  std::uint64_t pa_end) const;

  [[nodiscard]] const std::vector<extent>& backing() const noexcept {
    return backing_;
  }

 private:
  std::uint64_t va_base_;
  std::vector<extent> backing_;
  std::vector<std::uint64_t> page_to_pfn_;   // va page index -> pfn
  std::vector<std::uint64_t> sorted_pfns_;   // ascending, for membership
};

/// The process address space: owns regions, hands out va ranges.
class address_space {
 public:
  explicit address_space(physical_memory& phys);

  /// mmap + touch all pages (so frames are committed), 4 KiB granularity.
  mapping_region& map_buffer(std::uint64_t bytes);

  /// mmap with THP: as many 2 MiB huge pages as the kernel can find, the
  /// remainder in 4 KiB pages. Mirrors MADV_HUGEPAGE behaviour.
  mapping_region& map_buffer_hugepage(std::uint64_t bytes);

  /// Regions live in a deque so references returned by map_buffer stay
  /// valid across later mappings.
  [[nodiscard]] const std::deque<mapping_region>& regions() const noexcept {
    return regions_;
  }

 private:
  physical_memory& phys_;
  std::deque<mapping_region> regions_;
  std::uint64_t next_va_ = 0x7f0000000000ull;
};

}  // namespace dramdig::os

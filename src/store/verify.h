// Incremental re-verification of a stored mapping (the store's exact-hit
// fast path).
//
// A fleet machine whose fingerprint matches a store entry almost certainly
// has the stored mapping — but "almost" is not a guarantee (BIOS updates
// reshuffle interleaving without touching the DIMMs). Instead of paying a
// full recovery, the verifier spends a few hundred designed probes through
// the existing core/bit_probe engine to spot-check the stored claim:
//
//   * positive deltas — vectors in the null space of the stored bank
//     functions that flip at least one claimed row bit. If the claim is
//     right, such a delta changes the row but not the bank: SBDR must
//     vote true.
//   * negative deltas — one single-bit delta per stored function (the bit
//     flips that function's parity, so the bank must change) plus a
//     bank-clean column bit (same bank, same row): SBDR must vote false.
//
// A wrong stored mask fails both ways: its claimed null space leaks into
// a true function (positives vote false), and its claimed function bits
// land on true row bits (negatives vote true). Any mismatch refutes the
// entry and the service re-queues the job as a full recovery.
#pragma once

#include <cstdint>
#include <string>

#include "core/bit_probe.h"
#include "core/environment.h"
#include "store/mapping_store.h"
#include "timing/channel.h"

namespace dramdig::store {

struct verify_config {
  /// Fraction of installed memory mapped for probe pairs (same default as
  /// the recovery pipeline, so high row-bit deltas stay testable).
  double buffer_fraction = 0.55;
  /// Calibration budget deliberately lighter than a recovery run: the
  /// verifier only needs a usable threshold, and calibration dominates a
  /// few-hundred-measurement job. These numbers keep a whole verification
  /// under 20% of a cold recovery (the fleet_warm_start bench floor).
  timing::channel_config channel{.rounds_per_measurement = 1000,
                                 .samples_per_latency = 3,
                                 .calibration_pairs = 160,
                                 .calibration_min_pairs = 60,
                                 .calibration_chunk = 30};
  core::probe_config probe{.votes = 5};
  /// Cap on positive (row-flip) deltas designed from the null space.
  unsigned max_positive = 8;
  std::uint64_t tool_seed = 1;
};

struct verify_report {
  bool verified = false;
  unsigned deltas_designed = 0;
  unsigned deltas_tested = 0;  ///< designed minus untestable
  unsigned positives_tested = 0;
  unsigned negatives_tested = 0;
  unsigned mismatches = 0;
  std::string failure_reason;  ///< empty when verified
  double threshold_ns = 0.0;
  double total_seconds = 0.0;  ///< virtual time of the whole job
  std::uint64_t total_measurements = 0;
};

/// Spot-check `entry` against the machine behind `env`. Purely additive on
/// the environment (maps its own buffer); a verification followed by a
/// full recovery on verify failure uses a fresh environment so the
/// recovery stays bit-identical to a cold run.
[[nodiscard]] verify_report verify_stored_mapping(
    core::environment& env, const store_entry& entry,
    const verify_config& config = {});

}  // namespace dramdig::store

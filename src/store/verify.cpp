#include "store/verify.h"

#include <bit>

#include "core/measurement_plan.h"
#include "core/probe_util.h"
#include "sysinfo/system_info.h"
#include "util/gf2.h"
#include "util/log.h"

namespace dramdig::store {

namespace {

/// Lowest probeable physical bit (cache-line offset; matches
/// domain_knowledge::min_probe_bit).
constexpr unsigned kMinProbeBit = 6;

}  // namespace

verify_report verify_stored_mapping(core::environment& env,
                                    const store_entry& entry,
                                    const verify_config& config) {
  verify_report report;
  auto& mc = env.mach().controller();
  const std::uint64_t t0 = mc.clock().now_ns();
  const std::uint64_t m0 = mc.measurement_count();
  // Distinct stream from the recovery pipeline's rng, so a verification
  // followed by a re-queued full run never correlates draws with it.
  rng r(env.seed() ^ (config.tool_seed * 0x9e3779b97f4a7c15ull) ^
        0xc2b2ae3d27d4eb4full);
  timing::channel channel(mc, config.channel, r.fork());

  const sysinfo::system_info info = sysinfo::probe(env.spec());
  const os::mapping_region& buffer = env.space().map_buffer(
      static_cast<std::uint64_t>(config.buffer_fraction *
                                 static_cast<double>(info.total_bytes)));
  report.threshold_ns = channel.calibrate(
      core::sample_addresses(buffer, 1024, r));

  core::measurement_plan plan(channel);
  core::bit_probe_engine probe(plan, buffer);

  const std::uint64_t addr_mask =
      entry.address_bits >= 64 ? ~0ull
                               : (std::uint64_t{1} << entry.address_bits) - 1;
  const std::uint64_t support =
      addr_mask & ~((std::uint64_t{1} << kMinProbeBit) - 1);
  std::uint64_t row_mask = 0;
  for (const unsigned b : entry.row_bits) row_mask |= std::uint64_t{1} << b;
  std::uint64_t func_union = 0;
  for (const std::uint64_t f : entry.bank_functions) func_union |= f;

  std::vector<std::uint64_t> deltas;
  std::vector<char> expect;
  const auto add = [&](std::uint64_t d, bool e) {
    if (d == 0) return;
    for (const std::uint64_t seen : deltas) {
      if (seen == d) return;
    }
    deltas.push_back(d);
    expect.push_back(e ? 1 : 0);
  };

  // Positives: claimed-bank-invariant deltas that flip a claimed row bit.
  // Start with single row bits outside every function (the cleanest
  // claim), then null-space basis vectors for span coverage. A basis
  // vector with no row involvement is made row-flipping by folding in a
  // function-clean row bit — the fold keeps it inside the claimed null
  // space, and without it the probe is blind either way (same bank, same
  // row under the claim; different bank under a refuting truth — both
  // read as "no conflict"). Vectors that touch the stored function bits
  // go first: a wrong mask warps the null space precisely there.
  // Single row bits get at most half the budget: they validate row
  // claims but are blind to a wrong function mask, and a full budget of
  // them would starve the span probes that do catch one.
  unsigned positives = 0;
  std::uint64_t clean_row = 0;
  const unsigned row_cap = std::max(1u, config.max_positive / 2);
  for (const unsigned b : entry.row_bits) {
    if (b < kMinProbeBit || ((func_union >> b) & 1u) != 0) continue;
    if (clean_row == 0) clean_row = std::uint64_t{1} << b;
    if (positives >= row_cap) break;
    add(std::uint64_t{1} << b, true);
    ++positives;
  }
  if (!entry.bank_functions.empty()) {
    const std::vector<std::uint64_t> basis =
        gf2::nullspace(entry.bank_functions, support);
    for (const int pass : {0, 1}) {
      for (const std::uint64_t v : basis) {
        if (positives >= config.max_positive) break;
        if (((v & func_union) != 0) != (pass == 0)) continue;
        std::uint64_t d = v;
        if ((d & row_mask) == 0) {
          if (clean_row == 0) continue;  // no way to force a row flip
          d ^= clean_row;
        }
        add(d, true);
        ++positives;
      }
    }
  }

  // Negatives: one single-bit delta per stored function — the bit flips
  // that function's parity, so the bank must change — plus a bank-clean
  // column bit (same bank, same row).
  for (const std::uint64_t f : entry.bank_functions) {
    const std::uint64_t bits = f & support;
    if (bits == 0) continue;
    add(std::uint64_t{1} << std::countr_zero(bits), false);
  }
  for (const unsigned b : entry.column_bits) {
    if (b < kMinProbeBit || ((func_union >> b) & 1u) != 0) continue;
    add(std::uint64_t{1} << b, false);
    break;
  }

  report.deltas_designed = static_cast<unsigned>(deltas.size());
  if (positives == 0) {
    report.failure_reason = "no verifiable row-flip delta in stored entry";
    report.total_seconds = mc.clock().seconds_since(t0);
    report.total_measurements = mc.measurement_count() - m0;
    return report;
  }

  const auto verdicts = probe.run(deltas, config.probe, r, "store.verify");
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (!verdicts[i].has_value()) continue;  // untestable: no evidence
    ++report.deltas_tested;
    if (expect[i] != 0) {
      ++report.positives_tested;
    } else {
      ++report.negatives_tested;
    }
    if (*verdicts[i] != (expect[i] != 0)) ++report.mismatches;
  }

  report.verified =
      report.mismatches == 0 && report.positives_tested > 0 &&
      (entry.bank_functions.empty() || report.negatives_tested > 0);
  if (!report.verified && report.failure_reason.empty()) {
    report.failure_reason =
        report.mismatches > 0
            ? std::to_string(report.mismatches) + " of " +
                  std::to_string(report.deltas_tested) +
                  " designed probes contradict the stored mapping"
            : "too few testable probes to trust the stored mapping";
  }
  report.total_seconds = mc.clock().seconds_since(t0);
  report.total_measurements = mc.measurement_count() - m0;
  log_info("store.verify: " +
           std::string(report.verified ? "verified" : "REFUTED") + " (" +
           std::to_string(report.deltas_tested) + " probes, " +
           std::to_string(report.mismatches) + " mismatches, " +
           std::to_string(report.total_measurements) + " measurements)");
  return report;
}

}  // namespace dramdig::store

// The fleet mapping store: persistent fingerprint -> mapping records.
//
// DRAMDig recovers one machine's mapping in one expensive run; a fleet
// service meets millions of near-identical machines and should pay that
// cost once per hardware configuration, not once per host. The store is
// that memory: each entry keys a machine fingerprint (sysinfo — CPU model
// plus DIMM geometry) to the recovered mapping, the bank-function span,
// a digest of the classifier evidence that produced it, and the entry's
// verification history. The api::mapping_service consults it before
// dispatch: an exact fingerprint hit becomes a cheap verification job
// (store/verify.h), a geometry-only hit warm-starts a full run, and only
// a cold miss pays full recovery.
//
// On-disk format (schema also documented next to tool_result::to_json):
//
//   {
//     "store": "dramdig-mapping-store",
//     "version": 2,
//     "entries": [
//       {
//         "fingerprint": { "cpu_model": ..., "generation": "DDR3",
//                          "total_bytes": ..., "channels": ...,
//                          "dimms_per_channel": ..., "ranks_per_dimm": ...,
//                          "banks_per_rank": ..., "ecc": ...,
//                          "hash": ..., "geometry_hash": ... },
//         "mapping": { "bank_functions": [...], "row_bits": [...],
//                      "column_bits": [...], "address_bits": ... },
//         "function_span": [...],          // row-echelon basis of the span
//         "evidence": { "digest": ..., "pool_size": ...,
//                       "bank_count": ..., "threshold_ns": ... },  // v2
//         "history": [ { "kind": "recovered|verified|verify_failed|
//                                 warm_recovered",
//                        "seed": ..., "measurements": ... }, ... ]
//       }, ...
//     ]
//   }
//
// Schema v2 extends the v1 evidence block with the recovering run's bank
// count and calibrated threshold; together with the mapping's bit lists
// they form the full evidence prior a geometry hit transfers into a warm
// run (dramdig_config::warm). Version 1 documents (no such keys) still
// load, silently, as span-only priors — the evidence fields read as
// zero/empty and every warm consumer treats that as "no claim".
//
// The stored fingerprint hashes are recomputed and cross-checked on load;
// any parse error, schema mismatch, or hash mismatch degrades the store
// to empty with a logged warning — a truncated file (e.g. a crash mid
// save) costs a cold run, never a crash.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dram/mapping.h"
#include "sysinfo/system_info.h"
#include "util/gf2.h"

namespace dramdig::store {

/// One verification-history event on a store entry.
struct verification_event {
  /// "recovered" (cold run), "verified" (spot-check passed),
  /// "verify_failed" (spot-check refuted the entry), "warm_recovered"
  /// (geometry-hit run that produced/overwrote this entry).
  std::string kind;
  std::uint64_t seed = 0;          ///< environment seed of the run
  std::uint64_t measurements = 0;  ///< what the event cost
};

/// One fingerprint -> mapping record.
struct store_entry {
  sysinfo::machine_fingerprint fingerprint;
  std::vector<std::uint64_t> bank_functions;
  std::vector<unsigned> row_bits;
  std::vector<unsigned> column_bits;
  unsigned address_bits = 0;
  /// Row-echelon basis of the bank-function span — the classifier's
  /// warm-start hint (core/classifier.h warm_start).
  gf2::matrix function_span;
  /// FNV-1a over (span, row/column bits, pool size): lets a re-recovery
  /// tell at a glance whether it reproduced the stored evidence.
  std::uint64_t evidence_digest = 0;
  /// Selection-pool size of the recovering run — pre-sizes the
  /// measurement plan on warm starts.
  std::uint64_t pool_size = 0;
  /// Bank count the recovering run resolved (schema v2; 0 on entries
  /// loaded from v1 documents = no claim). Seeds the warm run's
  /// wrong-bank-count sweep and the partition pool stratification.
  unsigned bank_count = 0;
  /// Calibrated row-conflict threshold of the recovering run (schema v2;
  /// 0 = no claim). Authorizes an early calibration stop on geometry
  /// siblings once local estimates confirm it.
  double threshold_ns = 0.0;
  std::vector<verification_event> history;

  /// The stored mapping as the hypothesis type tools output.
  [[nodiscard]] dram::address_mapping mapping() const;
  /// Recompute evidence_digest from the current fields.
  [[nodiscard]] std::uint64_t compute_evidence_digest() const;
};

/// Thread-safe persistent store. All lookups return copies, so a returned
/// entry stays valid across concurrent put()s (daemon mode).
class mapping_store {
 public:
  /// In-memory store; save() is a no-op until a path is attached.
  mapping_store() = default;
  /// Load `path` if it exists. Corrupted/truncated/unreadable content
  /// degrades to an empty store: load_warning() carries the reason and
  /// the file is left untouched until the next save().
  explicit mapping_store(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Nonempty when construction found a file it could not trust.
  [[nodiscard]] const std::string& load_warning() const noexcept {
    return load_warning_;
  }

  /// Exact fingerprint-hash hit: candidate for a verification-only job.
  [[nodiscard]] std::optional<store_entry> find_exact(
      const sysinfo::machine_fingerprint& fp) const;
  /// Geometry-hash hit (same DIMM layout, different CPU): candidate for a
  /// warm-started full run. Never returns an exact hit's entry twin — use
  /// find_exact first.
  [[nodiscard]] std::optional<store_entry> find_geometry(
      const sysinfo::machine_fingerprint& fp) const;

  /// Insert or overwrite the entry with the same fingerprint hash.
  void put(store_entry entry);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<store_entry> entries() const;  ///< snapshot

  /// Serialize the whole store (the on-disk document).
  [[nodiscard]] std::string to_json() const;
  /// Write to the attached path (no-op without one). Throws
  /// std::runtime_error on I/O failure.
  void save() const;

 private:
  [[nodiscard]] std::string to_json_locked() const;
  void load_locked(const std::string& text);

  mutable std::mutex mutex_;
  std::string path_;
  std::string load_warning_;
  std::vector<store_entry> entries_;
};

}  // namespace dramdig::store

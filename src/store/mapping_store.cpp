#include "store/mapping_store.h"

#include <filesystem>
#include <sstream>
#include <utility>

#include "util/expect.h"
#include "util/json.h"
#include "util/log.h"

namespace dramdig::store {

namespace {

constexpr const char* kStoreTag = "dramdig-mapping-store";
/// Written version. v2 added the evidence bank_count/threshold_ns keys;
/// v1 documents still load (the keys read as absent -> zero = no claim).
constexpr std::uint64_t kStoreVersion = 2;
constexpr std::uint64_t kOldestLoadableVersion = 1;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

dram::ddr_generation generation_from(const std::string& name) {
  if (name == "DDR3") return dram::ddr_generation::ddr3;
  if (name == "DDR4") return dram::ddr_generation::ddr4;
  throw json_parse_error("unknown DDR generation '" + name + "'");
}

void write_fingerprint(json_writer& w, const sysinfo::machine_fingerprint& fp) {
  w.begin_object();
  w.key("cpu_model").value(fp.cpu_model);
  w.key("generation").value(to_string(fp.generation));
  w.key("total_bytes").value(fp.total_bytes);
  w.key("channels").value(fp.channels);
  w.key("dimms_per_channel").value(fp.dimms_per_channel);
  w.key("ranks_per_dimm").value(fp.ranks_per_dimm);
  w.key("banks_per_rank").value(fp.banks_per_rank);
  w.key("ecc").value(fp.ecc);
  // Derived, and cross-checked on load: a bit flip anywhere in the entry's
  // identity fields turns into a hash mismatch instead of a silent
  // mis-keyed store.
  w.key("hash").value(fp.hash());
  w.key("geometry_hash").value(fp.geometry_hash());
  w.end_object();
}

sysinfo::machine_fingerprint read_fingerprint(const json_value& v) {
  sysinfo::machine_fingerprint fp;
  fp.cpu_model = v.at("cpu_model").as_string();
  fp.generation = generation_from(v.at("generation").as_string());
  fp.total_bytes = v.at("total_bytes").as_u64();
  fp.channels = static_cast<unsigned>(v.at("channels").as_u64());
  fp.dimms_per_channel = static_cast<unsigned>(v.at("dimms_per_channel").as_u64());
  fp.ranks_per_dimm = static_cast<unsigned>(v.at("ranks_per_dimm").as_u64());
  fp.banks_per_rank = static_cast<unsigned>(v.at("banks_per_rank").as_u64());
  fp.ecc = v.at("ecc").as_bool();
  if (fp.hash() != v.at("hash").as_u64() ||
      fp.geometry_hash() != v.at("geometry_hash").as_u64()) {
    throw json_parse_error("fingerprint hash mismatch (corrupt entry?)");
  }
  return fp;
}

template <typename T>
std::vector<T> read_number_array(const json_value& v) {
  std::vector<T> out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.push_back(static_cast<T>(v[i].as_u64()));
  }
  return out;
}

}  // namespace

dram::address_mapping store_entry::mapping() const {
  return dram::address_mapping(bank_functions, row_bits, column_bits,
                               address_bits);
}

std::uint64_t store_entry::compute_evidence_digest() const {
  std::ostringstream s;
  s << "span=";
  for (const std::uint64_t f : function_span) s << f << ",";
  s << "|rows=";
  for (const unsigned b : row_bits) s << b << ",";
  s << "|cols=";
  for (const unsigned b : column_bits) s << b << ",";
  s << "|pool=" << pool_size;
  s << "|banks=" << bank_count;
  s << "|thr=" << threshold_ns;
  return fnv1a(s.str());
}

mapping_store::mapping_store(std::string path) : path_(std::move(path)) {
  DRAMDIG_EXPECTS(!path_.empty());
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec)) return;
  std::string text;
  try {
    text = read_file(path_);
    load_locked(text);
  } catch (const std::exception& e) {
    // The degradation contract: a store the service cannot trust costs a
    // cold run, never a crash. The broken file stays on disk untouched
    // until the next save() rewrites it whole.
    entries_.clear();
    load_warning_ = "mapping store '" + path_ +
                    "' is unreadable, starting cold: " + e.what();
    log_warn(load_warning_);
  }
}

void mapping_store::load_locked(const std::string& text) {
  const json_value doc = json_value::parse(text);
  if (doc.at("store").as_string() != kStoreTag) {
    throw json_parse_error("not a mapping-store document");
  }
  const std::uint64_t version = doc.at("version").as_u64();
  if (version < kOldestLoadableVersion || version > kStoreVersion) {
    throw json_parse_error("unsupported store version");
  }
  const json_value& list = doc.at("entries");
  std::vector<store_entry> loaded;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const json_value& e = list[i];
    store_entry entry;
    entry.fingerprint = read_fingerprint(e.at("fingerprint"));
    const json_value& m = e.at("mapping");
    entry.bank_functions = read_number_array<std::uint64_t>(m.at("bank_functions"));
    entry.row_bits = read_number_array<unsigned>(m.at("row_bits"));
    entry.column_bits = read_number_array<unsigned>(m.at("column_bits"));
    entry.address_bits = static_cast<unsigned>(m.at("address_bits").as_u64());
    entry.function_span =
        read_number_array<std::uint64_t>(e.at("function_span"));
    const json_value& ev = e.at("evidence");
    entry.evidence_digest = ev.at("digest").as_u64();
    entry.pool_size = ev.at("pool_size").as_u64();
    // v2 evidence keys; absent on v1 documents -> zero = no claim, so a
    // v1 entry degrades to the span-only warm prior it always carried.
    if (const json_value* bc = ev.find("bank_count")) {
      entry.bank_count = static_cast<unsigned>(bc->as_u64());
    }
    if (const json_value* thr = ev.find("threshold_ns")) {
      entry.threshold_ns = thr->as_double();
    }
    const json_value& hist = e.at("history");
    for (std::size_t h = 0; h < hist.size(); ++h) {
      verification_event event;
      event.kind = hist[h].at("kind").as_string();
      event.seed = hist[h].at("seed").as_u64();
      event.measurements = hist[h].at("measurements").as_u64();
      entry.history.push_back(std::move(event));
    }
    // The mapping constructor enforces its own contracts (sorted distinct
    // bit lists, address_bits bounds); a violation is just another way
    // the file can be corrupt.
    (void)entry.mapping();
    loaded.push_back(std::move(entry));
  }
  entries_ = std::move(loaded);
}

std::optional<store_entry> mapping_store::find_exact(
    const sysinfo::machine_fingerprint& fp) const {
  const std::uint64_t h = fp.hash();
  std::scoped_lock lock(mutex_);
  for (const store_entry& e : entries_) {
    if (e.fingerprint.hash() == h) return e;
  }
  return std::nullopt;
}

std::optional<store_entry> mapping_store::find_geometry(
    const sysinfo::machine_fingerprint& fp) const {
  const std::uint64_t h = fp.hash();
  const std::uint64_t g = fp.geometry_hash();
  std::scoped_lock lock(mutex_);
  for (const store_entry& e : entries_) {
    if (e.fingerprint.hash() != h && e.fingerprint.geometry_hash() == g) {
      return e;
    }
  }
  return std::nullopt;
}

void mapping_store::put(store_entry entry) {
  const std::uint64_t h = entry.fingerprint.hash();
  std::scoped_lock lock(mutex_);
  for (store_entry& e : entries_) {
    if (e.fingerprint.hash() == h) {
      e = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

std::size_t mapping_store::size() const {
  std::scoped_lock lock(mutex_);
  return entries_.size();
}

std::vector<store_entry> mapping_store::entries() const {
  std::scoped_lock lock(mutex_);
  return entries_;
}

std::string mapping_store::to_json() const {
  std::scoped_lock lock(mutex_);
  return to_json_locked();
}

std::string mapping_store::to_json_locked() const {
  json_writer w;
  w.begin_object();
  w.key("store").value(kStoreTag);
  w.key("version").value(kStoreVersion);
  w.key("entries").begin_array();
  for (const store_entry& e : entries_) {
    w.begin_object();
    w.key("fingerprint");
    write_fingerprint(w, e.fingerprint);
    w.key("mapping").begin_object();
    w.key("bank_functions").begin_array();
    for (const std::uint64_t f : e.bank_functions) w.value(f);
    w.end_array();
    w.key("row_bits").begin_array();
    for (const unsigned b : e.row_bits) w.value(b);
    w.end_array();
    w.key("column_bits").begin_array();
    for (const unsigned b : e.column_bits) w.value(b);
    w.end_array();
    w.key("address_bits").value(e.address_bits);
    w.end_object();
    w.key("function_span").begin_array();
    for (const std::uint64_t f : e.function_span) w.value(f);
    w.end_array();
    w.key("evidence").begin_object();
    w.key("digest").value(e.evidence_digest);
    w.key("pool_size").value(e.pool_size);
    w.key("bank_count").value(e.bank_count);
    w.key("threshold_ns").value(e.threshold_ns);
    w.end_object();
    w.key("history").begin_array();
    for (const verification_event& h : e.history) {
      w.begin_object();
      w.key("kind").value(h.kind);
      w.key("seed").value(h.seed);
      w.key("measurements").value(h.measurements);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void mapping_store::save() const {
  std::scoped_lock lock(mutex_);
  if (path_.empty()) return;
  write_file(path_, to_json_locked());
}

}  // namespace dramdig::store

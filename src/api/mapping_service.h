// Concurrent job engine over the unified tool API.
//
// A batch of `job_spec`s — each naming a machine, a registry tool, its
// options and an environment seed — is executed across a worker pool and
// returned as one `job_outcome` per submission index. The determinism
// contract: every job owns its environment and rng, so `outcome[i]` is a
// pure function of `jobs[i]` alone and the batch output (wall time aside)
// is bit-identical to a sequential loop on any thread count and under any
// submission order. Workers drain a shared atomic queue (the thread plumbing
// of util/parallel.h), so a long job — DRAMA burning its 2-hour budget on a
// noisy unit — never serializes the jobs behind it.
//
// Progress observers receive job start / per-phase / done events, mutex-
// serialized so one observer can safely aggregate across workers; a
// cancellation token stops jobs that have not started while completed
// results stay intact.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/tool.h"
#include "dram/presets.h"
#include "store/mapping_store.h"
#include "store/verify.h"

namespace dramdig::api {

/// One unit of work. The machine spec is held by value: jobs own their
/// device-under-test, which is what makes them order- and thread-agnostic.
struct job_spec {
  dram::machine_spec machine;
  std::string tool;       ///< registry name ("dramdig", "drama", "xiao")
  tool_options options{};
  std::uint64_t seed = 1;  ///< environment seed (machine + OS randomness)
  /// Daemon-feed ordering only: job_feed pops higher priorities first
  /// (FIFO within one priority). run() batches ignore it — batch results
  /// merge by submission index regardless of execution order.
  int priority = 0;
};

enum class job_state { pending, running, completed, failed, cancelled };

struct job_outcome {
  std::size_t index = 0;  ///< submission index (results merge by this)
  job_state state = job_state::pending;
  /// Filled for completed jobs; failed jobs carry the exception text in
  /// result.failure_reason; cancelled jobs keep it default-initialized.
  tool_result result;
  /// Host wall time of the run — the only non-deterministic field, which is
  /// why it lives here and not inside tool_result.
  double wall_seconds = 0.0;
  /// Fleet-store consultation verdict for this job. Empty when no store is
  /// configured or the tool is not "dramdig"; otherwise:
  ///   "cold"     — no entry; full recovery ran (and seeded the store),
  ///   "verify"   — exact fingerprint hit; a few hundred designed probes
  ///                confirmed the stored mapping (store/verify.h),
  ///   "warm"     — geometry-only hit; full recovery ran warm-started
  ///                from the stored evidence,
  ///   "requeued" — exact hit whose verification FAILED; the job re-ran
  ///                as a full recovery and overwrote the poisoned entry.
  std::string store_hit;
};

/// Job lifecycle events. Calls are serialized by the service (one observer
/// mutex), so implementations may mutate shared state without locking; they
/// arrive from worker threads, interleaved across jobs but ordered within
/// one job (start, then phases, then done). A cancelled job never starts:
/// it receives a single on_job_done whose outcome has state `cancelled`
/// and a result carrying only the tool name and outcome label.
class progress_observer {
 public:
  virtual ~progress_observer() = default;
  virtual void on_job_start(std::size_t /*index*/, const job_spec& /*job*/) {}
  virtual void on_job_phase(std::size_t /*index*/, std::string_view /*phase*/,
                            const core::phase_stats& /*delta*/) {}
  virtual void on_job_done(std::size_t /*index*/,
                           const job_outcome& /*outcome*/) {}
};

/// Cooperative cancellation: flip once, observed by workers before each
/// job claim, and bound into every tool's abort predicate. Pending jobs
/// never start; a running job with internal abort points (DRAMA polls
/// between trials) stops at its next boundary and completes with outcome
/// "aborted", letting a driver kill a hopeless unit before its 2-hour
/// budget expires; tools without abort points (DRAMDig/Xiao, minutes-
/// scale) run to completion.
class cancellation_token {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct service_config {
  /// Worker threads; 0 means default_shard_count(). 1 reproduces a plain
  /// sequential loop exactly (the determinism tests pin this).
  unsigned threads = 0;
  /// Fleet mapping store consulted before dispatching "dramdig" jobs (not
  /// owned; nullptr = no store, every job runs cold with store_hit empty).
  /// Batch semantics preserve the determinism contract: every lookup runs
  /// against the store state at run() entry, in submission order, and all
  /// updates apply after the batch in submission order — so outcome[i] is
  /// still a pure function of (jobs[i], store-at-entry).
  store::mapping_store* store = nullptr;
  /// Verification-job tuning for exact store hits.
  store::verify_config verify{};
};

/// Streaming job source for daemon mode: producers push prioritized specs
/// (higher priority pops first, FIFO within a priority), consumers inside
/// mapping_service::serve pop them as workers free up. close() ends the
/// stream: serve() returns once the queue drains. push() after close is
/// dropped (returns 0) with a logged warning naming the job's machine and
/// tool, so racing producers degrade instead of throwing — but the
/// dropped work is visible.
class job_feed {
 public:
  /// Enqueue a job (ordering key = job.priority). Returns a nonzero
  /// ticket identifying the job in served outcomes, or 0 when the feed is
  /// already closed and the job was dropped.
  std::uint64_t push(job_spec job);
  void close();
  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t pending() const;

 private:
  friend class mapping_service;
  struct item {
    job_spec job;
    std::uint64_t ticket = 0;
  };
  /// Blocking pop of the highest-priority item; empty = closed and drained.
  std::optional<item> pop();

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<item> heap_;
  std::uint64_t next_ticket_ = 1;
  bool closed_ = false;
};

/// One daemon-mode result, streamed to the serve() sink as soon as the
/// job finishes (sink calls are mutex-serialized, like observers).
struct served_outcome {
  std::uint64_t ticket = 0;
  int priority = 0;
  job_spec job;
  job_outcome outcome;  ///< index = claim sequence number (wall order)
  /// The outcome as one self-contained JSON object ({ticket, priority,
  /// machine, tool, seed, state, store_hit, wall_seconds, result}) — the
  /// per-job streaming record a daemon writes to its result log.
  std::string json;
};

class mapping_service {
 public:
  explicit mapping_service(service_config config = {});

  /// Execute the batch; returns one outcome per job, by submission index.
  /// Throws contract_violation up front if any spec names an unknown tool;
  /// exceptions inside a job mark that job failed without sinking the batch.
  /// With a store configured, dramdig jobs consult it first (see
  /// job_outcome::store_hit) and successful recoveries persist back to it
  /// (save() failures log a warning, they never fail the batch).
  [[nodiscard]] std::vector<job_outcome> run(
      const std::vector<job_spec>& jobs,
      progress_observer* observer = nullptr,
      cancellation_token* cancel = nullptr) const;

  /// Daemon mode: drain `feed` until it is closed and empty, dispatching
  /// jobs across the persistent worker pool (util/parallel.h) as they
  /// arrive and streaming each result to `sink`. Store consultation and
  /// persistence happen per job against the live store (a daemon's whole
  /// point is that later jobs see earlier recoveries), so serve() trades
  /// run()'s batch determinism for incremental warm-starts — documented,
  /// not accidental. Cancellation drains remaining jobs as cancelled
  /// outcomes; the producer still owns close(). Returns jobs served.
  using result_sink = std::function<void(const served_outcome&)>;
  std::size_t serve(job_feed& feed, const result_sink& sink,
                    cancellation_token* cancel = nullptr) const;

 private:
  struct dispatch_plan;
  void execute_job(const job_spec& job, const dispatch_plan& plan,
                   job_outcome& out,
                   std::optional<store::store_entry>& update,
                   const mapping_tool::phase_hook& hook,
                   cancellation_token* cancel) const;

  service_config config_;
};

}  // namespace dramdig::api

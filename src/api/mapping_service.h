// Concurrent job engine over the unified tool API.
//
// A batch of `job_spec`s — each naming a machine, a registry tool, its
// options and an environment seed — is executed across a worker pool and
// returned as one `job_outcome` per submission index. The determinism
// contract: every job owns its environment and rng, so `outcome[i]` is a
// pure function of `jobs[i]` alone and the batch output (wall time aside)
// is bit-identical to a sequential loop on any thread count and under any
// submission order. Workers drain a shared atomic queue (the thread plumbing
// of util/parallel.h), so a long job — DRAMA burning its 2-hour budget on a
// noisy unit — never serializes the jobs behind it.
//
// Progress observers receive job start / per-phase / done events, mutex-
// serialized so one observer can safely aggregate across workers; a
// cancellation token stops jobs that have not started while completed
// results stay intact.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/tool.h"
#include "dram/presets.h"

namespace dramdig::api {

/// One unit of work. The machine spec is held by value: jobs own their
/// device-under-test, which is what makes them order- and thread-agnostic.
struct job_spec {
  dram::machine_spec machine;
  std::string tool;       ///< registry name ("dramdig", "drama", "xiao")
  tool_options options{};
  std::uint64_t seed = 1;  ///< environment seed (machine + OS randomness)
};

enum class job_state { pending, running, completed, failed, cancelled };

struct job_outcome {
  std::size_t index = 0;  ///< submission index (results merge by this)
  job_state state = job_state::pending;
  /// Filled for completed jobs; failed jobs carry the exception text in
  /// result.failure_reason; cancelled jobs keep it default-initialized.
  tool_result result;
  /// Host wall time of the run — the only non-deterministic field, which is
  /// why it lives here and not inside tool_result.
  double wall_seconds = 0.0;
};

/// Job lifecycle events. Calls are serialized by the service (one observer
/// mutex), so implementations may mutate shared state without locking; they
/// arrive from worker threads, interleaved across jobs but ordered within
/// one job (start, then phases, then done). A cancelled job never starts:
/// it receives a single on_job_done whose outcome has state `cancelled`
/// and a result carrying only the tool name and outcome label.
class progress_observer {
 public:
  virtual ~progress_observer() = default;
  virtual void on_job_start(std::size_t /*index*/, const job_spec& /*job*/) {}
  virtual void on_job_phase(std::size_t /*index*/, std::string_view /*phase*/,
                            const core::phase_stats& /*delta*/) {}
  virtual void on_job_done(std::size_t /*index*/,
                           const job_outcome& /*outcome*/) {}
};

/// Cooperative cancellation: flip once, observed by workers before each
/// job claim, and bound into every tool's abort predicate. Pending jobs
/// never start; a running job with internal abort points (DRAMA polls
/// between trials) stops at its next boundary and completes with outcome
/// "aborted", letting a driver kill a hopeless unit before its 2-hour
/// budget expires; tools without abort points (DRAMDig/Xiao, minutes-
/// scale) run to completion.
class cancellation_token {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct service_config {
  /// Worker threads; 0 means default_shard_count(). 1 reproduces a plain
  /// sequential loop exactly (the determinism tests pin this).
  unsigned threads = 0;
};

class mapping_service {
 public:
  explicit mapping_service(service_config config = {});

  /// Execute the batch; returns one outcome per job, by submission index.
  /// Throws contract_violation up front if any spec names an unknown tool;
  /// exceptions inside a job mark that job failed without sinking the batch.
  [[nodiscard]] std::vector<job_outcome> run(
      const std::vector<job_spec>& jobs,
      progress_observer* observer = nullptr,
      cancellation_token* cancel = nullptr) const;

 private:
  service_config config_;
};

}  // namespace dramdig::api

// The unified tool API: every mapping-recovery tool in the project behind
// one polymorphic interface.
//
// The paper frames DRAMDig as one of several timing-based
// reverse-engineering tools and benchmarks it against DRAMA (Pessl et al.)
// and Xiao et al.; Knock-Knock-style platforms go further and make the
// recovery method a pluggable strategy. This header is that seam:
//
//   * `mapping_tool`   — describe() + run(environment&) returning a
//                        `tool_result`, the one result schema every driver
//                        (bench, example, CI, service) consumes;
//   * `tool_options`   — a validated builder carrying the per-tool configs
//                        a job may need (bad configs throw at set time, not
//                        inside a worker thread);
//   * `tool_registry`  — a string-keyed factory ("dramdig", "drama",
//                        "xiao" built in; downstream tools can add their
//                        own), so drivers and the mapping_service select
//                        tools by name.
//
// Adapters translate each tool's bespoke report into `tool_result` and are
// the only place that knows the per-tool success/verification semantics
// (e.g. DRAMA "completed" = two agreeing trials, verified = function span
// matches; a DRAMA hypothesis never matches the truth's row bits, so full
// mapping equivalence would be the wrong check for it).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/drama.h"
#include "baselines/xiao.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/mapping.h"

namespace dramdig {
class json_writer;
}

namespace dramdig::api {

/// One pipeline phase's aggregate cost within a run.
struct tool_phase {
  std::string name;
  double seconds = 0.0;
  std::uint64_t measurements = 0;
  std::uint64_t pairs_used = 0;  ///< nonzero only for adaptive calibration
};

/// The unified run record. Every field is a pure function of (machine spec,
/// environment seed, tool options) — wall-clock time deliberately lives
/// outside, on the service's `job_outcome` — so two results can be compared
/// bit-for-bit to prove determinism.
struct tool_result {
  std::string tool;       ///< registry name of the tool that produced it
  bool success = false;   ///< the tool's own completion claim
  /// Output checked against the simulated ground truth, with the per-tool
  /// notion of "correct" (DRAMDig/Xiao: full mapping equivalence; DRAMA:
  /// bank-function span match — its fixed row heuristic is not the claim).
  bool verified = false;
  std::optional<dram::address_mapping> mapping;
  std::string outcome;         ///< short status label ("success", "timeout", ...)
  std::string detail;          ///< tool-specific note ("pool 4096, 8 piles")
  std::string failure_reason;  ///< empty on success
  std::vector<tool_phase> phases;
  /// Designed-experiment probe-round activity (rounds batched, votes cast
  /// and early-terminated, votes answered from the reuse cache). All zero
  /// for tools that do not run the bit-probe engine.
  core::probe_stats probe_rounds{};
  double virtual_seconds = 0.0;
  std::uint64_t measurement_count = 0;
  std::uint64_t measurements_saved = 0;
  std::uint64_t access_count = 0;
  /// Selection-pool size of the run (DRAMDig only, 0 elsewhere) — the
  /// classifier-evidence field the fleet mapping store persists so warm
  /// starts can pre-size the measurement plan.
  std::uint64_t pool_size = 0;
  /// Bank count the run resolved (DRAMDig only, 0 elsewhere). Store
  /// evidence: a geometry sibling's wrong-bank-count sweep starts here.
  unsigned assumed_bank_count = 0;
  /// Calibrated row-conflict threshold in ns (DRAMDig only, 0 elsewhere).
  /// Store evidence: authorizes an early calibration stop on siblings.
  double threshold_ns = 0.0;

  /// Append this result as one JSON object (the machine-readable format
  /// every driver emits; see ROADMAP "Unified tool API" for the schema).
  ///
  /// Related document: the fleet mapping store (src/store/mapping_store.h)
  /// persists a *different* schema derived from successful results —
  ///   { "store": "dramdig-mapping-store", "version": 2, "entries": [
  ///       { "fingerprint": {cpu_model, generation, total_bytes, channels,
  ///                         dimms_per_channel, ranks_per_dimm,
  ///                         banks_per_rank, ecc, hash, geometry_hash},
  ///         "mapping": {bank_functions, row_bits, column_bits,
  ///                     address_bits},   // numeric, not the display
  ///                                      // strings used here
  ///         "function_span": [...],
  ///         "evidence": {digest, pool_size,
  ///                      bank_count, threshold_ns},  // last two: v2
  ///         "history": [{kind, seed, measurements}, ...] } ] }
  /// — numeric masks/bit lists instead of this object's human-readable
  /// renderings, because the store is read back (util/json.h json_value)
  /// while this record is write-only telemetry. Schema v2 widened the
  /// evidence block with this record's assumed_bank_count/threshold_ns
  /// (the transferable warm-start prior); v1 documents still load, their
  /// missing keys reading as zero = no claim.
  void to_json(json_writer& w) const;
  [[nodiscard]] std::string to_json_string() const;
};

struct tool_description {
  std::string name;     ///< registry key
  std::string title;    ///< display name ("DRAMA (Pessl et al.)")
  std::string summary;  ///< one-line method description
};

/// Validated carrier for the per-tool configurations. Setters re-check the
/// same contracts the tool constructors enforce and throw contract_violation
/// immediately, so a malformed job spec fails at submission.
class tool_options {
 public:
  tool_options() = default;

  tool_options& with_dramdig(core::dramdig_config cfg);
  tool_options& with_drama(baselines::drama_config cfg);
  tool_options& with_xiao(baselines::xiao_config cfg);
  /// Reseed every per-tool config at once (their `tool_seed` fields).
  tool_options& with_tool_seed(std::uint64_t seed);

  [[nodiscard]] const core::dramdig_config& dramdig() const noexcept {
    return dramdig_;
  }
  [[nodiscard]] const baselines::drama_config& drama() const noexcept {
    return drama_;
  }
  [[nodiscard]] const baselines::xiao_config& xiao() const noexcept {
    return xiao_;
  }

 private:
  core::dramdig_config dramdig_{};
  baselines::drama_config drama_{};
  baselines::xiao_config xiao_{};
};

/// A mapping-recovery tool. run() owns nothing: the caller provides the
/// device-under-test and the tool interacts with it exclusively through the
/// timing channel and the simulated OS, like every concrete tool does.
class mapping_tool {
 public:
  /// Per-phase progress events, streamed while run() executes (same
  /// signature as core::phase_callback; tools without internal phases emit
  /// a single terminal event).
  using phase_hook = core::phase_callback;

  virtual ~mapping_tool() = default;

  /// Install a cooperative abort predicate before run(). Tools with
  /// internal abort points poll it and stop early (DRAMA checks between
  /// trials and reports outcome "aborted"); the default implementation
  /// ignores it — DRAMDig/Xiao runs are minutes-scale and complete. The
  /// mapping_service binds its cancellation token here so flipping the
  /// token also stops running jobs at their next abort point.
  virtual void bind_abort(std::function<bool()> /*should_abort*/) {}

  [[nodiscard]] virtual tool_description describe() const = 0;
  [[nodiscard]] virtual tool_result run(core::environment& env,
                                        const phase_hook& hook) = 0;
  [[nodiscard]] tool_result run(core::environment& env) {
    return run(env, phase_hook{});
  }
};

/// String-keyed tool factory. `global()` is the process-wide instance,
/// pre-loaded with the three built-in tools; tests and downstream embedders
/// can also hold private instances.
class tool_registry {
 public:
  using factory =
      std::function<std::unique_ptr<mapping_tool>(const tool_options&)>;

  [[nodiscard]] static tool_registry& global();

  /// Throws contract_violation on an empty name or a duplicate.
  void add(const std::string& name, factory make);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted
  /// Throws contract_violation for an unknown name.
  [[nodiscard]] std::unique_ptr<mapping_tool> make(
      const std::string& name, const tool_options& options = {}) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, factory> factories_;
};

/// Shorthand for tool_registry::global().make(...).
[[nodiscard]] std::unique_ptr<mapping_tool> make_tool(
    const std::string& name, const tool_options& options = {});

}  // namespace dramdig::api

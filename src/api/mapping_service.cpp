#include "api/mapping_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>

#include "core/environment.h"
#include "util/expect.h"
#include "util/parallel.h"

namespace dramdig::api {

mapping_service::mapping_service(service_config config) : config_(config) {}

std::vector<job_outcome> mapping_service::run(
    const std::vector<job_spec>& jobs, progress_observer* observer,
    cancellation_token* cancel) const {
  // Malformed specs fail the whole batch up front, before any worker runs
  // (tool options were already validated when the builder set them).
  for (const job_spec& job : jobs) {
    DRAMDIG_EXPECTS(tool_registry::global().contains(job.tool));
  }

  std::vector<job_outcome> outcomes(jobs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) outcomes[i].index = i;
  if (jobs.empty()) return outcomes;

  const unsigned threads =
      config_.threads == 0 ? default_shard_count() : config_.threads;
  const std::size_t workers = std::min<std::size_t>(threads, jobs.size());

  // Worker slots drain a shared queue; each claimed job is self-contained
  // (own environment, own rng), so the claim order never reaches the
  // results — only the wall clock.
  std::atomic<std::size_t> next{0};
  std::mutex observer_mutex;
  const auto notify = [&](const auto& fire) {
    if (observer == nullptr) return;
    std::scoped_lock lock(observer_mutex);
    fire();
  };

  parallel_for_shards(
      workers, static_cast<unsigned>(workers), [&](const shard&) {
        while (true) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          const job_spec& job = jobs[i];
          job_outcome& out = outcomes[i];
          if (cancel != nullptr && cancel->cancelled()) {
            out.state = job_state::cancelled;
            out.result.tool = job.tool;
            out.result.outcome = "cancelled";
            notify([&] { observer->on_job_done(i, out); });
            continue;
          }
          out.state = job_state::running;
          notify([&] { observer->on_job_start(i, job); });
          const auto t0 = std::chrono::steady_clock::now();
          try {
            core::environment env(job.machine, job.seed);
            const auto tool = make_tool(job.tool, job.options);
            if (cancel != nullptr) {
              // Tools with internal abort points (DRAMA's trial loop) stop
              // at the next boundary once the token flips; their outcome
              // reports "aborted" and the job still completes normally.
              tool->bind_abort([cancel] { return cancel->cancelled(); });
            }
            mapping_tool::phase_hook hook;
            if (observer != nullptr) {
              hook = [&notify, &observer, i](std::string_view phase,
                                             const core::phase_stats& delta) {
                notify([&] { observer->on_job_phase(i, phase, delta); });
              };
            }
            out.result = tool->run(env, hook);
            out.state = job_state::completed;
          } catch (const std::exception& e) {
            out.state = job_state::failed;
            out.result.tool = job.tool;
            out.result.outcome = "error";
            out.result.failure_reason = e.what();
          }
          out.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          notify([&] { observer->on_job_done(i, out); });
        }
      });
  return outcomes;
}

}  // namespace dramdig::api

#include "api/mapping_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <utility>

#include "core/environment.h"
#include "sysinfo/system_info.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/json.h"
#include "util/log.h"
#include "util/parallel.h"

namespace dramdig::api {

namespace {

const char* state_name(job_state s) {
  switch (s) {
    case job_state::pending: return "pending";
    case job_state::running: return "running";
    case job_state::completed: return "completed";
    case job_state::failed: return "failed";
    case job_state::cancelled: return "cancelled";
  }
  return "unknown";
}

/// Build the store entry a successful recovery persists.
store::store_entry entry_from_result(const sysinfo::machine_fingerprint& fp,
                                     const job_spec& job,
                                     const tool_result& result,
                                     const char* kind,
                                     std::vector<store::verification_event>
                                         prior_history) {
  store::store_entry e;
  e.fingerprint = fp;
  e.bank_functions = result.mapping->bank_functions();
  e.row_bits = result.mapping->row_bits();
  e.column_bits = result.mapping->column_bits();
  e.address_bits = result.mapping->address_bits();
  e.function_span = gf2::row_echelon(e.bank_functions);
  e.pool_size = result.pool_size;
  e.bank_count = result.assumed_bank_count;
  e.threshold_ns = result.threshold_ns;
  e.history = std::move(prior_history);
  e.history.push_back({kind, job.seed, result.measurement_count});
  e.evidence_digest = e.compute_evidence_digest();
  return e;
}

/// Synthesize the tool_result of a verification-only job: the stored
/// mapping, re-checked by designed probes instead of re-derived. The
/// `verified` flag keeps the adapter's semantics (checked against the
/// simulated ground truth), so a warm re-run is bit-comparable to a cold
/// one on everything but cost.
tool_result result_from_verification(core::environment& env,
                                     const store::store_entry& entry,
                                     const store::verify_report& vr) {
  tool_result out;
  out.tool = "dramdig";
  out.success = true;
  out.mapping = entry.mapping();
  out.verified = out.mapping->equivalent_to(env.spec().mapping);
  out.outcome = "verified";
  out.detail = "store hit: " + std::to_string(vr.deltas_tested) +
               " designed probes, 0 mismatches";
  out.phases = {{"verify", vr.total_seconds, vr.total_measurements, 0}};
  out.virtual_seconds = vr.total_seconds;
  out.measurement_count = vr.total_measurements;
  out.access_count = env.mach().controller().access_count();
  out.pool_size = entry.pool_size;
  out.assumed_bank_count = entry.bank_count;
  out.threshold_ns = vr.threshold_ns;
  return out;
}

}  // namespace

// --- job_feed ---------------------------------------------------------------

/// Max-heap order: higher priority first, then FIFO (lower ticket first).
static constexpr auto feed_less = [](const auto& a, const auto& b) {
  if (a.job.priority != b.job.priority) {
    return a.job.priority < b.job.priority;
  }
  return a.ticket > b.ticket;
};

std::uint64_t job_feed::push(job_spec job) {
  DRAMDIG_EXPECTS(tool_registry::global().contains(job.tool));
  std::scoped_lock lock(mutex_);
  if (closed_) {
    // Racing producers degrade instead of throwing, but a dropped job is
    // work that silently never runs — say which one.
    log_warn("job_feed: dropping push after close (machine " +
             job.machine.label() + ", tool '" + job.tool + "')");
    return 0;
  }
  const std::uint64_t ticket = next_ticket_++;
  heap_.push_back(item{std::move(job), ticket});
  std::push_heap(heap_.begin(), heap_.end(), feed_less);
  ready_.notify_one();
  return ticket;
}

void job_feed::close() {
  std::scoped_lock lock(mutex_);
  closed_ = true;
  ready_.notify_all();
}

bool job_feed::closed() const {
  std::scoped_lock lock(mutex_);
  return closed_;
}

std::size_t job_feed::pending() const {
  std::scoped_lock lock(mutex_);
  return heap_.size();
}

std::optional<job_feed::item> job_feed::pop() {
  std::unique_lock lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), feed_less);
  std::optional<item> out(std::move(heap_.back()));
  heap_.pop_back();
  return out;
}

// --- mapping_service --------------------------------------------------------

/// Store consultation verdict for one job, decided before execution.
struct mapping_service::dispatch_plan {
  enum class kind { none, cold, verify, warm } decision = kind::none;
  std::optional<store::store_entry> entry;  ///< verify/warm source entry
  sysinfo::machine_fingerprint fp;

  static dispatch_plan consult(const job_spec& job,
                               store::mapping_store* store) {
    dispatch_plan plan;
    if (store == nullptr || job.tool != "dramdig") return plan;
    plan.fp = sysinfo::fingerprint(job.machine);
    if (auto hit = store->find_exact(plan.fp)) {
      plan.decision = kind::verify;
      plan.entry = std::move(hit);
    } else if (auto near = store->find_geometry(plan.fp)) {
      plan.decision = kind::warm;
      plan.entry = std::move(near);
    } else {
      plan.decision = kind::cold;
    }
    return plan;
  }
};

mapping_service::mapping_service(service_config config)
    : config_(std::move(config)) {}

void mapping_service::execute_job(const job_spec& job,
                                  const dispatch_plan& plan, job_outcome& out,
                                  std::optional<store::store_entry>& update,
                                  const mapping_tool::phase_hook& hook,
                                  cancellation_token* cancel) const {
  using kind = dispatch_plan::kind;
  std::vector<store::verification_event> prior_history;
  const char* record_kind = "recovered";
  tool_options options = job.options;

  if (plan.decision == kind::verify) {
    // Exact fingerprint hit: a few hundred designed probes spot-check the
    // stored functions instead of re-deriving them.
    core::environment verify_env(job.machine, job.seed);
    const store::verify_report vr =
        store::verify_stored_mapping(verify_env, *plan.entry, config_.verify);
    if (vr.verified) {
      out.result = result_from_verification(verify_env, *plan.entry, vr);
      out.state = job_state::completed;
      out.store_hit = "verify";
      update = *plan.entry;
      update->history.push_back({"verified", job.seed, vr.total_measurements});
      return;
    }
    // Refuted: re-queue as a full recovery. Fresh environment, no hints —
    // the re-run is bit-identical to a cold job, and the poisoned entry
    // is overwritten below with the verify_failed event on its record.
    out.store_hit = "requeued";
    prior_history = plan.entry->history;
    prior_history.push_back(
        {"verify_failed", job.seed, vr.total_measurements});
    record_kind = "recovered";
    log_warn("mapping store entry refuted (" + vr.failure_reason +
             "); re-queued as full recovery");
  } else if (plan.decision == kind::warm) {
    // Geometry sibling: full recovery, warm-started from stored evidence.
    core::dramdig_config cfg = options.dramdig();
    core::dramdig_config::warm_hints hints;
    hints.function_span = plan.entry->function_span;
    hints.expected_pool = static_cast<std::size_t>(plan.entry->pool_size);
    // Schema-v2 entries carry the full evidence prior; a v1-era entry
    // (bank_count 0 = no claim) stays the span-only warm start it always
    // was. The evidence fields travel together — bit priors and pool
    // stratification are statements about the same recovering run the
    // bank count came from.
    if (plan.entry->bank_count > 0) {
      hints.bank_functions = plan.entry->bank_functions;
      hints.row_bits = plan.entry->row_bits;
      hints.column_bits = plan.entry->column_bits;
      hints.bank_count = plan.entry->bank_count;
      hints.threshold_ns = plan.entry->threshold_ns;
    }
    cfg.warm = std::move(hints);
    options.with_dramdig(std::move(cfg));
    out.store_hit = "warm";
    record_kind = "warm_recovered";
  } else if (plan.decision == kind::cold) {
    out.store_hit = "cold";
  }

  core::environment env(job.machine, job.seed);
  const auto tool = make_tool(job.tool, options);
  if (cancel != nullptr) {
    // Tools with internal abort points (DRAMA's trial loop) stop at the
    // next boundary once the token flips; their outcome reports
    // "aborted" and the job still completes normally.
    tool->bind_abort([cancel] { return cancel->cancelled(); });
  }
  out.result = tool->run(env, hook);
  out.state = job_state::completed;

  if (plan.decision != kind::none && out.result.success &&
      out.result.mapping) {
    update = entry_from_result(plan.fp, job, out.result, record_kind,
                               std::move(prior_history));
  }
}

std::vector<job_outcome> mapping_service::run(
    const std::vector<job_spec>& jobs, progress_observer* observer,
    cancellation_token* cancel) const {
  // Malformed specs fail the whole batch up front, before any worker runs
  // (tool options were already validated when the builder set them).
  for (const job_spec& job : jobs) {
    DRAMDIG_EXPECTS(tool_registry::global().contains(job.tool));
  }

  std::vector<job_outcome> outcomes(jobs.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) outcomes[i].index = i;
  if (jobs.empty()) return outcomes;

  // Store lookups run sequentially against the state at batch entry, so a
  // recovery completing mid-batch can never flip a sibling job from cold
  // to verify depending on thread timing — outcome[i] stays a pure
  // function of (jobs[i], store-at-entry). Updates apply after the batch,
  // in submission order (daemon mode trades this for live consultation).
  std::vector<dispatch_plan> plans;
  plans.reserve(jobs.size());
  for (const job_spec& job : jobs) {
    plans.push_back(dispatch_plan::consult(job, config_.store));
  }
  std::vector<std::optional<store::store_entry>> updates(jobs.size());

  const unsigned threads =
      config_.threads == 0 ? default_shard_count() : config_.threads;
  const std::size_t workers = std::min<std::size_t>(threads, jobs.size());

  // Worker slots drain a shared queue; each claimed job is self-contained
  // (own environment, own rng), so the claim order never reaches the
  // results — only the wall clock.
  std::atomic<std::size_t> next{0};
  std::mutex observer_mutex;
  const auto notify = [&](const auto& fire) {
    if (observer == nullptr) return;
    std::scoped_lock lock(observer_mutex);
    fire();
  };

  parallel_for_shards(
      workers, static_cast<unsigned>(workers), [&](const shard&) {
        while (true) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          const job_spec& job = jobs[i];
          job_outcome& out = outcomes[i];
          if (cancel != nullptr && cancel->cancelled()) {
            out.state = job_state::cancelled;
            out.result.tool = job.tool;
            out.result.outcome = "cancelled";
            notify([&] { observer->on_job_done(i, out); });
            continue;
          }
          out.state = job_state::running;
          notify([&] { observer->on_job_start(i, job); });
          const auto t0 = std::chrono::steady_clock::now();
          try {
            mapping_tool::phase_hook hook;
            if (observer != nullptr) {
              hook = [&notify, &observer, i](std::string_view phase,
                                             const core::phase_stats& delta) {
                notify([&] { observer->on_job_phase(i, phase, delta); });
              };
            }
            execute_job(job, plans[i], out, updates[i], hook, cancel);
          } catch (const std::exception& e) {
            out.state = job_state::failed;
            out.result.tool = job.tool;
            out.result.outcome = "error";
            out.result.failure_reason = e.what();
            updates[i].reset();
          }
          out.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          notify([&] { observer->on_job_done(i, out); });
        }
      });

  if (config_.store != nullptr) {
    for (std::optional<store::store_entry>& update : updates) {
      if (update) config_.store->put(std::move(*update));
    }
    try {
      config_.store->save();
    } catch (const std::exception& e) {
      // Persistence is best-effort: a read-only disk costs the next run a
      // cold start, it must not fail a batch that already computed.
      log_warn(std::string("mapping store save failed: ") + e.what());
    }
  }
  return outcomes;
}

std::size_t mapping_service::serve(job_feed& feed, const result_sink& sink,
                                   cancellation_token* cancel) const {
  const unsigned workers =
      config_.threads == 0 ? default_shard_count() : config_.threads;
  std::mutex sink_mutex;
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> claim_seq{0};

  parallel_for_shards(workers, workers, [&](const shard&) {
    while (std::optional<job_feed::item> item = feed.pop()) {
      const std::size_t seq =
          claim_seq.fetch_add(1, std::memory_order_relaxed);
      served_outcome record{item->ticket, item->job.priority,
                            std::move(item->job), job_outcome{}, {}};
      record.outcome.index = seq;
      job_outcome& out = record.outcome;
      if (cancel != nullptr && cancel->cancelled()) {
        out.state = job_state::cancelled;
        out.result.tool = record.job.tool;
        out.result.outcome = "cancelled";
      } else {
        const auto t0 = std::chrono::steady_clock::now();
        // Live store consultation: a daemon's later jobs should see its
        // earlier recoveries, so lookup happens at claim time and the
        // update (plus save) lands before the next claim of the same
        // fingerprint on this worker.
        const dispatch_plan plan =
            dispatch_plan::consult(record.job, config_.store);
        std::optional<store::store_entry> update;
        out.state = job_state::running;
        try {
          execute_job(record.job, plan, out, update, {}, cancel);
        } catch (const std::exception& e) {
          out.state = job_state::failed;
          out.result.tool = record.job.tool;
          out.result.outcome = "error";
          out.result.failure_reason = e.what();
          update.reset();
        }
        out.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        if (config_.store != nullptr && update) {
          config_.store->put(std::move(*update));
          try {
            config_.store->save();
          } catch (const std::exception& e) {
            log_warn(std::string("mapping store save failed: ") + e.what());
          }
        }
      }
      {
        json_writer w;
        w.begin_object();
        w.key("ticket").value(record.ticket);
        w.key("priority").value(record.priority);
        w.key("machine").value(record.job.machine.number);
        w.key("tool").value(record.job.tool);
        w.key("seed").value(record.job.seed);
        w.key("state").value(state_name(out.state));
        w.key("store_hit").value(out.store_hit);
        w.key("wall_seconds").value(out.wall_seconds);
        w.key("result");
        out.result.to_json(w);
        w.end_object();
        record.json = w.str();
      }
      served.fetch_add(1, std::memory_order_relaxed);
      if (sink) {
        std::scoped_lock lock(sink_mutex);
        sink(record);
      }
    }
  });
  return served.load(std::memory_order_relaxed);
}

}  // namespace dramdig::api

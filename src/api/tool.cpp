#include "api/tool.h"

#include <utility>

#include "util/expect.h"
#include "util/gf2.h"
#include "util/json.h"

namespace dramdig::api {

namespace {

/// Forward one phase event to up to two consumers (a config-supplied hook
/// plus the run() caller's hook).
core::phase_callback chain(core::phase_callback first,
                           const mapping_tool::phase_hook& second) {
  if (!first) return second;
  if (!second) return first;
  return [first = std::move(first), second](std::string_view phase,
                                            const core::phase_stats& delta) {
    first(phase, delta);
    second(phase, delta);
  };
}

/// Access deltas are metered per run so a result is comparable whether the
/// environment is fresh (service jobs) or reused (a REPL-style driver).
class access_meter {
 public:
  explicit access_meter(core::environment& env)
      : env_(env), a0_(env.mach().controller().access_count()) {}
  [[nodiscard]] std::uint64_t delta() const {
    return env_.mach().controller().access_count() - a0_;
  }

 private:
  core::environment& env_;
  std::uint64_t a0_;
};

class dramdig_adapter final : public mapping_tool {
 public:
  explicit dramdig_adapter(const tool_options& options) : options_(options) {}

  [[nodiscard]] tool_description describe() const override {
    return {"dramdig", "DRAMDig",
            "knowledge-assisted three-step pipeline (this paper)"};
  }

  [[nodiscard]] tool_result run(core::environment& env,
                                const phase_hook& hook) override {
    core::dramdig_config cfg = options_.dramdig();
    cfg.on_phase = chain(cfg.on_phase, hook);
    access_meter accesses(env);
    const core::dramdig_report report = core::dramdig_tool(env, cfg).run();

    tool_result out;
    out.tool = "dramdig";
    out.success = report.success;
    out.mapping = report.mapping;
    out.verified = report.success && report.mapping &&
                   report.mapping->equivalent_to(env.spec().mapping);
    out.outcome = report.success ? "success" : "failed";
    out.detail = "pool " + std::to_string(report.pool_size) + ", " +
                 std::to_string(report.pile_count) + " piles, " +
                 std::to_string(report.attempts_used) + " attempt(s)";
    out.failure_reason = report.failure_reason;
    out.phases = {
        {"calibration", report.calibration.seconds,
         report.calibration.measurements, report.calibration.pairs_used},
        {"coarse", report.coarse.seconds, report.coarse.measurements, 0},
        {"selection", report.selection.seconds, report.selection.measurements,
         0},
        {"partition", report.partition.seconds, report.partition.measurements,
         0},
        {"functions", report.functions.seconds, report.functions.measurements,
         0},
        {"fine", report.fine.seconds, report.fine.measurements, 0},
    };
    out.probe_rounds = report.probe;
    out.virtual_seconds = report.total_seconds;
    out.measurement_count = report.total_measurements;
    out.measurements_saved = report.measurements_saved;
    out.access_count = accesses.delta();
    out.pool_size = report.pool_size;
    out.assumed_bank_count = report.assumed_bank_count;
    out.threshold_ns = report.threshold_ns;
    return out;
  }

 private:
  tool_options options_;
};

class drama_adapter final : public mapping_tool {
 public:
  explicit drama_adapter(const tool_options& options) : options_(options) {}

  [[nodiscard]] tool_description describe() const override {
    return {"drama", "DRAMA (Pessl et al.)",
            "blind clustering + XOR brute force with trial agreement"};
  }

  void bind_abort(std::function<bool()> should_abort) override {
    abort_ = std::move(should_abort);
  }

  [[nodiscard]] tool_result run(core::environment& env,
                                const phase_hook& hook) override {
    baselines::drama_config cfg = options_.drama();
    // Per-trial events stream to both the config's own consumer and the
    // service observer; the terminal "trials" record stays in the phases
    // list, so observers summing event deltas still see the exact totals.
    cfg.on_phase = chain(cfg.on_phase, hook);
    if (abort_) {
      if (auto existing = std::move(cfg.should_abort); existing) {
        cfg.should_abort = [existing = std::move(existing), this] {
          return existing() || abort_();
        };
      } else {
        cfg.should_abort = abort_;
      }
    }
    access_meter accesses(env);
    const baselines::drama_report report =
        baselines::drama_tool(env, cfg).run();

    tool_result out;
    out.tool = "drama";
    out.success = report.completed;
    out.mapping = report.mapping;
    // DRAMA's claim is the bank-function span; its fixed 13-column row
    // heuristic is an assumption, not an output, so span match is the
    // right correctness notion (the one Table I scores).
    out.verified =
        report.completed &&
        gf2::same_span(report.functions, env.spec().mapping.bank_functions());
    out.outcome = report.completed   ? "completed"
                  : report.aborted   ? "aborted"
                  : report.timed_out ? "timeout"
                                     : "no agreement";
    out.detail = std::to_string(report.trials_run) + " trials";
    if (!report.completed) {
      out.failure_reason =
          report.aborted   ? "cancelled before two agreeing trials"
          : report.timed_out ? "budget expired without two agreeing trials"
                             : "no two consecutive trials agreed";
    }
    out.phases = {{"trials", report.total_seconds, report.total_measurements,
                   0}};
    out.virtual_seconds = report.total_seconds;
    out.measurement_count = report.total_measurements;
    out.measurements_saved = report.measurements_saved;
    out.access_count = accesses.delta();
    return out;
  }

 private:
  tool_options options_;
  std::function<bool()> abort_;
};

class xiao_adapter final : public mapping_tool {
 public:
  explicit xiao_adapter(const tool_options& options) : options_(options) {}

  [[nodiscard]] tool_description describe() const override {
    return {"xiao", "Xiao et al.",
            "verified microarchitecture templates + stride scan"};
  }

  void bind_abort(std::function<bool()> should_abort) override {
    abort_ = std::move(should_abort);
  }

  [[nodiscard]] tool_result run(core::environment& env,
                                const phase_hook& hook) override {
    baselines::xiao_config cfg = options_.xiao();
    // Per-stage events stream to both the config's own consumer and the
    // service observer; the terminal "scan" record stays in the phases
    // list, so terminal-result consumers keep the old one-line summary
    // while live observers see the stage-by-stage deltas.
    cfg.on_phase = chain(cfg.on_phase, hook);
    if (abort_) {
      if (auto existing = std::move(cfg.should_abort); existing) {
        cfg.should_abort = [existing = std::move(existing), this] {
          return existing() || abort_();
        };
      } else {
        cfg.should_abort = abort_;
      }
    }
    access_meter accesses(env);
    const baselines::xiao_report report =
        baselines::xiao_tool(env, cfg).run();

    tool_result out;
    out.tool = "xiao";
    out.success = report.success;
    out.mapping = report.mapping;
    out.verified = report.success && report.mapping &&
                   report.mapping->equivalent_to(env.spec().mapping);
    out.outcome = report.success   ? "success"
                  : report.aborted ? "aborted"
                  : report.stalled ? "stuck"
                                   : "failed";
    out.detail = report.note;
    if (!report.success) {
      out.failure_reason = report.note.empty() ? "no mapping produced"
                                               : report.note;
    }
    out.phases = {{"scan", report.total_seconds, report.total_measurements,
                   0}};
    out.virtual_seconds = report.total_seconds;
    out.measurement_count = report.total_measurements;
    out.access_count = accesses.delta();
    return out;
  }

 private:
  tool_options options_;
  std::function<bool()> abort_;
};

}  // namespace

void tool_result::to_json(json_writer& w) const {
  w.begin_object();
  w.key("tool").value(tool);
  w.key("success").value(success);
  w.key("verified").value(verified);
  w.key("outcome").value(outcome);
  w.key("failure_reason").value(failure_reason);
  w.key("detail").value(detail);
  w.key("virtual_seconds").value(virtual_seconds);
  w.key("measurement_count").value(measurement_count);
  w.key("measurements_saved").value(measurements_saved);
  w.key("access_count").value(access_count);
  w.key("pool_size").value(pool_size);
  w.key("assumed_bank_count").value(assumed_bank_count);
  w.key("threshold_ns").value(threshold_ns);
  w.key("mapping");
  if (mapping) {
    w.begin_object();
    w.key("functions").value(mapping->describe_functions());
    w.key("row_bits").value(dram::describe_bit_ranges(mapping->row_bits()));
    w.key("column_bits")
        .value(dram::describe_bit_ranges(mapping->column_bits()));
    w.end_object();
  } else {
    w.null_value();
  }
  w.key("phases").begin_array();
  for (const tool_phase& p : phases) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("seconds").value(p.seconds);
    w.key("measurements").value(p.measurements);
    w.key("pairs_used").value(p.pairs_used);
    w.end_object();
  }
  w.end_array();
  w.key("probe_rounds").begin_object();
  w.key("experiments").value(probe_rounds.experiments);
  w.key("rounds").value(probe_rounds.rounds);
  w.key("votes_cast").value(probe_rounds.votes_cast);
  w.key("votes_saved").value(probe_rounds.votes_saved);
  w.key("shared_base_votes").value(probe_rounds.shared_base_votes);
  w.key("reused_votes").value(probe_rounds.reused_votes);
  w.end_object();
  w.end_object();
}

std::string tool_result::to_json_string() const {
  json_writer w;
  to_json(w);
  return w.str();
}

tool_options& tool_options::with_dramdig(core::dramdig_config cfg) {
  DRAMDIG_EXPECTS(cfg.buffer_fraction > 0.0 && cfg.buffer_fraction < 0.95);
  DRAMDIG_EXPECTS(cfg.max_attempts >= 1);
  dramdig_ = std::move(cfg);
  return *this;
}

tool_options& tool_options::with_drama(baselines::drama_config cfg) {
  DRAMDIG_EXPECTS(cfg.pool_size >= 64);
  DRAMDIG_EXPECTS(cfg.max_function_bits >= 1);
  drama_ = std::move(cfg);
  return *this;
}

tool_options& tool_options::with_xiao(baselines::xiao_config cfg) {
  DRAMDIG_EXPECTS(cfg.rounds_per_measurement >= 1);
  DRAMDIG_EXPECTS(cfg.verification_pairs >= 1);
  xiao_ = std::move(cfg);
  return *this;
}

tool_options& tool_options::with_tool_seed(std::uint64_t seed) {
  dramdig_.tool_seed = seed;
  drama_.tool_seed = seed;
  xiao_.tool_seed = seed;
  return *this;
}

tool_registry& tool_registry::global() {
  static tool_registry* instance = [] {
    auto* r = new tool_registry();
    r->add("dramdig", [](const tool_options& o) {
      return std::make_unique<dramdig_adapter>(o);
    });
    r->add("drama", [](const tool_options& o) {
      return std::make_unique<drama_adapter>(o);
    });
    r->add("xiao", [](const tool_options& o) {
      return std::make_unique<xiao_adapter>(o);
    });
    return r;
  }();
  return *instance;
}

void tool_registry::add(const std::string& name, factory make) {
  DRAMDIG_EXPECTS(!name.empty());
  DRAMDIG_EXPECTS(make != nullptr);
  std::scoped_lock lock(mutex_);
  DRAMDIG_EXPECTS(!factories_.contains(name));
  factories_.emplace(name, std::move(make));
}

bool tool_registry::contains(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  return factories_.contains(name);
}

std::vector<std::string> tool_registry::names() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, make] : factories_) out.push_back(name);
  return out;  // std::map iteration order is already sorted
}

std::unique_ptr<mapping_tool> tool_registry::make(
    const std::string& name, const tool_options& options) const {
  factory make;
  {
    std::scoped_lock lock(mutex_);
    const auto it = factories_.find(name);
    DRAMDIG_EXPECTS(it != factories_.end());
    make = it->second;
  }
  return make(options);
}

std::unique_ptr<mapping_tool> make_tool(const std::string& name,
                                        const tool_options& options) {
  return tool_registry::global().make(name, options);
}

}  // namespace dramdig::api

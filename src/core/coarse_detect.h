// Step 1: coarse-grained row & column bit detection (paper Section III-C).
//
// Row bits: flip one physical-address bit; if the pair measures slow the
// two addresses are same-bank-different-row, so the flipped bit addresses
// rows (and nothing else). Column bits: flip a known row bit together with
// a candidate bit; slow means the candidate kept the bank (and the row bit
// supplied the conflict), so the candidate addresses columns. Everything
// left over is a (possible) bank bit — including the row/column bits that
// also feed bank functions, which stay "covered" until Step 3.
#pragma once

#include <cstdint>
#include <vector>

#include "core/domain_knowledge.h"
#include "core/measurement_plan.h"
#include "os/address_space.h"
#include "timing/channel.h"
#include "util/rng.h"

namespace dramdig::core {

struct coarse_config {
  unsigned votes = 7;             ///< pairs measured per bit, majority wins
  unsigned pair_attempts = 256;   ///< random bases tried to find a pair
};

struct coarse_result {
  std::vector<unsigned> row_bits;     ///< row-only bits found by timing
  std::vector<unsigned> column_bits;  ///< knowledge low bits + detected
  std::vector<unsigned> bank_bits;    ///< the covered remainder ("B")
  std::vector<unsigned> untestable_bits;  ///< no measurable pair existed
};

/// Run Step 1 against the buffer. Requires a calibrated channel. Votes go
/// through the measurement-reuse scheduler, so a pair re-picked across
/// votes (or later pipeline stages) never pays twice.
[[nodiscard]] coarse_result run_coarse_detection(
    measurement_plan& plan, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, rng& r, const coarse_config& config = {});

/// Convenience overload with a call-local plan.
[[nodiscard]] coarse_result run_coarse_detection(
    timing::channel& channel, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, rng& r, const coarse_config& config = {});

}  // namespace dramdig::core

// Step 1: coarse-grained row & column bit detection (paper Section III-C).
//
// Row bits: flip one physical-address bit; if the pair measures slow the
// two addresses are same-bank-different-row, so the flipped bit addresses
// rows (and nothing else). Column bits: flip a known row bit together with
// a candidate bit; slow means the candidate kept the bank (and the row bit
// supplied the conflict), so the candidate addresses columns. Everything
// left over is a (possible) bank bit — including the row/column bits that
// also feed bank functions, which stay "covered" until Step 3.
//
// Both passes are served by the designed-experiment bit-probe engine: the
// whole pass is planned up front and voted in cross-bit rounds (one
// controller batch per round, pairs designed around shared bases, early
// vote termination), with the legacy per-bit loops behind
// probe_config::use_designed = false as the differential oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bit_probe.h"
#include "core/domain_knowledge.h"
#include "core/measurement_plan.h"
#include "os/address_space.h"
#include "timing/channel.h"
#include "util/rng.h"

namespace dramdig::core {

/// A geometry sibling's recovered mapping, offered as an advisory prior
/// (fleet warm start — store::mapping_store evidence). Consumers derive
/// per-experiment vote predictions from it; every prediction is still
/// measurement-confirmed before it decides anything, and a disagreeing
/// vote drops the prediction for that experiment (bit_probe prior rules).
struct mapping_prior {
  std::vector<std::uint64_t> bank_functions;  ///< claimed XOR masks
  std::vector<unsigned> row_bits;             ///< claimed full row set
  std::vector<unsigned> column_bits;          ///< claimed full column set
};

struct coarse_config {
  /// Vote/design parameters of the probe engine (7 votes, majority wins).
  probe_config probe{};
  /// Sibling evidence seeding per-bit vote priors (empty = cold).
  std::optional<mapping_prior> prior{};
};

struct coarse_result {
  std::vector<unsigned> row_bits;     ///< row-only bits found by timing
  std::vector<unsigned> column_bits;  ///< knowledge low bits + detected
  std::vector<unsigned> bank_bits;    ///< the covered remainder ("B")
  std::vector<unsigned> untestable_bits;  ///< no measurable pair existed
};

/// Run Step 1 through a caller-owned probe engine (shared with fine
/// detection, so both phases accrete one evidence substrate). Requires a
/// calibrated channel.
[[nodiscard]] coarse_result run_coarse_detection(
    bit_probe_engine& probe, const domain_knowledge& knowledge, rng& r,
    const coarse_config& config = {});

/// Convenience overload with a call-local engine over `plan`.
[[nodiscard]] coarse_result run_coarse_detection(
    measurement_plan& plan, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, rng& r, const coarse_config& config = {});

/// Convenience overload with a call-local plan.
[[nodiscard]] coarse_result run_coarse_detection(
    timing::channel& channel, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, rng& r, const coarse_config& config = {});

}  // namespace dramdig::core

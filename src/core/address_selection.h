// Step 2 phase 1: physical-address selection (paper Algorithm 1).
//
// Goal: a pool of physical addresses that enumerates *every* combination of
// the candidate bank bits exactly once while all other bits stay fixed —
// then bank functions are the only thing distinguishing pool members.
// Requires a physically contiguous region spanning bit positions
// [b_min, b_max]; in-range bits that are not candidates (the paper's
// miss_mask) are pinned so the pool stays small: this is where domain
// knowledge turns DRAMA's blind sampling into a minimal designed
// experiment (16384 addresses on the Skylake 16 GiB machines, 64 on the
// smallest — the counts Section IV-B reports).
#pragma once

#include <cstdint>
#include <vector>

#include "os/address_space.h"

namespace dramdig::core {

struct selection_result {
  bool found = false;
  std::uint64_t p_start = 0;      ///< contiguous range start (inclusive)
  std::uint64_t p_end = 0;        ///< range end (exclusive)
  std::uint64_t range_mask = 0;   ///< bits [b_min, b_max]
  std::uint64_t miss_mask = 0;    ///< in-range non-candidate bits (pinned 1)
  unsigned b_min = 0;
  unsigned b_max = 0;
  std::vector<std::uint64_t> pool;  ///< deduplicated selected addresses
};

/// Run Algorithm 1 over the buffer for candidate bank bits `bank_bits`
/// (ascending). Returns found=false when no contiguous backing range
/// covers the bank-bit span (heavily fragmented system).
[[nodiscard]] selection_result select_addresses(
    const os::mapping_region& buffer, const std::vector<unsigned>& bank_bits);

}  // namespace dramdig::core

#include "core/bit_probe.h"

#include "core/probe_util.h"
#include "util/expect.h"

namespace dramdig::core {

bit_probe_engine::bit_probe_engine(measurement_plan& plan,
                                   const os::mapping_region& buffer)
    : plan_(plan), buffer_(buffer) {}

std::vector<std::optional<bool>> bit_probe_engine::run(
    std::span<const std::uint64_t> deltas, const probe_config& config, rng& r,
    std::string_view stage) {
  return run(deltas, {}, config, r, stage);
}

std::vector<std::optional<bool>> bit_probe_engine::run(
    std::span<const std::uint64_t> deltas,
    std::span<const std::optional<bool>> priors, const probe_config& config,
    rng& r, std::string_view stage) {
  DRAMDIG_EXPECTS(config.votes >= 1);
  DRAMDIG_EXPECTS(priors.empty() || priors.size() == deltas.size());
  stats_.experiments += deltas.size();
  return config.use_designed ? run_designed(deltas, priors, config, r, stage)
                             : run_legacy(deltas, config, r);
}

std::optional<bool> bit_probe_engine::run_one(std::uint64_t delta,
                                              const probe_config& config,
                                              rng& r, std::string_view stage) {
  const std::uint64_t deltas[1] = {delta};
  return run(deltas, config, r, stage).front();
}

// The differential oracle: sequential experiments, each voting over
// `votes` independently random pairs in one strict batch — a literal
// transcription of the vote_sbdr/vote_delta loops the engine replaced
// (same rng consumption, same verdict arithmetic).
std::vector<std::optional<bool>> bit_probe_engine::run_legacy(
    std::span<const std::uint64_t> deltas, const probe_config& config,
    rng& r) {
  std::vector<std::optional<bool>> out(deltas.size());
  std::vector<sim::addr_pair> pairs;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    pairs.clear();
    pairs.reserve(config.votes);
    for (unsigned v = 0; v < config.votes; ++v) {
      const auto pair =
          pick_pair_with_delta(buffer_, deltas[i], r, config.pair_attempts);
      if (pair) pairs.push_back(*pair);
    }
    if (pairs.empty()) continue;  // untestable
    const std::vector<char> verdicts = plan_.is_sbdr_strict_batch(pairs);
    unsigned high = 0;
    for (char v : verdicts) high += v != 0;
    out[i] = high * 2 > pairs.size();
    stats_.votes_cast += pairs.size();
  }
  return out;
}

std::vector<std::optional<bool>> bit_probe_engine::run_designed(
    std::span<const std::uint64_t> deltas,
    std::span<const std::optional<bool>> priors, const probe_config& config,
    rng& r, std::string_view stage) {
  struct experiment {
    unsigned pos = 0;    ///< positive votes
    unsigned cast = 0;   ///< votes cast (pair picking can miss a round)
    unsigned agree = 0;  ///< consecutive votes agreeing with the prior
    bool done = false;
    bool verdict = false;
    bool has_prior = false;
    bool prior = false;
  };
  std::vector<experiment> state(deltas.size());
  if (!priors.empty() && config.prior_confirm >= 1) {
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      if (priors[i]) {
        state[i].has_prior = true;
        state[i].prior = *priors[i];
      }
    }
  }
  auto& controller = plan_.channel().controller();

  std::vector<std::size_t> active;
  std::vector<std::uint64_t> active_deltas;
  std::vector<sim::addr_pair> pairs;
  std::vector<std::size_t> pair_exp;
  for (unsigned round = 0; round < config.votes; ++round) {
    active.clear();
    active_deltas.clear();
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      if (!state[i].done) {
        active.push_back(i);
        active_deltas.push_back(deltas[i]);
      }
    }
    if (active.empty()) break;
    const std::uint64_t m0 = controller.measurement_count();

    // Design the round around one shared base; deltas it cannot serve
    // fall back to an independent pick (and a pick can fail outright —
    // that experiment simply misses this vote).
    const auto base =
        pick_shared_base(buffer_, active_deltas, r, config.base_attempts);
    pairs.clear();
    pair_exp.clear();
    for (std::size_t j = 0; j < active.size(); ++j) {
      const std::uint64_t d = active_deltas[j];
      if (base && buffer_.contains_page((*base ^ d) / os::kPageSize)) {
        pairs.emplace_back(*base, *base ^ d);
        ++stats_.shared_base_votes;
      } else if (const auto pick =
                     pick_pair_with_delta(buffer_, d, r, config.pair_attempts)) {
        pairs.push_back(*pick);
      } else {
        continue;
      }
      pair_exp.push_back(active[j]);
    }
    ++stats_.rounds;
    if (!pairs.empty()) {
      const auto outcome = plan_.probe_pairs(pairs);
      stats_.reused_votes += outcome.reused;
      stats_.votes_cast += pairs.size();
      for (std::size_t k = 0; k < pairs.size(); ++k) {
        experiment& e = state[pair_exp[k]];
        ++e.cast;
        const bool vote = outcome.sbdr[k] != 0;
        e.pos += vote;
        if (e.has_prior) {
          if (vote == e.prior) {
            ++e.agree;
          } else {
            // A strict-grade vote against the claim: the prior is wrong
            // for this experiment. Drop it and let the standard majority
            // decide — advisory evidence costs votes, never the verdict.
            e.has_prior = false;
            ++stats_.priors_refuted;
          }
        }
      }
    }

    // Early termination: decide every experiment whose remaining rounds
    // cannot flip its majority. With k more rounds an experiment gains at
    // most k votes, so positive is locked once pos*2 > cast + k (even
    // all-negative remainders keep the majority) and negative once
    // pos*2 + k <= cast (even all-positive remainders cannot reach it).
    const unsigned remaining = config.votes - round - 1;
    for (const std::size_t i : active) {
      experiment& e = state[i];
      if (e.has_prior && e.agree >= config.prior_confirm) {
        // Prior confirmed by strict-grade agreement: settled early.
        e.done = true;
        e.verdict = e.prior;
        stats_.votes_saved += remaining;
        ++stats_.priors_confirmed;
        continue;
      }
      if (e.pos * 2 > e.cast + remaining) {
        e.done = true;
        e.verdict = true;
        stats_.votes_saved += remaining;
      } else if (e.pos * 2 + remaining <= e.cast) {
        e.done = true;
        e.verdict = false;
        stats_.votes_saved += remaining;
      }
    }
    if (on_round_) {
      on_round_(probe_round_event{stage, round, active.size(),
                                  static_cast<std::uint64_t>(pairs.size()),
                                  controller.measurement_count() - m0});
    }
  }

  std::vector<std::optional<bool>> out(deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const experiment& e = state[i];
    if (e.cast == 0) continue;  // untestable: no pair ever found
    out[i] = e.done ? e.verdict : e.pos * 2 > e.cast;
  }
  return out;
}

}  // namespace dramdig::core

// Helpers for picking measurable address pairs out of an allocated buffer.
//
// Every probing step needs pairs (p, p ^ delta) where both sides are backed
// by the tool's buffer. Bits below the page size are always satisfiable
// inside one page; higher bits require the partner frame to be present,
// which the picker verifies against the buffer's pagemap.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "os/address_space.h"
#include "util/rng.h"

namespace dramdig::core {

/// A random cache-line-aligned physical address inside the buffer.
[[nodiscard]] std::uint64_t random_buffer_address(
    const os::mapping_region& buffer, rng& r);

/// Find (p, p ^ delta) with both physical pages inside the buffer; tries
/// up to `attempts` random bases. The low 6 bits of p are cleared so pairs
/// are cache-line aligned.
[[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
pick_pair_with_delta(const os::mapping_region& buffer, std::uint64_t delta,
                     rng& r, unsigned attempts = 256);

/// Pick a shared base for one designed probe round: try `attempts` random
/// cache-line-aligned bases and return the one whose partner pages
/// (base ^ delta) back the most of `deltas` — so a single base serves the
/// whole round's pairs and the round's evidence concentrates on few
/// addresses. nullopt when no candidate serves any delta.
[[nodiscard]] std::optional<std::uint64_t> pick_shared_base(
    const os::mapping_region& buffer, std::span<const std::uint64_t> deltas,
    rng& r, unsigned attempts = 6);

/// A sample pool of random buffer addresses (used for threshold
/// calibration).
[[nodiscard]] std::vector<std::uint64_t> sample_addresses(
    const os::mapping_region& buffer, std::size_t count, rng& r);

}  // namespace dramdig::core

// The bank classification engine: one measurement substrate for every
// partitioning tool in the repo (DRAMDig's Algorithm 2 and the DRAMA
// baseline's clustering sweeps).
//
// Piles are first-class bank_class objects carrying a small set of
// row-distinct representatives drawn from strict-SBDR-verified members.
// Because an address can share a row with at most one of a class's
// pairwise row-distinct representatives, a same-row false negative can
// never mis-route an address: the second representative catches it.
//
// The representative driver classifies each unassigned address against
// one representative per open class (single-sample votes batched per
// round through the measurement plan, positives strict-verified before
// they can touch a pile), falling back to the second representative and
// only then to a fresh-pivot founder scan. What makes it cheap is the
// knowledge-assisted vote ordering: the strict-verified piles' XOR
// differences pin down the bank-function span (the same GF(2) null-space
// detect_functions uses), and once that span's dimension matches
// log2(#banks) it is provably exact — every address's bank id is then
// computable host-side, the first vote goes to the predicted class, and
// founder scans shrink from full-pool sweeps to the predicted group.
// Every assignment is still measurement-verified (strict min filter), so
// a defective prediction can cost measurements but never purity.
//
// The engine is built directly on core/measurement_plan: classes ARE the
// plan's union-find classes (representative verdicts merge and query
// them), vote negatives feed the plan's witness lists, and the plan's
// cross-pile proofs skip votes the cache already implies — so a
// directory that survives across calls (the bank-count sweep) re-resolves
// for free.
#pragma once

#include <cstdint>
#include <vector>

#include "core/measurement_plan.h"
#include "core/partition.h"
#include "util/gf2.h"
#include "util/rng.h"

namespace dramdig::core {

/// One same-bank class: members (element 0 is the founding pivot) plus
/// the row-distinct representatives that classify against it.
struct bank_class {
  std::vector<std::uint64_t> members;
  /// Pairwise row-distinct, strict-SBDR-verified; [0] is the pivot.
  std::vector<std::uint64_t> representatives;
};

struct classifier_stats {
  std::uint64_t representative_votes = 0;  ///< single-sample votes cast
  std::uint64_t fallback_votes = 0;   ///< second-representative votes
  std::uint64_t free_assignments = 0;  ///< resolved from the plan's classes
  std::uint64_t predicted_assignments = 0;  ///< first-vote / group-scan hits
  unsigned founder_scans = 0;        ///< pivot scans run to open classes
  unsigned group_founder_scans = 0;  ///< founder scans limited to a group
};

class bank_classifier {
 public:
  explicit bank_classifier(measurement_plan& plan) : plan_(plan) {}

  /// Partition `pool` into same-bank piles (paper Algorithm 2 semantics:
  /// delta window on pile sizes, per_threshold stop). Dispatches to the
  /// representative driver or the legacy pivot-scan loop per
  /// partition_config::use_representatives; the class directory persists
  /// across calls until clear().
  [[nodiscard]] partition_outcome partition(std::vector<std::uint64_t> pool,
                                            unsigned bank_count, rng& r,
                                            const partition_config& config);

  /// DRAMA-style clustering: repeatedly pick a random base and peel its
  /// single-sample positives off the remaining pool — no verification, no
  /// size window, undersized sets consumed (exactly how the original tool
  /// loses banks). Runs through the same plan/channel batch substrate as
  /// the representative driver, so a scalar measure_pair loop with the
  /// same draws produces bit-identical sets.
  struct peel_config {
    std::size_t stop_remaining = 0;  ///< stop when the pool shrinks to this
    unsigned max_sweeps = 100;
    std::size_t min_set_size = 1;  ///< smaller sets are dropped (consumed)
  };
  struct peel_outcome {
    std::vector<std::vector<std::uint64_t>> sets;  ///< [0] = base address
    unsigned sweeps = 0;
  };
  [[nodiscard]] peel_outcome peel(std::vector<std::uint64_t> pool, rng& r,
                                  const peel_config& config);

  [[nodiscard]] const std::vector<bank_class>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const classifier_stats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] measurement_plan& plan() noexcept { return plan_; }

  /// Fleet warm start: seed the knowledge-assisted prediction with a
  /// bank-function span recovered on a geometry sibling (the mapping
  /// store's evidence). The representative driver consults the hint only
  /// while the accreted pile differences cannot pin the span themselves —
  /// so trusted prediction (predicted first votes, group-limited founder
  /// scans) engages from round 0 instead of after several piles. Safety is
  /// unchanged: every assignment is still measurement-verified, and the
  /// hint is dropped permanently the moment any measured same-bank
  /// difference contradicts it (a wrong hint costs measurements, never
  /// purity).
  void warm_start(gf2::matrix span_hint) {
    warm_span_ = std::move(span_hint);
    warm_poisoned_ = false;
  }
  /// True while a hint is installed and not yet contradicted.
  [[nodiscard]] bool warm_hint_active() const noexcept {
    return !warm_span_.empty() && !warm_poisoned_;
  }

  /// Drop the class directory (pairs with measurement_plan::reset() in the
  /// pipeline's retry loop: a poisoned merge must not outlive its attempt).
  /// Also drops any warm-start hint: a failed attempt is exactly the
  /// signal that imported evidence may be wrong for this machine.
  void clear() {
    classes_.clear();
    warm_span_.clear();
    warm_poisoned_ = false;
  }

 private:
  [[nodiscard]] partition_outcome pivot_scan_partition(
      std::vector<std::uint64_t> pool, unsigned bank_count, rng& r,
      const partition_config& config);
  [[nodiscard]] partition_outcome representative_partition(
      std::vector<std::uint64_t> pool, unsigned bank_count, rng& r,
      const partition_config& config);

  measurement_plan& plan_;
  std::vector<bank_class> classes_;
  classifier_stats stats_;
  /// Warm-start span hint (see warm_start) and its refutation latch.
  gf2::matrix warm_span_;
  bool warm_poisoned_ = false;
};

}  // namespace dramdig::core

#include "core/environment.h"

namespace dramdig::core {

namespace {
os::physical_memory_config phys_config(const dram::machine_spec& spec,
                                       double fragmentation) {
  os::physical_memory_config cfg{};
  cfg.total_bytes = spec.memory_bytes;
  cfg.fragmentation = fragmentation;
  return cfg;
}
}  // namespace

environment::environment(const dram::machine_spec& spec, std::uint64_t seed,
                         double fragmentation)
    : machine_(spec, seed, sim::timing_profile_for(spec)),
      phys_(phys_config(spec, fragmentation), rng(seed ^ 0x05a11c)),
      space_(phys_) {}

}  // namespace dramdig::core

// A complete device-under-test: the simulated machine plus its simulated
// OS. Tools, examples, tests and benchmarks all construct one of these and
// interact with the machine exclusively through timed accesses (the timing
// channel), mmap'd buffers and pagemap lookups — the same interface the
// real tools have.
#pragma once

#include <cstdint>

#include "dram/presets.h"
#include "os/address_space.h"
#include "os/physical_memory.h"
#include "sim/machine.h"
#include "sim/profiles.h"

namespace dramdig::core {

class environment {
 public:
  environment(const dram::machine_spec& spec, std::uint64_t seed,
              double fragmentation = 0.1);

  [[nodiscard]] sim::machine& mach() noexcept { return machine_; }
  [[nodiscard]] os::physical_memory& phys() noexcept { return phys_; }
  [[nodiscard]] os::address_space& space() noexcept { return space_; }
  [[nodiscard]] const dram::machine_spec& spec() const noexcept {
    return machine_.spec();
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return machine_.seed(); }

 private:
  sim::machine machine_;
  os::physical_memory phys_;
  os::address_space space_;
};

}  // namespace dramdig::core

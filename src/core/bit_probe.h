// The designed-experiment bit-probe engine behind the coarse and fine
// bit-classification phases (paper Sections III-C / III-E).
//
// Both phases ask one question many times over: "does delta d flip a row
// and nothing that changes the bank?" — answered by a majority vote of
// SBDR measurements on pairs (p, p ^ d). The legacy implementation served
// each bit its own fixed-count vote loop over independently random pairs:
// the row pass alone was ~30 sequential controller batches, every vote
// paid the full strict price, and no two picks ever coincided, so the
// measurement-reuse scheduler's memo never fired.
//
// The engine turns a whole phase into designed rounds:
//   * All candidate deltas' experiments are planned up front; per round,
//     every still-undecided experiment contributes one pair and the round
//     is serviced as ONE cross-bit controller batch.
//   * Pairs are designed around a shared base address: one base p serves
//     (p, p ^ d) for every delta whose partner page it backs, so the
//     round's evidence concentrates on few addresses — exact-pair memo
//     verdicts and witness/cross proofs accreted in the plan can actually
//     answer later probes (and partition scans) instead of being defeated
//     by independent random picks.
//   * Votes route through measurement_plan::probe_pairs: a single fast
//     sample already proves the strict verdict negative (noise is
//     one-sided), so only slow readings graduate to strict verification
//     with the vote sample folded into the min filter.
//   * Votes terminate early: an experiment stops the moment its remaining
//     rounds cannot flip the majority, instead of always burning
//     probe_config::votes strict measurements.
//
// The legacy per-bit loops survive bit-for-bit behind
// probe_config::use_designed = false as the differential oracle (the
// use_nullspace / use_representatives / closed_form_accounting house
// pattern); tests/core/test_bit_probe.cpp pins both modes to identical
// classifications on every paper preset and on randomized noisy seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/measurement_plan.h"
#include "os/address_space.h"
#include "util/rng.h"

namespace dramdig::core {

struct probe_config {
  /// Master switch: false replays the legacy per-bit fixed-vote loops
  /// bit-for-bit (sequential experiments, `votes` independent random
  /// pairs each, one strict batch per bit) as the differential oracle.
  bool use_designed = true;
  /// Maximum pairs voted per experiment; the majority decides. Designed
  /// mode stops a stream early once the remainder cannot flip it.
  unsigned votes = 7;
  /// Random bases tried per pair when the shared base cannot serve a
  /// delta (its partner page is not backed by the buffer).
  unsigned pair_attempts = 256;
  /// Shared-base candidates scored per designed round; the base backing
  /// the most active deltas wins.
  unsigned base_attempts = 6;
  /// Agreeing votes that settle an experiment carrying a prior (fleet
  /// warm start). 1 is sound, not reckless: a delta experiment's ground
  /// truth is shared by every pair (p, p ^ d), noise is one-sided (events
  /// only inflate latency), and probe_pairs grades every slow reading
  /// through the strict min filter — so a single fast sample is already
  /// proof of a negative and a single strict positive is proof of a
  /// positive. Any disagreeing vote refutes the prior for that experiment
  /// and escalates it to the standard `votes` majority.
  unsigned prior_confirm = 1;
};

/// Cumulative engine activity (across every run() of one engine).
struct probe_stats {
  std::uint64_t experiments = 0;       ///< deltas submitted
  std::uint64_t rounds = 0;            ///< designed controller rounds
  std::uint64_t votes_cast = 0;        ///< pair verdicts consumed by majorities
  std::uint64_t votes_saved = 0;       ///< votes skipped by early termination
  std::uint64_t shared_base_votes = 0; ///< pairs served off a round's shared base
  std::uint64_t reused_votes = 0;      ///< votes answered from the plan's cache
  std::uint64_t priors_confirmed = 0;  ///< experiments settled by an agreeing prior
  std::uint64_t priors_refuted = 0;    ///< priors dropped on a disagreeing vote
};

/// One designed round, as streamed to the round hook (legacy mode emits
/// nothing — the oracle replays the silent pre-engine loops).
struct probe_round_event {
  std::string_view stage;        ///< caller label ("coarse.row", "fine", ...)
  unsigned round = 0;            ///< round index within this run
  std::size_t active = 0;        ///< experiments still undecided entering it
  std::uint64_t votes = 0;       ///< votes cast this round
  std::uint64_t measurements = 0;///< controller measurements this round
};

class bit_probe_engine {
 public:
  using round_callback = std::function<void(const probe_round_event&)>;

  /// The engine measures exclusively through the plan (so verdicts accrete
  /// in the run-wide cache) and picks pairs from the buffer's pagemap.
  bit_probe_engine(measurement_plan& plan, const os::mapping_region& buffer);

  /// Majority-vote SBDR verdicts for a batch of delta experiments (deltas
  /// must be distinct — distinct deltas guarantee distinct pairs within a
  /// round). nullopt = untestable: no measurable pair was ever found.
  [[nodiscard]] std::vector<std::optional<bool>> run(
      std::span<const std::uint64_t> deltas, const probe_config& config,
      rng& r, std::string_view stage = "probe");

  /// Prior-seeded variant (fleet warm start): priors[i] predicts
  /// experiment i's verdict from stored sibling evidence (nullopt = no
  /// claim). An experiment whose first prior_confirm votes agree with its
  /// prior settles immediately (the votes are strict-grade, so the early
  /// verdict is as sound as the full majority); a disagreeing vote drops
  /// the prior for that experiment and the standard majority decides.
  /// Legacy mode (use_designed = false) ignores priors entirely — it is
  /// the differential oracle. priors must be empty or match deltas.size().
  [[nodiscard]] std::vector<std::optional<bool>> run(
      std::span<const std::uint64_t> deltas,
      std::span<const std::optional<bool>> priors, const probe_config& config,
      rng& r, std::string_view stage = "probe");

  /// Single-experiment convenience (fine's per-candidate confirmation).
  [[nodiscard]] std::optional<bool> run_one(std::uint64_t delta,
                                            const probe_config& config, rng& r,
                                            std::string_view stage = "probe");

  /// Per-round progress hook (designed mode only); dramdig_tool forwards
  /// these into its phase-event stream.
  void set_round_hook(round_callback hook) { on_round_ = std::move(hook); }

  [[nodiscard]] const probe_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] measurement_plan& plan() noexcept { return plan_; }
  [[nodiscard]] const os::mapping_region& buffer() const noexcept {
    return buffer_;
  }

 private:
  [[nodiscard]] std::vector<std::optional<bool>> run_legacy(
      std::span<const std::uint64_t> deltas, const probe_config& config,
      rng& r);
  [[nodiscard]] std::vector<std::optional<bool>> run_designed(
      std::span<const std::uint64_t> deltas,
      std::span<const std::optional<bool>> priors, const probe_config& config,
      rng& r, std::string_view stage);

  measurement_plan& plan_;
  const os::mapping_region& buffer_;
  probe_stats stats_;
  round_callback on_round_;
};

}  // namespace dramdig::core

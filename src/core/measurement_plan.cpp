#include "core/measurement_plan.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace dramdig::core {

namespace {

/// Canonical (unordered) key for a pair: SBDR is symmetric.
sim::addr_pair canonical(std::uint64_t a, std::uint64_t b) {
  return a <= b ? sim::addr_pair{a, b} : sim::addr_pair{b, a};
}

constexpr double kNoPrior = std::numeric_limits<double>::quiet_NaN();

}  // namespace

measurement_plan::measurement_plan(timing::channel& channel, plan_config config)
    : channel_(channel), config_(config) {}

void measurement_plan::warm_start(std::size_t expected_addresses) {
  if (expected_addresses == 0) return;
  if (config_.use_arena_index) {
    idx_.reserve(expected_addresses);
  } else {
    node_.reserve(expected_addresses);
    witnesses_.reserve(expected_addresses);
  }
  root_cache_.reserve(expected_addresses);
  root_stamp_.reserve(expected_addresses);
}

void measurement_plan::reset() {
  uf_ = union_find{};
  idx_.clear();
  node_.clear();
  witnesses_.clear();
  strict_memo_.clear();
  // Node ids restart from zero: a bumped epoch keeps the root cache from
  // ever serving a pre-reset entry.
  ++root_epoch_;
}

std::size_t measurement_plan::node_of(std::uint64_t addr) {
  if (config_.use_arena_index) {
    const std::size_t rec = idx_.find_or_create(addr);
    std::size_t n = idx_.node(rec);
    if (n == plan_index::npos) {
      n = uf_.make_set();
      idx_.set_node(rec, n);
    }
    return n;
  }
  const auto [it, inserted] = node_.try_emplace(addr, 0);
  if (inserted) it->second = uf_.make_set();
  return it->second;
}

std::size_t measurement_plan::node_if_known(std::uint64_t addr) const {
  if (config_.use_arena_index) {
    const std::size_t rec = idx_.find(addr);
    return rec == plan_index::npos ? npos : idx_.node(rec);
  }
  const auto it = node_.find(addr);
  return it == node_.end() ? npos : it->second;
}

std::size_t measurement_plan::cached_root(std::size_t node) {
  if (node >= root_cache_.size()) {
    root_cache_.resize(node + 1, 0);
    root_stamp_.resize(node + 1, 0);
  }
  if (root_stamp_[node] == root_epoch_) return root_cache_[node];
  const std::size_t root = uf_.find(node);
  root_cache_[node] = root;
  root_stamp_[node] = root_epoch_;
  return root;
}

bool measurement_plan::witness_copy(std::uint64_t addr,
                                    std::vector<std::uint64_t>& out) {
  out.clear();
  if (config_.use_arena_index) {
    const std::size_t rec = idx_.find(addr);
    if (rec == plan_index::npos) return false;
    const std::span<const std::uint64_t> ws = idx_.witnesses(rec);
    if (ws.empty()) return false;  // a node-only record has no list yet
    out.assign(ws.begin(), ws.end());
    return true;
  }
  const auto it = witnesses_.find(addr);
  if (it == witnesses_.end()) return false;
  out.assign(it->second.begin(), it->second.end());
  return true;
}

void measurement_plan::witness_touch(std::uint64_t addr, std::uint64_t pivot) {
  if (config_.use_arena_index) {
    const std::size_t rec = idx_.find(addr);
    DRAMDIG_EXPECTS(rec != plan_index::npos);
    const std::span<const std::uint64_t> ws = idx_.witnesses(rec);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i] == pivot) {
        idx_.witness_move_to_back(rec, i);
        return;
      }
    }
    return;
  }
  std::vector<std::uint64_t>& list = witnesses_.find(addr)->second;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == pivot) {
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
      list.push_back(pivot);
      return;
    }
  }
}

int measurement_plan::memo_find(std::uint64_t a, std::uint64_t b) const {
  const sim::addr_pair key = canonical(a, b);
  if (config_.use_arena_index) return idx_.memo_find(key.first, key.second);
  const auto it = strict_memo_.find(key);
  return it == strict_memo_.end() ? -1 : it->second;
}

void measurement_plan::memo_store(std::uint64_t a, std::uint64_t b, char val) {
  const sim::addr_pair key = canonical(a, b);
  if (config_.use_arena_index) {
    idx_.memo_store(key.first, key.second, val);
  } else {
    strict_memo_[key] = val;
  }
}

pair_relation measurement_plan::relation(std::uint64_t a, std::uint64_t b) {
  const std::size_t na = node_if_known(a);
  const std::size_t nb = node_if_known(b);
  if (na != npos && nb != npos && cached_root(na) == cached_root(nb)) {
    return pair_relation::same_bank;
  }
  if (known_cross(a, b) || known_cross(b, a)) return pair_relation::cross_pile;
  return pair_relation::unknown;
}

void measurement_plan::record_same_bank(std::uint64_t a, std::uint64_t b) {
  if (!config_.reuse_verdicts) return;
  if (uf_.unite(node_of(a), node_of(b)).merged) {
    ++stats_.classes_merged;
    // A merge moves roots; invalidate the batch-level root cache.
    ++root_epoch_;
  }
}

void measurement_plan::record_negative(std::uint64_t pivot,
                                       std::uint64_t partner) {
  if (!config_.reuse_verdicts || !config_.negative_edges) return;
  // Partner side only: the witness list stays "the pivots that rejected x",
  // one entry per scan, so every walk is a short linear scan — and the
  // list doubles as the exact-pair memo. No dedupe needed: scans only
  // measure pairs the cache could not answer, so a recorded pair is
  // always new.
  if (config_.use_arena_index) {
    const std::size_t rec = idx_.find_or_create(partner);
    if (config_.max_witnesses != 0 &&
        idx_.witnesses(rec).size() >= config_.max_witnesses) {
      // LRU eviction: the front is the entry that least recently answered
      // a query (hits rotate to the back).
      idx_.witness_pop_front(rec);
      ++stats_.witnesses_evicted;
    }
    idx_.witness_push(rec, pivot);
  } else {
    std::vector<std::uint64_t>& list = witnesses_[partner];
    if (config_.max_witnesses != 0 && list.size() >= config_.max_witnesses) {
      list.erase(list.begin());
      ++stats_.witnesses_evicted;
    }
    list.push_back(pivot);
  }
  ++stats_.negatives_recorded;
}

bool measurement_plan::known_cross(std::uint64_t pivot, std::uint64_t x) {
  // Work on a copy of x's list: arena spans die on any witness push, and
  // the derivation below records negatives. The copy is scratch-backed and
  // identical in content to the legacy in-place walk.
  std::vector<std::uint64_t>& ws = scratch_.witness_buf;
  if (!witness_copy(x, ws)) return false;
  // Exact pair measured (or previously derived): reuse that verdict. The
  // hit rotates to the back of the list so LRU eviction drops stale
  // entries first.
  for (const std::uint64_t w : ws) {
    if (w == pivot) {
      witness_touch(x, pivot);
      return true;
    }
  }
  // Two witnesses in pivot's class that are SBDR-positive with each other
  // sit in two different rows of one bank; x cannot share a row with both,
  // so both negatives can only mean a different bank. A fresh pivot
  // (singleton class) cannot have class witnesses — skip the class walk.
  const std::size_t pivot_node = node_if_known(pivot);
  if (pivot_node == npos) return false;
  if (uf_.class_size(pivot_node) < 2) return false;
  const std::size_t pivot_root = cached_root(pivot_node);
  // Fixed-capacity gather: this runs once per unknown partner in every
  // pivot scan, so no per-call heap allocation.
  std::array<std::uint64_t, 12> in_class_buf;
  std::size_t found = 0;
  for (const std::uint64_t w : ws) {
    const std::size_t wn = node_if_known(w);
    if (wn != npos && cached_root(wn) == pivot_root) {
      in_class_buf[found++] = w;
      if (found == in_class_buf.size()) break;  // bound the pairwise search
    }
  }
  const std::span<const std::uint64_t> in_class(in_class_buf.data(), found);
  for (std::size_t i = 0; i < in_class.size(); ++i) {
    for (std::size_t j = i + 1; j < in_class.size(); ++j) {
      if (memo_find(in_class[i], in_class[j]) > 0) {
        // Memoize the derived fact as an exact-pair negative so future
        // queries answer from the pair set.
        record_negative(pivot, x);
        return true;
      }
    }
  }
  return false;
}

void measurement_plan::verify_strict(std::span<const sim::addr_pair> pairs,
                                     std::span<const double> prior,
                                     std::vector<char>& out) {
  DRAMDIG_EXPECTS(channel_.calibrated());
  DRAMDIG_EXPECTS(prior.empty() || prior.size() == pairs.size());
  const unsigned full = channel_.strict_samples();
  // One fresh sample per pair is replaced by the caller's prior (the fast
  // scan's reading of the very same pair) when reuse is on. The prior is
  // conditioned positive, so refutation rests on the remaining full-1
  // fresh samples — see plan_config::reuse_scan_sample for the tradeoff.
  std::vector<unsigned>& fresh = scratch_.fresh_counts;
  fresh.assign(pairs.size(), full);
  if (config_.reuse_scan_sample && !prior.empty()) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (prior[i] == prior[i]) {  // non-NaN: a sample exists to reuse
        fresh[i] = full - 1;
        ++stats_.measurements_saved;
      }
    }
  }
  std::vector<sim::addr_pair>& expanded = scratch_.expanded;
  expanded.clear();
  expanded.reserve(pairs.size() * full);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (unsigned k = 0; k < fresh[i]; ++k) expanded.push_back(pairs[i]);
  }
  std::vector<double>& latencies = scratch_.expanded_lat;
  channel_.measure_batch(expanded, latencies);
  stats_.measurements_issued += expanded.size();

  out.resize(pairs.size());
  std::size_t at = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    double lowest = fresh[i] < full ? prior[i] : 1e300;
    for (unsigned k = 0; k < fresh[i]; ++k) {
      lowest = std::min(lowest, latencies[at++]);
    }
    out[i] = lowest > channel_.threshold_ns() ? 1 : 0;
  }
}

std::vector<char> measurement_plan::is_sbdr_strict_batch(
    std::span<const sim::addr_pair> pairs) {
  if (!config_.reuse_verdicts) {
    stats_.measurements_issued += pairs.size() * channel_.strict_samples();
    return channel_.is_sbdr_strict_batch(pairs);
  }
  std::vector<sim::addr_pair>& fresh = scratch_.pairs;
  fresh.clear();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (memo_find(pairs[i].first, pairs[i].second) >= 0) {
      stats_.measurements_saved += channel_.strict_samples();
      continue;
    }
    // Memoize a placeholder so duplicates inside this batch dedupe too;
    // the real verdict overwrites it below, before the output pass reads.
    memo_store(pairs[i].first, pairs[i].second, 0);
    fresh.push_back(pairs[i]);
  }
  std::vector<char>& verdicts = scratch_.strict;
  verify_strict(fresh, {}, verdicts);
  for (std::size_t j = 0; j < fresh.size(); ++j) {
    const auto& [a, b] = fresh[j];
    memo_store(a, b, verdicts[j]);
    // A strict positive proves same-bank; a strict negative proves nothing
    // about banks here (vote pairs are often same-bank by construction),
    // so only the memo keeps it.
    if (verdicts[j]) record_same_bank(a, b);
  }
  // Single output pass: every verdict (cached, fresh, duplicate) now
  // lives in the memo.
  std::vector<char> out(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const int v = memo_find(pairs[i].first, pairs[i].second);
    DRAMDIG_EXPECTS(v >= 0);
    out[i] = static_cast<char>(v);
  }
  return out;
}

measurement_plan::probe_outcome measurement_plan::probe_pairs(
    std::span<const sim::addr_pair> pairs) {
  DRAMDIG_EXPECTS(channel_.calibrated());
  probe_outcome out;
  out.sbdr.assign(pairs.size(), 0);
  if (pairs.empty()) return out;

  // ---- Stage 0: answer from the cache. ----------------------------------
  // Exact strict verdicts reuse verbatim; cross-pile proofs imply not-SBDR.
  std::vector<std::size_t>& unknown_idx = scratch_.unknown_idx;
  unknown_idx.clear();
  unknown_idx.reserve(pairs.size());
  if (config_.reuse_verdicts) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto& [a, b] = pairs[i];
      const int hit = memo_find(a, b);
      if (hit >= 0) {
        out.sbdr[i] = static_cast<char>(hit);
        ++out.reused;
        // What re-measuring in place would cost: a positive takes the
        // full strict pass, a negative one fast sample.
        stats_.measurements_saved +=
            hit != 0 ? channel_.strict_samples() : 1;
        continue;
      }
      if (known_cross(a, b) || known_cross(b, a)) {
        ++out.reused;
        ++stats_.measurements_saved;
        continue;
      }
      unknown_idx.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i) unknown_idx.push_back(i);
  }
  if (unknown_idx.empty()) return out;

  // ---- Stage 1: one single sample per unknown pair. ---------------------
  // Noise is one-sided (events only inflate latency), so a fast sample is
  // already a proof: the strict min filter could only go lower. Slow
  // samples may be contamination and graduate to strict verification.
  std::vector<sim::addr_pair>& fresh = scratch_.pairs;
  fresh.clear();
  fresh.reserve(unknown_idx.size());
  for (const std::size_t i : unknown_idx) fresh.push_back(pairs[i]);
  std::vector<double>& fast = scratch_.fast;
  channel_.measure_batch(fresh, fast);
  stats_.measurements_issued += fresh.size();

  std::vector<sim::addr_pair>& candidates = scratch_.candidates;
  std::vector<std::size_t>& candidate_idx = scratch_.candidate_idx;
  std::vector<double>& prior = scratch_.prior;
  candidates.clear();
  candidate_idx.clear();
  prior.clear();
  for (std::size_t j = 0; j < unknown_idx.size(); ++j) {
    const std::size_t i = unknown_idx[j];
    if (fast[j] > channel_.threshold_ns()) {
      candidates.push_back(fresh[j]);
      candidate_idx.push_back(i);
      prior.push_back(fast[j]);
    } else {
      if (config_.reuse_verdicts) {
        memo_store(pairs[i].first, pairs[i].second, 0);
      }
      record_negative(pairs[i].first, pairs[i].second);
    }
  }

  // ---- Stage 2: strict-verify the slow readings, folding the sample. ----
  std::vector<char>& strict = scratch_.strict;
  verify_strict(candidates, prior, strict);
  for (std::size_t j = 0; j < strict.size(); ++j) {
    const std::size_t i = candidate_idx[j];
    const auto& [a, b] = pairs[i];
    if (config_.reuse_verdicts) memo_store(a, b, strict[j]);
    if (strict[j]) {
      out.sbdr[i] = 1;
      record_same_bank(a, b);
    } else {
      record_negative(a, b);
    }
  }
  return out;
}

std::size_t measurement_plan::class_root(std::uint64_t addr) {
  const std::size_t n = node_if_known(addr);
  if (n == npos) return no_class;
  return cached_root(n);
}

bool measurement_plan::known_strict_positive(std::uint64_t a,
                                             std::uint64_t b) const {
  return memo_find(a, b) > 0;
}

measurement_plan::vote_outcome measurement_plan::classify_pairs(
    std::span<const sim::addr_pair> pairs, bool verify_positives) {
  DRAMDIG_EXPECTS(channel_.calibrated());
  vote_outcome out;
  out.member.assign(pairs.size(), 0);
  if (pairs.empty()) return out;

  // ---- Stage 0: answer what the cache already implies. ------------------
  std::vector<std::size_t>& unknown_idx = scratch_.unknown_idx;
  unknown_idx.clear();
  unknown_idx.reserve(pairs.size());
  if (config_.reuse_verdicts) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      switch (relation(pairs[i].first, pairs[i].second)) {
        case pair_relation::same_bank:
          out.member[i] = 1;
          ++out.reused;
          stats_.measurements_saved += saved_scan_credit(verify_positives);
          break;
        case pair_relation::cross_pile:
          ++out.reused;
          ++stats_.measurements_saved;
          break;
        case pair_relation::unknown:
          unknown_idx.push_back(i);
          break;
      }
    }
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i) unknown_idx.push_back(i);
  }
  if (unknown_idx.empty()) return out;

  // ---- Stage 1: one single-sample batch over the unknown pairs. ---------
  std::vector<sim::addr_pair>& fresh = scratch_.pairs;
  fresh.clear();
  fresh.reserve(unknown_idx.size());
  for (const std::size_t i : unknown_idx) fresh.push_back(pairs[i]);
  std::vector<double>& fast = scratch_.fast;
  channel_.measure_batch(fresh, fast);
  stats_.measurements_issued += fresh.size();

  std::vector<sim::addr_pair>& candidates = scratch_.candidates;
  std::vector<std::size_t>& candidate_idx = scratch_.candidate_idx;
  std::vector<double>& prior = scratch_.prior;
  candidates.clear();
  candidate_idx.clear();
  prior.clear();
  for (std::size_t j = 0; j < unknown_idx.size(); ++j) {
    if (fast[j] > channel_.threshold_ns()) {
      candidates.push_back(fresh[j]);
      candidate_idx.push_back(unknown_idx[j]);
      prior.push_back(fast[j]);
    } else {
      record_negative(pairs[unknown_idx[j]].first,
                      pairs[unknown_idx[j]].second);
    }
  }
  if (!verify_positives) {
    for (const std::size_t i : candidate_idx) out.member[i] = 1;
    return out;
  }

  // ---- Stage 2: strict-verify the positives, folding the vote sample. ---
  std::vector<char>& strict = scratch_.strict;
  verify_strict(candidates, prior, strict);
  for (std::size_t j = 0; j < strict.size(); ++j) {
    const std::size_t i = candidate_idx[j];
    const auto& [anchor, subject] = pairs[i];
    if (strict[j]) {
      out.member[i] = 1;
      record_same_bank(anchor, subject);
      if (config_.reuse_verdicts) memo_store(anchor, subject, 1);
    } else {
      record_negative(anchor, subject);
    }
  }
  return out;
}

measurement_plan::scan_outcome measurement_plan::classify_partners(
    std::uint64_t pivot, std::span<const std::uint64_t> partners,
    const scan_options& options) {
  DRAMDIG_EXPECTS(channel_.calibrated());
  scan_outcome out;
  out.member.assign(partners.size(), 0);

  if (!config_.reuse_verdicts) {
    // Transparent pass-through: exactly the pre-scheduler scan sequence.
    std::vector<char>& fast = scratch_.fast_verdict;
    channel_.is_sbdr_fast_batch(pivot, partners, fast);
    stats_.measurements_issued += partners.size();
    if (!options.verify_positives) {
      out.member.assign(fast.begin(), fast.end());
      return out;
    }
    std::vector<sim::addr_pair>& candidates = scratch_.candidates;
    std::vector<std::size_t>& candidate_idx = scratch_.candidate_idx;
    candidates.clear();
    candidate_idx.clear();
    for (std::size_t i = 0; i < partners.size(); ++i) {
      if (fast[i]) {
        candidates.emplace_back(pivot, partners[i]);
        candidate_idx.push_back(i);
      }
    }
    stats_.measurements_issued += candidates.size() * channel_.strict_samples();
    std::vector<char>& strict = scratch_.strict;
    channel_.is_sbdr_strict_batch(candidates, strict);
    for (std::size_t j = 0; j < strict.size(); ++j) {
      out.member[candidate_idx[j]] = strict[j];
    }
    return out;
  }

  // ---- Stage 0: answer what the cache already implies. ------------------
  // Directional queries only: a partner's witness list is short (one entry
  // per scan that rejected it), while the pivot's own list covers
  // everything it ever scanned — walking the latter per partner would make
  // this stage quadratic in the pool.
  const std::size_t pivot_node = node_if_known(pivot);
  const std::size_t pivot_root =
      pivot_node != npos ? cached_root(pivot_node) : 0;

  // The pivot's own witness list (pivots that rejected it while it was a
  // partner — short by construction) answers two queries per scan:
  //  * exact pairs in the reverse direction (a former pivot among the
  //    partners that once rejected this pivot), via `rejected_by`;
  //  * the reverse two-witness rule: if two SBDR-positive-linked
  //    (row-distinct) members of a partner's class rejected this pivot
  //    earlier, the pivot provably sits in another bank. Grouped by class
  //    root so each partner costs one lookup.
  // The list is copied up front: the loop below records negatives, and an
  // arena witness push invalidates every live span.
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> rejecters;
  const bool have_rejected_by =
      witness_copy(pivot, scratch_.pivot_witness_buf);
  const std::vector<std::uint64_t>& rejected_by = scratch_.pivot_witness_buf;
  if (have_rejected_by) {
    for (const std::uint64_t w : rejected_by) {
      const std::size_t wn = node_if_known(w);
      if (wn != npos) {
        rejecters[cached_root(wn)].push_back(w);
      }
    }
  }
  const auto reverse_cross = [&](std::size_t partner_root,
                                 std::uint64_t partner) {
    const auto hit = rejecters.find(partner_root);
    if (hit == rejecters.end() || hit->second.size() < 2) return false;
    const std::vector<std::uint64_t>& ws = hit->second;
    const std::size_t bound = std::min<std::size_t>(ws.size(), 12);
    for (std::size_t i = 0; i < bound; ++i) {
      for (std::size_t j = i + 1; j < bound; ++j) {
        if (memo_find(ws[i], ws[j]) > 0) {
          // Memoize the derived fact as an exact-pair negative.
          record_negative(pivot, partner);
          return true;
        }
      }
    }
    return false;
  };

  std::vector<std::size_t>& unknown_idx = scratch_.unknown_idx;
  unknown_idx.clear();
  unknown_idx.reserve(partners.size());
  std::size_t members = 0;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    const std::size_t partner_node = node_if_known(partners[i]);
    const std::size_t partner_root =
        partner_node != npos ? cached_root(partner_node) : 0;
    if (pivot_node != npos && partner_node != npos &&
        partner_root == pivot_root) {
      out.member[i] = 1;
      ++members;
      ++out.reused;
      // What re-measuring this member in place would cost.
      stats_.measurements_saved += saved_scan_credit(options.verify_positives);
    } else if (known_cross(pivot, partners[i]) ||
               (have_rejected_by &&
                std::find(rejected_by.begin(), rejected_by.end(),
                          partners[i]) != rejected_by.end()) ||
               (partner_node != npos &&
                reverse_cross(partner_root, partners[i]))) {
      ++out.reused;
      ++stats_.measurements_saved;
    } else {
      unknown_idx.push_back(i);
    }
  }

  // Measure a subset of unknowns (single sample each, keeping the raw
  // latency so the strict pass can fold it into its min filter), record
  // the verdicts, and strict-verify the positives. Shared by the
  // pre-screen sample and the full scan.
  const auto scan_subset = [&](const std::vector<std::size_t>& subset)
      -> std::size_t {  // returns members found (post-verification)
    std::vector<sim::addr_pair>& pairs = scratch_.pairs;
    pairs.clear();
    pairs.reserve(subset.size());
    for (const std::size_t i : subset) pairs.emplace_back(pivot, partners[i]);
    std::vector<double>& fast = scratch_.fast;
    channel_.measure_batch(pairs, fast);
    stats_.measurements_issued += subset.size();
    std::vector<sim::addr_pair>& candidates = scratch_.candidates;
    std::vector<std::size_t>& candidate_idx = scratch_.candidate_idx;
    std::vector<double>& prior = scratch_.prior;
    candidates.clear();
    candidate_idx.clear();
    prior.clear();
    for (std::size_t j = 0; j < subset.size(); ++j) {
      if (fast[j] > channel_.threshold_ns()) {
        candidates.push_back(pairs[j]);
        candidate_idx.push_back(subset[j]);
        prior.push_back(fast[j]);
      } else {
        record_negative(pivot, partners[subset[j]]);
      }
    }
    if (!options.verify_positives) {
      for (const std::size_t i : candidate_idx) {
        out.member[i] = 1;
        ++members;
      }
      return candidates.size();
    }
    std::vector<char>& strict = scratch_.strict;
    verify_strict(candidates, prior, strict);
    std::size_t verified = 0;
    for (std::size_t j = 0; j < strict.size(); ++j) {
      const std::size_t i = candidate_idx[j];
      if (strict[j]) {
        out.member[i] = 1;
        ++members;
        ++verified;
        record_same_bank(pivot, partners[i]);
        memo_store(pivot, partners[i], 1);
      } else {
        // The fast positive was contamination; the min filter refuted it.
        record_negative(pivot, partners[i]);
      }
    }
    return verified;
  };

  // ---- Stage 1: adaptive pivot pre-screen. ------------------------------
  // Sample enough unknowns to project the pile size; if the projection
  // falls outside the acceptance window beyond sampling error, reject the
  // pivot without paying for the full scan. The sample grows with the
  // unknown count so the binomial slack stays decisive on large pools.
  std::vector<char>& sampled = scratch_.sampled;
  sampled.assign(partners.size(), 0);
  bool any_sampled = false;
  if (options.prescreen_sample > 0 &&
      unknown_idx.size() >= 4ull * options.prescreen_sample) {
    const std::size_t n = std::max<std::size_t>(options.prescreen_sample,
                                                unknown_idx.size() / 8);
    std::vector<std::size_t>& sample = scratch_.sample;
    sample.clear();
    sample.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = unknown_idx[j * unknown_idx.size() / n];
      sample.push_back(i);
      sampled[i] = 1;
    }
    any_sampled = true;
    // Project from the post-verification member rate: the raw fast-positive
    // rate rides up with contamination during a burst and would reject
    // in-window pivots.
    const std::size_t sample_members = scan_subset(sample);

    const double rest =
        static_cast<double>(unknown_idx.size() - sample.size());
    const double rate = (static_cast<double>(sample_members) + 0.5) /
                        (static_cast<double>(sample.size()) + 1.0);
    const double projected_rest = rest * rate;
    const double slack =
        options.prescreen_z * rest *
            std::sqrt(rate * (1.0 - rate) /
                      static_cast<double>(sample.size())) +
        1.0;
    // Window on the final pile size (members + pivot).
    const double need_lo =
        std::max(0.0, options.window.lo - 1.0 - static_cast<double>(members));
    const double need_hi =
        options.window.hi - 1.0 - static_cast<double>(members);
    if (projected_rest - slack > need_hi || projected_rest + slack < need_lo) {
      ++stats_.prescreen_rejections;
      stats_.measurements_saved +=
          static_cast<std::uint64_t>(rest);  // the skipped fast scan
      out.prescreen_rejected = true;
      return out;
    }
  }

  // ---- Stage 2: full scan of the remaining unknowns. --------------------
  std::vector<std::size_t>& remaining = scratch_.remaining;
  remaining.clear();
  remaining.reserve(unknown_idx.size());
  for (const std::size_t i : unknown_idx) {
    if (!any_sampled || !sampled[i]) remaining.push_back(i);
  }
  (void)scan_subset(remaining);
  return out;
}

}  // namespace dramdig::core

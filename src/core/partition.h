// Step 2 phase 2: physical-address partition (paper Algorithm 2).
//
// Two interchangeable drivers live behind this interface (both in
// core/classifier):
//  * the representative-based classification engine (the default): piles
//    are first-class bank classes carrying row-distinct representatives,
//    and each unassigned address is classified against one representative
//    per open class — with a second-representative fallback for same-row
//    misses and a fresh-pivot founder scan only to open new classes;
//  * the paper's literal pivot-scan loop (use_representatives = false),
//    kept bit-for-bit as the differential oracle: repeatedly pick a
//    pivot, measure it against the remaining pool, and peel off its
//    same-bank pile.
// Noise tolerance is built in twice, exactly as the paper describes: a
// pile is accepted only if its size is within 1 ± delta of pool/#banks,
// and the loop stops once per_threshold of the pool has been assigned
// (stragglers lost to misreads don't block termination). On top of the
// paper's description, positives from the single-sample scans are
// re-verified with min-filtered measurements before they can pollute a
// pile — cheap (piles are small) and the reason the detected functions
// stay deterministic on noisy machines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/measurement_plan.h"
#include "timing/channel.h"
#include "util/rng.h"

namespace dramdig::core {

class bank_classifier;

struct partition_config {
  double delta = 0.2;           ///< upper pile-size tolerance (paper: 0.2)
  /// Lower tolerance is wider than the paper's symmetric delta: a pile is
  /// "addresses SBDR with the pivot", which excludes the pivot's same-row
  /// mates (same bank, same row, different column). On machines whose wide
  /// channel function feeds several column bits those classes are up to a
  /// quarter of each bank's addresses, so with small designed pools a
  /// perfectly clean pile legitimately sits well below pool/#banks.
  /// (The representative engine recovers those addresses through its
  /// second-representative fallback, so its piles sit near pool/#banks.)
  double delta_lower = 0.4;
  double per_threshold = 0.85;  ///< stop when this fraction is partitioned
  unsigned max_pivot_attempts = 0;  ///< 0 = 4 * #banks + 32
  bool verify_positives = true;     ///< strict re-check of scan positives
  /// Adaptive pivot pre-screen: sample this many unknown partners (scaled
  /// up on large pools) and reject the pivot before the full scan when the
  /// projected pile size falls outside the delta window beyond sampling
  /// error. 0 disables. Chiefly pays off when the assumed bank count is
  /// wrong (the knowledge-ablation sweep) — every such pivot scan is
  /// doomed, and the pre-screen prices that in at ~1/8 of a scan.
  unsigned prescreen_sample = 64;
  double prescreen_z = 2.5;  ///< binomial slack multiplier for rejections
  /// Representative-based classification engine (the default). false runs
  /// the legacy pivot-scan loop — the differential oracle, preserved
  /// bit-for-bit (same rng draws, same measurement sequence). The engine
  /// needs the measurement-reuse cache; with plan_config::reuse_verdicts
  /// off it falls back to the pivot-scan loop.
  bool use_representatives = true;
  /// Row-distinct representatives kept per class. 2 is the sweet spot: an
  /// address can share a row with at most one of them, so the second
  /// representative already catches every same-row false negative.
  unsigned max_representatives = 2;
};

struct partition_outcome {
  bool success = false;
  /// Piles of same-bank addresses; element 0 of each pile is its pivot.
  std::vector<std::vector<std::uint64_t>> piles;
  std::size_t partitioned = 0;  ///< addresses assigned to piles
  unsigned rejected_piles = 0;  ///< piles outside the delta window
  unsigned prescreen_rejections = 0;  ///< rejected before a full scan
  /// Partner verdicts answered from the measurement-reuse cache instead of
  /// fresh measurements, across every scan of this call.
  std::uint64_t reused_verdicts = 0;
  // --- Representative-engine accounting (zero on the pivot-scan path). ---
  std::uint64_t representative_votes = 0;  ///< single-sample votes cast
  std::uint64_t fallback_votes = 0;  ///< second-representative votes
  unsigned founder_scans = 0;        ///< pivot scans run to open classes
  /// Addresses assigned on their first, GF(2)-predicted vote or founder
  /// group scan (the knowledge-assisted fast path).
  std::uint64_t predicted_assignments = 0;
};

/// Primary interface: scans go through the measurement-reuse scheduler,
/// which pre-filters partners whose relation the cache already implies and
/// keeps every verdict for future calls (the plan may be shared across
/// partition attempts and pipeline stages).
[[nodiscard]] partition_outcome partition_pool(
    measurement_plan& plan, std::vector<std::uint64_t> pool,
    unsigned bank_count, rng& r, const partition_config& config = {});

/// Engine-sharing overload: the classifier's class directory (and its
/// representatives) survives across calls, so the bank-count sweep's
/// repeat attempts re-resolve surviving classes without measurements.
[[nodiscard]] partition_outcome partition_pool(
    bank_classifier& engine, std::vector<std::uint64_t> pool,
    unsigned bank_count, rng& r, const partition_config& config = {});

/// Convenience overload: a call-local plan (the cache still dedupes work
/// across the pivots of this one call).
[[nodiscard]] partition_outcome partition_pool(
    timing::channel& channel, std::vector<std::uint64_t> pool,
    unsigned bank_count, rng& r, const partition_config& config = {});

}  // namespace dramdig::core

// Step 2 phase 2: physical-address partition (paper Algorithm 2).
//
// Repeatedly pick a pivot, measure it against the remaining pool, and peel
// off its same-bank pile. Noise tolerance is built in twice, exactly as
// the paper describes: a pile is accepted only if its size is within
// 1 ± delta of pool/#banks, and the loop stops once per_threshold of the
// pool has been assigned (stragglers lost to misreads don't block
// termination). On top of the paper's description, positives from the
// single-sample scan are re-verified with median-of-k measurements before
// they can pollute a pile — cheap (piles are small) and the reason the
// detected functions stay deterministic on noisy machines.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/channel.h"
#include "util/rng.h"

namespace dramdig::core {

struct partition_config {
  double delta = 0.2;           ///< upper pile-size tolerance (paper: 0.2)
  /// Lower tolerance is wider than the paper's symmetric delta: a pile is
  /// "addresses SBDR with the pivot", which excludes the pivot's same-row
  /// mates (same bank, same row, different column). On machines whose wide
  /// channel function feeds several column bits those classes are up to a
  /// quarter of each bank's addresses, so with small designed pools a
  /// perfectly clean pile legitimately sits well below pool/#banks.
  double delta_lower = 0.4;
  double per_threshold = 0.85;  ///< stop when this fraction is partitioned
  unsigned max_pivot_attempts = 0;  ///< 0 = 4 * #banks + 32
  bool verify_positives = true;     ///< strict re-check of scan positives
};

struct partition_outcome {
  bool success = false;
  /// Piles of same-bank addresses; element 0 of each pile is its pivot.
  std::vector<std::vector<std::uint64_t>> piles;
  std::size_t partitioned = 0;  ///< addresses assigned to piles
  unsigned rejected_piles = 0;  ///< piles outside the delta window
};

[[nodiscard]] partition_outcome partition_pool(
    timing::channel& channel, std::vector<std::uint64_t> pool,
    unsigned bank_count, rng& r, const partition_config& config = {});

}  // namespace dramdig::core

#include "core/partition.h"

#include "core/classifier.h"
#include "util/expect.h"

namespace dramdig::core {

partition_outcome partition_pool(bank_classifier& engine,
                                 std::vector<std::uint64_t> pool,
                                 unsigned bank_count, rng& r,
                                 const partition_config& config) {
  return engine.partition(std::move(pool), bank_count, r, config);
}

partition_outcome partition_pool(measurement_plan& plan,
                                 std::vector<std::uint64_t> pool,
                                 unsigned bank_count, rng& r,
                                 const partition_config& config) {
  bank_classifier engine(plan);
  return engine.partition(std::move(pool), bank_count, r, config);
}

partition_outcome partition_pool(timing::channel& channel,
                                 std::vector<std::uint64_t> pool,
                                 unsigned bank_count, rng& r,
                                 const partition_config& config) {
  measurement_plan plan(channel);
  bank_classifier engine(plan);
  return engine.partition(std::move(pool), bank_count, r, config);
}

}  // namespace dramdig::core

#include "core/partition.h"

#include <algorithm>

#include "util/expect.h"
#include "util/log.h"

namespace dramdig::core {

partition_outcome partition_pool(measurement_plan& plan,
                                 std::vector<std::uint64_t> pool,
                                 unsigned bank_count, rng& r,
                                 const partition_config& config) {
  DRAMDIG_EXPECTS(bank_count >= 2);
  DRAMDIG_EXPECTS(pool.size() >= bank_count);
  partition_outcome out;

  const std::size_t pool_sz = pool.size();
  const double pile_sz =
      static_cast<double>(pool_sz) / static_cast<double>(bank_count);
  const double lo = (1.0 - config.delta_lower) * pile_sz;
  const double hi = (1.0 + config.delta) * pile_sz;
  const std::size_t stop_at = static_cast<std::size_t>(
      (1.0 - config.per_threshold) * static_cast<double>(pool_sz));
  const unsigned max_attempts = config.max_pivot_attempts != 0
                                    ? config.max_pivot_attempts
                                    : 4 * bank_count + 32;

  scan_options scan{};
  scan.verify_positives = config.verify_positives;
  scan.prescreen_sample = config.prescreen_sample;
  scan.prescreen_z = config.prescreen_z;
  scan.window = {lo, hi};

  // Partner-list buffers reused across pivot attempts; the plan reuses
  // its own scratch for the large per-scan buffers too, so the
  // O(pool * banks) loop allocates only small per-scan bookkeeping.
  std::vector<std::uint64_t> partners;
  std::vector<std::size_t> partner_idx;
  std::vector<std::size_t> members;
  partners.reserve(pool.size());
  partner_idx.reserve(pool.size());
  members.reserve(pool.size());

  unsigned attempts = 0;
  while (pool.size() > stop_at) {
    if (attempts++ >= max_attempts) {
      log_error("partition: exceeded pivot attempts with " +
                std::to_string(pool.size()) + " addresses unassigned");
      return out;  // success stays false
    }
    const std::size_t pivot_idx = r.below(pool.size());
    const std::uint64_t pivot = pool[pivot_idx];

    // One scan through the scheduler: cached relations are free, unknown
    // partners get the single-sample scan, positives the strict min-filter
    // re-check — so a contaminated sample, or a whole background-load
    // burst, cannot plant a wrong-bank address in the pile. A single
    // polluted pile would erase a true function from Algorithm 3's
    // intersection.
    partners.clear();
    partner_idx.clear();
    members.clear();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i == pivot_idx) continue;
      partners.push_back(pool[i]);
      partner_idx.push_back(i);
    }
    const auto verdict = plan.classify_partners(pivot, partners, scan);
    out.reused_verdicts += verdict.reused;
    if (verdict.prescreen_rejected) {
      ++out.rejected_piles;
      ++out.prescreen_rejections;
      continue;
    }
    for (std::size_t j = 0; j < verdict.member.size(); ++j) {
      if (verdict.member[j]) members.push_back(partner_idx[j]);
    }

    // Pile size counts the pivot: the pile *is* a bank-sized class, and on
    // tiny pools (64 addresses / 8 banks) excluding the pivot would push
    // legitimate piles just below the delta window.
    const double size = static_cast<double>(members.size() + 1);
    if (size < lo || size > hi) {
      ++out.rejected_piles;
      continue;
    }

    // Accept: extract pivot + members from the pool.
    std::vector<std::uint64_t> pile;
    pile.reserve(members.size() + 1);
    pile.push_back(pivot);
    for (std::size_t i : members) pile.push_back(pool[i]);
    out.partitioned += pile.size();

    members.push_back(pivot_idx);
    std::sort(members.begin(), members.end(), std::greater<>());
    for (std::size_t i : members) {
      pool[i] = pool.back();
      pool.pop_back();
    }
    out.piles.push_back(std::move(pile));
  }

  out.success = true;
  log_info("partition: " + std::to_string(out.piles.size()) + " piles, " +
           std::to_string(out.partitioned) + "/" + std::to_string(pool_sz) +
           " assigned, " + std::to_string(out.rejected_piles) + " rejected (" +
           std::to_string(out.prescreen_rejections) + " pre-screened), " +
           std::to_string(out.reused_verdicts) + " verdicts reused");
  return out;
}

partition_outcome partition_pool(timing::channel& channel,
                                 std::vector<std::uint64_t> pool,
                                 unsigned bank_count, rng& r,
                                 const partition_config& config) {
  measurement_plan plan(channel);
  return partition_pool(plan, std::move(pool), bank_count, r, config);
}

}  // namespace dramdig::core

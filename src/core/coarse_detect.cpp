#include "core/coarse_detect.h"

#include <algorithm>

#include "core/probe_util.h"
#include "util/expect.h"
#include "util/log.h"

namespace dramdig::core {

namespace {

/// Majority vote over several independently chosen pairs with the same bit
/// delta, using the min-filtered predicate: a background-load burst can
/// span this whole phase, and a burst-length stretch of one-sided
/// contamination would otherwise flip half the single-bit verdicts.
/// Returns nullopt when no measurable pair exists. Pair picking only
/// consults the pagemap, so all pairs are collected up front and the
/// strict measurements serviced as one batch through the scheduler —
/// matching fine_detect's vote loop.
std::optional<bool> vote_sbdr(measurement_plan& plan,
                              const os::mapping_region& buffer,
                              std::uint64_t delta, unsigned votes,
                              unsigned attempts, rng& r) {
  std::vector<sim::addr_pair> pairs;
  pairs.reserve(votes);
  for (unsigned v = 0; v < votes; ++v) {
    const auto pair = pick_pair_with_delta(buffer, delta, r, attempts);
    if (pair) pairs.push_back(*pair);
  }
  if (pairs.empty()) return std::nullopt;
  const std::vector<char> verdicts = plan.is_sbdr_strict_batch(pairs);
  unsigned high = 0;
  for (char v : verdicts) high += v != 0;
  return high * 2 > pairs.size();
}

}  // namespace

coarse_result run_coarse_detection(measurement_plan& plan,
                                   const os::mapping_region& buffer,
                                   const domain_knowledge& knowledge, rng& r,
                                   const coarse_config& config) {
  DRAMDIG_EXPECTS(plan.channel().calibrated());
  coarse_result result;

  // --- Row pass: single-bit deltas. -------------------------------------
  std::vector<unsigned> non_row;
  for (unsigned b = knowledge.min_probe_bit; b < knowledge.address_bits; ++b) {
    const auto verdict = vote_sbdr(plan, buffer, std::uint64_t{1} << b,
                                   config.votes, config.pair_attempts, r);
    if (!verdict) {
      result.untestable_bits.push_back(b);
      continue;
    }
    if (*verdict) {
      result.row_bits.push_back(b);
    } else {
      non_row.push_back(b);
    }
  }
  if (result.row_bits.empty()) {
    // Without a single row-only bit the column pass cannot run; the
    // orchestrator treats this as a failed attempt.
    log_error("coarse: no row bits detected");
    result.bank_bits = non_row;
    return result;
  }

  // --- Column pass: (known row bit, candidate) deltas. -------------------
  // Use a row bit that is low enough to pair easily; any row-only bit
  // keeps the bank fixed by definition.
  const unsigned row_ref = result.row_bits.front();
  for (unsigned b : non_row) {
    const std::uint64_t delta =
        (std::uint64_t{1} << row_ref) | (std::uint64_t{1} << b);
    const auto verdict = vote_sbdr(plan, buffer, delta, config.votes,
                                   config.pair_attempts, r);
    if (verdict && *verdict) {
      result.column_bits.push_back(b);
    } else {
      result.bank_bits.push_back(b);
    }
  }

  // Knowledge: bits below the cache-line size address bytes within one
  // 64-byte burst — columns by construction, unmeasurable by timing.
  for (unsigned b = 0; b < knowledge.min_probe_bit; ++b) {
    result.column_bits.push_back(b);
  }
  std::sort(result.column_bits.begin(), result.column_bits.end());

  log_info("coarse: rows=" + std::to_string(result.row_bits.size()) +
           " cols=" + std::to_string(result.column_bits.size()) +
           " covered=" + std::to_string(result.bank_bits.size()));
  return result;
}

coarse_result run_coarse_detection(timing::channel& channel,
                                   const os::mapping_region& buffer,
                                   const domain_knowledge& knowledge, rng& r,
                                   const coarse_config& config) {
  measurement_plan plan(channel);
  return run_coarse_detection(plan, buffer, knowledge, r, config);
}

}  // namespace dramdig::core

#include "core/coarse_detect.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/expect.h"
#include "util/log.h"

namespace dramdig::core {

coarse_result run_coarse_detection(bit_probe_engine& probe,
                                   const domain_knowledge& knowledge, rng& r,
                                   const coarse_config& config) {
  DRAMDIG_EXPECTS(probe.plan().channel().calibrated());
  coarse_result result;

  // Sibling evidence (fleet warm start) as per-bit vote priors. The
  // stored mapping claims exactly what each pass measures: a single-bit
  // delta votes true iff the bit is row-only (claimed row, not feeding a
  // function), false iff it feeds a function or is column-only. Bits the
  // claim cannot settle get no prior, and every prior is still confirmed
  // by a strict-grade vote before it decides (bit_probe prior rules).
  std::uint64_t func_union = 0, prior_rows = 0, prior_cols = 0;
  if (config.prior) {
    for (const std::uint64_t f : config.prior->bank_functions) func_union |= f;
    prior_rows = mask_of_bits(config.prior->row_bits);
    prior_cols = mask_of_bits(config.prior->column_bits);
  }

  // --- Row pass: single-bit deltas, one engine run. ----------------------
  // Every candidate bit's experiment is planned up front; the engine votes
  // them in cross-bit rounds (one controller batch per round) instead of
  // the legacy one-batch-per-bit sequence.
  std::vector<unsigned> probed;
  std::vector<std::uint64_t> deltas;
  std::vector<std::optional<bool>> priors;
  for (unsigned b = knowledge.min_probe_bit; b < knowledge.address_bits; ++b) {
    probed.push_back(b);
    deltas.push_back(std::uint64_t{1} << b);
    if (config.prior) {
      const std::uint64_t bit = std::uint64_t{1} << b;
      if ((prior_rows & bit) != 0 && (func_union & bit) == 0) {
        priors.emplace_back(true);
      } else if ((func_union & bit) != 0 || (prior_cols & bit) != 0) {
        priors.emplace_back(false);
      } else {
        priors.emplace_back(std::nullopt);
      }
    }
  }
  const auto row_verdicts =
      probe.run(deltas, priors, config.probe, r, "coarse.row");
  std::vector<unsigned> non_row;
  for (std::size_t i = 0; i < probed.size(); ++i) {
    if (!row_verdicts[i]) {
      result.untestable_bits.push_back(probed[i]);
    } else if (*row_verdicts[i]) {
      result.row_bits.push_back(probed[i]);
    } else {
      non_row.push_back(probed[i]);
    }
  }
  if (result.row_bits.empty()) {
    // Without a single row-only bit the column pass cannot run; the
    // orchestrator treats this as a failed attempt.
    log_error("coarse: no row bits detected");
    result.bank_bits = non_row;
    return result;
  }

  // --- Column pass: (known row bit, candidate) deltas. -------------------
  // Use a row bit that is low enough to pair easily; any row-only bit
  // keeps the bank fixed by definition.
  const unsigned row_ref = result.row_bits.front();
  deltas.clear();
  priors.clear();
  // Column-pass priors only make sense when the claim agrees that the
  // reference bit is row-only — otherwise the claimed verdict of
  // (row_ref, b) deltas is not the column question.
  const bool ref_row_only = config.prior &&
                            (prior_rows >> row_ref & 1) != 0 &&
                            (func_union >> row_ref & 1) == 0;
  for (unsigned b : non_row) {
    deltas.push_back((std::uint64_t{1} << row_ref) | (std::uint64_t{1} << b));
    if (config.prior) {
      const std::uint64_t bit = std::uint64_t{1} << b;
      if (!ref_row_only) {
        priors.emplace_back(std::nullopt);
      } else if ((prior_cols & bit) != 0 && (func_union & bit) == 0) {
        priors.emplace_back(true);
      } else if ((func_union & bit) != 0) {
        priors.emplace_back(false);
      } else {
        priors.emplace_back(std::nullopt);
      }
    }
  }
  const auto col_verdicts =
      probe.run(deltas, priors, config.probe, r, "coarse.col");
  for (std::size_t i = 0; i < non_row.size(); ++i) {
    if (col_verdicts[i] && *col_verdicts[i]) {
      result.column_bits.push_back(non_row[i]);
    } else {
      result.bank_bits.push_back(non_row[i]);
    }
  }

  // Knowledge: bits below the cache-line size address bytes within one
  // 64-byte burst — columns by construction, unmeasurable by timing.
  for (unsigned b = 0; b < knowledge.min_probe_bit; ++b) {
    result.column_bits.push_back(b);
  }
  std::sort(result.column_bits.begin(), result.column_bits.end());

  log_info("coarse: rows=" + std::to_string(result.row_bits.size()) +
           " cols=" + std::to_string(result.column_bits.size()) +
           " covered=" + std::to_string(result.bank_bits.size()));
  return result;
}

coarse_result run_coarse_detection(measurement_plan& plan,
                                   const os::mapping_region& buffer,
                                   const domain_knowledge& knowledge, rng& r,
                                   const coarse_config& config) {
  bit_probe_engine probe(plan, buffer);
  return run_coarse_detection(probe, knowledge, r, config);
}

coarse_result run_coarse_detection(timing::channel& channel,
                                   const os::mapping_region& buffer,
                                   const domain_knowledge& knowledge, rng& r,
                                   const coarse_config& config) {
  measurement_plan plan(channel);
  return run_coarse_detection(plan, buffer, knowledge, r, config);
}

}  // namespace dramdig::core

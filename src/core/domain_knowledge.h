// Domain knowledge assembly (paper Section III-A).
//
// DRAMDig's whole advantage over blind tools is that most structure of the
// answer is knowable before a single measurement:
//   * Specifications: JEDEC geometry gives the exact number of row and
//     column bits for the installed DIMMs.
//   * System information: dmidecode/decode-dimms give memory size, channel
//     population, ranks and banks, hence the number of bank functions.
//   * Empirical observations: bank functions are XORs of physical address
//     bits; bits 0-5 address bytes inside one cache line (columns by
//     construction); since Ivy Bridge the lowest bit of the widest bank
//     function is not a column bit.
#pragma once

#include "dram/spec.h"
#include "sysinfo/system_info.h"

namespace dramdig::core {

struct domain_knowledge {
  sysinfo::system_info system;
  dram::chip_spec spec{};
  unsigned address_bits = 0;
  unsigned total_banks = 0;
  unsigned bank_function_count = 0;  ///< log2(total_banks)
  unsigned expected_row_bits = 0;
  unsigned expected_column_bits = 0;

  /// Empirical observation: bits below this are cache-line offset and thus
  /// column bits; timing cannot probe them and does not need to.
  unsigned min_probe_bit = 6;
  /// Empirical observation (since Ivy Bridge): the lowest bit of the bank
  /// function owning the most bits is not a column bit.
  bool widest_function_rule = true;

  /// Build from parsed system reports + the JEDEC spec tables.
  [[nodiscard]] static domain_knowledge from_system_info(
      const sysinfo::system_info& info);
};

}  // namespace dramdig::core

#include "core/address_selection.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/expect.h"
#include "util/log.h"

namespace dramdig::core {

selection_result select_addresses(const os::mapping_region& buffer,
                                  const std::vector<unsigned>& bank_bits) {
  DRAMDIG_EXPECTS(!bank_bits.empty());
  DRAMDIG_EXPECTS(std::is_sorted(bank_bits.begin(), bank_bits.end()));

  selection_result sel;
  sel.b_min = bank_bits.front();
  sel.b_max = bank_bits.back();
  sel.range_mask = (std::uint64_t{1} << (sel.b_max + 1)) -
                   (std::uint64_t{1} << sel.b_min);
  for (unsigned b = sel.b_min; b <= sel.b_max; ++b) {
    if (!std::binary_search(bank_bits.begin(), bank_bits.end(), b)) {
      sel.miss_mask |= std::uint64_t{1} << b;
    }
  }

  // Page-level part of the range mask: candidate bits below the page size
  // are free within any page, so the contiguity requirement only concerns
  // bits >= 12. (The paper states the check on whole pages.)
  const std::uint64_t page_part = sel.range_mask & ~(os::kPageSize - 1);
  const std::uint64_t span = page_part + os::kPageSize;

  // Scan the buffer's frames for a page address p with all page-part bits
  // set whose enclosing aligned window [p - page_part, p + PAGE_SIZE) is
  // fully backed.
  for (const os::pfn_run& run : buffer.pfn_runs()) {
    for (std::uint64_t pfn = run.first_pfn; pfn < run.end_pfn(); ++pfn) {
      const std::uint64_t p = pfn * os::kPageSize;
      if ((p & page_part) != page_part) continue;
      const std::uint64_t start = p - page_part;
      if (!buffer.covers_range(start, start + span)) continue;
      sel.p_start = start;
      sel.p_end = start + span;
      sel.found = true;
      break;
    }
    if (sel.found) break;
  }
  if (!sel.found) {
    log_error("selection: no contiguous range covering bank bits " +
              std::to_string(sel.b_min) + ".." + std::to_string(sel.b_max));
    return sel;
  }

  // Enumerate the pool: every combination of candidate bits exactly once.
  // Skipping addresses that already have a miss bit set (then OR-ing the
  // miss mask in) dedupes without a separate pass.
  const std::uint64_t step = std::uint64_t{1} << sel.b_min;
  for (std::uint64_t p = sel.p_start; p < sel.p_end; p += step) {
    if ((p & sel.miss_mask) != 0) continue;
    const std::uint64_t selected = p | sel.miss_mask;
    if (!buffer.contains_page(selected / os::kPageSize)) continue;
    sel.pool.push_back(selected);
  }

  log_info("selection: range [" + std::to_string(sel.p_start) + ", " +
           std::to_string(sel.p_end) + ") pool=" +
           std::to_string(sel.pool.size()));
  DRAMDIG_ENSURES(!sel.pool.empty());
  return sel;
}

}  // namespace dramdig::core

// Step 3: fine-grained row & column bit detection (paper Section III-E).
//
// After Step 2 the bank functions are known exactly, and the JEDEC spec
// says how many row and column bits must exist — so the bits still
// "covered" are the rows/columns that double as bank-function inputs.
//
// Rows: for each bank function (fewest bits first) the paper takes the
// higher bit as the row candidate and confirms with a timed pair that
// differs only in bits that keep every resolved function invariant. A
// plain two-bit flip is not always bank-invariant (a bit may feed a wider
// function too — bit 18 on machine No.2 feeds both (14,18) and the 7-bit
// channel function), so the delta is completed through the GF(2) null
// space of the resolved functions; high latency confirms a row bit rides
// in the delta, low latency refutes the candidate (exactly what rejects
// the pure bank bit 14 proposed by (7,14) on Skylake machines).
//
// Columns: knowledge-driven as in the paper. Candidates are the
// function-feeding bits not yet classified; if a unique widest function
// exists, its lowest bit is excluded (the "since Ivy Bridge" empirical
// rule); the remaining candidates are taken lowest-first until the spec
// count is met.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coarse_detect.h"
#include "core/domain_knowledge.h"
#include "core/measurement_plan.h"
#include "os/address_space.h"
#include "timing/channel.h"
#include "util/rng.h"

namespace dramdig::core {

struct fine_config {
  unsigned votes = 3;            ///< measurements per candidate delta
  unsigned pair_attempts = 256;
};

struct fine_outcome {
  std::vector<unsigned> row_bits;          ///< complete, sorted
  std::vector<unsigned> column_bits;       ///< complete, sorted
  std::vector<unsigned> shared_row_bits;   ///< rows recovered in this step
  std::vector<unsigned> shared_column_bits;
  std::vector<unsigned> rejected_candidates;  ///< refuted by timing
  bool counts_satisfied = false;  ///< row/col counts match the spec
  bool timing_verified = true;    ///< no accepted candidate lacked a probe
};

/// Primary interface: candidate votes go through the measurement-reuse
/// scheduler (shared with partition, so strict verdicts accreted there are
/// available here and vice versa).
[[nodiscard]] fine_outcome run_fine_detection(
    measurement_plan& plan, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, const coarse_result& coarse,
    const std::vector<std::uint64_t>& bank_functions, rng& r,
    const fine_config& config = {});

/// Convenience overload with a call-local plan.
[[nodiscard]] fine_outcome run_fine_detection(
    timing::channel& channel, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, const coarse_result& coarse,
    const std::vector<std::uint64_t>& bank_functions, rng& r,
    const fine_config& config = {});

}  // namespace dramdig::core

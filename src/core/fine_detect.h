// Step 3: fine-grained row & column bit detection (paper Section III-E).
//
// After Step 2 the bank functions are known exactly, and the JEDEC spec
// says how many row and column bits must exist — so the bits still
// "covered" are the rows/columns that double as bank-function inputs.
//
// Rows: for each bank function (fewest bits first) the paper takes the
// higher bit as the row candidate and confirms with a timed pair that
// differs only in bits that keep every resolved function invariant. A
// plain two-bit flip is not always bank-invariant (a bit may feed a wider
// function too — bit 18 on machine No.2 feeds both (14,18) and the 7-bit
// channel function), so the delta is completed through the GF(2) null
// space of the resolved functions; high latency confirms a row bit rides
// in the delta, low latency refutes the candidate (exactly what rejects
// the pure bank bit 14 proposed by (7,14) on Skylake machines). The
// confirmation is just another designed experiment on the shared bit-probe
// engine, so its verdicts draw on the evidence coarse already accreted in
// the measurement plan.
//
// Columns: knowledge-driven as in the paper. Candidates are the
// function-feeding bits not yet classified; if a unique widest function
// exists, its lowest bit is excluded (the "since Ivy Bridge" empirical
// rule); the remaining candidates are taken lowest-first until the spec
// count is met.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bit_probe.h"
#include "core/coarse_detect.h"
#include "core/domain_knowledge.h"
#include "core/measurement_plan.h"
#include "os/address_space.h"
#include "timing/channel.h"
#include "util/rng.h"

namespace dramdig::core {

struct fine_config {
  /// Vote/design parameters of the probe engine (3 votes per candidate).
  probe_config probe{.votes = 3};
  /// Sibling evidence (fleet warm start): per-candidate confirmation
  /// probes carry a vote prior predicting whether a row bit rides in the
  /// bank-invariant delta — but only when the detected functions span the
  /// same space as the claimed ones (otherwise the claimed row set says
  /// nothing about this machine's deltas). Advisory as everywhere: a
  /// disagreeing strict-grade vote drops the prior per experiment.
  std::optional<mapping_prior> prior{};
};

struct fine_outcome {
  std::vector<unsigned> row_bits;          ///< complete, sorted
  std::vector<unsigned> column_bits;       ///< complete, sorted
  std::vector<unsigned> shared_row_bits;   ///< rows recovered in this step
  std::vector<unsigned> shared_column_bits;
  std::vector<unsigned> rejected_candidates;  ///< refuted by timing
  bool counts_satisfied = false;  ///< row/col counts match the spec
  bool timing_verified = true;    ///< no accepted candidate lacked a probe
};

/// Primary interface: candidate confirmations run on the caller's probe
/// engine (shared with coarse, measuring through the same reuse scheduler
/// as partition — verdicts accreted anywhere are available here).
[[nodiscard]] fine_outcome run_fine_detection(
    bit_probe_engine& probe, const domain_knowledge& knowledge,
    const coarse_result& coarse,
    const std::vector<std::uint64_t>& bank_functions, rng& r,
    const fine_config& config = {});

/// Convenience overload with a call-local engine over `plan`.
[[nodiscard]] fine_outcome run_fine_detection(
    measurement_plan& plan, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, const coarse_result& coarse,
    const std::vector<std::uint64_t>& bank_functions, rng& r,
    const fine_config& config = {});

/// Convenience overload with a call-local plan.
[[nodiscard]] fine_outcome run_fine_detection(
    timing::channel& channel, const os::mapping_region& buffer,
    const domain_knowledge& knowledge, const coarse_result& coarse,
    const std::vector<std::uint64_t>& bank_functions, rng& r,
    const fine_config& config = {});

}  // namespace dramdig::core

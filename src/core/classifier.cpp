#include "core/classifier.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "util/bitops.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/log.h"

namespace dramdig::core {

partition_outcome bank_classifier::partition(std::vector<std::uint64_t> pool,
                                             unsigned bank_count, rng& r,
                                             const partition_config& config) {
  DRAMDIG_EXPECTS(bank_count >= 2);
  DRAMDIG_EXPECTS(pool.size() >= bank_count);
  // The representative driver leans on the plan's relation cache for its
  // vote ladder (a cast vote must be remembered, or the ladder can never
  // advance); with the cache off, the pivot-scan loop is the only sound
  // driver.
  if (config.use_representatives && plan_.config().reuse_verdicts) {
    return representative_partition(std::move(pool), bank_count, r, config);
  }
  return pivot_scan_partition(std::move(pool), bank_count, r, config);
}

// ---------------------------------------------------------------------------
// Legacy pivot-scan loop (paper Algorithm 2, the differential oracle).
// Preserved bit-for-bit from the pre-engine partition_pool: same rng draw
// sequence, same plan calls, same acceptance rules.

partition_outcome bank_classifier::pivot_scan_partition(
    std::vector<std::uint64_t> pool, unsigned bank_count, rng& r,
    const partition_config& config) {
  partition_outcome out;

  const std::size_t pool_sz = pool.size();
  const double pile_sz =
      static_cast<double>(pool_sz) / static_cast<double>(bank_count);
  const double lo = (1.0 - config.delta_lower) * pile_sz;
  const double hi = (1.0 + config.delta) * pile_sz;
  const std::size_t stop_at = static_cast<std::size_t>(
      (1.0 - config.per_threshold) * static_cast<double>(pool_sz));
  const unsigned max_attempts = config.max_pivot_attempts != 0
                                    ? config.max_pivot_attempts
                                    : 4 * bank_count + 32;

  scan_options scan{};
  scan.verify_positives = config.verify_positives;
  scan.prescreen_sample = config.prescreen_sample;
  scan.prescreen_z = config.prescreen_z;
  scan.window = {lo, hi};

  // Partner-list buffers reused across pivot attempts; the plan reuses
  // its own scratch for the large per-scan buffers too, so the
  // O(pool * banks) loop allocates only small per-scan bookkeeping.
  std::vector<std::uint64_t> partners;
  std::vector<std::size_t> partner_idx;
  std::vector<std::size_t> members;
  partners.reserve(pool.size());
  partner_idx.reserve(pool.size());
  members.reserve(pool.size());

  unsigned attempts = 0;
  while (pool.size() > stop_at) {
    if (attempts++ >= max_attempts) {
      log_error("partition: exceeded pivot attempts with " +
                std::to_string(pool.size()) + " addresses unassigned");
      return out;  // success stays false
    }
    const std::size_t pivot_idx = r.below(pool.size());
    const std::uint64_t pivot = pool[pivot_idx];

    // One scan through the scheduler: cached relations are free, unknown
    // partners get the single-sample scan, positives the strict min-filter
    // re-check — so a contaminated sample, or a whole background-load
    // burst, cannot plant a wrong-bank address in the pile. A single
    // polluted pile would erase a true function from Algorithm 3's
    // intersection.
    partners.clear();
    partner_idx.clear();
    members.clear();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i == pivot_idx) continue;
      partners.push_back(pool[i]);
      partner_idx.push_back(i);
    }
    const auto verdict = plan_.classify_partners(pivot, partners, scan);
    out.reused_verdicts += verdict.reused;
    if (verdict.prescreen_rejected) {
      ++out.rejected_piles;
      ++out.prescreen_rejections;
      continue;
    }
    for (std::size_t j = 0; j < verdict.member.size(); ++j) {
      if (verdict.member[j]) members.push_back(partner_idx[j]);
    }

    // Pile size counts the pivot: the pile *is* a bank-sized class, and on
    // tiny pools (64 addresses / 8 banks) excluding the pivot would push
    // legitimate piles just below the delta window.
    const double size = static_cast<double>(members.size() + 1);
    if (size < lo || size > hi) {
      ++out.rejected_piles;
      continue;
    }

    // Accept: extract pivot + members from the pool.
    std::vector<std::uint64_t> pile;
    pile.reserve(members.size() + 1);
    pile.push_back(pivot);
    for (std::size_t i : members) pile.push_back(pool[i]);
    out.partitioned += pile.size();

    members.push_back(pivot_idx);
    std::sort(members.begin(), members.end(), std::greater<>());
    for (std::size_t i : members) {
      pool[i] = pool.back();
      pool.pop_back();
    }
    out.piles.push_back(std::move(pile));
  }

  out.success = true;
  log_info("partition: " + std::to_string(out.piles.size()) + " piles, " +
           std::to_string(out.partitioned) + "/" + std::to_string(pool_sz) +
           " assigned, " + std::to_string(out.rejected_piles) + " rejected (" +
           std::to_string(out.prescreen_rejections) + " pre-screened), " +
           std::to_string(out.reused_verdicts) + " verdicts reused");
  return out;
}

// ---------------------------------------------------------------------------
// DRAMA-style peel: the baseline's clustering sweeps through the shared
// batch substrate.

bank_classifier::peel_outcome bank_classifier::peel(
    std::vector<std::uint64_t> pool, rng& r, const peel_config& config) {
  peel_outcome out;
  scan_options opts{};
  opts.verify_positives = false;  // DRAMA trusts single samples — its flaw
  opts.prescreen_sample = 0;

  std::vector<std::uint64_t> partners;
  std::vector<std::uint64_t> rest;
  while (pool.size() > config.stop_remaining &&
         out.sweeps < config.max_sweeps) {
    ++out.sweeps;
    const std::size_t base_idx = r.below(pool.size());
    const std::uint64_t base = pool[base_idx];
    partners.clear();
    partners.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i != base_idx) partners.push_back(pool[i]);
    }
    const auto verdict = plan_.classify_partners(base, partners, opts);
    std::vector<std::uint64_t> set{base};
    rest.clear();
    rest.reserve(partners.size());
    for (std::size_t j = 0; j < partners.size(); ++j) {
      (verdict.member[j] ? set : rest).push_back(partners[j]);
    }
    std::swap(pool, rest);
    if (set.size() >= config.min_set_size) {
      out.sets.push_back(std::move(set));
    }
    // Undersized sets are dropped as noise — their members are already
    // consumed, which is exactly how the original tool loses banks.
  }
  return out;
}

// ---------------------------------------------------------------------------
// Representative-based partition.

partition_outcome bank_classifier::representative_partition(
    std::vector<std::uint64_t> pool, unsigned bank_count, rng& r,
    const partition_config& config) {
  partition_outcome out;
  const std::size_t n = pool.size();
  const double pile_sz =
      static_cast<double>(n) / static_cast<double>(bank_count);
  const double lo = (1.0 - config.delta_lower) * pile_sz;
  const double hi = (1.0 + config.delta) * pile_sz;
  const std::size_t stop_at = static_cast<std::size_t>(
      (1.0 - config.per_threshold) * static_cast<double>(n));
  const std::size_t target = n - stop_at;
  const unsigned max_attempts = config.max_pivot_attempts != 0
                                    ? config.max_pivot_attempts
                                    : 4 * bank_count + 32;
  const unsigned max_reps = std::max(1u, config.max_representatives);
  const std::uint64_t free_credit =
      plan_.saved_scan_credit(config.verify_positives);

  scan_options founder_opts{};
  founder_opts.verify_positives = config.verify_positives;
  founder_opts.prescreen_sample = config.prescreen_sample;
  founder_opts.prescreen_z = config.prescreen_z;
  founder_opts.window = {lo, hi};

  // Per-address state. assigned_class holds an index into classes_;
  // exhausted marks contradiction stragglers (every representative of
  // their predicted class refuted them — noise), founder_blocked marks
  // addresses whose founder scan the window rejected.
  std::vector<int> assigned_class(n, -1);
  std::vector<char> exhausted(n, 0);
  std::vector<char> founder_blocked(n, 0);
  std::size_t assigned_count = 0;

  const auto assign = [&](std::size_t i, int c) {
    assigned_class[i] = c;
    ++assigned_count;
  };
  // Promote a freshly verified member to representative when it is
  // provably row-distinct from every current representative (a strict
  // SBDR positive proves different rows, so the memo check suffices and
  // never costs a measurement).
  const auto maybe_promote = [&](int c, std::uint64_t x) {
    std::vector<std::uint64_t>& reps = classes_[c].representatives;
    if (reps.size() >= max_reps) return;
    for (const std::uint64_t rep : reps) {
      if (!plan_.known_strict_positive(x, rep)) return;
    }
    reps.push_back(x);
  };

  // ---- Knowledge-assisted prediction. -----------------------------------
  // The strict-verified piles' XOR differences (restricted to the bits
  // that vary across the pool) span the orthogonal complement of the bank
  // functions, so the difference matrix's null space always CONTAINS the
  // true function span. When its dimension equals log2(#banks) it IS the
  // span — then every address's bank id is computable host-side and the
  // first vote goes to the right class. A thinner pile leaves the space
  // too fine (untrusted): the engine falls back to sweeping every open
  // class, which is exactly as safe and as expensive as the pivot loop.
  std::uint64_t support = 0;
  for (const std::uint64_t a : pool) support |= a ^ pool.front();
  const unsigned want = (bank_count & (bank_count - 1)) == 0
                            ? log2_exact(bank_count)
                            : 0;
  bool trusted = false;
  gf2::matrix basis;
  std::vector<std::uint64_t> ids(n, 0);
  std::unordered_map<std::uint64_t, int> id_to_class;
  const auto id_of = [&](std::uint64_t addr) {
    std::uint64_t id = 0;
    for (std::size_t k = 0; k < basis.size(); ++k) {
      id |= static_cast<std::uint64_t>(parity(addr, basis[k])) << k;
    }
    return id;
  };
  const auto refresh_prediction = [&]() {
    trusted = false;
    id_to_class.clear();
    if (want == 0) return;
    gf2::matrix diff_basis;
    for (const bank_class& c : classes_) {
      const std::uint64_t base = c.members.front();
      for (std::size_t i = 1; i < c.members.size(); ++i) {
        std::uint64_t d = (c.members[i] ^ base) & support;
        for (const std::uint64_t b : diff_basis) {
          const int pivot_bit = 63 - std::countl_zero(b);
          if (pivot_bit >= 0 && ((d >> pivot_bit) & 1u)) d ^= b;
        }
        if (d != 0) diff_basis.push_back(d);
      }
    }
    basis = classes_.empty() ? gf2::matrix{}
                             : gf2::nullspace(diff_basis, support);
    if (basis.size() != want) {
      // Fleet warm start: while the accreted piles cannot pin the span
      // themselves, fall back to the stored sibling span — but only while
      // every measured same-bank difference stays orthogonal to it. Same-
      // bank members have equal parity under every true function, so a
      // single odd overlap proves the hint wrong for this machine and
      // latches it off; the accreted evidence then takes over exactly as
      // in a cold run.
      if (warm_span_.empty() || warm_poisoned_) return;
      gf2::matrix hint;
      for (std::uint64_t f : warm_span_) {
        if ((f &= support) != 0) hint.push_back(f);
      }
      for (const std::uint64_t d : diff_basis) {
        for (const std::uint64_t f : hint) {
          if (parity(d, f) != 0) {
            warm_poisoned_ = true;
            return;
          }
        }
      }
      hint = gf2::row_echelon(std::move(hint));
      if (hint.size() != want) return;  // hint too thin on this pool
      basis = std::move(hint);
    }
    trusted = true;
    for (std::size_t i = 0; i < n; ++i) ids[i] = id_of(pool[i]);
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      id_to_class.emplace(id_of(classes_[c].members.front()),
                          static_cast<int>(c));
    }
  };

  // ---- Stage 0: resolve what the plan already proves (directory reuse). --
  // Classes that survived a previous call (the bank-count sweep, repeat
  // partitions) re-claim their members straight from the union-find — no
  // measurement, the representative verdicts already merged them.
  if (!classes_.empty()) {
    std::unordered_map<std::size_t, int> root_to_class;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      const std::size_t root =
          plan_.class_root(classes_[c].representatives.front());
      if (root != measurement_plan::no_class) {
        root_to_class.emplace(root, static_cast<int>(c));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t root = plan_.class_root(pool[i]);
      if (root == measurement_plan::no_class) continue;
      const auto hit = root_to_class.find(root);
      if (hit == root_to_class.end()) continue;
      assign(i, hit->second);
      ++out.reused_verdicts;
      ++stats_.free_assignments;
      plan_.credit_saved(free_credit);
    }
  }

  // ---- Main rounds: vote batch, then at most one founder scan. -----------
  std::vector<sim::addr_pair> vote_pairs;
  std::vector<std::size_t> vote_idx;
  std::vector<int> vote_class;
  std::vector<char> vote_fallback;
  std::vector<std::size_t> founder_candidates;
  std::vector<std::uint64_t> partners;
  std::vector<std::size_t> partner_idx;
  // Founder-pick scratch: ids are `want`-bit values, so group sizes live
  // in a flat array indexed by id — rebuilt per round, never allocated.
  std::vector<std::size_t> group_size(want == 0 ? 0 : std::size_t{1} << want);
  unsigned founder_attempts = 0;
  bool prediction_dirty = true;
  // Livelock bound: an address's ladder has at most one rung per
  // representative per class, so any stretch of all-negative vote rounds
  // longer than that means the ladder's memory is being erased out from
  // under it (witness LRU eviction with more open classes than
  // plan_config::max_witnesses) — fail the partition instead of spinning.
  const unsigned max_barren_rounds = bank_count * max_reps + 2;
  unsigned barren_rounds = 0;

  while (assigned_count < target) {
    if (barren_rounds > max_barren_rounds) {
      log_error("partition(rep): no progress after " +
                std::to_string(barren_rounds) +
                " vote rounds (witness capacity too small for " +
                std::to_string(classes_.size()) + " open classes?)");
      break;  // success stays false below
    }
    const std::size_t assigned_before_round = assigned_count;
    if (prediction_dirty || !trusted) {
      refresh_prediction();
      prediction_dirty = false;
    }

    // Collect this round's votes: one (representative, address) pair per
    // unassigned address, predicted class first when the prediction is
    // trusted, open classes in discovery order otherwise. The plan's
    // relation cache is the ladder memory — a cast vote is an exact-pair
    // witness, so the next round naturally advances to the next rung.
    vote_pairs.clear();
    vote_idx.clear();
    vote_class.clear();
    vote_fallback.clear();
    founder_candidates.clear();
    std::size_t free_this_round = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned_class[i] >= 0 || exhausted[i]) continue;
      const std::uint64_t x = pool[i];
      int pick_class = -1;
      std::uint64_t pick_rep = 0;
      bool pick_fallback = false;
      bool resolved = false;
      if (trusted) {
        const auto hit = id_to_class.find(ids[i]);
        if (hit == id_to_class.end()) {
          founder_candidates.push_back(i);
          continue;
        }
        const int c = hit->second;
        const std::vector<std::uint64_t>& reps =
            classes_[c].representatives;
        for (std::size_t ri = 0; ri < reps.size(); ++ri) {
          const pair_relation rel = plan_.relation(x, reps[ri]);
          if (rel == pair_relation::same_bank) {
            assign(i, c);
            ++out.reused_verdicts;
            ++stats_.free_assignments;
            plan_.credit_saved(free_credit);
            ++free_this_round;
            resolved = true;
            break;
          }
          if (rel == pair_relation::unknown) {
            pick_class = c;
            pick_rep = reps[ri];
            pick_fallback = ri > 0;
            break;
          }
        }
        if (resolved) continue;
        if (pick_class < 0) {
          // Every row-distinct representative of the (provably right)
          // class refuted this address: contamination noise. Leave it to
          // the per_threshold straggler allowance, like the paper does.
          exhausted[i] = 1;
          continue;
        }
      } else {
        // Untrusted sweep: honour any cached positive first, then the
        // first unanswered primary vote, then the second-representative
        // fallback rung, and only then the founder queue.
        for (std::size_t c = 0; c < classes_.size() && !resolved; ++c) {
          const std::vector<std::uint64_t>& reps =
              classes_[c].representatives;
          const pair_relation rel = plan_.relation(x, reps.front());
          if (rel == pair_relation::same_bank) {
            assign(i, static_cast<int>(c));
            ++out.reused_verdicts;
            ++stats_.free_assignments;
            plan_.credit_saved(free_credit);
            ++free_this_round;
            resolved = true;
          } else if (rel == pair_relation::unknown && pick_class < 0) {
            pick_class = static_cast<int>(c);
            pick_rep = reps.front();
          }
        }
        if (resolved) continue;
        if (pick_class < 0) {
          for (std::size_t c = 0; c < classes_.size(); ++c) {
            const std::vector<std::uint64_t>& reps =
                classes_[c].representatives;
            if (reps.size() < 2) continue;
            if (plan_.relation(x, reps[1]) == pair_relation::unknown) {
              pick_class = static_cast<int>(c);
              pick_rep = reps[1];
              pick_fallback = true;
              break;
            }
          }
        }
        if (pick_class < 0) {
          founder_candidates.push_back(i);
          continue;
        }
      }
      vote_pairs.emplace_back(pick_rep, x);
      vote_idx.push_back(i);
      vote_class.push_back(pick_class);
      vote_fallback.push_back(pick_fallback ? 1 : 0);
    }

    // Cast the round's votes in one batch.
    if (!vote_pairs.empty()) {
      const auto votes =
          plan_.classify_pairs(vote_pairs, config.verify_positives);
      out.reused_verdicts += votes.reused;
      for (std::size_t j = 0; j < vote_pairs.size(); ++j) {
        if (vote_fallback[j]) {
          ++out.fallback_votes;
          ++stats_.fallback_votes;
        } else {
          ++out.representative_votes;
          ++stats_.representative_votes;
        }
        if (!votes.member[j]) continue;
        const std::size_t i = vote_idx[j];
        const int c = vote_class[j];
        assign(i, c);
        classes_[c].members.push_back(pool[i]);
        maybe_promote(c, pool[i]);
        if (trusted && !vote_fallback[j]) {
          ++out.predicted_assignments;
          ++stats_.predicted_assignments;
        }
        prediction_dirty = true;
      }
    }

    // Open at most one new class per round: the founder's scan is either
    // limited to its predicted id group (trusted — the group IS the bank)
    // or the full unassigned pool with the adaptive pre-screen (untrusted
    // — the legacy-robust path).
    bool founder_ran = false;
    if (assigned_count < target && founder_attempts < max_attempts &&
        classes_.size() < bank_count) {
      std::size_t pick = n;  // n = none
      if (trusted) {
        // Largest unassigned id group founds first: most information per
        // scan, and ties broken by pool order keep the choice
        // deterministic.
        std::fill(group_size.begin(), group_size.end(), 0);
        for (std::size_t i = 0; i < n; ++i) {
          if (assigned_class[i] < 0) ++group_size[ids[i]];
        }
        std::size_t best = 0;
        for (const std::size_t i : founder_candidates) {
          if (founder_blocked[i]) continue;
          const std::size_t g = group_size[ids[i]];
          if (g > best) {
            best = g;
            pick = i;
          }
        }
      } else {
        std::vector<std::size_t> eligible;
        for (const std::size_t i : founder_candidates) {
          if (!founder_blocked[i]) eligible.push_back(i);
        }
        if (!eligible.empty()) pick = eligible[r.below(eligible.size())];
      }
      if (pick < n) {
        ++founder_attempts;
        ++out.founder_scans;
        ++stats_.founder_scans;
        founder_ran = true;
        const std::uint64_t pivot = pool[pick];
        partners.clear();
        partner_idx.clear();
        for (std::size_t i = 0; i < n; ++i) {
          if (i == pick || assigned_class[i] >= 0) continue;
          if (trusted && ids[i] != ids[pick]) continue;
          partners.push_back(pool[i]);
          partner_idx.push_back(i);
        }
        scan_options opts = founder_opts;
        if (trusted) {
          ++stats_.group_founder_scans;
          opts.prescreen_sample = 0;  // the group is already pile-sized
        }
        if (static_cast<double>(partners.size() + 1) < lo) {
          // The candidate pile cannot reach the window even if every
          // partner joins: reject without measuring.
          ++out.rejected_piles;
          founder_blocked[pick] = 1;
        } else {
          const auto verdict = plan_.classify_partners(pivot, partners, opts);
          out.reused_verdicts += verdict.reused;
          if (verdict.prescreen_rejected) {
            ++out.rejected_piles;
            ++out.prescreen_rejections;
            founder_blocked[pick] = 1;
          } else {
            std::size_t member_count = 0;
            for (const char m : verdict.member) member_count += m != 0;
            const double size = static_cast<double>(member_count + 1);
            if (size < lo || size > hi) {
              ++out.rejected_piles;
              founder_blocked[pick] = 1;
            } else {
              bank_class fresh;
              fresh.members.push_back(pivot);
              fresh.representatives.push_back(pivot);
              classes_.push_back(std::move(fresh));
              const int c = static_cast<int>(classes_.size()) - 1;
              assign(pick, c);
              for (std::size_t j = 0; j < partners.size(); ++j) {
                if (!verdict.member[j]) continue;
                assign(partner_idx[j], c);
                classes_[c].members.push_back(partners[j]);
                maybe_promote(c, partners[j]);
              }
              if (trusted) {
                out.predicted_assignments += member_count + 1;
                stats_.predicted_assignments += member_count + 1;
              }
              prediction_dirty = true;
            }
          }
        }
      }
    }

    if (vote_pairs.empty() && free_this_round == 0 && !founder_ran) {
      break;  // nothing left to try: stragglers beyond the ladder
    }
    // Founder scans are capped by max_attempts, so they count as progress;
    // barren stretches are only rounds of purely negative votes.
    if (assigned_count > assigned_before_round || founder_ran) {
      barren_rounds = 0;
    } else {
      ++barren_rounds;
    }
  }

  // ---- Assemble piles, re-validating the window. -------------------------
  // Directory classes founded under another bank-count hypothesis can fall
  // outside this call's window; their members then don't count as
  // partitioned (and the call fails if too little survives), which is the
  // wrong-bank-count rejection the sweep relies on.
  std::vector<std::vector<std::size_t>> pile_members(classes_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (assigned_class[i] >= 0) {
      pile_members[static_cast<std::size_t>(assigned_class[i])].push_back(i);
    }
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (pile_members[c].empty()) continue;
    const double size = static_cast<double>(pile_members[c].size());
    if (size < lo || size > hi) {
      ++out.rejected_piles;
      continue;
    }
    std::vector<std::uint64_t> pile;
    pile.reserve(pile_members[c].size());
    // Pivot-first ordering, matching the legacy pile shape.
    const std::uint64_t pivot = classes_[c].representatives.front();
    for (const std::size_t i : pile_members[c]) {
      if (pool[i] == pivot) pile.push_back(pool[i]);
    }
    for (const std::size_t i : pile_members[c]) {
      if (pool[i] != pivot) pile.push_back(pool[i]);
    }
    out.partitioned += pile.size();
    out.piles.push_back(std::move(pile));
  }
  out.success = out.partitioned >= target;

  if (out.success) {
    log_info("partition(rep): " + std::to_string(out.piles.size()) +
             " piles, " + std::to_string(out.partitioned) + "/" +
             std::to_string(n) + " assigned, " +
             std::to_string(out.representative_votes) + "+" +
             std::to_string(out.fallback_votes) + " votes, " +
             std::to_string(out.founder_scans) + " founder scans, " +
             std::to_string(out.predicted_assignments) + " predicted, " +
             std::to_string(out.reused_verdicts) + " verdicts reused");
  } else {
    log_error("partition(rep): only " + std::to_string(out.partitioned) +
              "/" + std::to_string(n) + " assigned after " +
              std::to_string(out.founder_scans) + " founder scans");
  }
  return out;
}

}  // namespace dramdig::core

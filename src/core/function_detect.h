// Step 2 phase 3: bank address function detection (paper Algorithm 3).
//
// Candidate functions are XOR masks over the detected bank bits, tried
// from one bit up to all of them. A mask that evaluates to a constant
// parity on every address of every pile is a candidate; candidates that
// are linear combinations of fewer-bit candidates are redundant (GF(2)
// reduction implements the paper's prioritize + remove_redundant); and the
// surviving log2(#banks)-sized basis must number the piles 0..#banks-1
// (check_numbering).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/virtual_clock.h"

namespace dramdig::core {

struct function_config {
  /// Virtual CPU time charged per parity evaluation / GF(2) row operation;
  /// keeps Fig. 2 honest about the software cost of the search.
  double cpu_ns_per_check = 1.0;
  /// Default path: reduce each pile's XOR differences (restricted to the
  /// bank-bit support) to a GF(2) row-echelon basis; a mask is constant on
  /// a pile iff it annihilates that difference space, so the complete
  /// candidate set is the null space of the stacked difference matrix —
  /// O(pool * |bank_bits|) row operations instead of 2^|bank_bits| mask
  /// enumerations. Setting this false selects the legacy enumeration,
  /// retained as a differential-test oracle.
  bool use_nullspace = true;
};

struct function_outcome {
  bool success = false;
  std::vector<std::uint64_t> functions;  ///< minimal basis
  bool numbering_ok = false;
  std::size_t raw_candidates = 0;  ///< masks surviving all piles
  std::string failure_reason;
};

[[nodiscard]] function_outcome detect_functions(
    const std::vector<std::vector<std::uint64_t>>& piles,
    const std::vector<unsigned>& bank_bits, unsigned bank_count,
    sim::virtual_clock& clock, const function_config& config = {});

}  // namespace dramdig::core

// The DRAMDig tool: the paper's three-step pipeline wired together.
//
//   Step 1  coarse row/column detection          (coarse_detect)
//   Step 2  address selection + partition + bank function resolving
//           (address_selection, partition, function_detect)
//   Step 3  fine-grained shared-bit detection    (fine_detect)
//
// The tool only touches the machine through the timing channel and the
// simulated OS (mmap + pagemap + dmidecode/decode-dimms text); the report
// carries the reverse-engineered mapping plus per-phase virtual time and
// measurement counts — the quantities behind Table II and Fig. 2.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "core/address_selection.h"
#include "core/bit_probe.h"
#include "core/coarse_detect.h"
#include "core/environment.h"
#include "core/fine_detect.h"
#include "core/function_detect.h"
#include "core/measurement_plan.h"
#include "core/partition.h"
#include "core/phase.h"
#include "dram/mapping.h"
#include "timing/channel.h"
#include "util/gf2.h"

namespace dramdig::core {

struct dramdig_config {
  /// Fraction of installed memory the tool maps (the real tool allocates
  /// most of free RAM so Algorithm 1 finds its contiguous range).
  double buffer_fraction = 0.55;
  timing::channel_config channel{.rounds_per_measurement = 1000,
                                 .samples_per_latency = 3,
                                 .calibration_pairs = 1500};
  coarse_config coarse{};
  partition_config partition{};
  function_config functions{};
  fine_config fine{};
  /// Measurement-reuse scheduler shared by every phase of one run: strict
  /// verdicts merge same-bank classes, scan negatives separate them, and
  /// any relation the cache implies is answered without a measurement.
  plan_config plan{};
  /// Partition/function-resolution retries before giving up.
  unsigned max_attempts = 3;
  /// Fleet warm start (filled by the api layer from a mapping-store
  /// geometry hit — see src/store). The span hint seeds the classifier's
  /// knowledge-assisted prediction so trusted vote ordering and group
  /// founder scans engage from round 0; the pool evidence pre-sizes the
  /// measurement plan; the full evidence prior (schema v2 entries) feeds
  /// every phase: the sibling threshold authorizes an early calibration
  /// stop once local estimates confirm it, the bit classification seeds
  /// coarse/fine vote priors, the stored functions stratify the partition
  /// pool to an exact per-predicted-bank quota, and the bank-count sweep
  /// starts at the stored count. Hints are advisory: every assignment is
  /// still measurement-verified, a contradicted claim is dropped where it
  /// was refuted (prior per experiment, span mid-run, subsample on the
  /// attempt retry), and a failed attempt retries cold — so a wrong hint
  /// can cost measurements but never the recovered mapping.
  struct warm_hints {
    gf2::matrix function_span;        ///< claimed bank-function span basis
    std::size_t expected_pool = 0;    ///< selection-pool size evidence
    // --- evidence prior (zero/empty on v1-era store entries) ---
    std::vector<std::uint64_t> bank_functions;  ///< claimed XOR masks
    std::vector<unsigned> row_bits;             ///< claimed row set
    std::vector<unsigned> column_bits;          ///< claimed column set
    unsigned bank_count = 0;                    ///< claimed bank count
    double threshold_ns = 0.0;                  ///< sibling threshold
  };
  std::optional<warm_hints> warm{};
  /// Ablation switches: without system information the tool must guess the
  /// bank count; without spec counts Step 3 cannot complete shared bits.
  bool use_system_info = true;
  bool use_spec_counts = true;
  std::uint64_t tool_seed = 1;
  /// Per-phase progress events. When unset, the tool narrates each phase at
  /// info log level (the timing log examples show); the mapping_service
  /// installs its own hook here to stream job progress to observers. With a
  /// hook installed the probe engine's designed rounds stream too, one
  /// event per cross-bit round ("probe:coarse.row" etc., vote count in
  /// pairs_used, cost metered by the owning phase event).
  phase_callback on_phase{};
};

struct dramdig_report {
  bool success = false;
  std::optional<dram::address_mapping> mapping;
  std::string failure_reason;

  phase_stats calibration, coarse, selection, partition, functions, fine;
  double total_seconds = 0.0;
  std::uint64_t total_measurements = 0;
  /// Cache activity of the reuse scheduler, valued in measurements: every
  /// verdict answered from the cache (class membership, cross proofs,
  /// memoized strict votes, pre-screened scan remainders, min-filter
  /// sample reuse) counts what re-measuring it in place would have cost.
  /// Repeat scans re-count their reuse, so this meters this run's own
  /// path — it is NOT the delta against a cache-off run, whose pivot
  /// choices and attempt structure diverge (compare total_measurements
  /// across configs for that, as bench_micro_primitives does).
  std::uint64_t measurements_saved = 0;

  std::size_t pool_size = 0;
  std::size_t pile_count = 0;
  unsigned attempts_used = 0;
  unsigned assumed_bank_count = 0;  ///< differs from truth only in ablation
  double threshold_ns = 0.0;

  coarse_result coarse_detail;
  fine_outcome fine_detail;
  std::vector<std::uint64_t> bank_functions;
  /// Designed-experiment engine activity across the coarse and fine
  /// phases: rounds batched, votes cast, votes early-terminated, votes
  /// answered from the reuse cache.
  probe_stats probe;
};

class dramdig_tool {
 public:
  explicit dramdig_tool(environment& env, dramdig_config config = {});

  /// Run the full pipeline once. Each call maps a fresh buffer.
  [[nodiscard]] dramdig_report run();

 private:
  environment& env_;
  dramdig_config config_;
};

}  // namespace dramdig::core

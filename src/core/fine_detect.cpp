#include "core/fine_detect.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <set>

#include "util/bitops.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/log.h"

namespace dramdig::core {

namespace {

/// A delta containing bit `s` that keeps every bank function invariant:
/// solve parity(x, f_i) = 0 for all i plus x_s = 1 over the bank-bit
/// support. nullopt when no such delta exists.
std::optional<std::uint64_t> bank_invariant_delta(
    const std::vector<std::uint64_t>& funcs, unsigned s,
    std::uint64_t support) {
  gf2::matrix system = funcs;
  system.push_back(std::uint64_t{1} << s);  // pin the candidate bit to 1
  const std::uint64_t rhs = std::uint64_t{1} << funcs.size();
  return gf2::solve(system, rhs, support | (std::uint64_t{1} << s));
}

}  // namespace

fine_outcome run_fine_detection(bit_probe_engine& probe,
                                const domain_knowledge& knowledge,
                                const coarse_result& coarse,
                                const std::vector<std::uint64_t>& bank_functions,
                                rng& r, const fine_config& config) {
  DRAMDIG_EXPECTS(!bank_functions.empty());
  fine_outcome out;
  out.row_bits = coarse.row_bits;
  out.column_bits = coarse.column_bits;

  const std::uint64_t support = mask_of_bits(coarse.bank_bits);
  std::set<unsigned> rows(out.row_bits.begin(), out.row_bits.end());
  std::set<unsigned> cols(out.column_bits.begin(), out.column_bits.end());

  // Sibling evidence (fleet warm start), usable only when the detected
  // functions span the claimed space — the claimed row set is a statement
  // about THESE functions' null-space deltas. When usable it (a) orders
  // claimed-row candidates first, so the spec count is exhausted before
  // refutable candidates are ever probed, and (b) predicts each
  // confirmation verdict: a delta flips a row iff it meets the claimed
  // row mask.
  std::uint64_t prior_rows = 0;
  const bool prior_usable =
      config.prior && !config.prior->bank_functions.empty() &&
      gf2::same_span(bank_functions, config.prior->bank_functions);
  if (prior_usable) prior_rows = mask_of_bits(config.prior->row_bits);

  // ---- Shared row bits -------------------------------------------------
  // Candidate = a function's highest bit (the paper: "consider the higher
  // one as the row bit"). Functions are investigated highest-bit-first:
  // row bits live at the top of the address, so the first proposals are
  // the most likely true rows, and the spec count is usually exhausted
  // before basis artifacts (a pure/pure bit pair that happens to lie in
  // the function span) ever get proposed.
  std::vector<std::uint64_t> by_width = bank_functions;
  std::sort(by_width.begin(), by_width.end(),
            [](std::uint64_t a, std::uint64_t b) {
              const auto ha = bits_of_mask(a).back();
              const auto hb = bits_of_mask(b).back();
              if (ha != hb) return ha > hb;
              const int pa = std::popcount(a), pb = std::popcount(b);
              return pa != pb ? pa < pb : a < b;
            });
  if (prior_usable) {
    std::stable_partition(by_width.begin(), by_width.end(),
                          [&](std::uint64_t f) {
                            if (std::popcount(f) < 2) return false;
                            const unsigned c = bits_of_mask(f).back();
                            return (prior_rows >> c & 1) != 0;
                          });
  }
  std::size_t needed =
      knowledge.expected_row_bits > rows.size()
          ? knowledge.expected_row_bits - rows.size()
          : 0;
  for (std::uint64_t f : by_width) {
    if (needed == 0) break;
    if (std::popcount(f) < 2) continue;  // a 1-bit function is a pure bank bit
    const auto bits = bits_of_mask(f);
    const unsigned candidate = bits.back();
    if (rows.contains(candidate) || cols.contains(candidate)) continue;

    // Timed confirmation through a bank-invariant delta: one more designed
    // experiment on the shared engine (strict-quality votes — accepting a
    // shared row bit on a contaminated fast sample would corrupt the final
    // mapping, and contamination is one-sided, so the min filter is the
    // right tool here).
    bool accept = true;
    const auto delta = bank_invariant_delta(bank_functions, candidate, support);
    if (delta) {
      const std::uint64_t probe_delta[1] = {*delta};
      const std::optional<bool> probe_prior[1] = {
          prior_usable ? std::optional<bool>((*delta & prior_rows) != 0)
                       : std::nullopt};
      const auto verdict =
          probe
              .run(probe_delta,
                   prior_usable ? std::span<const std::optional<bool>>(
                                      probe_prior)
                                : std::span<const std::optional<bool>>{},
                   config.probe, r, "fine")
              .front();
      if (verdict.has_value()) {
        accept = *verdict;  // high latency <=> a row bit rides in the delta
      } else {
        out.timing_verified = false;  // knowledge-only acceptance
      }
    } else {
      out.timing_verified = false;
    }
    if (!accept) {
      out.rejected_candidates.push_back(candidate);
      continue;
    }
    rows.insert(candidate);
    out.shared_row_bits.push_back(candidate);
    --needed;
  }
  // Knowledge fallback: if function candidates did not satisfy the spec
  // count (a shared row bit can hide as the non-highest bit of every
  // function containing it), take the highest still-covered bits — rows
  // are the top of the address space on every Intel layout.
  if (needed > 0) {
    out.timing_verified = false;
    for (auto it = coarse.bank_bits.rbegin();
         it != coarse.bank_bits.rend() && needed > 0; ++it) {
      if (rows.contains(*it) || cols.contains(*it)) continue;
      rows.insert(*it);
      out.shared_row_bits.push_back(*it);
      --needed;
    }
  }

  // ---- Shared column bits ----------------------------------------------
  // Candidates: function-feeding bits not classified as row or column.
  std::set<unsigned> candidate_set;
  for (std::uint64_t f : bank_functions) {
    for (unsigned b : bits_of_mask(f)) {
      if (!rows.contains(b) && !cols.contains(b)) candidate_set.insert(b);
    }
  }
  // Empirical rule: if one function is strictly widest, its lowest bit is
  // not a column bit.
  if (knowledge.widest_function_rule && bank_functions.size() >= 2) {
    std::uint64_t widest = 0;
    int widest_pop = 0;
    bool unique = false;
    for (std::uint64_t f : bank_functions) {
      const int p = std::popcount(f);
      if (p > widest_pop) {
        widest_pop = p;
        widest = f;
        unique = true;
      } else if (p == widest_pop) {
        unique = false;
      }
    }
    if (unique) {
      candidate_set.erase(bits_of_mask(widest).front());
    }
  }
  std::size_t cols_needed =
      knowledge.expected_column_bits > cols.size()
          ? knowledge.expected_column_bits - cols.size()
          : 0;
  for (unsigned b : candidate_set) {  // std::set iterates ascending
    if (cols_needed == 0) break;
    cols.insert(b);
    out.shared_column_bits.push_back(b);
    --cols_needed;
  }

  out.row_bits.assign(rows.begin(), rows.end());
  out.column_bits.assign(cols.begin(), cols.end());
  std::sort(out.shared_row_bits.begin(), out.shared_row_bits.end());
  std::sort(out.shared_column_bits.begin(), out.shared_column_bits.end());
  out.counts_satisfied =
      out.row_bits.size() == knowledge.expected_row_bits &&
      out.column_bits.size() == knowledge.expected_column_bits;

  log_info("fine: +" + std::to_string(out.shared_row_bits.size()) +
           " shared row bits, +" +
           std::to_string(out.shared_column_bits.size()) +
           " shared column bits, " +
           std::to_string(out.rejected_candidates.size()) + " refuted");
  return out;
}

fine_outcome run_fine_detection(measurement_plan& plan,
                                const os::mapping_region& buffer,
                                const domain_knowledge& knowledge,
                                const coarse_result& coarse,
                                const std::vector<std::uint64_t>& bank_functions,
                                rng& r, const fine_config& config) {
  bit_probe_engine probe(plan, buffer);
  return run_fine_detection(probe, knowledge, coarse, bank_functions, r,
                            config);
}

fine_outcome run_fine_detection(timing::channel& channel,
                                const os::mapping_region& buffer,
                                const domain_knowledge& knowledge,
                                const coarse_result& coarse,
                                const std::vector<std::uint64_t>& bank_functions,
                                rng& r, const fine_config& config) {
  measurement_plan plan(channel);
  return run_fine_detection(plan, buffer, knowledge, coarse, bank_functions, r,
                            config);
}

}  // namespace dramdig::core

#include "core/dramdig.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "core/classifier.h"
#include "core/probe_util.h"
#include "sysinfo/system_info.h"
#include "util/bitops.h"
#include "util/expect.h"
#include "util/log.h"

namespace dramdig::core {

namespace {

/// Phase accounting: capture clock/measurement deltas around a phase and
/// publish each occurrence as a phase event.
class phase_meter {
 public:
  phase_meter(sim::memory_controller& mc, phase_stats& stats, const char* name,
              const phase_callback& notify)
      : mc_(mc), stats_(stats), name_(name), notify_(notify),
        t0_(mc.clock().now_ns()), m0_(mc.measurement_count()),
        p0_(stats.pairs_used) {}
  ~phase_meter() {
    phase_stats delta;
    delta.seconds = mc_.clock().seconds_since(t0_);
    delta.measurements = mc_.measurement_count() - m0_;
    delta.pairs_used = stats_.pairs_used - p0_;
    stats_.seconds += delta.seconds;
    stats_.measurements += delta.measurements;
    if (notify_) notify_(name_, delta);
  }
  phase_meter(const phase_meter&) = delete;
  phase_meter& operator=(const phase_meter&) = delete;

 private:
  sim::memory_controller& mc_;
  phase_stats& stats_;
  const char* name_;
  const phase_callback& notify_;
  std::uint64_t t0_;
  std::uint64_t m0_;
  std::uint64_t p0_;
};

/// The default phase consumer: the per-phase narration examples enable at
/// info level (the service replaces it with its observer hook).
void log_phase_event(std::string_view phase, const phase_stats& delta) {
  char buf[112];
  std::snprintf(buf, sizeof buf, "dramdig phase: %.*s %.1fs/%llum",
                static_cast<int>(phase.size()), phase.data(), delta.seconds,
                static_cast<unsigned long long>(delta.measurements));
  log_info(buf);
}

}  // namespace

dramdig_tool::dramdig_tool(environment& env, dramdig_config config)
    : env_(env), config_(config) {
  DRAMDIG_EXPECTS(config_.buffer_fraction > 0.0 &&
                  config_.buffer_fraction < 0.95);
}

dramdig_report dramdig_tool::run() {
  dramdig_report report;
  auto& mc = env_.mach().controller();
  const std::uint64_t t_begin = mc.clock().now_ns();
  const std::uint64_t m_begin = mc.measurement_count();
  rng r(env_.seed() ^ config_.tool_seed * 0x9e3779b97f4a7c15ull);
  // Fleet warm start, calibration: the sibling threshold authorizes the
  // channel's prior-validated early stop. The threshold is still computed
  // from this machine's own samples; a wrong prior never matches the
  // local estimates and falls through to the normal adaptive schedule.
  timing::channel_config channel_cfg = config_.channel;
  if (config_.warm && config_.warm->threshold_ns > 0) {
    channel_cfg.calibration_prior_ns = config_.warm->threshold_ns;
  }
  timing::channel channel(mc, channel_cfg, r.fork());
  // One measurement-reuse scheduler for the whole run: verdicts accreted
  // in any phase (or any partition attempt of the bank-count sweep) are
  // reused by every later scan. The classification engine sits on top of
  // it: its class directory (piles + row-distinct representatives)
  // survives across the bank-count sweep, so a repeat partition attempt
  // re-resolves surviving classes without measurements.
  measurement_plan plan(channel, config_.plan);
  bank_classifier engine(plan);
  // Fleet warm start: stored sibling evidence pre-sizes the plan and seeds
  // the classifier's span prediction. Attempt retries clear() both, so a
  // hint that failed an attempt never poisons the next one.
  if (config_.warm) {
    plan.warm_start(config_.warm->expected_pool);
    if (!config_.warm->function_span.empty()) {
      engine.warm_start(config_.warm->function_span);
    }
  }
  // Every phase occurrence is published through one event stream (the Fig. 2
  // decomposition): observers wired in by the mapping_service see the run
  // live; without a hook the events fall back to info-level narration.
  const phase_callback notify =
      config_.on_phase ? config_.on_phase : phase_callback(log_phase_event);
  // The designed-experiment engine behind the coarse and fine phases: one
  // engine per run so both phases vote on one evidence substrate. Its
  // per-round progress streams through the phase-event observer when one
  // is installed (the mapping_service's hook); without an observer the
  // rounds stay silent — their cost is metered by the owning phase event.
  std::optional<bit_probe_engine> probe;
  const auto wire_probe = [&](const os::mapping_region& region) {
    probe.emplace(plan, region);
    if (config_.on_phase) {
      probe->set_round_hook([&](const probe_round_event& e) {
        char name[64];
        std::snprintf(name, sizeof name, "probe:%.*s",
                      static_cast<int>(e.stage.size()), e.stage.data());
        phase_stats delta;
        delta.pairs_used = e.votes;
        config_.on_phase(name, delta);
      });
    }
  };
  const auto finish = [&]() {
    report.total_seconds = mc.clock().seconds_since(t_begin);
    report.total_measurements = mc.measurement_count() - m_begin;
    report.measurements_saved = plan.stats().measurements_saved;
    if (probe) report.probe = probe->stats();
  };

  // --- Domain knowledge ---------------------------------------------------
  // System information comes from the dmidecode/decode-dimms reports; the
  // ablation variant only trusts the memory size (always readable from
  // /proc/meminfo) and must discover the bank count by trial.
  const sysinfo::system_info info = sysinfo::probe(env_.spec());
  domain_knowledge knowledge = domain_knowledge::from_system_info(info);

  // --- Buffer + calibration ------------------------------------------------
  const os::mapping_region& buffer = env_.space().map_buffer(
      static_cast<std::uint64_t>(config_.buffer_fraction *
                                 static_cast<double>(info.total_bytes)));
  {
    phase_meter meter(mc, report.calibration, "calibration", notify);
    const auto pool = sample_addresses(buffer, 2048, r);
    report.threshold_ns = channel.calibrate(pool);
    report.calibration.pairs_used = channel.calibration_pairs_used();
  }
  log_info("dramdig: threshold " + std::to_string(report.threshold_ns) + "ns");

  // --- Step 1: coarse detection --------------------------------------------
  wire_probe(buffer);
  // Fleet warm start, bit classification: the stored mapping seeds
  // per-bit vote priors for the coarse passes (and later fine
  // confirmations). Advisory per experiment — a disagreeing strict-grade
  // vote drops the prior for that bit and the standard majority decides.
  coarse_config coarse_cfg = config_.coarse;
  if (config_.warm && !config_.warm->bank_functions.empty()) {
    coarse_cfg.prior = mapping_prior{config_.warm->bank_functions,
                                     config_.warm->row_bits,
                                     config_.warm->column_bits};
  }
  coarse_result coarse;
  {
    phase_meter meter(mc, report.coarse, "coarse", notify);
    coarse = run_coarse_detection(*probe, knowledge, r, coarse_cfg);
  }
  report.coarse_detail = coarse;
  if (coarse.row_bits.empty() || coarse.bank_bits.empty()) {
    report.failure_reason = "coarse detection found no usable partition of bits";
    finish();
    return report;
  }

  // --- Step 2: selection ---------------------------------------------------
  selection_result selection;
  {
    phase_meter meter(mc, report.selection, "selection", notify);
    selection = select_addresses(buffer, coarse.bank_bits);
  }
  if (!selection.found) {
    report.failure_reason =
        "no physically contiguous range spans the bank bits (fragmented "
        "memory)";
    finish();
    return report;
  }
  report.pool_size = selection.pool.size();

  // Candidate bank counts: with system information there is exactly one;
  // the knowledge ablation has to sweep plausible DDR configurations.
  std::vector<unsigned> bank_count_candidates;
  if (config_.use_system_info) {
    bank_count_candidates.push_back(knowledge.total_banks);
  } else {
    // Largest first: a partition that validates against a small bank count
    // could be a coincidence of a coarse pile split, so the blind sweep
    // rules out the high counts before settling. A warm hint rotates the
    // stored count to the front — the sweep starts where the sibling
    // landed and only widens back to the blind order on refutation (a
    // failed partition/function round just falls through to the next
    // candidate).
    bank_count_candidates = {64, 32, 16, 8};
    if (config_.warm && config_.warm->bank_count > 0) {
      const auto hint =
          std::find(bank_count_candidates.begin(), bank_count_candidates.end(),
                    config_.warm->bank_count);
      if (hint != bank_count_candidates.end()) {
        std::rotate(bank_count_candidates.begin(), hint, hint + 1);
      }
    }
  }

  // --- Step 2: partition + function resolving, with retries ----------------
  // A failed attempt widens the pool with known row bits before retrying:
  // varying a row bit multiplies the pool without growing the pivot's
  // same-row class, so piles move back into the acceptance window. This is
  // the practical "delta and per_threshold can be adjusted" escape hatch
  // of Section III-D, driven by knowledge instead of hand tuning.
  function_outcome functions;
  partition_outcome partition;
  unsigned assumed_banks = 0;
  std::vector<std::uint64_t> pool = selection.pool;

  // Fleet warm start, partition: subsample the pool to an exact
  // per-predicted-bank quota, with each address's bank id computed
  // host-side from the stored functions. Exact strata keep every pile
  // inside the acceptance window deterministically (plain random
  // subsampling leaves hypergeometric spread that routinely busts the
  // upper bound at 64 piles) and guarantee every bank id stays present
  // for the numbering check; picks within a stratum are random — a
  // strided pick risks coset aliasing that deflates the diff-matrix rank
  // behind null-space function detection. Wrong stored functions produce
  // wrong strata, the partition window refutes them, and the attempt
  // retry below restores the full pool (degrade in place — no re-queue).
  //
  // Quota = half the pool's own per-bank density, clamped to [8, 64]:
  // the floor matches the densest geometry the cold selector itself
  // hands partition (8 per bank on the 128/16 and 64/8 machines), so
  // function resolution is known to survive it; the cap bounds how
  // aggressive the cut gets on the 16k-address pools.
  bool pool_subsampled = false;
  if (config_.warm && !config_.warm->bank_functions.empty() &&
      config_.warm->bank_count > 0 &&
      config_.warm->bank_functions.size() < 32 &&
      (std::size_t{1} << config_.warm->bank_functions.size()) ==
          config_.warm->bank_count &&
      pool.size() / config_.warm->bank_count >= 2 * 8) {
    const std::size_t kWarmQuota = std::clamp<std::size_t>(
        pool.size() / config_.warm->bank_count / 2, 8, 64);
    const std::vector<std::uint64_t>& funcs = config_.warm->bank_functions;
    std::vector<std::vector<std::uint64_t>> strata(config_.warm->bank_count);
    for (const std::uint64_t a : pool) {
      std::size_t id = 0;
      for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
        id |= static_cast<std::size_t>(std::popcount(a & funcs[fi]) & 1) << fi;
      }
      strata[id].push_back(a);
    }
    bool quorate = true;
    for (const auto& s : strata) quorate = quorate && s.size() >= kWarmQuota;
    if (quorate) {
      std::vector<std::uint64_t> sampled;
      sampled.reserve(kWarmQuota * strata.size());
      for (auto& s : strata) {
        for (std::size_t k = 0; k < kWarmQuota; ++k) {  // partial Fisher-Yates
          std::swap(s[k], s[k + r.below(s.size() - k)]);
          sampled.push_back(s[k]);
        }
      }
      pool = std::move(sampled);
      report.pool_size = pool.size();
      pool_subsampled = true;
    }
  }

  for (unsigned attempt = 0; attempt < config_.max_attempts && !functions.success;
       ++attempt) {
    report.attempts_used = attempt + 1;
    if (attempt > 0) {
      // A failed attempt may mean a cached relation is wrong (a burst can
      // push a false positive through the min filter, and merges are
      // permanent): retry from fresh measurements, like the
      // pre-scheduler pipeline did. The class directory is built on those
      // merges, so it resets with the plan; the bank-count sweep below
      // still shares both within one attempt.
      plan.reset();
      engine.clear();
      if (pool_subsampled) {
        // The warm strata did not partition: the stored functions are
        // suspect for this machine. Degrade in place to the cold pool.
        pool = selection.pool;
        report.pool_size = pool.size();
        pool_subsampled = false;
      }
    }
    if (attempt > 0 && pool.size() < 32768) {
      // Extend the selection bit set by the lowest still-unused row bits.
      std::vector<unsigned> bits = coarse.bank_bits;
      for (unsigned i = 0; i < attempt && i < coarse.row_bits.size(); ++i) {
        bits.push_back(coarse.row_bits[i]);
      }
      std::sort(bits.begin(), bits.end());
      phase_meter meter(mc, report.selection, "selection", notify);
      const selection_result wider = select_addresses(buffer, bits);
      if (wider.found) {
        pool = wider.pool;
        report.pool_size = pool.size();
      }
    }
    for (unsigned banks : bank_count_candidates) {
      if (pool.size() < banks * 2) continue;  // cannot resolve
      partition_outcome po;
      {
        phase_meter meter(mc, report.partition, "partition", notify);
        po = partition_pool(engine, pool, banks, r, config_.partition);
      }
      if (!po.success) continue;
      function_outcome fo;
      {
        phase_meter meter(mc, report.functions, "functions", notify);
        fo = detect_functions(po.piles, coarse.bank_bits, banks,
                              mc.clock(), config_.functions);
      }
      if (fo.success) {
        functions = fo;
        partition = std::move(po);
        assumed_banks = banks;
        break;
      }
    }
  }
  if (!functions.success) {
    report.failure_reason = functions.failure_reason.empty()
                                ? "partition never stabilized"
                                : functions.failure_reason;
    finish();
    return report;
  }
  report.pile_count = partition.piles.size();
  report.assumed_bank_count = assumed_banks;
  report.bank_functions = functions.functions;

  // --- Step 3: fine-grained detection --------------------------------------
  fine_outcome fine;
  fine_config fine_cfg = config_.fine;
  if (config_.warm && !config_.warm->bank_functions.empty()) {
    // Fine gates the prior itself on span agreement with the detected
    // functions, so a refuted warm claim never reaches its probes.
    fine_cfg.prior = mapping_prior{config_.warm->bank_functions,
                                   config_.warm->row_bits,
                                   config_.warm->column_bits};
  }
  if (config_.use_spec_counts) {
    phase_meter meter(mc, report.fine, "fine", notify);
    fine = run_fine_detection(*probe, knowledge, coarse, functions.functions,
                              r, fine_cfg);
  } else {
    // Spec-count ablation: no way to know how many shared bits remain; the
    // coarse classification is all the tool can report.
    fine.row_bits = coarse.row_bits;
    fine.column_bits = coarse.column_bits;
    fine.counts_satisfied = false;
  }
  report.fine_detail = fine;

  // --- Assemble + validate --------------------------------------------------
  dram::address_mapping hypothesis(functions.functions, fine.row_bits,
                                   fine.column_bits, knowledge.address_bits);
  const bool bijective = hypothesis.is_bijective();
  report.mapping = std::move(hypothesis);
  report.success = bijective && functions.numbering_ok &&
                   (!config_.use_spec_counts || fine.counts_satisfied);
  if (!report.success && report.failure_reason.empty()) {
    report.failure_reason = !bijective
                                ? "hypothesis is not a bijection"
                                : (!functions.numbering_ok
                                       ? "piles not numbered 0..#banks-1"
                                       : "row/column counts incomplete");
  }

  finish();
  log_info("dramdig: " + std::string(report.success ? "success" : "FAILED") +
           " in " + std::to_string(report.total_seconds) + "s, " +
           std::to_string(report.total_measurements) + " measurements (" +
           std::to_string(report.measurements_saved) +
           " answered from the reuse cache)");
  return report;
}

}  // namespace dramdig::core

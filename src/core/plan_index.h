// Arena-backed storage for the measurement plan's relation cache.
//
// The plan's bookkeeping used to live in three std::unordered_maps (address
// -> union-find node, address -> negative-witness list, pair -> strict
// verdict). Each map hit costs a hash, a pointer chase into a separately
// allocated bucket node, and — for the witness lists — a per-address heap
// vector. On the partition/probe hot loops that bookkeeping ate the entire
// wall-time saving of the 4x measurement cut (see BENCH_micro
// plan_overhead). This index replaces all three with flat storage:
//
//  * one open-addressing table (linear probing, power-of-two slots) mapping
//    an address to a dense `record` holding the node id AND the witness
//    list handle — so a lookup that needs both pays one hash, not two;
//  * a shared witness arena: every address's list is a contiguous slice of
//    one std::vector, grown geometrically per list. A list that outgrows
//    its slice is copied to fresh space at the arena tail and the old slice
//    is abandoned until clear() — with the plan's LRU cap (max_witnesses)
//    the leaked space is bounded by the geometric sum, and in exchange
//    there is no per-address allocation at all;
//  * an insert-only open-addressing pair-memo table for strict verdicts.
//
// The index is storage only: LRU order, eviction, stats and the derivation
// rules stay in measurement_plan, which funnels every access through
// backend-branching helpers so the legacy map implementation remains
// available as a differential oracle (plan_config::use_arena_index, same
// shape as the other oracle flags).
//
// Mutation invalidates views: any witness_push may grow the arena, so a
// span returned by witnesses() is valid only until the next push on ANY
// list. Callers that loop over one list while recording negatives on
// others must copy the list first (see classify_partners).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/expect.h"

namespace dramdig::core {

class plan_index {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  plan_index() { clear(); }

  /// Drop every record, witness and memo entry (keeps slot capacity).
  void clear() {
    records_.clear();
    slots_.assign(kMinSlots, 0);
    slot_mask_ = kMinSlots - 1;
    witness_arena_.clear();
    memo_slots_.assign(kMinSlots, memo_slot{});
    memo_mask_ = kMinSlots - 1;
    memo_used_ = 0;
  }

  /// Pre-size for `addresses` distinct addresses (fleet warm start):
  /// grows the record vector and slot table up front so the first batch
  /// pays no rehash cascade. Probe results are table-size independent, so
  /// this changes capacity only, never any observable.
  void reserve(std::size_t addresses) {
    records_.reserve(addresses);
    std::size_t want = kMinSlots;
    while ((addresses + 1) * 10 > want * 7) want <<= 1;
    if (want > slots_.size()) {
      slots_.assign(want, 0);
      slot_mask_ = want - 1;
      for (std::size_t rec = 0; rec < records_.size(); ++rec) {
        std::size_t at = hash_addr(records_[rec].addr) & slot_mask_;
        while (slots_[at] != 0) at = (at + 1) & slot_mask_;
        slots_[at] = rec + 1;
      }
    }
  }

  // --- address records ----------------------------------------------------

  /// Record index for `addr`, or npos when the address was never seen.
  [[nodiscard]] std::size_t find(std::uint64_t addr) const {
    std::size_t at = hash_addr(addr) & slot_mask_;
    while (slots_[at] != 0) {
      const std::size_t rec = slots_[at] - 1;
      if (records_[rec].addr == addr) return rec;
      at = (at + 1) & slot_mask_;
    }
    return npos;
  }

  /// Record index for `addr`, creating an empty record (no node, no
  /// witnesses) on first sight.
  [[nodiscard]] std::size_t find_or_create(std::uint64_t addr) {
    if ((records_.size() + 1) * 10 > slots_.size() * 7) grow_slots();
    std::size_t at = hash_addr(addr) & slot_mask_;
    while (slots_[at] != 0) {
      const std::size_t rec = slots_[at] - 1;
      if (records_[rec].addr == addr) return rec;
      at = (at + 1) & slot_mask_;
    }
    records_.push_back(record{addr, npos, 0, 0, 0});
    slots_[at] = records_.size();
    return records_.size() - 1;
  }

  [[nodiscard]] std::size_t node(std::size_t rec) const {
    return records_[rec].node;
  }
  void set_node(std::size_t rec, std::size_t node) {
    records_[rec].node = node;
  }

  // --- witness lists ------------------------------------------------------

  /// The record's witness list, oldest first. Invalidated by any
  /// witness_push (arena growth), on any record.
  [[nodiscard]] std::span<const std::uint64_t> witnesses(
      std::size_t rec) const {
    const record& r = records_[rec];
    return {witness_arena_.data() + r.wbegin, r.wsize};
  }

  void witness_push(std::size_t rec, std::uint64_t pivot) {
    record& r = records_[rec];
    if (r.wsize == r.wcap) {
      // Relocate to fresh space at the arena tail, doubling capacity. The
      // old slice is abandoned until clear().
      const std::uint32_t cap = r.wcap == 0 ? 4 : r.wcap * 2;
      const std::size_t at = witness_arena_.size();
      witness_arena_.resize(at + cap);
      for (std::uint32_t i = 0; i < r.wsize; ++i) {
        witness_arena_[at + i] = witness_arena_[r.wbegin + i];
      }
      r.wbegin = at;
      r.wcap = cap;
    }
    witness_arena_[r.wbegin + r.wsize] = pivot;
    ++r.wsize;
  }

  /// Drop the oldest entry (LRU eviction).
  void witness_pop_front(std::size_t rec) {
    record& r = records_[rec];
    DRAMDIG_EXPECTS(r.wsize > 0);
    for (std::uint32_t i = 1; i < r.wsize; ++i) {
      witness_arena_[r.wbegin + i - 1] = witness_arena_[r.wbegin + i];
    }
    --r.wsize;
  }

  /// Rotate the entry at `pos` to the back (an LRU hit).
  void witness_move_to_back(std::size_t rec, std::size_t pos) {
    record& r = records_[rec];
    DRAMDIG_EXPECTS(pos < r.wsize);
    const std::uint64_t v = witness_arena_[r.wbegin + pos];
    for (std::size_t i = pos + 1; i < r.wsize; ++i) {
      witness_arena_[r.wbegin + i - 1] = witness_arena_[r.wbegin + i];
    }
    witness_arena_[r.wbegin + r.wsize - 1] = v;
  }

  // --- strict-verdict pair memo -------------------------------------------

  /// Memoized verdict for the (canonically ordered) pair, or -1 when the
  /// pair was never recorded.
  [[nodiscard]] int memo_find(std::uint64_t a, std::uint64_t b) const {
    std::size_t at = hash_pair(a, b) & memo_mask_;
    while (memo_slots_[at].used) {
      const memo_slot& s = memo_slots_[at];
      if (s.a == a && s.b == b) return s.val;
      at = (at + 1) & memo_mask_;
    }
    return -1;
  }

  /// Insert or overwrite the pair's verdict.
  void memo_store(std::uint64_t a, std::uint64_t b, char val) {
    if ((memo_used_ + 1) * 10 > memo_slots_.size() * 7) grow_memo();
    std::size_t at = hash_pair(a, b) & memo_mask_;
    while (memo_slots_[at].used) {
      memo_slot& s = memo_slots_[at];
      if (s.a == a && s.b == b) {
        s.val = val;
        return;
      }
      at = (at + 1) & memo_mask_;
    }
    memo_slots_[at] = {a, b, val, 1};
    ++memo_used_;
  }

 private:
  static constexpr std::size_t kMinSlots = 64;  // power of two

  struct record {
    std::uint64_t addr = 0;
    std::size_t node = npos;    ///< union-find node id, npos until assigned
    std::size_t wbegin = 0;     ///< witness slice start in the arena
    std::uint32_t wsize = 0;
    std::uint32_t wcap = 0;
  };

  struct memo_slot {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    char val = 0;
    char used = 0;
  };

  [[nodiscard]] static std::uint64_t hash_addr(std::uint64_t x) noexcept {
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 32;
    return x * 0xff51afd7ed558ccdull;
  }

  [[nodiscard]] static std::uint64_t hash_pair(std::uint64_t a,
                                               std::uint64_t b) noexcept {
    const std::uint64_t h = (a * 0x9e3779b97f4a7c15ull) ^
                            (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return h * 0xff51afd7ed558ccdull;
  }

  void grow_slots() {
    std::vector<std::size_t> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, 0);
    slot_mask_ = slots_.size() - 1;
    for (const std::size_t v : old) {
      if (v == 0) continue;
      std::size_t at = hash_addr(records_[v - 1].addr) & slot_mask_;
      while (slots_[at] != 0) at = (at + 1) & slot_mask_;
      slots_[at] = v;
    }
  }

  void grow_memo() {
    std::vector<memo_slot> old;
    old.swap(memo_slots_);
    memo_slots_.assign(old.size() * 2, memo_slot{});
    memo_mask_ = memo_slots_.size() - 1;
    for (const memo_slot& s : old) {
      if (!s.used) continue;
      std::size_t at = hash_pair(s.a, s.b) & memo_mask_;
      while (memo_slots_[at].used) at = (at + 1) & memo_mask_;
      memo_slots_[at] = s;
    }
  }

  std::vector<record> records_;       ///< dense, creation order
  std::vector<std::size_t> slots_;    ///< open addressing: 0 empty, rec+1
  std::size_t slot_mask_ = 0;
  std::vector<std::uint64_t> witness_arena_;
  std::vector<memo_slot> memo_slots_;
  std::size_t memo_mask_ = 0;
  std::size_t memo_used_ = 0;
};

}  // namespace dramdig::core

// Phase progress events: the one event vocabulary every tool streams.
//
// A phase event carries the clock/measurement delta of one occurrence of a
// named pipeline stage. DRAMDig emits its six pipeline phases (plus the
// designed probe rounds), DRAMA emits one event per trial, and the
// mapping_service forwards all of them to its observers. The types live in
// this leaf header so a baseline can accept a callback without depending
// on the DRAMDig pipeline headers.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

namespace dramdig::core {

struct phase_stats {
  double seconds = 0.0;
  std::uint64_t measurements = 0;
  /// Pair samples the phase drew — filled for the calibration phase, where
  /// the adaptive calibrator makes the count run-dependent, and for probe
  /// rounds, where it carries the round's vote count (those rounds' clock
  /// and measurement cost is metered by the owning coarse/fine phase
  /// event, so observers summing deltas across events stay exact).
  std::uint64_t pairs_used = 0;
};

/// Progress hook: invoked after a pipeline phase completes with that
/// occurrence's clock/measurement delta. A phase can fire more than once in
/// one run (selection re-runs on widened pools, partition once per
/// bank-count attempt, one event per designed probe round or DRAMA trial),
/// so consumers aggregate by name if they want totals.
using phase_callback =
    std::function<void(std::string_view phase, const phase_stats& delta)>;

}  // namespace dramdig::core

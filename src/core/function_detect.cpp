#include "core/function_detect.h"

#include <algorithm>
#include <set>
#include <string>

#include "util/bitops.h"
#include "util/combinatorics.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/log.h"

namespace dramdig::core {

namespace {

/// Does `mask` XOR to the same bit on every address of the pile?
bool constant_on_pile(std::uint64_t mask,
                      const std::vector<std::uint64_t>& pile,
                      std::uint64_t& checks) {
  const unsigned want = parity(pile.front(), mask);
  for (std::size_t i = 1; i < pile.size(); ++i) {
    ++checks;
    if (parity(pile[i], mask) != want) return false;
  }
  return true;
}

/// Bank ids assigned by `funcs` to each pile's pivot; valid numbering means
/// all distinct, and covering 0..#banks-1 when every bank has a pile. A
/// partition that produced fewer than half the banks carries too little
/// information to count anything — reject it so the orchestrator retries.
bool numbers_piles(const std::vector<std::uint64_t>& funcs,
                   const std::vector<std::vector<std::uint64_t>>& piles,
                   unsigned bank_count) {
  if (piles.size() < std::max<std::size_t>(2, bank_count / 2)) return false;
  std::set<std::uint64_t> ids;
  for (const auto& pile : piles) {
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      id |= static_cast<std::uint64_t>(parity(pile.front(), funcs[i])) << i;
    }
    if (!ids.insert(id).second) return false;  // two piles, same bank id
  }
  if (piles.size() == bank_count) {
    // Complete partition: ids must be exactly 0..#banks-1.
    return ids.size() == bank_count && *ids.rbegin() == bank_count - 1 &&
           *ids.begin() == 0;
  }
  return true;
}

}  // namespace

namespace {

/// The null-space candidate search. Every pile member's XOR difference to
/// the pile's pivot, restricted to the bank-bit support, is one row of a
/// difference matrix D; a mask m (subset of the support) is constant on
/// every pile iff parity(d, m) == 0 for every row d — i.e. the candidate
/// set is exactly the null space of D. Reducing D to a row-echelon basis
/// costs O(pool * |bank_bits|) XOR operations; expanding the null space
/// (dimension ~log2(#banks)) back to the full candidate set is 2^dim - 1
/// Gray-code XORs. `ops` counts row operations for virtual-time charging.
std::vector<std::uint64_t> nullspace_candidates(
    const std::vector<std::vector<std::uint64_t>>& piles,
    std::uint64_t support, std::uint64_t& ops) {
  // Incrementally reduced difference basis: rows keep distinct leading
  // pivots, so each new difference reduces in at most rank(D) XORs.
  std::vector<std::uint64_t> diff_basis;
  for (const auto& pile : piles) {
    const std::uint64_t base = pile.front();
    for (std::size_t i = 1; i < pile.size(); ++i) {
      std::uint64_t d = (pile[i] ^ base) & support;
      for (std::uint64_t b : diff_basis) {
        ++ops;
        const int pivot = 63 - std::countl_zero(b);
        if (pivot >= 0 && ((d >> pivot) & 1u)) d ^= b;
      }
      if (d != 0) diff_basis.push_back(d);
    }
  }
  const gf2::matrix kernel = gf2::nullspace(diff_basis, support);
  if (kernel.empty()) return {};
  if (kernel.size() <= 20) {
    // Exact expansion: the same candidate set (and thus the same minimal
    // basis) the mask enumeration would have produced.
    std::vector<std::uint64_t> candidates = gf2::enumerate_span(kernel);
    ops += candidates.size();
    return candidates;
  }
  // Degenerate piles (e.g. a single pile over many bank bits) can leave a
  // huge null space; expanding it would reintroduce the exponential cost.
  // Detection is doomed to fail in that regime anyway, so return the basis
  // itself and let the rank/numbering checks reject it.
  ops += kernel.size();
  return kernel;
}

}  // namespace

function_outcome detect_functions(
    const std::vector<std::vector<std::uint64_t>>& piles,
    const std::vector<unsigned>& bank_bits, unsigned bank_count,
    sim::virtual_clock& clock, const function_config& config) {
  DRAMDIG_EXPECTS(!piles.empty());
  DRAMDIG_EXPECTS(!bank_bits.empty());
  function_outcome out;
  const unsigned want = log2_exact(bank_count);
  std::uint64_t checks = 0;

  std::vector<std::uint64_t> candidates;
  if (config.use_nullspace) {
    candidates = nullspace_candidates(piles, mask_of_bits(bank_bits), checks);
  } else {
    // Legacy oracle — gen_xor_masks(B): every combination of bank bits,
    // 1 bit .. all bits, kept when constant on every pile.
    for_each_bit_combination(
        bank_bits, 1, static_cast<unsigned>(bank_bits.size()),
        [&](std::uint64_t mask) {
          for (const auto& pile : piles) {
            if (!constant_on_pile(mask, pile, checks)) return true;  // next
          }
          candidates.push_back(mask);
          return true;
        });
  }
  out.raw_candidates = candidates.size();
  clock.advance_ns(static_cast<std::uint64_t>(
      static_cast<double>(checks) * config.cpu_ns_per_check));

  // prioritize + remove_redundant: minimal independent basis preferring
  // fewer-bit functions.
  std::vector<std::uint64_t> basis = gf2::minimal_basis(candidates);

  if (basis.size() < want) {
    out.failure_reason = "only " + std::to_string(basis.size()) + " of " +
                         std::to_string(want) + " independent functions";
    return out;
  }

  if (basis.size() == want) {
    out.functions = basis;
    out.numbering_ok = numbers_piles(basis, piles, bank_count);
    out.success = true;
    return out;
  }

  // More independent candidates than log2(#banks): try every subset of the
  // right size and keep the one that numbers the piles correctly
  // (check_numbering). Subset count is tiny in practice.
  std::vector<unsigned> index(basis.size());
  for (unsigned i = 0; i < basis.size(); ++i) index[i] = i;
  bool found = false;
  for_each_bit_combination(
      index, want, want, [&](std::uint64_t subset_mask) {
        std::vector<std::uint64_t> subset;
        for (unsigned i : bits_of_mask(subset_mask)) subset.push_back(basis[i]);
        if (gf2::rank(subset) == want &&
            numbers_piles(subset, piles, bank_count)) {
          out.functions = subset;
          found = true;
          return false;  // stop enumeration
        }
        return true;
      });
  if (!found) {
    out.failure_reason = "no size-" + std::to_string(want) +
                         " subset numbers the piles consistently";
    return out;
  }
  out.numbering_ok = true;
  out.success = true;
  return out;
}

}  // namespace dramdig::core

#include "core/domain_knowledge.h"

#include "util/bitops.h"
#include "util/expect.h"

namespace dramdig::core {

domain_knowledge domain_knowledge::from_system_info(
    const sysinfo::system_info& info) {
  domain_knowledge dk{};
  dk.system = info;
  dk.spec = dram::spec_for(info.generation, info.banks_per_rank);
  dk.address_bits = log2_exact(info.total_bytes);
  dk.total_banks = info.total_banks();
  dk.bank_function_count = log2_exact(dk.total_banks);
  dk.expected_column_bits = dram::expected_column_bits(dk.spec);
  dk.expected_row_bits =
      dram::expected_row_bits(dk.spec, info.total_bytes, dk.total_banks);
  DRAMDIG_ENSURES(dk.expected_row_bits + dk.expected_column_bits +
                      dk.bank_function_count ==
                  dk.address_bits);
  return dk;
}

}  // namespace dramdig::core

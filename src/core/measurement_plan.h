// The measurement-reuse scheduler: a persistent pair-verdict cache that
// sits between the pipeline stages (partition, coarse/fine votes) and the
// timing channel, so that no measurement budget is spent re-deriving a
// relation the tool already proved.
//
// Same-bank is an equivalence relation, and the channel's verdicts carry
// it: a strict (min-filtered) SBDR positive proves two addresses share a
// bank, so their classes merge in a union-find. Negatives are subtler — a
// negative only proves "different bank OR same row as the measuring
// pivot" — so they are recorded as per-address witness lists and promoted
// to a cross-bank proof only when it is airtight:
//  * the exact pair was measured before (reusing that verdict verbatim), or
//  * the address measured negative against two witnesses of the class that
//    are SBDR-positive with each other. Two positives mean two different
//    rows; an address cannot share a row with both, so the only remaining
//    explanation is a different bank.
// Every future pivot scan pre-filters its partner list down to pairs whose
// relation is not already implied. The scan a rejected pivot paid for is
// never wasted again: the next pivot drawn from the same (now accreted)
// class gets the members for free, and by the second re-scan the witness
// pairs make the negatives free too — measured work per scan drops
// superlinearly as classes accrete.
//
// Only strict verdicts merge classes or serve as the positive witness
// links: single-sample scan positives can be contamination and stay
// scan-local until verified (contamination is one-sided, so single-sample
// *negatives* are reliable enough to act as witnesses).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/plan_index.h"
#include "timing/channel.h"
#include "util/union_find.h"

namespace dramdig::core {

/// Cached relation between two physical addresses.
enum class pair_relation : unsigned char {
  unknown,    ///< never measured, directly or transitively
  same_bank,  ///< classes merged by strict positives
  cross_pile, ///< proven not-SBDR (exact pair, or two row-distinct witnesses)
};

struct plan_config {
  /// Master switch: false turns the plan into a transparent pass-through
  /// to the channel (the cache-off baseline benchmarked in BENCH_micro).
  bool reuse_verdicts = true;
  /// Track negative witnesses from scan negatives. Contamination is
  /// one-sided (it only inflates latencies), so negatives are reliable.
  bool negative_edges = true;
  /// Let the fast-scan sample count toward the strict min filter, saving
  /// one measurement per verified candidate. Tradeoff, stated plainly:
  /// the reused sample is conditioned positive (that is why the pair is
  /// being verified), so it can never refute — the filter keeps k-1
  /// refutation chances instead of k, and a contaminated cross-bank pair
  /// survives with probability q^(k-1) instead of q^k (q = contamination
  /// rate, k = channel::strict_samples()). Negligible at the modeled
  /// rates (q <= 0.04 steady state: < 7e-6 per candidate), and the pile
  /// delta window plus the numbering check backstop the burst regime —
  /// in exchange every scan saves one measurement per verified member.
  bool reuse_scan_sample = true;
  /// Per-address cap on the negative-witness lists, evicted LRU (the
  /// entry that least recently answered or was recorded goes first).
  /// Eviction only forgets a cached fact — the relation is re-measured if
  /// it ever matters again — so a long-lived service embedding the plan
  /// trades a bounded memory footprint for occasional re-measurement.
  /// 0 = unbounded (the pre-cap behavior). The default comfortably holds
  /// one rejecting pivot per bank on every paper machine.
  std::size_t max_witnesses = 96;
  /// Storage backend: true (default) keeps the node/witness/strict-memo
  /// tables in the arena-backed open-addressing index (core/plan_index.h —
  /// one hash lookup per address, no per-address heap vectors); false
  /// restores the std::unordered_map implementation. Both are bit-identical
  /// in every observable (verdicts, eviction order, stats counters) — the
  /// map backend survives as the differential oracle, same shape as the
  /// other oracle flags.
  bool use_arena_index = true;
};

struct plan_stats {
  std::uint64_t measurements_issued = 0;  ///< sent to the controller
  /// Verdicts answered from the cache, valued at what re-measuring them in
  /// place would have cost. Repeat scans re-count their reuse — an
  /// activity meter, not a cross-run delta.
  std::uint64_t measurements_saved = 0;
  std::uint64_t classes_merged = 0;
  std::uint64_t negatives_recorded = 0;   ///< witness entries added
  std::uint64_t prescreen_rejections = 0;  ///< pivots rejected from a sample
  std::uint64_t witnesses_evicted = 0;  ///< LRU drops (plan_config::max_witnesses)
};

/// Pile-size acceptance window for a pivot scan (counts include the
/// pivot), used by the adaptive pre-screen to project whether a full scan
/// is worth paying for.
struct scan_window {
  double lo = 0.0;
  double hi = 0.0;
};

/// Options for one partition pivot scan.
struct scan_options {
  bool verify_positives = true;  ///< strict re-check of scan positives
  /// Pre-screen: sample this many unknown partners first and reject the
  /// pivot early when the projected pile size falls outside the window
  /// beyond sampling error. 0 disables the pre-screen.
  unsigned prescreen_sample = 0;
  /// Confidence multiplier for the pre-screen's binomial slack; rejections
  /// only fire when the projection is wrong beyond z standard deviations
  /// (plus one count of slack), so in-window pivots are almost never lost.
  double prescreen_z = 2.5;
  scan_window window;
};

class measurement_plan {
 public:
  explicit measurement_plan(timing::channel& channel, plan_config config = {});

  [[nodiscard]] timing::channel& channel() noexcept { return channel_; }
  [[nodiscard]] const plan_config& config() const noexcept { return config_; }
  [[nodiscard]] const plan_stats& stats() const noexcept { return stats_; }

  /// Relation currently implied by the cache (never measures).
  [[nodiscard]] pair_relation relation(std::uint64_t a, std::uint64_t b);

  /// Strict SBDR verdicts with exact-pair memoization: repeated pairs are
  /// answered from the memo, fresh pairs are measured in one channel batch
  /// and recorded (positives also merge classes). Drop-in replacement for
  /// channel::is_sbdr_strict_batch in the vote loops.
  [[nodiscard]] std::vector<char> is_sbdr_strict_batch(
      std::span<const sim::addr_pair> pairs);

  /// SBDR verdicts with designed-probe economics (the bit-probe engine's
  /// vote workhorse). Per pair: the exact-pair strict memo or an airtight
  /// cross-pile proof answers from the cache (same-bank class facts are
  /// deliberately NOT consulted — SBDR also needs row-distinct, which the
  /// union-find cannot certify, while a proven cross-bank pair can never
  /// conflict, so only negatives derive); unknown pairs get one single
  /// sample, and because noise is one-sided a fast reading alone proves
  /// the strict verdict negative — only slow readings graduate to strict
  /// verification, with the vote sample folded into the min filter.
  /// Verdicts are recorded exactly like is_sbdr_strict_batch's (memo,
  /// merges, witness entries). Pairs must be distinct within one call.
  struct probe_outcome {
    std::vector<char> sbdr;    ///< per-pair majority-grade SBDR verdict
    std::uint64_t reused = 0;  ///< verdicts answered from the cache
  };
  [[nodiscard]] probe_outcome probe_pairs(std::span<const sim::addr_pair> pairs);

  /// One partition pivot scan: classify every partner as pile member or
  /// not. Cached relations are answered for free; unknown partners get a
  /// single-sample scan (optionally pre-screened), positives are
  /// strict-verified, and every verdict feeds the cache.
  struct scan_outcome {
    /// Per-partner membership verdict; meaningless when prescreen_rejected.
    std::vector<char> member;
    bool prescreen_rejected = false;
    std::uint64_t reused = 0;  ///< partner verdicts answered from the cache
  };
  [[nodiscard]] scan_outcome classify_partners(
      std::uint64_t pivot, std::span<const std::uint64_t> partners,
      const scan_options& options);

  /// One round of representative votes: each pair is (anchor, subject) —
  /// the anchor acting as the measuring pivot — and the verdict is "are
  /// they same-bank?". Cached relations answer for free, unknown pairs
  /// get a single-sample measurement in one channel batch, positives are
  /// strict-verified (min filter folding the vote sample) and every
  /// verdict feeds the cache: confirmed pairs merge classes, negatives
  /// put the anchor on the subject's witness list. This is the
  /// classification engine's per-address workhorse (core/classifier).
  struct vote_outcome {
    std::vector<char> member;  ///< per-pair same-bank verdict
    std::uint64_t reused = 0;  ///< verdicts answered from the cache
  };
  [[nodiscard]] vote_outcome classify_pairs(
      std::span<const sim::addr_pair> pairs, bool verify_positives);

  /// Distinct same-bank classes currently tracked (for tests/benches).
  [[nodiscard]] std::size_t class_count() const noexcept {
    return uf_.set_count();
  }

  /// Union-find root of the address's same-bank class, or no_class when
  /// the address was never seen. Roots are stable only until the next
  /// merge — callers snapshot and compare within one measurement-free
  /// pass (the classifier's free-assignment stage).
  static constexpr std::size_t no_class = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t class_root(std::uint64_t addr);

  /// True when the strict memo already proves the pair SBDR-positive
  /// (hence same-bank AND row-distinct). Never measures.
  [[nodiscard]] bool known_strict_positive(std::uint64_t a, std::uint64_t b)
      const;

  /// What answering one partner verdict from the cache is worth, in
  /// measurements: the fast sample plus (when positives are verified) the
  /// strict re-check — minus the sample the min filter would have folded
  /// back in when reuse_scan_sample is on. The single source of truth for
  /// this formula, shared by the scan/vote paths and engines layered
  /// above the plan.
  [[nodiscard]] std::uint64_t saved_scan_credit(
      bool verify_positives) const noexcept {
    return 1 + (verify_positives
                    ? channel_.strict_samples() -
                          (config_.reuse_scan_sample ? 1 : 0)
                    : 0);
  }

  /// Credit `measurements` answered-from-cache work performed by an engine
  /// layered above the plan (e.g. the classifier's free-assignment stage,
  /// which resolves whole piles from class_root without any scan). Keeps
  /// measurements_saved a complete activity meter across layers.
  void credit_saved(std::uint64_t measurements) noexcept {
    stats_.measurements_saved += measurements;
  }

  /// Fleet warm start: pre-size the plan's tables for the expected number
  /// of distinct addresses (the stored selection-pool evidence of a
  /// geometry sibling). Purely a capacity reservation — node ids, hashing
  /// verdicts and stats are identical with or without it — so a wrong
  /// hint costs nothing but the reserved memory. Call before first use.
  void warm_start(std::size_t expected_addresses);

  /// Drop every cached relation (classes, witnesses, strict memo) while
  /// keeping the cumulative stats. Merges are permanent by design, so a
  /// burst-window false positive that slipped past the min filter would
  /// otherwise poison every later scan — the pipeline's retry loop calls
  /// this so each attempt re-measures from scratch, exactly like the
  /// pre-scheduler code recovered.
  void reset();

 private:
  /// Union-find node for an address, created on first sight.
  std::size_t node_of(std::uint64_t addr);
  /// Union-find node for an address, or npos when never assigned one.
  /// (Addresses seen only as negative-witness holders have no node.)
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t node_if_known(std::uint64_t addr) const;

  /// Union-find root with batch-level caching: within one epoch (no merges
  /// since) each node resolves its root at most once, so the stage-0 loops
  /// of classify_pairs/probe_pairs/classify_partners pay one find per
  /// unique address per call instead of one per pair. Node ids are
  /// identical across backends (only node_of assigns them, in first-sight
  /// order), so the cache is backend-agnostic; any merge bumps the epoch.
  [[nodiscard]] std::size_t cached_root(std::size_t node);

  // Backend-branching accessors: every node/witness/memo touch funnels
  // through these so the arena and map implementations stay observably
  // identical (LRU order, eviction, stats — all decided here, not in the
  // storage).
  /// Copy addr's witness list (oldest first) into `out`. Returns true when
  /// the address has a list. The copy is deliberate: arena spans die on
  /// any witness push, and callers loop over one list while recording
  /// negatives on others.
  bool witness_copy(std::uint64_t addr, std::vector<std::uint64_t>& out);
  /// Rotate addr's witness entry equal to `pivot` to the back (LRU hit).
  /// Pre: the entry exists.
  void witness_touch(std::uint64_t addr, std::uint64_t pivot);
  /// Memoized strict verdict for the canonical pair, or -1 when absent.
  [[nodiscard]] int memo_find(std::uint64_t a, std::uint64_t b) const;
  /// Insert or overwrite the canonical pair's strict verdict.
  void memo_store(std::uint64_t a, std::uint64_t b, char val);

  /// Record a strict positive: merge classes.
  void record_same_bank(std::uint64_t a, std::uint64_t b);
  /// Record a scan negative: exact pair plus a witness entry on the
  /// partner ("this pivot rejected it").
  void record_negative(std::uint64_t pivot, std::uint64_t partner);
  /// True when not-SBDR(pivot, x) is proven: the exact pair was measured
  /// negative, or x has two SBDR-positive-linked witnesses in pivot's
  /// class (two different rows of one bank both rejected x).
  [[nodiscard]] bool known_cross(std::uint64_t pivot, std::uint64_t x);

  /// Strict-verify `pairs` with `prior` single-sample latencies folded into
  /// the min filter (NaN prior = no sample to reuse). Verdicts land in
  /// `out` (scratch-backed at every call site — no per-call allocation).
  void verify_strict(std::span<const sim::addr_pair> pairs,
                     std::span<const double> prior, std::vector<char>& out);

  timing::channel& channel_;
  plan_config config_;
  plan_stats stats_;

  union_find uf_;

  /// Arena-backed storage (plan_config::use_arena_index, the default):
  /// node ids, witness lists and the strict memo in flat open-addressing
  /// tables — one hash lookup per address per batch.
  plan_index idx_;

  // Legacy map backend (use_arena_index = false), kept as the differential
  // oracle the arena is pinned bit-identical against.
  std::unordered_map<std::uint64_t, std::size_t> node_;
  /// Pivots that measured the key not-SBDR, in LRU order (back = most
  /// recently recorded or consulted) — one entry per scan or vote that
  /// rejected the address, so the lists stay short and double as the
  /// exact-pair negative memo (a hash set over all pairs costs more to
  /// maintain than these scans ever save). Bounded by
  /// plan_config::max_witnesses with least-recently-used eviction.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> witnesses_;

  struct pair_key_hash {
    std::size_t operator()(const sim::addr_pair& p) const noexcept {
      const std::uint64_t h = (p.first * 0x9e3779b97f4a7c15ull) ^
                              (p.second + 0x9e3779b97f4a7c15ull +
                               (p.first << 6) + (p.first >> 2));
      return static_cast<std::size_t>(h * 0xff51afd7ed558ccdull);
    }
  };
  /// Exact-pair memo of strict verdicts (canonical min/max key).
  std::unordered_map<sim::addr_pair, char, pair_key_hash> strict_memo_;

  /// Batch-level root cache: root_stamp_[node] == root_epoch_ means
  /// root_cache_[node] holds the node's current root. Epoch bumps on every
  /// merge and on reset(), so a stale entry can never be read.
  std::vector<std::size_t> root_cache_;
  std::vector<std::uint64_t> root_stamp_;
  std::uint64_t root_epoch_ = 1;

  /// Scan scratch reused across classify_partners calls: one reservation
  /// per pool size keeps the O(pool * banks) scans allocation-free in
  /// steady state.
  struct scan_scratch {
    std::vector<std::size_t> unknown_idx;
    std::vector<std::size_t> remaining;
    std::vector<std::size_t> sample;
    std::vector<char> sampled;
    std::vector<sim::addr_pair> pairs;
    std::vector<std::size_t> candidate_idx;
    std::vector<sim::addr_pair> candidates;
    std::vector<double> prior;
    std::vector<double> fast;          ///< single-sample latency results
    std::vector<char> fast_verdict;    ///< pass-through fast-scan verdicts
    std::vector<char> strict;          ///< strict-verify verdicts
    std::vector<double> expanded_lat;  ///< verify_strict batch latencies
    std::vector<sim::addr_pair> expanded;
    std::vector<unsigned> fresh_counts;
    std::vector<std::uint64_t> witness_buf;        ///< known_cross list copy
    std::vector<std::uint64_t> pivot_witness_buf;  ///< classify_partners copy
  } scratch_;
};

}  // namespace dramdig::core

#include "core/probe_util.h"

#include "util/expect.h"

namespace dramdig::core {

std::uint64_t random_buffer_address(const os::mapping_region& buffer,
                                    rng& r) {
  DRAMDIG_EXPECTS(buffer.page_count() > 0);
  const std::uint64_t pfn = buffer.pfn_at(r.below(buffer.page_count()));
  const std::uint64_t line = r.below(os::kPageSize / 64);
  return pfn * os::kPageSize + line * 64;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> pick_pair_with_delta(
    const os::mapping_region& buffer, std::uint64_t delta, rng& r,
    unsigned attempts) {
  DRAMDIG_EXPECTS(delta != 0);
  for (unsigned i = 0; i < attempts; ++i) {
    const std::uint64_t p = random_buffer_address(buffer, r) & ~std::uint64_t{63};
    const std::uint64_t q = p ^ delta;
    if (buffer.contains_page(q / os::kPageSize)) return std::make_pair(p, q);
  }
  return std::nullopt;
}

std::optional<std::uint64_t> pick_shared_base(
    const os::mapping_region& buffer, std::span<const std::uint64_t> deltas,
    rng& r, unsigned attempts) {
  std::optional<std::uint64_t> best;
  std::size_t best_served = 0;
  for (unsigned i = 0; i < attempts; ++i) {
    const std::uint64_t p = random_buffer_address(buffer, r) & ~std::uint64_t{63};
    std::size_t served = 0;
    for (const std::uint64_t d : deltas) {
      served += buffer.contains_page((p ^ d) / os::kPageSize);
    }
    if (served > best_served) {
      best_served = served;
      best = p;
      if (served == deltas.size()) break;  // cannot do better
    }
  }
  return best;
}

std::vector<std::uint64_t> sample_addresses(const os::mapping_region& buffer,
                                            std::size_t count, rng& r) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(random_buffer_address(buffer, r));
  }
  return out;
}

}  // namespace dramdig::core

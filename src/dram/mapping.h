// The physical-address -> DRAM-address mapping model.
//
// Intel memory controllers implement this mapping as a linear function over
// GF(2): each flat-bank index bit is a parity over a set of physical address
// bits (a "bank address function"), and row/column indices are direct bit
// extractions. This class is used twice:
//   * as the ground truth inside the memory-controller simulator, and
//   * as the *hypothesis* type the reverse-engineering tools output,
// so tool-vs-truth comparison is comparison of two `address_mapping`s.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dram/dram_address.h"
#include "util/gf2.h"

namespace dramdig::dram {

class address_mapping {
 public:
  /// `bank_functions[i]` is the XOR mask producing bit i of the flat bank
  /// index; `row_bits`/`column_bits` list physical bit positions (ascending)
  /// forming the row/column index. `address_bits` is log2 of the installed
  /// physical memory.
  address_mapping(std::vector<std::uint64_t> bank_functions,
                  std::vector<unsigned> row_bits,
                  std::vector<unsigned> column_bits, unsigned address_bits);

  [[nodiscard]] const std::vector<std::uint64_t>& bank_functions() const noexcept {
    return bank_functions_;
  }
  [[nodiscard]] const std::vector<unsigned>& row_bits() const noexcept {
    return row_bits_;
  }
  [[nodiscard]] const std::vector<unsigned>& column_bits() const noexcept {
    return column_bits_;
  }
  [[nodiscard]] unsigned address_bits() const noexcept { return address_bits_; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return std::uint64_t{1} << address_bits_;
  }
  [[nodiscard]] unsigned bank_count() const noexcept {
    return 1u << bank_functions_.size();
  }

  /// Flat bank index of a physical address (bit i = parity of function i).
  [[nodiscard]] std::uint64_t bank_of(std::uint64_t phys) const;
  [[nodiscard]] std::uint64_t row_of(std::uint64_t phys) const;
  [[nodiscard]] std::uint64_t column_of(std::uint64_t phys) const;

  /// Full decode (hierarchical fields filled by the caller that knows the
  /// channel/dimm/rank layout; see machine_spec::decode).
  [[nodiscard]] dram_address decode(std::uint64_t phys) const;

  /// Inverse mapping: the unique physical address with the given flat bank,
  /// row and column — exists iff the mapping is bijective (see
  /// is_bijective). Solves the bank functions over the non-row non-column
  /// bit positions with GF(2) elimination. Returns nullopt for
  /// non-bijective hypotheses (a tool may output one; the rowhammer harness
  /// then falls back gracefully).
  [[nodiscard]] std::optional<std::uint64_t> encode(std::uint64_t flat_bank,
                                                    std::uint64_t row,
                                                    std::uint64_t column) const;

  /// Physical bits not claimed as row or column bits ("pure bank" bits).
  [[nodiscard]] std::vector<unsigned> pure_bank_bits() const;

  /// True when row bits, column bits and bank functions together form a
  /// bijection on [0, 2^address_bits): bit classes are disjoint, counts add
  /// up, and the stacked GF(2) map has full rank.
  [[nodiscard]] bool is_bijective() const;

  /// Hypothesis equivalence: identical row/column bit sets and bank
  /// functions spanning the same GF(2) space (bank renumbering does not
  /// change timing or hammering behaviour).
  [[nodiscard]] bool equivalent_to(const address_mapping& other) const;

  /// Human-readable rendering, e.g. "(14,18)(15,19) rows 18-32 cols 0-6,8-13".
  [[nodiscard]] std::string describe() const;

  /// Render only the bank functions, Table II style: "(6), (14,17), ...".
  [[nodiscard]] std::string describe_functions() const;

 private:
  std::vector<std::uint64_t> bank_functions_;
  std::vector<unsigned> row_bits_;
  std::vector<unsigned> column_bits_;
  unsigned address_bits_;
};

/// Compact "(a,b,c)" rendering of one XOR mask.
[[nodiscard]] std::string describe_function(std::uint64_t mask);

/// Compact "17-32" / "0-5,7-13" rendering of a bit list.
[[nodiscard]] std::string describe_bit_ranges(const std::vector<unsigned>& bits);

}  // namespace dramdig::dram

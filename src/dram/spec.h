// DDR3/DDR4 specification knowledge — the "Specifications" bucket of the
// paper's domain knowledge (Section III-A): given a DIMM's geometry, how
// many physical-address bits index rows and columns. DRAMDig Step 3 uses
// these counts to know how many shared row/column bits remain covered after
// coarse-grained detection.
#pragma once

#include <cstdint>
#include <string>

namespace dramdig::dram {

enum class ddr_generation { ddr3, ddr4 };

[[nodiscard]] std::string to_string(ddr_generation gen);

/// Geometry facts derived from the JEDEC data sheets referenced by the
/// paper (Micron DDR3 MT41K / DDR4 MT40A families, 64-bit channels).
struct chip_spec {
  ddr_generation generation;
  /// Bytes per DRAM row as seen by one channel (device columns x bus
  /// width). 1Ki device columns x 8 bytes = 8 KiB on both generations here.
  std::uint64_t row_bytes;
  /// Banks per rank (DDR3: 8; DDR4: 16 for x4/x8 devices, 8 for x16).
  unsigned banks_per_rank;
  /// DRAM refresh interval in milliseconds (all rows refreshed once per
  /// interval; rowhammer must beat this window).
  double refresh_interval_ms;
};

/// Spec entry for a generation/banks combination.
[[nodiscard]] chip_spec spec_for(ddr_generation gen, unsigned banks_per_rank);

/// Expected number of physical-address column bits for a machine: the byte
/// offset within one row buffer, log2(row_bytes). All nine paper machines
/// have 8 KiB rows => 13 column bits, matching every row of Table II.
[[nodiscard]] unsigned expected_column_bits(const chip_spec& spec);

/// Expected number of physical-address row bits given the installed memory:
/// log2(total_bytes / (total_banks * row_bytes)).
[[nodiscard]] unsigned expected_row_bits(const chip_spec& spec,
                                         std::uint64_t total_bytes,
                                         unsigned total_banks);

}  // namespace dramdig::dram

// The DRAM-side address tuple. The paper treats (channel, DIMM, rank, bank)
// as one flat "bank" coordinate — two addresses interfere in the row buffer
// iff they share that whole coordinate — so the simulator keys row-buffer
// state on `flat_bank` while keeping the hierarchical fields for reporting.
#pragma once

#include <cstdint>

namespace dramdig::dram {

struct dram_address {
  std::uint32_t channel = 0;
  std::uint32_t dimm = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;       // bank within rank (incl. bank group on DDR4)
  std::uint64_t row = 0;
  std::uint64_t column = 0;     // byte offset within the row

  /// Flat bank coordinate: unique per (channel, dimm, rank, bank).
  std::uint64_t flat_bank = 0;

  friend bool operator==(const dram_address&, const dram_address&) = default;
};

/// Two addresses conflict in the row buffer iff same flat bank, different
/// row. This predicate *is* the paper's SBDR ("same bank, different row").
[[nodiscard]] constexpr bool same_bank_different_row(
    const dram_address& a, const dram_address& b) noexcept {
  return a.flat_bank == b.flat_bank && a.row != b.row;
}

}  // namespace dramdig::dram

#include "dram/presets.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/expect.h"
#include "util/rng.h"

namespace dramdig::dram {

namespace {

/// Bit-list shorthand: closed range [lo, hi].
std::vector<unsigned> bit_range(unsigned lo, unsigned hi) {
  std::vector<unsigned> out;
  for (unsigned b = lo; b <= hi; ++b) out.push_back(b);
  return out;
}

std::vector<unsigned> concat(std::vector<unsigned> a,
                             const std::vector<unsigned>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

std::uint64_t fn(std::initializer_list<unsigned> bits) {
  std::uint64_t m = 0;
  for (unsigned b : bits) m |= std::uint64_t{1} << b;
  return m;
}

machine_spec make_machine(int number, std::string uarch, std::string cpu,
                          ddr_generation gen, std::uint64_t bytes,
                          unsigned channels, unsigned dimms, unsigned ranks,
                          unsigned banks, std::vector<std::uint64_t> funcs,
                          std::vector<unsigned> rows,
                          std::vector<unsigned> cols,
                          vulnerability_profile vuln,
                          timing_quality quality = timing_quality::clean) {
  machine_spec m{number,
                 std::move(uarch),
                 std::move(cpu),
                 gen,
                 bytes,
                 channels,
                 dimms,
                 ranks,
                 banks,
                 /*ecc=*/false,
                 address_mapping(std::move(funcs), std::move(rows),
                                 std::move(cols), log2_exact(bytes)),
                 vuln,
                 quality};
  DRAMDIG_ENSURES(m.mapping.is_bijective());
  DRAMDIG_ENSURES(m.mapping.bank_count() == m.total_banks());
  return m;
}

constexpr std::uint64_t GiB = std::uint64_t{1} << 30;

// Vulnerability calibration: double-sided flip chance per victim row per
// hammer window, tuned so the Table III reproduction lands at the paper's
// order of magnitude (No.2 ~ 950+/test, No.1 ~ 400/test, No.5 ~ 11/test
// with the harness's ~2800 windows per 5-minute test).
constexpr vulnerability_profile kVulnNo1{0.095, 0.004, 2};
constexpr vulnerability_profile kVulnNo2{0.22, 0.015, 3};
constexpr vulnerability_profile kVulnNo5{0.0048, 0.0002, 1};
// Machines not hammered in the paper get a moderate default.
constexpr vulnerability_profile kVulnDefault{0.08, 0.003, 2};

std::vector<machine_spec> build_paper_machines() {
  std::vector<machine_spec> ms;
  // No.1: Sandy Bridge i5-2400, DDR3 8GiB, (2,1,1,8).
  ms.push_back(make_machine(
      1, "Sandy Bridge", "i5-2400", ddr_generation::ddr3, 8 * GiB, 2, 1, 1, 8,
      {fn({6}), fn({14, 17}), fn({15, 18}), fn({16, 19})}, bit_range(17, 32),
      concat(bit_range(0, 5), bit_range(7, 13)), kVulnNo1));
  // No.2: Ivy Bridge i5-3230M, DDR3 8GiB, (2,1,2,8).
  ms.push_back(make_machine(
      2, "Ivy Bridge", "i5-3230M", ddr_generation::ddr3, 8 * GiB, 2, 1, 2, 8,
      {fn({14, 18}), fn({15, 19}), fn({16, 20}), fn({17, 21}),
       fn({7, 8, 9, 12, 13, 18, 19})},
      bit_range(18, 32), concat(bit_range(0, 6), bit_range(8, 13)), kVulnNo2,
      timing_quality::mobile));
  // No.3: Ivy Bridge i5-3230M, DDR3 4GiB, (1,1,2,8).
  ms.push_back(make_machine(
      3, "Ivy Bridge", "i5-3230M", ddr_generation::ddr3, 4 * GiB, 1, 1, 2, 8,
      {fn({13, 17}), fn({14, 18}), fn({15, 19}), fn({16, 20})},
      bit_range(17, 31), bit_range(0, 12), kVulnDefault,
      timing_quality::noisy));
  // No.4: Haswell i5-4210U, DDR3 4GiB, (1,1,1,8).
  ms.push_back(make_machine(
      4, "Haswell", "i5-4210U", ddr_generation::ddr3, 4 * GiB, 1, 1, 1, 8,
      {fn({13, 16}), fn({14, 17}), fn({15, 18})}, bit_range(16, 31),
      bit_range(0, 12), kVulnDefault, timing_quality::mobile));
  // No.5: Haswell i7-4790, DDR3 16GiB, (2,1,2,8). Table II prints rows
  // 18~32 which only covers 8GiB; rows extend to 33 here (paper typo).
  ms.push_back(make_machine(
      5, "Haswell", "i7-4790", ddr_generation::ddr3, 16 * GiB, 2, 1, 2, 8,
      {fn({14, 18}), fn({15, 19}), fn({16, 20}), fn({17, 21}),
       fn({7, 8, 9, 12, 13, 18, 19})},
      bit_range(18, 33), concat(bit_range(0, 6), bit_range(8, 13)), kVulnNo5));
  // No.6: Skylake i5-6600, DDR4 16GiB, (2,1,2,16).
  ms.push_back(make_machine(
      6, "Skylake", "i5-6600", ddr_generation::ddr4, 16 * GiB, 2, 1, 2, 16,
      {fn({7, 14}), fn({15, 19}), fn({16, 20}), fn({17, 21}), fn({18, 22}),
       fn({8, 9, 12, 13, 18, 19})},
      bit_range(19, 33), concat(bit_range(0, 7), bit_range(9, 13)),
      kVulnDefault));
  // No.7: Skylake i5-6200U, DDR4 4GiB, (1,1,1,8) — x16 devices, 8 banks.
  ms.push_back(make_machine(
      7, "Skylake", "i5-6200U", ddr_generation::ddr4, 4 * GiB, 1, 1, 1, 8,
      {fn({6, 13}), fn({14, 16}), fn({15, 17})}, bit_range(16, 31),
      bit_range(0, 12), kVulnDefault, timing_quality::noisy));
  // No.8: Coffee Lake i5-9400, DDR4 8GiB, (1,1,1,16).
  ms.push_back(make_machine(
      8, "Coffee Lake", "i5-9400", ddr_generation::ddr4, 8 * GiB, 1, 1, 1, 16,
      {fn({6, 13}), fn({14, 17}), fn({15, 18}), fn({16, 19})},
      bit_range(17, 32), bit_range(0, 12), kVulnDefault));
  // No.9: Coffee Lake i5-9400, DDR4 16GiB, (2,1,2,16).
  ms.push_back(make_machine(
      9, "Coffee Lake", "i5-9400", ddr_generation::ddr4, 16 * GiB, 2, 1, 2, 16,
      {fn({7, 14}), fn({15, 19}), fn({16, 20}), fn({17, 21}), fn({18, 22}),
       fn({8, 9, 12, 13, 18, 19})},
      bit_range(19, 33), concat(bit_range(0, 7), bit_range(9, 13)),
      kVulnDefault));
  return ms;
}

}  // namespace

std::string machine_spec::dram_description() const {
  const double gib = static_cast<double>(memory_bytes) / (1024.0 * 1024 * 1024);
  return to_string(generation) + ", " + std::to_string(static_cast<int>(gib)) +
         "GiB";
}

std::string machine_spec::config_quadruple() const {
  return "(" + std::to_string(channels) + ", " +
         std::to_string(dimms_per_channel) + ", " +
         std::to_string(ranks_per_dimm) + ", " + std::to_string(banks_per_rank) +
         ")";
}

dram_address machine_spec::decode_full(std::uint64_t phys) const {
  dram_address a = mapping.decode(phys);
  std::uint64_t rest = a.flat_bank;
  a.bank = static_cast<std::uint32_t>(rest % banks_per_rank);
  rest /= banks_per_rank;
  a.rank = static_cast<std::uint32_t>(rest % ranks_per_dimm);
  rest /= ranks_per_dimm;
  a.dimm = static_cast<std::uint32_t>(rest % dimms_per_channel);
  rest /= dimms_per_channel;
  a.channel = static_cast<std::uint32_t>(rest);
  return a;
}

const std::vector<machine_spec>& paper_machines() {
  static const std::vector<machine_spec> machines = build_paper_machines();
  return machines;
}

const machine_spec& machine_by_number(int number) {
  for (const auto& m : paper_machines()) {
    if (m.number == number) return m;
  }
  throw contract_violation("no paper machine No." + std::to_string(number));
}

machine_spec random_machine(unsigned address_bits,
                            unsigned bank_function_count, std::uint64_t seed) {
  DRAMDIG_EXPECTS(address_bits >= 30 && address_bits <= 36);
  DRAMDIG_EXPECTS(bank_function_count >= 3 && bank_function_count <= 6);
  rng r(seed);

  // Intel-shaped layout: 13 column bits at the bottom (8 KiB rows), pure
  // bank bits in the middle, row bits on top. Shared bits are then mixed
  // in the way real controllers do: 2-bit (pure, row) rank/bank selectors,
  // occasionally a (column, pure) pair like Skylake's (6,13), and
  // optionally one wide channel function modelled on (7,8,9,12,13,18,19).
  // The generator respects the paper's empirical observation — the lowest
  // bit of the widest function is a *pure* bank bit, never a column —
  // because DRAMDig's Step 3 is entitled to rely on it.
  constexpr unsigned kColumnBits = 13;
  const bool wide_channel = bank_function_count >= 4 && r.chance(0.5);

  std::vector<unsigned> cols;
  std::vector<unsigned> pure;
  if (wide_channel) {
    // Columns 0..6 and 8..13; bit 7 is the wide function's pure bit.
    for (unsigned b = 0; b <= 13; ++b) {
      if (b != 7) cols.push_back(b);
    }
    pure.push_back(7);
    for (unsigned i = 0; i + 1 < bank_function_count; ++i) {
      pure.push_back(14 + i);
    }
  } else {
    for (unsigned b = 0; b < kColumnBits; ++b) cols.push_back(b);
    for (unsigned i = 0; i < bank_function_count; ++i) {
      pure.push_back(kColumnBits + i);
    }
  }
  const unsigned first_row_bit = pure.back() + 1;
  DRAMDIG_EXPECTS(first_row_bit < address_bits);
  std::vector<unsigned> rows;
  for (unsigned b = first_row_bit; b < address_bits; ++b) rows.push_back(b);

  std::vector<std::uint64_t> funcs;
  for (unsigned i = 0; i + (wide_channel ? 1 : 0) < bank_function_count; ++i) {
    // Middle pure bits pair with a low row bit (or a low column bit, the
    // Skylake (6,13) pattern, or stand alone like Sandy Bridge's (6)).
    const unsigned pure_bit = wide_channel ? pure[i + 1] : pure[i];
    std::uint64_t f = std::uint64_t{1} << pure_bit;
    const double dice = r.uniform();
    if (dice < 0.65) {
      const unsigned row_pick =
          rows[r.below(std::min<std::uint64_t>(rows.size(), 6))];
      f |= std::uint64_t{1} << row_pick;
    } else if (dice < 0.85 && !wide_channel) {
      f |= std::uint64_t{1} << 6;  // shared column bit
    }
    funcs.push_back(f);
  }
  if (wide_channel) {
    // Pure bit 7, a handful of shared columns, one or two shared rows.
    std::uint64_t f = fn({7, 8, 9, 12, 13});
    f |= std::uint64_t{1} << first_row_bit;
    if (r.chance(0.5)) f |= std::uint64_t{1} << (first_row_bit + 1);
    funcs.push_back(f);
  }

  // Decompose the flat bank count into a plausible quadruple so that
  // spec_for() accepts the geometry.
  unsigned channels = 1, ranks = 1, banks = 8;
  ddr_generation gen = ddr_generation::ddr3;
  switch (bank_function_count) {
    case 3: banks = 8; break;
    case 4: banks = 16; gen = ddr_generation::ddr4; break;
    case 5: ranks = 2; banks = 16; gen = ddr_generation::ddr4; break;
    default: channels = 2; ranks = 2; banks = 16; gen = ddr_generation::ddr4;
  }

  machine_spec m{100 + static_cast<int>(seed % 900),
                 "Synthetic",
                 "synth-" + std::to_string(seed),
                 gen,
                 std::uint64_t{1} << address_bits,
                 channels,
                 /*dimms=*/1,
                 ranks,
                 banks,
                 /*ecc=*/false,
                 address_mapping(std::move(funcs), std::move(rows),
                                 std::move(cols), address_bits),
                 kVulnDefault};
  DRAMDIG_ENSURES(m.mapping.is_bijective());
  DRAMDIG_ENSURES(m.mapping.bank_count() == m.total_banks());
  return m;
}

}  // namespace dramdig::dram

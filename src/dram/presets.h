// Ground-truth machine presets: the nine machine settings of Table II.
//
// Each preset carries the DRAM configuration quadruple (channels, DIMMs per
// channel, ranks per DIMM, banks per rank), the installed memory size, the
// ground-truth address mapping exactly as published, and a rowhammer
// vulnerability profile calibrated so the Table III reproduction lands in
// the paper's order of magnitude.
//
// One deliberate correction: Table II prints machine No.5 (16 GiB) with row
// bits 17~32, which only accounts for 8 GiB of address space; we extend the
// rows to bit 33 so the mapping is bijective over 16 GiB (documented in
// DESIGN.md as a paper typo).
#pragma once

#include <string>
#include <vector>

#include "dram/mapping.h"
#include "dram/spec.h"

namespace dramdig::dram {

/// How susceptible a machine's DIMMs are to disturbance errors. The flip
/// chances are per victim row per aggregated hammer window (see
/// sim::fault_model) and differ by orders of magnitude across real DIMMs —
/// exactly what Table III shows (No.2 floods, No.5 barely flips).
struct vulnerability_profile {
  double double_sided_flip_chance = 0.0;  ///< both neighbours hammered
  double single_sided_flip_chance = 0.0;  ///< one neighbour hammered
  unsigned max_flips_per_row = 4;         ///< weak cells per row cap
};

/// Timing-measurement quality of a concrete physical unit. Noise is a
/// property of the machine (power management, SMI storms), not of the
/// reverse-engineering tool; the paper's §IV-A observations — DRAMA never
/// finishing on the two old mobile 4 GiB units No.3 and No.7 — are modelled
/// as those units being `noisy`.
enum class timing_quality { clean, mobile, noisy };

struct machine_spec {
  int number = 0;                    ///< the paper's "No." column
  std::string microarchitecture;     ///< e.g. "Sandy Bridge"
  std::string cpu_model;             ///< e.g. "i5-2400"
  ddr_generation generation = ddr_generation::ddr3;
  std::uint64_t memory_bytes = 0;
  unsigned channels = 0;
  unsigned dimms_per_channel = 0;
  unsigned ranks_per_dimm = 0;
  unsigned banks_per_rank = 0;
  bool ecc = false;
  address_mapping mapping;           ///< ground truth per Table II
  vulnerability_profile vulnerability;
  timing_quality quality = timing_quality::clean;

  [[nodiscard]] unsigned total_banks() const {
    return channels * dimms_per_channel * ranks_per_dimm * banks_per_rank;
  }
  [[nodiscard]] chip_spec spec() const {
    return spec_for(generation, banks_per_rank);
  }
  /// "No.3" label used across tables.
  [[nodiscard]] std::string label() const {
    return "No." + std::to_string(number);
  }
  /// "DDR3, 8GiB" as Table II prints it.
  [[nodiscard]] std::string dram_description() const;
  /// "(2, 1, 1, 8)" configuration quadruple.
  [[nodiscard]] std::string config_quadruple() const;

  /// Decompose a flat bank index into the hierarchy of the configuration
  /// quadruple. The paper folds channel/DIMM/rank into the "bank" tuple
  /// (they are one row-buffer domain for timing and hammering); this
  /// decode assigns the *listed function order* to the hierarchy levels,
  /// bank-within-rank in the low function bits and channel in the high
  /// ones, and is used for reporting only.
  [[nodiscard]] dram_address decode_full(std::uint64_t phys) const;
};

/// All nine paper machines, in Table II order.
[[nodiscard]] const std::vector<machine_spec>& paper_machines();

/// Lookup by paper number (1..9).
[[nodiscard]] const machine_spec& machine_by_number(int number);

/// A synthetic machine with a randomly generated — but valid — mapping.
/// Used by property tests: DRAMDig must recover arbitrary Intel-shaped
/// mappings, not just the nine published ones. `address_bits` in [30, 36].
[[nodiscard]] machine_spec random_machine(unsigned address_bits,
                                          unsigned bank_function_count,
                                          std::uint64_t seed);

}  // namespace dramdig::dram

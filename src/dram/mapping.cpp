#include "dram/mapping.h"

#include <algorithm>
#include <set>

#include "util/bitops.h"
#include "util/expect.h"

namespace dramdig::dram {

address_mapping::address_mapping(std::vector<std::uint64_t> bank_functions,
                                 std::vector<unsigned> row_bits,
                                 std::vector<unsigned> column_bits,
                                 unsigned address_bits)
    : bank_functions_(std::move(bank_functions)),
      row_bits_(std::move(row_bits)),
      column_bits_(std::move(column_bits)),
      address_bits_(address_bits) {
  DRAMDIG_EXPECTS(address_bits_ > 0 && address_bits_ <= 48);
  DRAMDIG_EXPECTS(bank_functions_.size() < 64);
  std::sort(row_bits_.begin(), row_bits_.end());
  std::sort(column_bits_.begin(), column_bits_.end());
  const std::uint64_t limit = std::uint64_t{1} << address_bits_;
  for (unsigned b : row_bits_) DRAMDIG_EXPECTS(b < address_bits_);
  for (unsigned b : column_bits_) DRAMDIG_EXPECTS(b < address_bits_);
  for (std::uint64_t f : bank_functions_) {
    DRAMDIG_EXPECTS(f != 0 && f < limit);
  }
}

std::uint64_t address_mapping::bank_of(std::uint64_t phys) const {
  std::uint64_t b = 0;
  for (std::size_t i = 0; i < bank_functions_.size(); ++i) {
    b |= static_cast<std::uint64_t>(parity(phys, bank_functions_[i])) << i;
  }
  return b;
}

std::uint64_t address_mapping::row_of(std::uint64_t phys) const {
  return gather_bits(phys, row_bits_);
}

std::uint64_t address_mapping::column_of(std::uint64_t phys) const {
  return gather_bits(phys, column_bits_);
}

dram_address address_mapping::decode(std::uint64_t phys) const {
  dram_address a{};
  a.flat_bank = bank_of(phys);
  a.row = row_of(phys);
  a.column = column_of(phys);
  return a;
}

std::vector<unsigned> address_mapping::pure_bank_bits() const {
  std::set<unsigned> taken(row_bits_.begin(), row_bits_.end());
  taken.insert(column_bits_.begin(), column_bits_.end());
  std::vector<unsigned> out;
  for (unsigned b = 0; b < address_bits_; ++b) {
    if (!taken.contains(b)) out.push_back(b);
  }
  return out;
}

std::optional<std::uint64_t> address_mapping::encode(
    std::uint64_t flat_bank, std::uint64_t row, std::uint64_t column) const {
  if (flat_bank >= bank_count()) return std::nullopt;
  if (row >= (std::uint64_t{1} << row_bits_.size())) return std::nullopt;
  if (column >= (std::uint64_t{1} << column_bits_.size())) return std::nullopt;

  const std::uint64_t fixed =
      scatter_bits(row, row_bits_) | scatter_bits(column, column_bits_);
  // Residual targets once the row/column contribution is folded in.
  std::uint64_t residual = 0;
  for (std::size_t i = 0; i < bank_functions_.size(); ++i) {
    const unsigned want = static_cast<unsigned>((flat_bank >> i) & 1u);
    residual |= static_cast<std::uint64_t>(
                    want ^ parity(fixed, bank_functions_[i]))
                << i;
  }
  const std::uint64_t support = mask_of_bits(pure_bank_bits());
  const auto solved = gf2::solve(bank_functions_, residual, support);
  if (!solved) return std::nullopt;
  const std::uint64_t phys = fixed | *solved;
  // encode must be a right inverse of decode; guard against degenerate
  // hypotheses where the solver found *a* solution in a non-bijective map.
  if (bank_of(phys) != flat_bank || row_of(phys) != row ||
      column_of(phys) != column) {
    return std::nullopt;
  }
  return phys;
}

bool address_mapping::is_bijective() const {
  // Disjoint classes and exact bit accounting.
  std::set<unsigned> rows(row_bits_.begin(), row_bits_.end());
  for (unsigned c : column_bits_) {
    if (rows.contains(c)) return false;
  }
  if (row_bits_.size() + column_bits_.size() + bank_functions_.size() !=
      address_bits_) {
    return false;
  }
  // Stack row/column unit vectors and bank functions; bijective iff full
  // rank over the address bits.
  gf2::matrix m;
  for (unsigned b : row_bits_) m.push_back(std::uint64_t{1} << b);
  for (unsigned b : column_bits_) m.push_back(std::uint64_t{1} << b);
  for (std::uint64_t f : bank_functions_) m.push_back(f);
  return gf2::rank(m) == address_bits_;
}

bool address_mapping::equivalent_to(const address_mapping& other) const {
  return address_bits_ == other.address_bits_ &&
         row_bits_ == other.row_bits_ &&
         column_bits_ == other.column_bits_ &&
         gf2::same_span(bank_functions_, other.bank_functions_);
}

std::string describe_function(std::uint64_t mask) {
  std::string out = "(";
  bool first = true;
  for (unsigned b : bits_of_mask(mask)) {
    if (!first) out += ",";
    out += std::to_string(b);
    first = false;
  }
  return out + ")";
}

std::string describe_bit_ranges(const std::vector<unsigned>& bits) {
  if (bits.empty()) return "-";
  std::string out;
  std::size_t i = 0;
  while (i < bits.size()) {
    std::size_t j = i;
    while (j + 1 < bits.size() && bits[j + 1] == bits[j] + 1) ++j;
    if (!out.empty()) out += ",";
    if (j == i) {
      out += std::to_string(bits[i]);
    } else {
      out += std::to_string(bits[i]) + "-" + std::to_string(bits[j]);
    }
    i = j + 1;
  }
  return out;
}

std::string address_mapping::describe_functions() const {
  std::string out;
  for (std::size_t i = 0; i < bank_functions_.size(); ++i) {
    if (i != 0) out += ", ";
    out += describe_function(bank_functions_[i]);
  }
  return out;
}

std::string address_mapping::describe() const {
  return "banks " + describe_functions() + " | rows " +
         describe_bit_ranges(row_bits_) + " | cols " +
         describe_bit_ranges(column_bits_);
}

}  // namespace dramdig::dram

#include "dram/spec.h"

#include "util/bitops.h"
#include "util/expect.h"

namespace dramdig::dram {

std::string to_string(ddr_generation gen) {
  return gen == ddr_generation::ddr3 ? "DDR3" : "DDR4";
}

chip_spec spec_for(ddr_generation gen, unsigned banks_per_rank) {
  DRAMDIG_EXPECTS(banks_per_rank == 8 || banks_per_rank == 16);
  chip_spec s{};
  s.generation = gen;
  s.banks_per_rank = banks_per_rank;
  s.row_bytes = 8 * 1024;  // 1Ki columns x 64-bit bus on all paper machines
  s.refresh_interval_ms = 64.0;
  if (gen == ddr_generation::ddr3) {
    // DDR3 ranks always expose 8 banks.
    DRAMDIG_EXPECTS(banks_per_rank == 8);
  }
  return s;
}

unsigned expected_column_bits(const chip_spec& spec) {
  return log2_exact(spec.row_bytes);
}

unsigned expected_row_bits(const chip_spec& spec, std::uint64_t total_bytes,
                           unsigned total_banks) {
  DRAMDIG_EXPECTS(total_banks > 0);
  const std::uint64_t rows_per_bank =
      total_bytes / (static_cast<std::uint64_t>(total_banks) * spec.row_bytes);
  return log2_exact(rows_per_bank);
}

}  // namespace dramdig::dram

#include "rowhammer/harness.h"

#include "util/expect.h"

namespace dramdig::rowhammer {

hammer_stats run_double_sided_test(sim::machine& machine,
                                   const dram::address_mapping& hypothesis,
                                   rng& r, const hammer_config& config) {
  DRAMDIG_EXPECTS(config.duration_seconds > 0);
  hammer_stats stats{};
  auto& faults = machine.faults();
  auto& clock = machine.clock();
  faults.reset_flips();

  const std::uint64_t t0 = clock.now_ns();
  const std::uint64_t row_count = std::uint64_t{1}
                                  << hypothesis.row_bits().size();
  const std::uint64_t col_count = std::uint64_t{1}
                                  << hypothesis.column_bits().size();
  const std::uint64_t window_ns =
      static_cast<std::uint64_t>(faults.window_ns());

  while (clock.seconds_since(t0) < config.duration_seconds) {
    // Victim chosen in hypothesis coordinates; aggressors are the rows the
    // hypothesis believes sandwich it.
    const std::uint64_t bank = r.below(hypothesis.bank_count());
    const std::uint64_t victim = 1 + r.below(row_count > 2 ? row_count - 2 : 1);
    const std::uint64_t column = r.below(col_count) & ~std::uint64_t{63};

    const auto above = hypothesis.encode(bank, victim - 1, column);
    const auto below =
        config.mode == hammer_mode::double_sided
            ? hypothesis.encode(bank, victim + 1, column)
            // Single-sided: the partner only exists to force row-buffer
            // conflicts; pick a distant row of the same bank.
            : hypothesis.encode(
                  bank, (victim + row_count / 2) % row_count, column);
    ++stats.windows;
    if (!above || !below) {
      // The tool still burns a hammer window figuring out it can't place
      // the rows (a real attack would hammer garbage addresses).
      ++stats.encode_failures;
      clock.advance_ns(window_ns);
      continue;
    }
    const auto outcome = faults.hammer_pair(*above, *below);
    stats.bit_flips += outcome.new_flips;
    if (outcome.effective_hammer) ++stats.true_sbdr;
    if (outcome.effective_double_sided) ++stats.true_double_sided;
  }
  return stats;
}

}  // namespace dramdig::rowhammer

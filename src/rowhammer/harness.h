// Double-sided rowhammer test harness (paper Section IV-C).
//
// The experiment that *justifies* a reverse-engineered mapping: pick victim
// rows, compute the two sandwiching aggressor rows **through the
// hypothesis mapping**, hammer for one refresh window, count flipped
// cells. Only physically true double-sided layouts flip cells at the high
// rate, so the flip count is a direct measurement of mapping correctness —
// a wrong hypothesis computes "aggressors" that land in other banks or
// non-adjacent rows and harvests (nearly) nothing.
#pragma once

#include <cstdint>

#include "dram/mapping.h"
#include "sim/machine.h"
#include "util/rng.h"

namespace dramdig::rowhammer {

/// Hammering strategies (paper Section II-B). Double-sided sandwiches the
/// victim between two aggressors; single-sided hammers one neighbour plus
/// a far row of the same bank (to keep the row buffer ping-ponging);
/// one-location would rely on the controller's closed-page policy and is
/// approximated here by a same-bank far pair as well.
enum class hammer_mode { double_sided, single_sided };

struct hammer_config {
  double duration_seconds = 300.0;  ///< the paper's 5-minute tests
  hammer_mode mode = hammer_mode::double_sided;
};

struct hammer_stats {
  std::uint64_t bit_flips = 0;
  std::uint64_t windows = 0;            ///< hammer windows executed
  std::uint64_t true_double_sided = 0;  ///< windows that truly sandwiched
  std::uint64_t true_sbdr = 0;          ///< windows that at least conflicted
  std::uint64_t encode_failures = 0;    ///< hypothesis couldn't place rows

  /// Fraction of windows that were physically double-sided — the fidelity
  /// of the hypothesis mapping.
  [[nodiscard]] double double_sided_fidelity() const {
    return windows == 0 ? 0.0
                        : static_cast<double>(true_double_sided) /
                              static_cast<double>(windows);
  }
};

/// Run one timed double-sided rowhammer test against `machine`, choosing
/// aggressors through `hypothesis`. Flips are counted fresh (the fault
/// model is reset at the start, as a real test refills victim memory).
[[nodiscard]] hammer_stats run_double_sided_test(
    sim::machine& machine, const dram::address_mapping& hypothesis, rng& r,
    const hammer_config& config = {});

}  // namespace dramdig::rowhammer

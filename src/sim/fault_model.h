// Rowhammer fault injection.
//
// Charge leakage physics reduced to the observables Table III measures:
// alternating, cache-flushed access to two rows of the same bank activates
// both rows once per access pair; rows physically adjacent to an activated
// row leak, and a victim row with aggressors on BOTH sides (double-sided)
// leaks an order of magnitude faster than with one (single-sided). A row's
// weak cells are a deterministic pseudo-random property of the machine
// (seeded per machine), so hammering the same victim twice finds the same
// cells — as on real DIMMs.
//
// The crucial property for reproducing the paper: flips happen only if the
// *true* DRAM addresses of the two hammered physical addresses are same
// bank / different rows. A tool with a wrong mapping hammers pairs that
// are actually different banks (both rows stay open -> no activations) or
// the same row (row buffer hit -> no activations) and harvests nothing.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "dram/mapping.h"
#include "dram/presets.h"
#include "sim/timing_model.h"
#include "sim/virtual_clock.h"
#include "util/rng.h"

namespace dramdig::sim {

struct hammer_outcome {
  std::uint64_t new_flips = 0;        ///< cells flipped by this window
  bool effective_double_sided = false;  ///< truth: aggressors sandwich a row
  bool effective_hammer = false;        ///< truth: pair was SBDR at all
};

class fault_model {
 public:
  fault_model(const dram::address_mapping& truth,
              dram::vulnerability_profile profile, timing_model timing,
              virtual_clock& clock, std::uint64_t machine_seed);

  /// Hammer the pair (p1, p2) alternately for one refresh window. Applies
  /// leakage to the true neighbours, advances the clock by the loop cost,
  /// and reports newly flipped cells (a cell flips once; re-hammering the
  /// same victim does not double count — the paper's tests scan memory for
  /// flipped bits, which are unique cells).
  hammer_outcome hammer_pair(std::uint64_t p1, std::uint64_t p2);

  [[nodiscard]] std::uint64_t total_flips() const noexcept {
    return flipped_cells_.size();
  }
  /// Repair all flipped cells (a test harness re-fills victim memory with
  /// its pattern between tests; cell *weakness* is permanent, flips are
  /// not).
  void reset_flips() { flipped_cells_.clear(); }
  /// Clock cost of one hammer window (two aggressors, conflict latency,
  /// clflush each iteration, for one refresh interval's worth of accesses).
  [[nodiscard]] double window_ns() const noexcept { return window_ns_; }

  /// Number of weak (flippable) cells in a given victim row — a stable
  /// pseudo-random function of the machine seed. Exposed for tests.
  [[nodiscard]] unsigned weak_cells(std::uint64_t flat_bank,
                                    std::uint64_t row) const;

  /// How many cells of one specific row are currently flipped — the
  /// "scan this row's memory" step of a rowhammer/PUF protocol.
  [[nodiscard]] unsigned flipped_in_row(std::uint64_t flat_bank,
                                        std::uint64_t row) const;

 private:
  dram::address_mapping truth_;
  dram::vulnerability_profile profile_;
  timing_model timing_;
  virtual_clock& clock_;
  std::uint64_t machine_seed_;
  rng rng_;
  std::unordered_set<std::uint64_t> flipped_cells_;
  double window_ns_ = 0.0;
  std::uint64_t hammer_iterations_ = 0;

  std::uint64_t try_flip_row(std::uint64_t flat_bank, std::uint64_t row,
                             bool double_sided);
};

}  // namespace dramdig::sim

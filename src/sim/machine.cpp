#include "sim/machine.h"

namespace dramdig::sim {

machine::machine(dram::machine_spec spec, std::uint64_t seed,
                 timing_model timing)
    : spec_(std::move(spec)),
      seed_(seed),
      clock_(std::make_unique<virtual_clock>()) {
  controller_ = std::make_unique<memory_controller>(
      spec_.mapping, timing, *clock_, rng(seed ^ 0x71B1A6u));
  faults_ = std::make_unique<fault_model>(spec_.mapping, spec_.vulnerability,
                                          timing, *clock_, seed);
}

}  // namespace dramdig::sim

// Latency parameters of the simulated memory system.
//
// Values approximate an uncached access on a desktop DDR3/DDR4 platform as
// seen from userspace with rdtsc (the paper's measurement setup): a row-hit
// access is fast; a row-buffer conflict pays precharge + activate on top.
// The noise terms are what make reverse engineering nontrivial: Gaussian
// jitter on every access plus occasional heavy-tailed contamination
// (scheduler preemption, refresh collision), which is what DRAMDig's
// delta/per_threshold slack in Algorithm 2 exists to absorb.
#pragma once

namespace dramdig::sim {

struct timing_model {
  double row_hit_ns = 165.0;       ///< open-row access, uncached
  double row_closed_ns = 250.0;    ///< bank precharged, one activate
  double row_conflict_ns = 330.0;  ///< wrong row open: precharge + activate
  double clflush_ns = 55.0;        ///< per-access cache-line flush cost
  double loop_overhead_ns = 15.0;  ///< mfence + loop bookkeeping per access

  double access_noise_sigma_ns = 9.0;   ///< per-access Gaussian jitter
  double contamination_chance = 0.01;   ///< heavy-tail event per measurement
  double contamination_max_ns = 400.0;  ///< uniform [0, max) added when hit

  /// Background-load bursts: every so often the system gets busy for a few
  /// seconds and the heavy-tail rate multiplies. Tools that re-verify
  /// (DRAMDig's median filter + pile checks) ride bursts out; tools built
  /// on single-sample scans (DRAMA) produce polluted clusters during them.
  double burst_mean_interval_s = 150.0;  ///< exponential inter-arrival
  double burst_mean_duration_s = 4.0;    ///< exponential duration
  double burst_contamination_factor = 25.0;

  /// Refresh: every tREFI one rank stalls ~tRFC; folded into contamination
  /// for pair measurements but kept for documentation and the viz example.
  double refresh_interval_ns = 7800.0;
  double refresh_stall_ns = 350.0;

  /// Measurement accounting mode. The alternating 2*rounds access loop of
  /// a pair measurement visits at most three row-buffer situations (first
  /// touch of each address from the pre-measurement state, then the steady
  /// state), so its access counts — and therefore its mean latency and
  /// integer clock charge — have a closed form. `true` (default) computes
  /// that aggregate in O(1) per measurement; `false` replays every access
  /// through the row-buffer state machine, the differential-test oracle
  /// (mirrors function_config::use_nullspace). Both modes draw the same
  /// rng stream and produce bit-identical results.
  bool closed_form_accounting = true;

  /// Noise-stream mode. `true` (default) keys every access's and every
  /// measurement's noise on its monotone index through a counter-based
  /// Philox stream (util/rng.h noise_stream): draw i is a pure function of
  /// (machine seed, i), so the batched measurement tail evaluates its noise
  /// shard-parallel and stays bit-identical on any thread count — and a
  /// measurement batch still equals the same scalar measure_pair sequence
  /// exactly. `false` replays the historical sequential mt19937_64 stream
  /// (per-call normal_distribution construction and all), the
  /// differential-test oracle in the use_nullspace/use_arena_index mold.
  /// The two modes produce *statistically* identical noise but different
  /// concrete streams, so flipping this legitimately shifts measurement
  /// counts (tests pin equivalence via tolerance bands, not values).
  bool use_counter_rng = true;
};

}  // namespace dramdig::sim

// A complete simulated machine: spec (ground truth + geometry), a virtual
// clock shared by all components, the memory controller, and the rowhammer
// fault model. This is the "device under test" every tool and benchmark
// runs against.
#pragma once

#include <cstdint>
#include <memory>

#include "dram/presets.h"
#include "sim/fault_model.h"
#include "sim/memory_controller.h"
#include "sim/timing_model.h"
#include "sim/virtual_clock.h"

namespace dramdig::sim {

class machine {
 public:
  /// `seed` drives every stochastic element (timing noise, weak cells);
  /// two machines with equal spec+seed behave identically.
  machine(dram::machine_spec spec, std::uint64_t seed,
          timing_model timing = {});

  [[nodiscard]] const dram::machine_spec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] memory_controller& controller() noexcept { return *controller_; }
  [[nodiscard]] fault_model& faults() noexcept { return *faults_; }
  [[nodiscard]] virtual_clock& clock() noexcept { return *clock_; }
  [[nodiscard]] const virtual_clock& clock() const noexcept { return *clock_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  dram::machine_spec spec_;
  std::uint64_t seed_;
  std::unique_ptr<virtual_clock> clock_;
  std::unique_ptr<memory_controller> controller_;
  std::unique_ptr<fault_model> faults_;
};

}  // namespace dramdig::sim

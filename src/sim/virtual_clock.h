// Virtual time base for the whole simulation.
//
// Fig. 2 of the paper reports wall-clock tool cost; in this reproduction
// every simulated DRAM access, cache flush and measurement charges
// nanoseconds to a virtual clock, so "time cost" is a deterministic
// function of the work a tool performs — the honest analogue of the
// paper's measurements, minus host noise.
#pragma once

#include <cstdint>

namespace dramdig::sim {

class virtual_clock {
 public:
  void advance_ns(std::uint64_t ns) noexcept { now_ns_ += ns; }

  [[nodiscard]] std::uint64_t now_ns() const noexcept { return now_ns_; }
  [[nodiscard]] double now_seconds() const noexcept {
    return static_cast<double>(now_ns_) / 1e9;
  }

  /// Elapsed seconds since a reference point taken earlier.
  [[nodiscard]] double seconds_since(std::uint64_t ref_ns) const noexcept {
    return static_cast<double>(now_ns_ - ref_ns) / 1e9;
  }

 private:
  std::uint64_t now_ns_ = 0;
};

}  // namespace dramdig::sim

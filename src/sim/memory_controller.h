// The simulated memory controller: the ground-truth DRAM address mapping
// plus per-bank row-buffer state and the latency model. This is the only
// component that knows the true mapping; the reverse-engineering tools may
// touch it exclusively through timed accesses, exactly like the real tools
// can only observe latencies.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dram/mapping.h"
#include "sim/timing_model.h"
#include "sim/virtual_clock.h"
#include "util/rng.h"

namespace dramdig {
class worker_pool;
}

namespace dramdig::sim {

/// Result of one timed pair measurement (the paper's `latency(p, p')`).
struct pair_measurement {
  double mean_access_ns = 0.0;  ///< average per-access latency observed
  bool contaminated = false;    ///< a heavy-tail event landed in this sample
};

/// A (p1, p2) physical-address pair submitted to the batch interface.
using addr_pair = std::pair<std::uint64_t, std::uint64_t>;

class memory_controller {
 public:
  memory_controller(const dram::address_mapping& truth, timing_model timing,
                    virtual_clock& clock, rng noise_rng);

  /// One uncached access to a physical address: updates the open-row table,
  /// advances the clock, returns the sampled latency in ns.
  double access(std::uint64_t phys);

  /// Alternate accesses to p1 and p2 (`rounds` accesses to each, clflush
  /// between accesses) and return the mean per-access latency. This is the
  /// workhorse of the timing channel; it is closed-form over the row-buffer
  /// steady state so a measurement costs O(1) host time while still
  /// advancing the virtual clock by the full loop cost.
  [[nodiscard]] pair_measurement measure_pair(std::uint64_t p1,
                                              std::uint64_t p2,
                                              unsigned rounds);

  /// Structure-of-arrays decode of a pair batch: element 2i describes
  /// pairs[i].first, element 2i+1 pairs[i].second. The buffers belong to
  /// the controller and are reused across calls (no per-batch allocation
  /// once warm); the returned reference is valid until the next
  /// decode_pairs / measure_pairs call. Row values are the row-bit-masked
  /// address, not the dense row index — rows are only ever compared for
  /// equality, and the masked form skips the per-bit gather.
  struct decoded_soa {
    std::vector<std::uint64_t> addr;
    std::vector<std::uint64_t> bank;
    std::vector<std::uint64_t> row;
  };

  /// Decode a whole batch into the SoA scratch: validates every address up
  /// front, then runs the branch-lean bank/row extraction (decode_banks)
  /// over the flat address array, sharded across the worker pool for large
  /// batches. Pure — no noise, clock or row-buffer effects.
  const decoded_soa& decode_pairs(std::span<const addr_pair> pairs);

  /// Service a whole batch of pair measurements in one pass. The address
  /// decodes (bank/row extraction) run through the SoA path above, sharded
  /// across the persistent worker pool. The tail depends on the noise
  /// mode: under timing_model::use_counter_rng (default) a cheap
  /// sequential pass folds the state-carrying reductions in submission
  /// order (row-buffer evolution, per-measurement clock prefix, burst
  /// schedule, counters) and the noise itself — a pure function of
  /// (machine seed, measurement index) through the counter stream — is
  /// then evaluated shard-parallel; with the flag off the historical
  /// mt19937 tail replays strictly sequentially. Either way `out` is
  /// bit-identical to calling measure_pair once per element, on any
  /// thread count. The out-param form lets hot callers reuse one result
  /// buffer across thousands of batches.
  void measure_pairs(std::span<const addr_pair> pairs, unsigned rounds,
                     std::vector<pair_measurement>& out);
  [[nodiscard]] std::vector<pair_measurement> measure_pairs(
      std::span<const addr_pair> pairs, unsigned rounds);

  /// Inject the worker pool servicing the parallel decode and counter-rng
  /// tail shards (nullptr restores the process-wide pool). The shard
  /// *results* never depend on the pool; benches inject sized pools to
  /// measure thread scaling, tests to prove they may.
  void set_worker_pool(worker_pool* pool) noexcept { pool_ = pool; }

  /// Steady-state noiseless per-access latency for an alternating pair —
  /// used by tests to assert the channel's ground truth.
  [[nodiscard]] double ideal_pair_latency_ns(std::uint64_t p1,
                                             std::uint64_t p2) const;

  [[nodiscard]] const dram::address_mapping& truth() const noexcept {
    return truth_;
  }
  [[nodiscard]] const timing_model& timing() const noexcept { return timing_; }
  [[nodiscard]] virtual_clock& clock() noexcept { return clock_; }

  /// Total accesses simulated (bulk loops included) — the cost metric
  /// behind Fig. 2 alongside virtual time.
  [[nodiscard]] std::uint64_t access_count() const noexcept {
    return access_count_;
  }
  /// Total pair measurements taken.
  [[nodiscard]] std::uint64_t measurement_count() const noexcept {
    return measurement_count_;
  }

  /// True while a background-load burst is active at the current virtual
  /// time (exposed for tests and the timing-viz example).
  [[nodiscard]] bool in_burst() const;

 private:
  /// Decoded DRAM coordinates of one pair, produced by the (parallel)
  /// decode phase and consumed by the sequential noise phase.
  struct decoded_pair {
    std::uint64_t bank1 = 0, row1 = 0;
    std::uint64_t bank2 = 0, row2 = 0;
    double ideal_ns = 0.0;
  };

  /// Per-bank row-buffer entry; `open` distinguishes a precharged bank
  /// from one holding row 0.
  struct open_row {
    std::uint64_t row = 0;
    bool open = false;
  };

  /// How many of a measurement's 2*rounds accesses landed in each
  /// row-buffer situation. Produced either analytically (closed form) or
  /// by replaying the access loop; the stochastic tail only consumes the
  /// counts, so both producers yield bit-identical measurements.
  struct access_tally {
    std::uint64_t hits = 0;
    std::uint64_t closed = 0;
    std::uint64_t conflicts = 0;
  };

  /// One access's row-buffer situation against a bank's current state.
  enum class touch { closed, hit, conflict };
  [[nodiscard]] static touch classify(const open_row& slot,
                                      std::uint64_t row) noexcept {
    if (!slot.open) return touch::closed;
    return slot.row == row ? touch::hit : touch::conflict;
  }

  [[nodiscard]] decoded_pair decode_pair(std::uint64_t p1,
                                         std::uint64_t p2) const;

  /// O(1) tally: the first access to each address is classified against
  /// the pre-measurement row-buffer state, every later access sits in the
  /// alternating steady state.
  [[nodiscard]] access_tally tally_closed_form(const decoded_pair& d,
                                               unsigned rounds) const;

  /// O(rounds) oracle: walk all 2*rounds alternating accesses through the
  /// live row-buffer table, updating it per access.
  [[nodiscard]] access_tally tally_access_loop(const decoded_pair& d,
                                               unsigned rounds);

  /// The stochastic tail of one measurement: noise draws, clock charge,
  /// counters and row-buffer update. Must run in submission order (in
  /// counter mode only its draws are order-free; the state folds are not).
  [[nodiscard]] pair_measurement finish_measurement(const decoded_pair& d,
                                                    unsigned rounds);

  /// The counter-mode batch tail: sequential state fold, parallel noise.
  void finish_batch_counter(std::span<const addr_pair> pairs, unsigned rounds,
                            std::vector<pair_measurement>& out);

  /// Noise domains of the counter stream — distinct second counter words,
  /// so the access-noise and measurement-noise sequences never collide.
  static constexpr std::uint64_t kAccessNoiseDomain = 0;
  static constexpr std::uint64_t kMeasureNoiseDomain = 1;

  [[nodiscard]] worker_pool& pool() const;

  dram::address_mapping truth_;
  timing_model timing_;
  virtual_clock& clock_;
  rng rng_;
  noise_stream counter_;  ///< counter-mode noise; keyed off rng_'s seed
  std::vector<open_row> open_rows_;  ///< flat table indexed by flat bank id
  std::uint64_t row_mask_ = 0;       ///< OR of the mapping's row bits
  decoded_soa soa_;                  ///< batch decode scratch, reused
  worker_pool* pool_ = nullptr;      ///< injected pool; nullptr = global
  std::uint64_t access_count_ = 0;
  std::uint64_t measurement_count_ = 0;

  /// Counter-tail scratch (reused): per-measurement noiseless mean and
  /// effective contamination rate, produced by the sequential fold and
  /// consumed by the parallel noise pass.
  struct tail_scratch {
    std::vector<double> mean_base;
    std::vector<double> contam_p;
  };
  tail_scratch tail_;

  // Background-load burst schedule, advanced lazily with virtual time.
  mutable std::uint64_t burst_start_ns_ = 0;
  mutable std::uint64_t burst_end_ns_ = 0;
  mutable rng burst_rng_{0};

  void advance_burst_schedule_to(std::uint64_t now_ns) const;
  [[nodiscard]] bool in_burst_at(std::uint64_t now_ns) const;
  [[nodiscard]] double effective_contamination_at(std::uint64_t now_ns) const;
};

}  // namespace dramdig::sim

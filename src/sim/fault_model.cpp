#include "sim/fault_model.h"

#include <cmath>

#include "util/expect.h"

namespace dramdig::sim {

namespace {

/// SplitMix64 — cheap stateless hash for per-row weak-cell derivation.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

fault_model::fault_model(const dram::address_mapping& truth,
                         dram::vulnerability_profile profile,
                         timing_model timing, virtual_clock& clock,
                         std::uint64_t machine_seed)
    : truth_(truth),
      profile_(profile),
      timing_(timing),
      clock_(clock),
      machine_seed_(machine_seed),
      rng_(mix64(machine_seed ^ 0x5eedu)) {
  // One hammer window = one DRAM refresh interval (64 ms) of alternating
  // conflict accesses to the two aggressors.
  const double per_iteration =
      2.0 * (timing_.row_conflict_ns + timing_.clflush_ns +
             timing_.loop_overhead_ns);
  const double refresh_window_ns = 64.0 * 1e6;
  hammer_iterations_ =
      static_cast<std::uint64_t>(refresh_window_ns / per_iteration);
  window_ns_ = static_cast<double>(hammer_iterations_) * per_iteration;
}

unsigned fault_model::weak_cells(std::uint64_t flat_bank,
                                 std::uint64_t row) const {
  // Deterministic per-row weakness: ~37% of rows have no weak cell at all,
  // the rest have 1..max_flips_per_row with geometric-ish decay.
  const std::uint64_t h = mix64(machine_seed_ ^ (flat_bank << 40) ^ row);
  const unsigned bucket = static_cast<unsigned>(h % 100);
  if (bucket < 37) return 0;
  unsigned n = 1;
  std::uint64_t hh = h >> 8;
  while (n < profile_.max_flips_per_row && (hh & 3u) == 0) {
    ++n;
    hh >>= 2;
  }
  return n;
}

unsigned fault_model::flipped_in_row(std::uint64_t flat_bank,
                                     std::uint64_t row) const {
  unsigned flipped = 0;
  const unsigned weak = weak_cells(flat_bank, row);
  for (unsigned c = 0; c < weak; ++c) {
    const std::uint64_t key =
        mix64((flat_bank << 34) ^ (row << 4) ^ c ^ (machine_seed_ << 1));
    flipped += flipped_cells_.contains(key);
  }
  return flipped;
}

std::uint64_t fault_model::try_flip_row(std::uint64_t flat_bank,
                                        std::uint64_t row, bool double_sided) {
  const unsigned weak = weak_cells(flat_bank, row);
  if (weak == 0) return 0;
  const double chance = double_sided ? profile_.double_sided_flip_chance
                                     : profile_.single_sided_flip_chance;
  std::uint64_t flips = 0;
  for (unsigned c = 0; c < weak; ++c) {
    if (!rng_.chance(chance)) continue;
    // Cell identity: (bank, row, weak-cell ordinal).
    const std::uint64_t key =
        mix64((flat_bank << 34) ^ (row << 4) ^ c ^ (machine_seed_ << 1));
    if (flipped_cells_.insert(key).second) ++flips;
  }
  return flips;
}

hammer_outcome fault_model::hammer_pair(std::uint64_t p1, std::uint64_t p2) {
  DRAMDIG_EXPECTS(p1 < truth_.memory_bytes() && p2 < truth_.memory_bytes());
  clock_.advance_ns(static_cast<std::uint64_t>(window_ns_));

  hammer_outcome out{};
  const std::uint64_t b1 = truth_.bank_of(p1);
  const std::uint64_t b2 = truth_.bank_of(p2);
  const std::uint64_t r1 = truth_.row_of(p1);
  const std::uint64_t r2 = truth_.row_of(p2);

  // Alternating access only activates rows when it ping-pongs the row
  // buffer: same bank, different rows. Otherwise both addresses are served
  // from open rows and nothing leaks.
  if (b1 != b2 || r1 == r2) return out;
  out.effective_hammer = true;

  const std::uint64_t row_count = std::uint64_t{1}
                                  << truth_.row_bits().size();
  const std::uint64_t lo = std::min(r1, r2);
  const std::uint64_t hi = std::max(r1, r2);

  if (hi - lo == 2) {
    // True double-sided layout: the sandwiched row takes double pressure.
    out.effective_double_sided = true;
    out.new_flips += try_flip_row(b1, lo + 1, /*double_sided=*/true);
    if (lo > 0) out.new_flips += try_flip_row(b1, lo - 1, false);
    if (hi + 1 < row_count) out.new_flips += try_flip_row(b1, hi + 1, false);
  } else {
    // Plain SBDR hammering: each aggressor leaks into its own neighbours
    // (single-sided pressure only).
    for (std::uint64_t r : {r1, r2}) {
      if (r > 0) out.new_flips += try_flip_row(b1, r - 1, false);
      if (r + 1 < row_count) out.new_flips += try_flip_row(b1, r + 1, false);
    }
  }
  return out;
}

}  // namespace dramdig::sim

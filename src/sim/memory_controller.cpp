#include "sim/memory_controller.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace dramdig::sim {

memory_controller::memory_controller(const dram::address_mapping& truth,
                                     timing_model timing, virtual_clock& clock,
                                     rng noise_rng)
    : truth_(truth), timing_(timing), clock_(clock), rng_(noise_rng),
      burst_rng_(rng_.fork()) {
  DRAMDIG_EXPECTS(truth_.is_bijective());
  // Schedule the first background-load burst.
  burst_start_ns_ = static_cast<std::uint64_t>(
      -std::log(1.0 - burst_rng_.uniform()) *
      timing_.burst_mean_interval_s * 1e9);
  burst_end_ns_ = burst_start_ns_ +
                  static_cast<std::uint64_t>(-std::log(1.0 - burst_rng_.uniform()) *
                                             timing_.burst_mean_duration_s * 1e9);
}

void memory_controller::advance_burst_schedule() const {
  const std::uint64_t now = clock_.now_ns();
  while (now >= burst_end_ns_) {
    const std::uint64_t gap = static_cast<std::uint64_t>(
        -std::log(1.0 - burst_rng_.uniform()) *
        timing_.burst_mean_interval_s * 1e9);
    const std::uint64_t len = static_cast<std::uint64_t>(
        -std::log(1.0 - burst_rng_.uniform()) *
        timing_.burst_mean_duration_s * 1e9);
    burst_start_ns_ = burst_end_ns_ + gap;
    burst_end_ns_ = burst_start_ns_ + std::max<std::uint64_t>(len, 1);
  }
}

bool memory_controller::in_burst() const {
  advance_burst_schedule();
  const std::uint64_t now = clock_.now_ns();
  return now >= burst_start_ns_ && now < burst_end_ns_;
}

double memory_controller::effective_contamination() const {
  const double chance =
      in_burst() ? timing_.contamination_chance * timing_.burst_contamination_factor
                 : timing_.contamination_chance;
  return std::min(chance, 0.5);
}

double memory_controller::access(std::uint64_t phys) {
  DRAMDIG_EXPECTS(phys < truth_.memory_bytes());
  const std::uint64_t bank = truth_.bank_of(phys);
  const std::uint64_t row = truth_.row_of(phys);

  double base;
  const auto it = open_rows_.find(bank);
  if (it == open_rows_.end()) {
    base = timing_.row_closed_ns;
    open_rows_.emplace(bank, row);
  } else if (it->second == row) {
    base = timing_.row_hit_ns;
  } else {
    base = timing_.row_conflict_ns;
    it->second = row;
  }
  const double latency = std::max(
      1.0, base + rng_.gaussian(0.0, timing_.access_noise_sigma_ns));
  clock_.advance_ns(static_cast<std::uint64_t>(
      latency + timing_.clflush_ns + timing_.loop_overhead_ns));
  ++access_count_;
  return latency;
}

double memory_controller::ideal_pair_latency_ns(std::uint64_t p1,
                                                std::uint64_t p2) const {
  const std::uint64_t b1 = truth_.bank_of(p1);
  const std::uint64_t b2 = truth_.bank_of(p2);
  if (b1 != b2) {
    // Each bank keeps its row open; alternating accesses all hit.
    return timing_.row_hit_ns;
  }
  if (truth_.row_of(p1) == truth_.row_of(p2)) {
    return timing_.row_hit_ns;  // same row buffer serves both
  }
  // Same bank, different row: every access evicts the other's row.
  return timing_.row_conflict_ns;
}

pair_measurement memory_controller::measure_pair(std::uint64_t p1,
                                                 std::uint64_t p2,
                                                 unsigned rounds) {
  DRAMDIG_EXPECTS(rounds > 0);
  DRAMDIG_EXPECTS(p1 < truth_.memory_bytes() && p2 < truth_.memory_bytes());
  const double ideal = ideal_pair_latency_ns(p1, p2);

  // Mean of 2*rounds iid Gaussian samples around the steady state.
  const double sigma_mean =
      timing_.access_noise_sigma_ns / std::sqrt(2.0 * rounds);
  double observed = ideal + rng_.gaussian(0.0, sigma_mean);

  // Heavy-tail contamination: a scheduler preemption or refresh burst
  // inflates part of the loop; modelled as a uniform positive shift. The
  // rate rises sharply during background-load bursts.
  bool contaminated = false;
  if (rng_.chance(effective_contamination())) {
    observed += rng_.uniform() * timing_.contamination_max_ns;
    contaminated = true;
  }

  // Charge the virtual clock for the whole measurement loop.
  const double per_access =
      ideal + timing_.clflush_ns + timing_.loop_overhead_ns;
  clock_.advance_ns(static_cast<std::uint64_t>(
      2.0 * static_cast<double>(rounds) * per_access));
  access_count_ += 2ull * rounds;
  ++measurement_count_;

  // The row-buffer state after an alternating loop: both banks hold the
  // last-touched rows.
  open_rows_[truth_.bank_of(p1)] = truth_.row_of(p1);
  open_rows_[truth_.bank_of(p2)] = truth_.row_of(p2);

  return {std::max(1.0, observed), contaminated};
}

}  // namespace dramdig::sim

#include "sim/memory_controller.h"

#include <algorithm>
#include <cmath>

#include "util/bitops.h"
#include "util/expect.h"
#include "util/parallel.h"

namespace dramdig::sim {

namespace {

/// Batches below this size run their decode and counter-noise passes
/// inline: a pool handoff costs more than the work it would spread.
constexpr std::size_t kParallelDecodeThreshold = 4096;

}  // namespace

memory_controller::memory_controller(const dram::address_mapping& truth,
                                     timing_model timing, virtual_clock& clock,
                                     rng noise_rng)
    : truth_(truth), timing_(timing), clock_(clock), rng_(noise_rng),
      open_rows_(truth.bank_count()), row_mask_(mask_of_bits(truth.row_bits())),
      burst_rng_(rng_.fork()) {
  DRAMDIG_EXPECTS(truth_.is_bijective());
  // Key the counter stream off a *copy* of the noise rng: the key is a
  // pure function of the machine seed, and rng_ itself consumes nothing —
  // the legacy (use_counter_rng = false) stream stays bit-for-bit the
  // historical one.
  rng key_source = rng_;
  counter_.key0 = key_source.engine()();
  counter_.key1 = key_source.engine()();
  // Schedule the first background-load burst.
  burst_start_ns_ = static_cast<std::uint64_t>(
      -std::log(1.0 - burst_rng_.uniform()) *
      timing_.burst_mean_interval_s * 1e9);
  burst_end_ns_ = burst_start_ns_ +
                  static_cast<std::uint64_t>(-std::log(1.0 - burst_rng_.uniform()) *
                                             timing_.burst_mean_duration_s * 1e9);
}

worker_pool& memory_controller::pool() const {
  return pool_ != nullptr ? *pool_ : worker_pool::global();
}

void memory_controller::advance_burst_schedule_to(std::uint64_t now_ns) const {
  while (now_ns >= burst_end_ns_) {
    const std::uint64_t gap = static_cast<std::uint64_t>(
        -std::log(1.0 - burst_rng_.uniform()) *
        timing_.burst_mean_interval_s * 1e9);
    const std::uint64_t len = static_cast<std::uint64_t>(
        -std::log(1.0 - burst_rng_.uniform()) *
        timing_.burst_mean_duration_s * 1e9);
    burst_start_ns_ = burst_end_ns_ + gap;
    burst_end_ns_ = burst_start_ns_ + std::max<std::uint64_t>(len, 1);
  }
}

bool memory_controller::in_burst_at(std::uint64_t now_ns) const {
  advance_burst_schedule_to(now_ns);
  return now_ns >= burst_start_ns_ && now_ns < burst_end_ns_;
}

bool memory_controller::in_burst() const {
  return in_burst_at(clock_.now_ns());
}

double memory_controller::effective_contamination_at(
    std::uint64_t now_ns) const {
  const double chance =
      in_burst_at(now_ns)
          ? timing_.contamination_chance * timing_.burst_contamination_factor
          : timing_.contamination_chance;
  return std::min(chance, 0.5);
}

double memory_controller::access(std::uint64_t phys) {
  DRAMDIG_EXPECTS(phys < truth_.memory_bytes());
  const std::uint64_t bank = truth_.bank_of(phys);
  // Rows are only ever compared for equality inside the controller, so the
  // row-bit-masked address stands in for the dense row index (the mask is
  // injective on row bits). Must stay consistent with decode_pair /
  // decode_pairs — all three feed the same open-row table.
  const std::uint64_t row = phys & row_mask_;

  double base;
  open_row& slot = open_rows_[bank];
  if (!slot.open) {
    base = timing_.row_closed_ns;
    slot = {row, true};
  } else if (slot.row == row) {
    base = timing_.row_hit_ns;
  } else {
    base = timing_.row_conflict_ns;
    slot.row = row;
  }
  // Counter mode keys the access's jitter on its own monotone index;
  // legacy mode draws the shared sequential stream.
  const double noise =
      timing_.use_counter_rng
          ? counter_.gaussian(kAccessNoiseDomain, access_count_, 0.0,
                              timing_.access_noise_sigma_ns)
          : rng_.gaussian(0.0, timing_.access_noise_sigma_ns);
  const double latency = std::max(1.0, base + noise);
  clock_.advance_ns(static_cast<std::uint64_t>(
      latency + timing_.clflush_ns + timing_.loop_overhead_ns));
  ++access_count_;
  return latency;
}

double memory_controller::ideal_pair_latency_ns(std::uint64_t p1,
                                                std::uint64_t p2) const {
  return decode_pair(p1, p2).ideal_ns;
}

memory_controller::decoded_pair memory_controller::decode_pair(
    std::uint64_t p1, std::uint64_t p2) const {
  DRAMDIG_EXPECTS(p1 < truth_.memory_bytes() && p2 < truth_.memory_bytes());
  decoded_pair d;
  d.bank1 = truth_.bank_of(p1);
  d.row1 = p1 & row_mask_;
  d.bank2 = truth_.bank_of(p2);
  d.row2 = p2 & row_mask_;
  // Different banks each keep their row open (all hits), as does a shared
  // row buffer; same bank + different row pays a conflict every access.
  if (d.bank1 != d.bank2 || d.row1 == d.row2) {
    d.ideal_ns = timing_.row_hit_ns;
  } else {
    d.ideal_ns = timing_.row_conflict_ns;
  }
  return d;
}

memory_controller::access_tally memory_controller::tally_closed_form(
    const decoded_pair& d, unsigned rounds) const {
  access_tally t;
  const auto add = [&t](touch k, std::uint64_t n) {
    switch (k) {
      case touch::hit: t.hits += n; break;
      case touch::closed: t.closed += n; break;
      case touch::conflict: t.conflicts += n; break;
    }
  };
  // First access to p1 sees the pre-measurement state; the first access to
  // p2 then sees bank1 holding row1 (relevant only when the banks match).
  add(classify(open_rows_[d.bank1], d.row1), 1);
  if (d.bank2 == d.bank1) {
    add(d.row2 == d.row1 ? touch::hit : touch::conflict, 1);
  } else {
    add(classify(open_rows_[d.bank2], d.row2), 1);
  }
  // From the third access on, both banks hold the pair's rows: different
  // banks (or a shared row buffer) hit every time, same-bank-different-row
  // conflicts every time.
  const bool steady_hit = d.bank1 != d.bank2 || d.row1 == d.row2;
  add(steady_hit ? touch::hit : touch::conflict, 2ull * rounds - 2);
  return t;
}

memory_controller::access_tally memory_controller::tally_access_loop(
    const decoded_pair& d, unsigned rounds) {
  access_tally t;
  for (std::uint64_t i = 0; i < 2ull * rounds; ++i) {
    const bool second = (i & 1) != 0;
    const std::uint64_t bank = second ? d.bank2 : d.bank1;
    const std::uint64_t row = second ? d.row2 : d.row1;
    open_row& slot = open_rows_[bank];
    switch (classify(slot, row)) {
      case touch::hit: ++t.hits; break;
      case touch::closed: ++t.closed; break;
      case touch::conflict: ++t.conflicts; break;
    }
    slot = {row, true};
  }
  return t;
}

pair_measurement memory_controller::finish_measurement(const decoded_pair& d,
                                                       unsigned rounds) {
  const access_tally t = timing_.closed_form_accounting
                             ? tally_closed_form(d, rounds)
                             : tally_access_loop(d, rounds);
  const double accesses = 2.0 * static_cast<double>(rounds);
  const double mean_base = (static_cast<double>(t.hits) * timing_.row_hit_ns +
                            static_cast<double>(t.closed) * timing_.row_closed_ns +
                            static_cast<double>(t.conflicts) *
                                timing_.row_conflict_ns) /
                           accesses;

  // Mean of 2*rounds iid Gaussian samples around the loop's mean latency,
  // plus heavy-tail contamination: a scheduler preemption or refresh burst
  // inflates part of the loop; modelled as a uniform positive shift whose
  // rate rises sharply during background-load bursts. Counter mode serves
  // all three draws from the measurement's one counter block (pure in the
  // measurement index — the batch tail evaluates the identical block in
  // parallel); legacy mode replays the historical sequential stream.
  const double sigma_mean = timing_.access_noise_sigma_ns / std::sqrt(accesses);
  double observed;
  bool contaminated = false;
  const double contamination =
      effective_contamination_at(clock_.now_ns());
  if (timing_.use_counter_rng) {
    const counter_block blk =
        counter_.block(kMeasureNoiseDomain, measurement_count_);
    observed = mean_base + sigma_mean * counter_gaussian(blk.v0);
    if (counter_unit(blk.v2) < contamination) {
      observed += counter_unit(blk.v3) * timing_.contamination_max_ns;
      contaminated = true;
    }
  } else {
    observed = mean_base + rng_.gaussian(0.0, sigma_mean);
    if (rng_.chance(contamination)) {
      observed += rng_.uniform() * timing_.contamination_max_ns;
      contaminated = true;
    }
  }

  // Charge the virtual clock for the whole measurement loop. Each access
  // charges a truncated integer, so the aggregate below equals a
  // per-access advance_ns sequence exactly — on any timing preset.
  const auto charge = [this](double base) {
    return static_cast<std::uint64_t>(base + timing_.clflush_ns +
                                      timing_.loop_overhead_ns);
  };
  clock_.advance_ns(t.hits * charge(timing_.row_hit_ns) +
                    t.closed * charge(timing_.row_closed_ns) +
                    t.conflicts * charge(timing_.row_conflict_ns));
  access_count_ += 2ull * rounds;
  ++measurement_count_;

  // The row-buffer state after an alternating loop: both banks hold the
  // last-touched rows (p2's row wins a shared bank, matching access order).
  open_rows_[d.bank1] = {d.row1, true};
  open_rows_[d.bank2] = {d.row2, true};

  return {std::max(1.0, observed), contaminated};
}

pair_measurement memory_controller::measure_pair(std::uint64_t p1,
                                                 std::uint64_t p2,
                                                 unsigned rounds) {
  DRAMDIG_EXPECTS(rounds > 0);
  return finish_measurement(decode_pair(p1, p2), rounds);
}

const memory_controller::decoded_soa& memory_controller::decode_pairs(
    std::span<const addr_pair> pairs) {
  const std::size_t n = 2 * pairs.size();
  decoded_soa& d = soa_;
  d.addr.resize(n);
  d.bank.resize(n);
  d.row.resize(n);
  // Whole-batch validation up front: a bad address anywhere rejects the
  // batch before any noise is drawn. The AoS->SoA split rides along.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    DRAMDIG_EXPECTS(pairs[i].first < truth_.memory_bytes() &&
                    pairs[i].second < truth_.memory_bytes());
    d.addr[2 * i] = pairs[i].first;
    d.addr[2 * i + 1] = pairs[i].second;
  }
  const auto& functions = truth_.bank_functions();
  const unsigned shards =
      pairs.size() >= kParallelDecodeThreshold
          ? std::max(default_shard_count(), pool().thread_count())
          : 1;
  parallel_for_shards(pool(), n, shards, [&](const shard& s) {
    decode_banks(d.addr.data() + s.begin, s.end - s.begin, functions.data(),
                 functions.size(), d.bank.data() + s.begin);
    for (std::size_t i = s.begin; i < s.end; ++i) {
      d.row[i] = d.addr[i] & row_mask_;
    }
  });
  return d;
}

void memory_controller::finish_batch_counter(
    std::span<const addr_pair> pairs, unsigned rounds,
    std::vector<pair_measurement>& out) {
  const decoded_soa& d = soa_;
  const std::size_t n = pairs.size();
  tail_.mean_base.resize(n);
  tail_.contam_p.resize(n);

  const double accesses = 2.0 * static_cast<double>(rounds);
  const double sigma_mean = timing_.access_noise_sigma_ns / std::sqrt(accesses);
  const auto charge = [this](double base) {
    return static_cast<std::uint64_t>(base + timing_.clflush_ns +
                                      timing_.loop_overhead_ns);
  };
  const std::uint64_t hit_charge = charge(timing_.row_hit_ns);
  const std::uint64_t closed_charge = charge(timing_.row_closed_ns);
  const std::uint64_t conflict_charge = charge(timing_.row_conflict_ns);

  // Sequential fold of everything state-carrying, in submission order: the
  // row-buffer table (a measurement's first touches see what the previous
  // measurement left open), the virtual-clock prefix (measurement i's
  // contamination rate is evaluated at the clock *before* its own charge —
  // exactly where finish_measurement reads it), and the lazy burst
  // schedule riding that monotone clock. No randomness is consumed here
  // beyond burst_rng_'s schedule draws, identical to the scalar sequence.
  const std::uint64_t base_index = measurement_count_;
  std::uint64_t clock_at = clock_.now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    const decoded_pair dp{d.bank[2 * i], d.row[2 * i], d.bank[2 * i + 1],
                          d.row[2 * i + 1], 0.0};
    const access_tally t = timing_.closed_form_accounting
                               ? tally_closed_form(dp, rounds)
                               : tally_access_loop(dp, rounds);
    tail_.mean_base[i] =
        (static_cast<double>(t.hits) * timing_.row_hit_ns +
         static_cast<double>(t.closed) * timing_.row_closed_ns +
         static_cast<double>(t.conflicts) * timing_.row_conflict_ns) /
        accesses;
    tail_.contam_p[i] = effective_contamination_at(clock_at);
    clock_at += t.hits * hit_charge + t.closed * closed_charge +
                t.conflicts * conflict_charge;
    open_rows_[dp.bank1] = {dp.row1, true};
    open_rows_[dp.bank2] = {dp.row2, true};
  }
  clock_.advance_ns(clock_at - clock_.now_ns());
  access_count_ += n * 2ull * rounds;
  measurement_count_ += n;

  // Parallel noise pass: element i is a pure function of (key, base+i) and
  // the two per-measurement scalars folded above — shard-independent by
  // construction, so any shard split and any pool yield identical output.
  const unsigned shards =
      n >= kParallelDecodeThreshold
          ? std::max(default_shard_count(), pool().thread_count())
          : 1;
  parallel_for_shards(pool(), n, shards, [&](const shard& s) {
    for (std::size_t i = s.begin; i < s.end; ++i) {
      const counter_block blk =
          counter_.block(kMeasureNoiseDomain, base_index + i);
      double observed =
          tail_.mean_base[i] + sigma_mean * counter_gaussian(blk.v0);
      bool contaminated = false;
      if (counter_unit(blk.v2) < tail_.contam_p[i]) {
        observed += counter_unit(blk.v3) * timing_.contamination_max_ns;
        contaminated = true;
      }
      out[i] = {std::max(1.0, observed), contaminated};
    }
  });
}

void memory_controller::measure_pairs(std::span<const addr_pair> pairs,
                                      unsigned rounds,
                                      std::vector<pair_measurement>& out) {
  DRAMDIG_EXPECTS(rounds > 0);
  // Decode is a pure function of the address, so the staged SoA path below
  // agrees bit for bit with a fused per-pair decode+finish loop.
  const decoded_soa& d = decode_pairs(pairs);
  out.resize(pairs.size());
  if (timing_.use_counter_rng) {
    finish_batch_counter(pairs, rounds, out);
    return;
  }
  if (!timing_.closed_form_accounting) {
    // The access-loop oracle is the slow differential path; per-pair
    // dispatch cost is noise next to its 2*rounds iterations.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const decoded_pair dp{d.bank[2 * i], d.row[2 * i], d.bank[2 * i + 1],
                            d.row[2 * i + 1], 0.0};
      out[i] = finish_measurement(dp, rounds);
    }
    return;
  }
  // Fused legacy batch tail: the same arithmetic and rng draw order as
  // finish_measurement, with every batch-invariant term (noise sigma of
  // the sample mean, the three per-access clock charges) hoisted out of
  // the per-pair loop. Strictly sequential — every gaussian/chance call
  // advances the one shared mt19937 stream.
  const double accesses = 2.0 * static_cast<double>(rounds);
  const double sigma_mean = timing_.access_noise_sigma_ns / std::sqrt(accesses);
  const auto charge = [this](double base) {
    return static_cast<std::uint64_t>(base + timing_.clflush_ns +
                                      timing_.loop_overhead_ns);
  };
  const std::uint64_t hit_charge = charge(timing_.row_hit_ns);
  const std::uint64_t closed_charge = charge(timing_.row_closed_ns);
  const std::uint64_t conflict_charge = charge(timing_.row_conflict_ns);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const decoded_pair dp{d.bank[2 * i], d.row[2 * i], d.bank[2 * i + 1],
                          d.row[2 * i + 1], 0.0};
    const access_tally t = tally_closed_form(dp, rounds);
    const double mean_base =
        (static_cast<double>(t.hits) * timing_.row_hit_ns +
         static_cast<double>(t.closed) * timing_.row_closed_ns +
         static_cast<double>(t.conflicts) * timing_.row_conflict_ns) /
        accesses;
    double observed = mean_base + rng_.gaussian(0.0, sigma_mean);
    bool contaminated = false;
    if (rng_.chance(effective_contamination_at(clock_.now_ns()))) {
      observed += rng_.uniform() * timing_.contamination_max_ns;
      contaminated = true;
    }
    clock_.advance_ns(t.hits * hit_charge + t.closed * closed_charge +
                      t.conflicts * conflict_charge);
    access_count_ += 2ull * rounds;
    ++measurement_count_;
    open_rows_[dp.bank1] = {dp.row1, true};
    open_rows_[dp.bank2] = {dp.row2, true};
    out[i] = {std::max(1.0, observed), contaminated};
  }
}

std::vector<pair_measurement> memory_controller::measure_pairs(
    std::span<const addr_pair> pairs, unsigned rounds) {
  std::vector<pair_measurement> results;
  measure_pairs(pairs, rounds, results);
  return results;
}

}  // namespace dramdig::sim

// Per-unit timing noise profiles.
//
// Measurement noise is a property of the physical machine — DVFS, SMIs,
// background load — not of the measuring tool. The paper's §IV-A outcomes
// (DRAMA producing nothing in two hours on the old mobile units No.3 and
// No.7 while finishing elsewhere) are reproduced by giving each machine the
// contamination level its class would really show. A knowledge-assisted
// tool survives a noisy unit because it re-verifies; a blind brute-force
// tool does not.
#pragma once

#include "dram/presets.h"
#include "sim/timing_model.h"

namespace dramdig::sim {

[[nodiscard]] inline timing_model timing_profile_for(
    const dram::machine_spec& spec) {
  timing_model t{};
  switch (spec.quality) {
    case dram::timing_quality::clean:
      t.contamination_chance = 0.002;
      t.burst_mean_interval_s = 150.0;
      break;
    case dram::timing_quality::mobile:
      t.contamination_chance = 0.005;
      t.burst_mean_interval_s = 80.0;
      t.burst_mean_duration_s = 5.0;
      break;
    case dram::timing_quality::noisy:
      t.contamination_chance = 0.04;
      t.contamination_max_ns = 500.0;
      t.burst_mean_interval_s = 35.0;
      t.burst_mean_duration_s = 6.0;
      break;
  }
  return t;
}

}  // namespace dramdig::sim

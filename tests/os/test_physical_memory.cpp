#include "os/physical_memory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <set>

#include "util/rng.h"

namespace dramdig::os {
namespace {

physical_memory make(std::uint64_t bytes, double frag = 0.1,
                     std::uint64_t seed = 1) {
  physical_memory_config cfg{};
  cfg.total_bytes = bytes;
  cfg.fragmentation = frag;
  return physical_memory(cfg, rng(seed));
}

TEST(PhysicalMemory, ReservesKernelMemory) {
  auto pm = make(1ull << 30);
  EXPECT_LT(pm.free_bytes(), 1ull << 30);
  EXPECT_GT(pm.free_bytes(), (1ull << 30) * 9 / 10);
}

TEST(PhysicalMemory, AllocateYieldsRequestedPageCount) {
  auto pm = make(1ull << 30);
  const auto extents = pm.allocate(10 * kPageSize);
  std::uint64_t pages = 0;
  for (const auto& e : extents) pages += e.page_count;
  EXPECT_EQ(pages, 10u);
}

TEST(PhysicalMemory, AllocateRoundsUpPartialPages) {
  auto pm = make(1ull << 30);
  const auto extents = pm.allocate(kPageSize + 1);
  std::uint64_t pages = 0;
  for (const auto& e : extents) pages += e.page_count;
  EXPECT_EQ(pages, 2u);
}

TEST(PhysicalMemory, AllocationsDoNotOverlap) {
  auto pm = make(1ull << 28);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) {
    for (const auto& e : pm.allocate(1ull << 20)) {
      for (std::uint64_t p = 0; p < e.page_count; ++p) {
        EXPECT_TRUE(seen.insert(e.first_pfn + p).second)
            << "frame handed out twice";
      }
    }
  }
}

TEST(PhysicalMemory, LowFragmentationYieldsLongRuns) {
  auto pm = make(8ull << 30, 0.05, 3);
  const auto extents = pm.allocate(1ull << 30);
  std::uint64_t longest = 0;
  for (const auto& e : extents) longest = std::max(longest, e.page_count);
  // Algorithm 1 needs ~2^(b_max+1) contiguous bytes; 8 MiB = 2048 pages.
  EXPECT_GE(longest, 4096u);
}

TEST(PhysicalMemory, HighFragmentationBreaksRuns) {
  auto low = make(2ull << 30, 0.02, 4);
  auto high = make(2ull << 30, 0.9, 4);
  auto longest_of = [](const std::vector<extent>& es) {
    std::uint64_t l = 0;
    for (const auto& e : es) l = std::max(l, e.page_count);
    return l;
  };
  EXPECT_GT(longest_of(low.allocate(1ull << 29)),
            4 * longest_of(high.allocate(1ull << 29)));
}

TEST(PhysicalMemory, ExhaustionThrowsBadAlloc) {
  auto pm = make(1ull << 26);  // 64 MiB
  EXPECT_THROW((void)pm.allocate(1ull << 30), std::bad_alloc);
}

TEST(PhysicalMemory, ExhaustionRollsBackPartialGrab) {
  auto pm = make(1ull << 26);
  const std::uint64_t before = pm.free_bytes();
  EXPECT_THROW((void)pm.allocate(1ull << 30), std::bad_alloc);
  EXPECT_EQ(pm.free_bytes(), before);
}

TEST(PhysicalMemory, FreeReturnsMemory) {
  auto pm = make(1ull << 28);
  const std::uint64_t before = pm.free_bytes();
  const auto extents = pm.allocate(1ull << 24);
  EXPECT_LT(pm.free_bytes(), before);
  pm.free(extents);
  EXPECT_EQ(pm.free_bytes(), before);
}

TEST(PhysicalMemory, FreeCoalescesSoReallocationSucceeds) {
  auto pm = make(1ull << 27, 0.0, 9);
  for (int round = 0; round < 5; ++round) {
    const auto a = pm.allocate(1ull << 26);
    pm.free(a);
  }
  // If coalescing failed the free list would splinter and eventually an
  // allocation of the same size would fail.
  const auto final_alloc = pm.allocate(1ull << 26);
  EXPECT_FALSE(final_alloc.empty());
}

TEST(PhysicalMemory, HugePagesAreAlignedAndSized) {
  auto pm = make(1ull << 30, 0.1, 5);
  const auto huge = pm.allocate_huge_pages(8);
  EXPECT_EQ(huge.size(), 8u);
  for (const auto& e : huge) {
    EXPECT_EQ(e.byte_count(), kHugePageSize);
    EXPECT_EQ(e.first_byte() % kHugePageSize, 0u);
  }
}

TEST(PhysicalMemory, HugePagePartialSuccessWhenFragmented) {
  auto pm = make(1ull << 26, 0.95, 6);
  // Chew up memory in small allocations first.
  for (int i = 0; i < 40; ++i) (void)pm.allocate(1ull << 19);
  const auto huge = pm.allocate_huge_pages(64);
  EXPECT_LT(huge.size(), 64u);  // cannot fully satisfy; returns what it found
}

TEST(PhysicalMemory, RejectsBadConfig) {
  physical_memory_config cfg{};
  cfg.total_bytes = 12345;  // not page aligned
  EXPECT_THROW(physical_memory(cfg, rng(1)), contract_violation);
  cfg.total_bytes = 1ull << 30;
  cfg.fragmentation = 1.5;
  EXPECT_THROW(physical_memory(cfg, rng(1)), contract_violation);
}

TEST(PhysicalMemory, DeterministicPerSeed) {
  auto a = make(1ull << 28, 0.3, 11);
  auto b = make(1ull << 28, 0.3, 11);
  const auto ea = a.allocate(1ull << 24);
  const auto eb = b.allocate(1ull << 24);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].first_pfn, eb[i].first_pfn);
    EXPECT_EQ(ea[i].page_count, eb[i].page_count);
  }
}

}  // namespace
}  // namespace dramdig::os

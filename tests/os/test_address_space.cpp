#include "os/address_space.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dramdig::os {
namespace {

struct space_fixture {
  physical_memory pm;
  address_space space;

  explicit space_fixture(std::uint64_t bytes = 1ull << 28,
                         double frag = 0.05, std::uint64_t seed = 2)
      : pm([&] {
          physical_memory_config cfg{};
          cfg.total_bytes = bytes;
          cfg.fragmentation = frag;
          return cfg;
        }(), rng(seed)),
        space(pm) {}
};

TEST(AddressSpace, MapBufferBacksEveryPage) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 20);
  EXPECT_EQ(region.byte_count(), 1ull << 20);
  EXPECT_EQ(region.page_count(), (1ull << 20) / kPageSize);
}

TEST(AddressSpace, TranslateIsPageCoherent) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 20);
  const std::uint64_t va = region.va_base() + 5 * kPageSize + 123;
  const std::uint64_t pa = region.translate(va);
  EXPECT_EQ(pa % kPageSize, 123u);
  EXPECT_TRUE(region.contains_page(pa / kPageSize));
}

TEST(AddressSpace, TranslateRejectsOutOfRange) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 16);
  EXPECT_THROW((void)region.translate(region.va_base() + (1ull << 20)),
               contract_violation);
  EXPECT_THROW((void)region.translate(region.va_base() - 1),
               contract_violation);
}

TEST(AddressSpace, ReverseFindsVirtualAddress) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 18);
  const std::uint64_t va = region.va_base() + 17 * kPageSize + 64;
  const std::uint64_t pa = region.translate(va);
  const auto back = region.reverse(pa);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, va);
}

TEST(AddressSpace, ReverseReturnsNulloptForForeignFrames) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 16);
  // The kernel-reserved frame 0 is never part of a user buffer.
  EXPECT_FALSE(region.reverse(0).has_value());
}

TEST(AddressSpace, PfnRunsAreSortedDisjointAndComplete) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 22);
  const auto& runs = region.pfn_runs();
  ASSERT_FALSE(runs.empty());
  std::uint64_t pages = runs.front().page_count;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    // Strictly ascending and disjoint: every frame appears exactly once.
    EXPECT_GE(runs[i].first_pfn, runs[i - 1].end_pfn());
    EXPECT_EQ(runs[i].pfn_prefix, runs[i - 1].pfn_prefix +
                                      runs[i - 1].page_count);
    pages += runs[i].page_count;
  }
  EXPECT_EQ(pages, region.page_count());
}

TEST(AddressSpace, PfnAtEnumeratesFramesAscending) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 20);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < region.page_count(); ++i) {
    const std::uint64_t pfn = region.pfn_at(i);
    if (i > 0) {
      EXPECT_GT(pfn, prev);
    }
    EXPECT_TRUE(region.contains_page(pfn));
    prev = pfn;
  }
}

TEST(AddressSpace, CoversRangeOnContiguousBacking) {
  space_fixture f(1ull << 28, 0.0, 3);
  const auto& region = f.space.map_buffer(1ull << 24);
  // With zero fragmentation the buffer is served in long runs; find one
  // extent and check coverage inside it.
  const auto& backing = region.backing();
  const auto widest = std::max_element(
      backing.begin(), backing.end(),
      [](const extent& a, const extent& b) {
        return a.page_count < b.page_count;
      });
  ASSERT_NE(widest, backing.end());
  EXPECT_TRUE(region.covers_range(widest->first_byte(),
                                  widest->first_byte() + widest->byte_count()));
  // One byte past the run must fail unless the next frame happens to be
  // present; probing far beyond the space definitely fails.
  EXPECT_FALSE(region.covers_range(widest->first_byte(),
                                   widest->first_byte() + (1ull << 40)));
}

TEST(AddressSpace, CoversRangeDetectsHoles) {
  space_fixture f;
  const auto& region = f.space.map_buffer(1ull << 18);
  // A range starting at an unmapped frame is not covered.
  EXPECT_FALSE(region.covers_range(0, kPageSize));
}

TEST(AddressSpace, RegionsRemainValidAcrossLaterMappings) {
  space_fixture f;
  const auto& first = f.space.map_buffer(1ull << 16);
  const std::uint64_t va = first.va_base();
  for (int i = 0; i < 20; ++i) (void)f.space.map_buffer(1ull << 16);
  // The reference taken before the loop still works (deque storage).
  EXPECT_EQ(first.va_base(), va);
  EXPECT_EQ(first.byte_count(), 1ull << 16);
}

TEST(AddressSpace, DistinctVirtualRanges) {
  space_fixture f;
  const auto& a = f.space.map_buffer(1ull << 16);
  const auto& b = f.space.map_buffer(1ull << 16);
  EXPECT_GE(b.va_base(), a.va_base() + a.byte_count());
}

TEST(AddressSpace, HugePageBufferPrefersAlignedBacking) {
  space_fixture f(1ull << 28, 0.05, 7);
  const auto& region = f.space.map_buffer_hugepage(8 * kHugePageSize);
  EXPECT_EQ(region.byte_count(), 8 * kHugePageSize);
  std::size_t aligned_runs = 0;
  for (const auto& e : region.backing()) {
    if (e.first_byte() % kHugePageSize == 0 &&
        e.byte_count() % kHugePageSize == 0) {
      ++aligned_runs;
    }
  }
  EXPECT_GT(aligned_runs, 0u);
}

}  // namespace
}  // namespace dramdig::os

#include "baselines/drama.h"

#include <gtest/gtest.h>

#include <set>

#include "core/environment.h"
#include "dram/presets.h"
#include "util/gf2.h"

namespace dramdig::baselines {
namespace {

/// Small/fast DRAMA configuration for unit tests (the default config runs
/// for virtual hours; these tests probe behaviour, not Fig. 2 numbers).
drama_config fast_config() {
  drama_config cfg{};
  cfg.pool_size = 2000;
  cfg.calibration_pairs = 300;
  cfg.max_trials = 6;
  return cfg;
}

TEST(Drama, CompletesAndFindsSpanOnCleanDesktop) {
  core::environment env(dram::machine_by_number(1), 5);
  drama_tool tool(env, fast_config());
  const auto report = tool.run();
  ASSERT_TRUE(report.completed);
  EXPECT_TRUE(gf2::same_span(report.functions,
                             env.spec().mapping.bank_functions()));
  ASSERT_TRUE(report.mapping.has_value());
  // Row heuristic lands on the truth for No.1 (rank 4 -> rows 17..32).
  EXPECT_EQ(report.mapping->row_bits(), env.spec().mapping.row_bits());
}

TEST(Drama, NeverFinishesOnNoisyMobile) {
  // The paper ran DRAMA for ~2 hours on machines No.3/No.7 without output.
  core::environment env(dram::machine_by_number(3), 5);
  drama_config cfg = fast_config();
  cfg.max_trials = 8;
  drama_tool tool(env, cfg);
  const auto report = tool.run();
  EXPECT_FALSE(report.completed);
  for (const auto& trial : report.trials) {
    EXPECT_FALSE(trial.valid) << "noisy unit produced a valid trial";
  }
}

TEST(Drama, TimeoutBindsWhenTrialsAllowIt) {
  core::environment env(dram::machine_by_number(7), 5);
  drama_config cfg = fast_config();
  cfg.max_trials = 1000;
  cfg.timeout_seconds = 600;  // shrink the budget to keep the test fast
  drama_tool tool(env, cfg);
  const auto report = tool.run();
  EXPECT_FALSE(report.completed);
  EXPECT_TRUE(report.timed_out);
  EXPECT_GE(report.total_seconds, 600.0);
}

TEST(Drama, NondeterministicAcrossRuns) {
  // "DRAMA generated different DRAM mappings most of the time" — across
  // seeds on the mobile No.2 the canonical outputs differ.
  std::set<gf2::matrix> outputs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::environment env(dram::machine_by_number(2), seed);
    drama_tool tool(env, fast_config());
    const auto report = tool.run();
    outputs.insert(gf2::row_echelon(report.functions));
  }
  EXPECT_GT(outputs.size(), 1u);
}

TEST(Drama, TrialsRecordedForPostMortem) {
  core::environment env(dram::machine_by_number(1), 9);
  drama_tool tool(env, fast_config());
  const auto report = tool.run();
  EXPECT_EQ(report.trials.size(), report.trials_run);
  EXPECT_GE(report.trials_run, 1u);
}

TEST(Drama, MeasurementCostDominatesRuntime) {
  core::environment env(dram::machine_by_number(1), 10);
  drama_tool tool(env, fast_config());
  const auto report = tool.run();
  EXPECT_GT(report.total_measurements, 10000u);
  EXPECT_GT(report.total_seconds, 10.0);
}

TEST(Drama, PerTrialEventsSumToTheRunTotals) {
  // Every measurement happens inside a trial, so the per-trial deltas must
  // reconstruct the run exactly — the contract the mapping_service
  // observers rely on.
  core::environment env(dram::machine_by_number(1), 9);
  drama_config cfg = fast_config();
  unsigned events = 0;
  std::uint64_t measurements = 0;
  double seconds = 0.0;
  cfg.on_phase = [&](std::string_view phase, const core::phase_stats& delta) {
    EXPECT_EQ(phase, "trial");
    ++events;
    measurements += delta.measurements;
    seconds += delta.seconds;
  };
  const auto report = drama_tool(env, cfg).run();
  EXPECT_EQ(events, report.trials_run);
  EXPECT_EQ(measurements, report.total_measurements);
  EXPECT_NEAR(seconds, report.total_seconds, 1e-6);
}

TEST(Drama, AbortStopsAtTheNextTrialBoundary) {
  core::environment env(dram::machine_by_number(3), 5);
  drama_config cfg = fast_config();
  cfg.max_trials = 8;
  unsigned trials_seen = 0;
  cfg.on_phase = [&](std::string_view, const core::phase_stats&) {
    ++trials_seen;
  };
  cfg.should_abort = [&] { return trials_seen >= 3; };
  const auto report = drama_tool(env, cfg).run();
  EXPECT_TRUE(report.aborted);
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.trials_run, 3u);
}

TEST(Drama, NullspaceAblationMatchesBruteForceOnCleanMachines) {
  // The "what if DRAMA had the algebra" arm: on clean trials the null
  // space of the cluster differences is exactly the set of masks the
  // brute-force sweep accepts, so the two paths must agree trial for
  // trial — same clustering (the sweep consumes no rng), same functions,
  // same measurement bill — while the algebra collapses the per-trial CPU
  // charge (millions of candidate masks down to one span enumeration).
  for (int machine : {1, 4}) {
    core::environment legacy_env(dram::machine_by_number(machine), 5);
    core::environment algebra_env(dram::machine_by_number(machine), 5);
    drama_config algebra = fast_config();
    algebra.use_nullspace = true;
    const auto legacy = drama_tool(legacy_env, fast_config()).run();
    const auto nullspace = drama_tool(algebra_env, algebra).run();

    ASSERT_EQ(nullspace.completed, legacy.completed) << "machine " << machine;
    EXPECT_EQ(nullspace.total_measurements, legacy.total_measurements);
    ASSERT_EQ(nullspace.trials_run, legacy.trials_run);
    for (unsigned t = 0; t < legacy.trials_run; ++t) {
      EXPECT_EQ(nullspace.trials[t].set_count, legacy.trials[t].set_count);
      EXPECT_EQ(nullspace.trials[t].canonical, legacy.trials[t].canonical)
          << "machine " << machine << " trial " << t;
    }
    EXPECT_EQ(nullspace.functions, legacy.functions);
    EXPECT_LT(nullspace.total_seconds, legacy.total_seconds);
  }
}

TEST(Drama, NullspaceAblationStillFailsOnNoisyMobile) {
  // The algebra does not repair DRAMA's published failure mode: polluted
  // clusters still never produce two agreeing trials on the noisy units.
  core::environment env(dram::machine_by_number(3), 5);
  drama_config cfg = fast_config();
  cfg.use_nullspace = true;
  cfg.max_trials = 8;
  const auto report = drama_tool(env, cfg).run();
  EXPECT_FALSE(report.completed);
}

TEST(DramaHypothesis, RowGuessMatchesRankArithmetic) {
  // 33-bit machine, 4 functions -> rows are the top 16 bits.
  const auto m = drama_hypothesis(
      {(1ull << 14) | (1ull << 17), (1ull << 15) | (1ull << 18),
       (1ull << 16) | (1ull << 19), 1ull << 6},
      33);
  ASSERT_EQ(m.row_bits().size(), 16u);
  EXPECT_EQ(m.row_bits().front(), 17u);
  EXPECT_EQ(m.row_bits().back(), 32u);
  EXPECT_EQ(m.column_bits().size(), 13u);
}

TEST(DramaHypothesis, MissingFunctionShiftsRowsOffByOne) {
  // When DRAMA misses one function its row guess absorbs a bank bit —
  // the mechanism behind its near-zero rowhammer yields.
  const auto m = drama_hypothesis(
      {(1ull << 14) | (1ull << 18), (1ull << 15) | (1ull << 19),
       (1ull << 16) | (1ull << 20), (1ull << 17) | (1ull << 21)},
      33);  // truth (machine No.2) has five functions
  const auto& truth = dram::machine_by_number(2).mapping;
  EXPECT_NE(m.row_bits(), truth.row_bits());
}

TEST(DramaHypothesis, RejectsEmptyFunctions) {
  EXPECT_THROW((void)drama_hypothesis({}, 33), contract_violation);
}

}  // namespace
}  // namespace dramdig::baselines

#include "baselines/xiao.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/environment.h"
#include "dram/presets.h"

namespace dramdig::baselines {
namespace {

TEST(XiaoSupports, ExactlyTheFourPaperMachines) {
  // Section IV-A: the tool works on No.1, No.3, No.4, No.5 and fails on
  // No.2 and No.6-9.
  for (const auto& m : dram::paper_machines()) {
    const bool expected =
        m.number == 1 || m.number == 3 || m.number == 4 || m.number == 5;
    EXPECT_EQ(xiao_supports(m), expected) << m.label();
  }
}

class XiaoOnPaperMachine : public ::testing::TestWithParam<int> {};

TEST_P(XiaoOnPaperMachine, OutcomeMatchesSectionIVA) {
  const auto& spec = dram::machine_by_number(GetParam());
  core::environment env(spec, 13);
  xiao_tool tool(env);
  const auto report = tool.run();

  const bool should_work = xiao_supports(spec);
  EXPECT_EQ(report.success, should_work) << report.note;
  if (should_work) {
    ASSERT_TRUE(report.mapping.has_value());
    EXPECT_TRUE(report.mapping->equivalent_to(spec.mapping));
    // "within minutes": template verification is quick.
    EXPECT_LT(report.total_seconds, 600.0);
  } else {
    EXPECT_TRUE(report.stalled);
    // The tool hangs; we charge its stall budget.
    EXPECT_GE(report.total_seconds, 1800.0 * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNineMachines, XiaoOnPaperMachine,
                         ::testing::Range(1, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "No" + std::to_string(info.param);
                         });

TEST(Xiao, StuckOnNo6ResolvesOnlyStridePairs) {
  // The paper: "stuck after resolving (16,20), (17,21), (18,22) as 3 of 6
  // bank address functions" on machine No.6. Our stride scan recovers the
  // same flavour of partial result: some two-bit pairs, fewer than six
  // functions, then a stall.
  core::environment env(dram::machine_by_number(6), 13);
  xiao_tool tool(env);
  const auto report = tool.run();
  ASSERT_TRUE(report.stalled);
  EXPECT_LT(report.resolved_functions.size(), 6u);
  EXPECT_GE(report.resolved_functions.size(), 2u);
  // The clean stride-4 pairs not blocked by the wide function are found.
  const std::uint64_t f1620 = (1ull << 16) | (1ull << 20);
  const std::uint64_t f1721 = (1ull << 17) | (1ull << 21);
  EXPECT_TRUE(gf2::in_span(report.resolved_functions, f1620));
  EXPECT_TRUE(gf2::in_span(report.resolved_functions, f1721));
}

TEST(Xiao, TemplateVerificationRejectsWrongMachine) {
  // A No.3-geometry machine whose real mapping differs from the template:
  // the timing check must refuse it rather than mis-report.
  dram::machine_spec tampered = dram::machine_by_number(3);
  // Swap two functions' row partners: (13,18),(14,17) instead of
  // (13,17),(14,18).
  tampered.mapping = dram::address_mapping(
      {(1ull << 13) | (1ull << 18), (1ull << 14) | (1ull << 17),
       (1ull << 15) | (1ull << 19), (1ull << 16) | (1ull << 20)},
      tampered.mapping.row_bits(), tampered.mapping.column_bits(),
      tampered.mapping.address_bits());
  core::environment env(tampered, 13);
  xiao_tool tool(env);
  const auto report = tool.run();
  if (report.success) {
    // If the fallback scan succeeded it must report the *actual* mapping.
    EXPECT_TRUE(report.mapping->equivalent_to(tampered.mapping));
  } else {
    EXPECT_TRUE(report.stalled);
  }
  EXPECT_NE(report.note.find("template"), std::string::npos);
}

TEST(Xiao, StreamsPerStagePhaseEventsSummingToTotals) {
  // The template path on machine No.4 emits one event per completed stage
  // (DRAMA-style), and the stage deltas sum exactly to the run's totals.
  core::environment env(dram::machine_by_number(4), 13);
  std::vector<std::string> stages;
  double seconds = 0.0;
  std::uint64_t measurements = 0;
  xiao_config cfg{};
  cfg.on_phase = [&](std::string_view stage, const core::phase_stats& delta) {
    stages.emplace_back(stage);
    seconds += delta.seconds;
    measurements += delta.measurements;
  };
  const auto report = xiao_tool(env, cfg).run();
  ASSERT_TRUE(report.success);
  ASSERT_EQ(stages, (std::vector<std::string>{"calibration", "template"}));
  EXPECT_EQ(measurements, report.total_measurements);
  EXPECT_NEAR(seconds, report.total_seconds, 1e-9);
}

TEST(Xiao, OffTemplateScanStagesSumToTotalsIncludingStall) {
  // Machine No.6 takes the full fallback path: row scan, bit scan, stride
  // scan, then the charged stall budget — every stage streams its delta
  // and the sum still matches the report exactly.
  core::environment env(dram::machine_by_number(6), 13);
  std::vector<std::string> stages;
  double seconds = 0.0;
  std::uint64_t measurements = 0;
  xiao_config cfg{};
  cfg.on_phase = [&](std::string_view stage, const core::phase_stats& delta) {
    stages.emplace_back(stage);
    seconds += delta.seconds;
    measurements += delta.measurements;
  };
  const auto report = xiao_tool(env, cfg).run();
  ASSERT_TRUE(report.stalled);
  ASSERT_EQ(stages,
            (std::vector<std::string>{"calibration", "row-scan", "bit-scan",
                                      "stride-scan", "stall"}));
  EXPECT_EQ(measurements, report.total_measurements);
  EXPECT_NEAR(seconds, report.total_seconds, 1e-9);
}

TEST(Xiao, AbortStopsStalledScanWellBeforeStallBudget) {
  // The point of the abort hook: a driver watching machine No.6 crawl can
  // kill it after the row scan instead of paying the 30-minute stall.
  core::environment env(dram::machine_by_number(6), 13);
  bool row_scan_done = false;
  xiao_config cfg{};
  cfg.on_phase = [&](std::string_view stage, const core::phase_stats&) {
    if (stage == "row-scan") row_scan_done = true;
  };
  cfg.should_abort = [&] { return row_scan_done; };
  const auto report = xiao_tool(env, cfg).run();
  EXPECT_TRUE(report.aborted);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.stalled);
  EXPECT_NE(report.note.find("aborted"), std::string::npos);
  // Far under the 1800 s stall budget an unaborted run charges.
  EXPECT_LT(report.total_seconds, 900.0);
}

TEST(Xiao, AbortBeforeAnyWorkReportsAborted) {
  core::environment env(dram::machine_by_number(4), 13);
  xiao_config cfg{};
  cfg.should_abort = [] { return true; };
  const auto report = xiao_tool(env, cfg).run();
  EXPECT_TRUE(report.aborted);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.mapping.has_value());
}

TEST(Xiao, DeterministicOnSupportedMachines) {
  for (std::uint64_t seed : {3ull, 4ull}) {
    core::environment env(dram::machine_by_number(4), seed);
    xiao_tool tool(env);
    const auto report = tool.run();
    ASSERT_TRUE(report.success);
    EXPECT_TRUE(report.mapping->equivalent_to(
        dram::machine_by_number(4).mapping));
  }
}

}  // namespace
}  // namespace dramdig::baselines

#include "rowhammer/harness.h"

#include <gtest/gtest.h>

#include "baselines/drama.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "sim/machine.h"
#include "sim/profiles.h"

namespace dramdig::rowhammer {
namespace {

hammer_config quick_test(double seconds = 60.0) {
  hammer_config cfg{};
  cfg.duration_seconds = seconds;
  return cfg;
}

TEST(Harness, GroundTruthMappingIsAlwaysDoubleSided) {
  const auto& spec = dram::machine_by_number(2);
  sim::machine machine(spec, 3, sim::timing_profile_for(spec));
  rng r(3);
  const auto stats = run_double_sided_test(machine, spec.mapping, r,
                                           quick_test());
  EXPECT_GT(stats.windows, 800u);
  EXPECT_EQ(stats.encode_failures, 0u);
  EXPECT_EQ(stats.true_double_sided, stats.windows);
  EXPECT_DOUBLE_EQ(stats.double_sided_fidelity(), 1.0);
  EXPECT_GT(stats.bit_flips, 50u);
}

TEST(Harness, FiveMinuteTestExecutesExpectedWindows) {
  const auto& spec = dram::machine_by_number(1);
  sim::machine machine(spec, 4, sim::timing_profile_for(spec));
  rng r(4);
  const auto stats = run_double_sided_test(machine, spec.mapping, r);
  // 300 s / 64.3 ms per refresh-window hammer.
  EXPECT_NEAR(static_cast<double>(stats.windows), 300.0 / 0.0643, 80.0);
}

TEST(Harness, WrongRowBitsHarvestAlmostNothing) {
  // Off-by-one row hypothesis (the DRAMA failure mode on No.2): "row +- 1"
  // toggles a bank bit instead, so pairs land in different banks.
  const auto& spec = dram::machine_by_number(2);
  std::vector<unsigned> rows{17};  // bit 17 is really a pure bank bit
  for (unsigned b = 18; b <= 32; ++b) rows.push_back(b);
  std::vector<unsigned> cols = spec.mapping.column_bits();
  // Keep the hypothesis bijective: 33 bits = 16 rows + 13 cols + 4
  // functions over the remaining pure bits {7, 14, 15, 16}.
  const std::vector<std::uint64_t> funcs{
      1ull << 7, (1ull << 14) | (1ull << 18), (1ull << 15) | (1ull << 19),
      (1ull << 16) | (1ull << 20)};
  const dram::address_mapping wrong(funcs, rows, cols, 33);
  ASSERT_TRUE(wrong.is_bijective());

  sim::machine machine(spec, 5, sim::timing_profile_for(spec));
  rng r(5);
  const auto stats = run_double_sided_test(machine, wrong, r, quick_test());
  EXPECT_LT(stats.double_sided_fidelity(), 0.2);

  sim::machine oracle_machine(spec, 5, sim::timing_profile_for(spec));
  rng r2(5);
  const auto oracle =
      run_double_sided_test(oracle_machine, spec.mapping, r2, quick_test());
  EXPECT_LT(stats.bit_flips * 4, oracle.bit_flips + 8);
}

TEST(Harness, SingleSidedModeYieldsFarFewerFlips) {
  const auto& spec = dram::machine_by_number(2);
  sim::machine ds_machine(spec, 9, sim::timing_profile_for(spec));
  sim::machine ss_machine(spec, 9, sim::timing_profile_for(spec));
  rng r1(9), r2(9);
  hammer_config ds_cfg = quick_test();
  hammer_config ss_cfg = quick_test();
  ss_cfg.mode = hammer_mode::single_sided;
  const auto ds = run_double_sided_test(ds_machine, spec.mapping, r1, ds_cfg);
  const auto ss = run_double_sided_test(ss_machine, spec.mapping, r2, ss_cfg);
  // Single-sided pairs still conflict (SBDR) but never sandwich.
  EXPECT_GT(ss.true_sbdr, ss.windows * 9 / 10);
  EXPECT_EQ(ss.true_double_sided, 0u);
  EXPECT_GT(ds.bit_flips, 3 * ss.bit_flips);
}

TEST(Harness, FlipCountsScaleWithVulnerability) {
  auto flips_on = [](int machine_no) {
    const auto& spec = dram::machine_by_number(machine_no);
    sim::machine machine(spec, 6, sim::timing_profile_for(spec));
    rng r(6);
    return run_double_sided_test(machine, spec.mapping, r, quick_test())
        .bit_flips;
  };
  const auto no2 = flips_on(2);
  const auto no1 = flips_on(1);
  const auto no5 = flips_on(5);
  EXPECT_GT(no2, no1);
  EXPECT_GT(no1, no5);
}

TEST(Harness, RepeatedTestsAreIndependent) {
  // reset_flips between tests: two identical tests yield similar counts
  // (same weak cells, fresh flip state).
  const auto& spec = dram::machine_by_number(2);
  sim::machine machine(spec, 7, sim::timing_profile_for(spec));
  rng r1(100), r2(100);
  const auto a = run_double_sided_test(machine, spec.mapping, r1,
                                       quick_test(30));
  const auto b = run_double_sided_test(machine, spec.mapping, r2,
                                       quick_test(30));
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_NEAR(static_cast<double>(a.bit_flips),
              static_cast<double>(b.bit_flips),
              static_cast<double>(a.bit_flips) * 0.5 + 8);
}

TEST(Harness, EncodeFailuresAreCountedAndCharged) {
  // A deliberately non-bijective hypothesis: bank function over row bits
  // only, so most (bank,row) coordinates are unreachable.
  const auto& spec = dram::machine_by_number(4);
  std::vector<unsigned> rows;
  for (unsigned b = 17; b <= 31; ++b) rows.push_back(b);
  std::vector<unsigned> cols;
  for (unsigned b = 0; b <= 12; ++b) cols.push_back(b);
  const dram::address_mapping degenerate(
      {(1ull << 20) | (1ull << 21), (1ull << 13) | (1ull << 16),
       (1ull << 14) | (1ull << 17), (1ull << 15)},
      rows, cols, 32);
  ASSERT_FALSE(degenerate.is_bijective());

  sim::machine machine(spec, 8, sim::timing_profile_for(spec));
  rng r(8);
  const auto stats =
      run_double_sided_test(machine, degenerate, r, quick_test(30));
  EXPECT_GT(stats.encode_failures, 0u);
  EXPECT_GT(stats.windows, 300u);  // time still passes while it flails
}

TEST(Harness, DramaDerivedMappingUnderperformsOnNo2) {
  // The Table III mechanism, in miniature: a DRAMA run on the mobile No.2
  // is hammered against a DRAMDig-grade (ground truth) mapping.
  const auto& spec = dram::machine_by_number(2);
  core::environment env(spec, 21);
  baselines::drama_config cfg{};
  cfg.pool_size = 2000;
  cfg.calibration_pairs = 300;
  cfg.max_trials = 4;
  baselines::drama_tool drama(env, cfg);
  const auto drama_report = drama.run();

  rng r(21);
  const auto truth_stats = run_double_sided_test(env.mach(), spec.mapping, r,
                                                 quick_test());
  if (drama_report.mapping) {
    rng r2(21);
    const auto drama_stats = run_double_sided_test(
        env.mach(), *drama_report.mapping, r2, quick_test());
    // At best DRAMA ties the oracle (sampling noise aside); a wrong trial
    // output lands far below it.
    EXPECT_LE(static_cast<double>(drama_stats.bit_flips),
              static_cast<double>(truth_stats.bit_flips) * 1.3 + 10);
  }
}

}  // namespace
}  // namespace dramdig::rowhammer

// The persistent fingerprint -> mapping store: JSON round-trips, exact and
// geometry lookups, upserts, and the degradation contract — a corrupted or
// truncated store file must cost a cold run (empty store + logged warning),
// never a crash.
#include "store/mapping_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "core/environment.h"
#include "dram/presets.h"
#include "store/verify.h"
#include "sysinfo/system_info.h"
#include "util/gf2.h"
#include "util/json.h"

namespace dramdig::store {
namespace {

/// A unique temp path per test; removed on destruction.
class temp_path {
 public:
  explicit temp_path(const std::string& name)
      : path_(testing::TempDir() + "dramdig_store_" + name + ".json") {
    std::remove(path_.c_str());
  }
  ~temp_path() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// A store entry derived from a paper machine's ground truth (as if a cold
/// recovery had just produced it).
store_entry entry_for(int machine_number, std::uint64_t seed = 42) {
  const dram::machine_spec& m = dram::machine_by_number(machine_number);
  store_entry e;
  e.fingerprint = sysinfo::fingerprint(m);
  e.bank_functions = m.mapping.bank_functions();
  e.row_bits = m.mapping.row_bits();
  e.column_bits = m.mapping.column_bits();
  e.address_bits = m.mapping.address_bits();
  e.function_span = gf2::row_echelon(e.bank_functions);
  e.pool_size = 4096;
  e.bank_count = m.mapping.bank_count();
  e.threshold_ns = 250.5;
  e.history.push_back({"recovered", seed, 2348});
  e.evidence_digest = e.compute_evidence_digest();
  return e;
}

/// Rewrite a saved v2 document as its v1 twin: version 1, no bank_count /
/// threshold_ns evidence keys (the exact shape the v1 writer emitted).
std::string as_v1_document(std::string doc) {
  const std::size_t v = doc.find("\"version\": 2");
  EXPECT_NE(v, std::string::npos);
  doc.replace(v + 11, 1, "1");
  while (true) {
    const std::size_t bc = doc.find("\"bank_count\"");
    if (bc == std::string::npos) break;
    const std::size_t comma = doc.rfind(',', bc);
    std::size_t end = doc.find("\"threshold_ns\"", bc);
    end = doc.find('\n', end);
    doc.erase(comma, end - comma);
  }
  return doc;
}

TEST(MappingStore, StartsEmptyInMemory) {
  const mapping_store store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.path().empty());
  EXPECT_TRUE(store.load_warning().empty());
  EXPECT_FALSE(
      store.find_exact(sysinfo::fingerprint(dram::machine_by_number(1))));
}

TEST(MappingStore, PutFindExact) {
  mapping_store store;
  store.put(entry_for(1));
  store.put(entry_for(6));
  EXPECT_EQ(store.size(), 2u);
  const auto hit =
      store.find_exact(sysinfo::fingerprint(dram::machine_by_number(1)));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->bank_functions,
            dram::machine_by_number(1).mapping.bank_functions());
  EXPECT_EQ(hit->history.size(), 1u);
  EXPECT_EQ(hit->history[0].kind, "recovered");
  EXPECT_FALSE(
      store.find_exact(sysinfo::fingerprint(dram::machine_by_number(2))));
}

TEST(MappingStore, UpsertOverwritesSameFingerprint) {
  mapping_store store;
  store.put(entry_for(1, 42));
  store_entry updated = entry_for(1, 43);
  updated.history.push_back({"verified", 43, 700});
  store.put(updated);
  EXPECT_EQ(store.size(), 1u);
  const auto hit =
      store.find_exact(sysinfo::fingerprint(dram::machine_by_number(1)));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->history.size(), 2u);
  EXPECT_EQ(hit->history[1].kind, "verified");
}

TEST(MappingStore, FindGeometryMatchesSiblingNotSelf) {
  mapping_store store;
  store.put(entry_for(1));
  // Same board, different CPU bin: geometry hit, not an exact hit.
  dram::machine_spec sibling = dram::machine_by_number(1);
  sibling.cpu_model = "i5-2500";
  const auto fp = sysinfo::fingerprint(sibling);
  EXPECT_FALSE(store.find_exact(fp));
  const auto near = store.find_geometry(fp);
  ASSERT_TRUE(near);
  EXPECT_EQ(near->fingerprint.cpu_model, "i5-2400");
  // The entry's own fingerprint is an exact twin, never a geometry hit.
  EXPECT_FALSE(
      store.find_geometry(sysinfo::fingerprint(dram::machine_by_number(1))));
}

TEST(MappingStore, RoundTripsThroughDisk) {
  temp_path path("roundtrip");
  {
    mapping_store store(path.str());
    EXPECT_TRUE(store.load_warning().empty());  // absent file = cold, no fuss
    for (int n : {1, 5, 6}) store.put(entry_for(n));
    store.save();
  }
  mapping_store reloaded(path.str());
  EXPECT_TRUE(reloaded.load_warning().empty());
  ASSERT_EQ(reloaded.size(), 3u);
  for (int n : {1, 5, 6}) {
    const dram::machine_spec& m = dram::machine_by_number(n);
    const auto hit = reloaded.find_exact(sysinfo::fingerprint(m));
    ASSERT_TRUE(hit) << m.label();
    EXPECT_EQ(hit->bank_functions, m.mapping.bank_functions());
    EXPECT_EQ(hit->row_bits, m.mapping.row_bits());
    EXPECT_EQ(hit->column_bits, m.mapping.column_bits());
    EXPECT_EQ(hit->address_bits, m.mapping.address_bits());
    EXPECT_EQ(hit->pool_size, 4096u);
    EXPECT_EQ(hit->bank_count, m.mapping.bank_count());
    EXPECT_EQ(hit->threshold_ns, 250.5);
    EXPECT_EQ(hit->evidence_digest, hit->compute_evidence_digest());
    ASSERT_EQ(hit->history.size(), 1u);
    EXPECT_EQ(hit->history[0].measurements, 2348u);
    // The reloaded mapping reconstructs as a valid hypothesis equal to
    // the one stored.
    EXPECT_TRUE(hit->mapping().equivalent_to(m.mapping));
  }
}

TEST(MappingStore, SerializedFormIsStableAcrossReload) {
  temp_path path("stable");
  mapping_store store(path.str());
  store.put(entry_for(2));
  store.save();
  const std::string first = store.to_json();
  const mapping_store reloaded(path.str());
  EXPECT_EQ(reloaded.to_json(), first);
}

TEST(MappingStore, TruncatedFileDegradesToColdWithWarning) {
  temp_path path("truncated");
  {
    mapping_store store(path.str());
    store.put(entry_for(1));
    store.save();
  }
  const std::string full = read_file(path.str());
  // Every byte-truncation of a saved store must load as empty-with-warning
  // (sampled stride keeps the test fast; the JSON prefix property is
  // exhaustively covered in tests/util/test_json.cpp).
  for (std::size_t len = 0; len < full.size(); len += 97) {
    write_file(path.str(), full.substr(0, len));
    const mapping_store store(path.str());
    EXPECT_EQ(store.size(), 0u) << "prefix length " << len;
    if (len > 0) {
      EXPECT_FALSE(store.load_warning().empty()) << "prefix length " << len;
    }
    // The broken file stays on disk untouched until the next save().
    EXPECT_EQ(read_file(path.str()).size(), len);
  }
}

TEST(MappingStore, V1DocumentLoadsAsSpanOnlyPriorWithoutWarning) {
  temp_path path("v1");
  {
    mapping_store store(path.str());
    store.put(entry_for(1));
    store.save();
  }
  // A store written before the evidence schema: version 1, an evidence
  // block of only {digest, pool_size}. It must load silently — migration
  // is not a degradation — with the v2 evidence fields reading as "no
  // claim", i.e. exactly the span-only warm prior v1 always provided.
  write_file(path.str(), as_v1_document(read_file(path.str())));
  const mapping_store store(path.str());
  EXPECT_TRUE(store.load_warning().empty());
  ASSERT_EQ(store.size(), 1u);
  const auto hit =
      store.find_exact(sysinfo::fingerprint(dram::machine_by_number(1)));
  ASSERT_TRUE(hit);
  EXPECT_FALSE(hit->function_span.empty());
  EXPECT_EQ(hit->pool_size, 4096u);
  EXPECT_EQ(hit->bank_count, 0u);
  EXPECT_EQ(hit->threshold_ns, 0.0);
  // The next save() upgrades the document in place to version 2.
  store.save();
  EXPECT_NE(read_file(path.str()).find("\"version\": 2"), std::string::npos);
}

TEST(MappingStore, V2WithTruncatedEvidenceBlockDegradesToV1Behavior) {
  temp_path path("v2partial");
  {
    mapping_store store(path.str());
    store.put(entry_for(1));
    store.save();
  }
  // A version-2 header whose evidence block lost its v2 keys (e.g. a
  // document assembled by an older writer, or hand-edited): the optional
  // keys read as absent and the entry behaves exactly like a v1 load.
  std::string doc = as_v1_document(read_file(path.str()));
  const std::size_t v = doc.find("\"version\": 1");
  ASSERT_NE(v, std::string::npos);
  doc.replace(v + 11, 1, "2");
  write_file(path.str(), doc);
  const mapping_store store(path.str());
  EXPECT_TRUE(store.load_warning().empty());
  ASSERT_EQ(store.size(), 1u);
  const auto hit =
      store.find_exact(sysinfo::fingerprint(dram::machine_by_number(1)));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->bank_count, 0u);
  EXPECT_EQ(hit->threshold_ns, 0.0);
}

TEST(MappingStore, TruncatedV1FileDegradesToColdWithWarning) {
  temp_path path("truncated_v1");
  {
    mapping_store store(path.str());
    store.put(entry_for(1));
    store.save();
  }
  // The byte-truncation contract must hold for legacy documents too: any
  // prefix of a v1 store loads as empty-with-warning, never a crash and
  // never a partially-migrated entry.
  const std::string full = as_v1_document(read_file(path.str()));
  for (std::size_t len = 0; len < full.size(); len += 89) {
    write_file(path.str(), full.substr(0, len));
    const mapping_store store(path.str());
    EXPECT_EQ(store.size(), 0u) << "v1 prefix length " << len;
    if (len > 0) {
      EXPECT_FALSE(store.load_warning().empty()) << "v1 prefix length " << len;
    }
  }
}

TEST(MappingStore, GarbageFileDegradesToCold) {
  temp_path path("garbage");
  write_file(path.str(), "not json at all {{{");
  const mapping_store store(path.str());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.load_warning().empty());
}

TEST(MappingStore, WrongTagOrVersionDegradesToCold) {
  temp_path path("tag");
  write_file(path.str(),
             R"({"store": "something-else", "version": 1, "entries": []})");
  EXPECT_EQ(mapping_store(path.str()).size(), 0u);
  write_file(
      path.str(),
      R"({"store": "dramdig-mapping-store", "version": 999, "entries": []})");
  const mapping_store store(path.str());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.load_warning().empty());
}

TEST(MappingStore, TamperedHashDegradesToCold) {
  temp_path path("tampered");
  {
    mapping_store store(path.str());
    store.put(entry_for(1));
    store.save();
  }
  // Flip the stored fingerprint hash: the loader recomputes and must
  // refuse the whole file rather than trust a mislabeled entry.
  std::string doc = read_file(path.str());
  const std::string key = "\"hash\": ";
  const std::size_t at = doc.find(key);
  ASSERT_NE(at, std::string::npos);
  doc[at + key.size()] = doc[at + key.size()] == '1' ? '2' : '1';
  write_file(path.str(), doc);
  const mapping_store store(path.str());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.load_warning().empty());
}

TEST(MappingStore, SaveWithoutPathIsNoOp) {
  mapping_store store;
  store.put(entry_for(1));
  EXPECT_NO_THROW(store.save());
}

TEST(StoreVerify, ConfirmsTruthfulEntry) {
  const dram::machine_spec& m = dram::machine_by_number(1);
  core::environment env(m, 42);
  const verify_report report = verify_stored_mapping(env, entry_for(1));
  EXPECT_TRUE(report.verified) << report.failure_reason;
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_GT(report.positives_tested, 0u);
  EXPECT_GT(report.negatives_tested, 0u);
  EXPECT_GT(report.total_measurements, 0u);
}

TEST(StoreVerify, RefutesPoisonedMask) {
  const dram::machine_spec& m = dram::machine_by_number(1);
  store_entry poisoned = entry_for(1);
  // Replace one stored function with a wrong mask (a row bit pair the
  // real controller does not XOR into any bank bit).
  poisoned.bank_functions.back() = (1ull << 20) ^ (1ull << 24);
  poisoned.function_span = gf2::row_echelon(poisoned.bank_functions);
  core::environment env(m, 42);
  const verify_report report = verify_stored_mapping(env, poisoned);
  EXPECT_FALSE(report.verified);
  EXPECT_FALSE(report.failure_reason.empty());
}

TEST(StoreVerify, RefutesWrongRowBits) {
  const dram::machine_spec& m = dram::machine_by_number(1);
  store_entry wrong = entry_for(1);
  // Claim a column bit is a row bit: flipping it alone cannot change the
  // row, so the positive probes must catch the lie.
  wrong.row_bits = m.mapping.row_bits();
  wrong.column_bits = m.mapping.column_bits();
  std::swap(wrong.row_bits.front(), wrong.column_bits.back());
  std::sort(wrong.row_bits.begin(), wrong.row_bits.end());
  std::sort(wrong.column_bits.begin(), wrong.column_bits.end());
  core::environment env(m, 42);
  const verify_report report = verify_stored_mapping(env, wrong);
  EXPECT_FALSE(report.verified);
}

}  // namespace
}  // namespace dramdig::store

#include "dram/spec.h"

#include <gtest/gtest.h>

#include "util/expect.h"

namespace dramdig::dram {
namespace {

TEST(Spec, Ddr3EightBanks) {
  const chip_spec s = spec_for(ddr_generation::ddr3, 8);
  EXPECT_EQ(s.banks_per_rank, 8u);
  EXPECT_EQ(s.row_bytes, 8u * 1024);
  EXPECT_DOUBLE_EQ(s.refresh_interval_ms, 64.0);
}

TEST(Spec, Ddr4SixteenBanks) {
  const chip_spec s = spec_for(ddr_generation::ddr4, 16);
  EXPECT_EQ(s.banks_per_rank, 16u);
}

TEST(Spec, Ddr4X16EightBanks) {
  // Machine No.7: x16 DDR4 devices expose 8 banks.
  const chip_spec s = spec_for(ddr_generation::ddr4, 8);
  EXPECT_EQ(s.banks_per_rank, 8u);
}

TEST(Spec, Ddr3SixteenBanksRejected) {
  EXPECT_THROW((void)spec_for(ddr_generation::ddr3, 16), contract_violation);
}

TEST(Spec, OddBankCountRejected) {
  EXPECT_THROW((void)spec_for(ddr_generation::ddr4, 12), contract_violation);
}

TEST(Spec, ColumnBitsAre13ForEightKiBRows) {
  // 8 KiB rows => 13 byte-offset column bits — every row of Table II.
  EXPECT_EQ(expected_column_bits(spec_for(ddr_generation::ddr3, 8)), 13u);
  EXPECT_EQ(expected_column_bits(spec_for(ddr_generation::ddr4, 16)), 13u);
}

TEST(Spec, RowBitsMachineNo1) {
  // 8 GiB / (16 banks x 8 KiB rows) = 2^16 rows.
  const chip_spec s = spec_for(ddr_generation::ddr3, 8);
  EXPECT_EQ(expected_row_bits(s, 8ull << 30, 16), 16u);
}

TEST(Spec, RowBitsMachineNo6) {
  // 16 GiB / (64 banks x 8 KiB rows) = 2^15 rows.
  const chip_spec s = spec_for(ddr_generation::ddr4, 16);
  EXPECT_EQ(expected_row_bits(s, 16ull << 30, 64), 15u);
}

TEST(Spec, ToStringNames) {
  EXPECT_EQ(to_string(ddr_generation::ddr3), "DDR3");
  EXPECT_EQ(to_string(ddr_generation::ddr4), "DDR4");
}

}  // namespace
}  // namespace dramdig::dram

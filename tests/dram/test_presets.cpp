#include "dram/presets.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "util/bitops.h"
#include "util/rng.h"
#include "util/expect.h"
#include "util/gf2.h"

namespace dramdig::dram {
namespace {

TEST(Presets, NineMachinesInTableOrder) {
  const auto& ms = paper_machines();
  ASSERT_EQ(ms.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(ms[static_cast<std::size_t>(i)].number, i + 1);
  }
}

TEST(Presets, LookupByNumber) {
  EXPECT_EQ(machine_by_number(4).cpu_model, "i5-4210U");
  EXPECT_THROW((void)machine_by_number(10), contract_violation);
}

TEST(Presets, AllMappingsBijective) {
  for (const auto& m : paper_machines()) {
    EXPECT_TRUE(m.mapping.is_bijective()) << m.label();
  }
}

TEST(Presets, BankCountsMatchConfigQuadruple) {
  for (const auto& m : paper_machines()) {
    EXPECT_EQ(m.mapping.bank_count(), m.total_banks()) << m.label();
  }
}

TEST(Presets, MemoryAccounting) {
  // row bits + column bits + bank functions account for every address bit.
  for (const auto& m : paper_machines()) {
    EXPECT_EQ(m.mapping.row_bits().size() + m.mapping.column_bits().size() +
                  m.mapping.bank_functions().size(),
              log2_exact(m.memory_bytes))
        << m.label();
  }
}

TEST(Presets, TableIIGenerations) {
  for (const auto& m : paper_machines()) {
    const bool ddr4_expected = m.number >= 6;
    EXPECT_EQ(m.generation == ddr_generation::ddr4, ddr4_expected)
        << m.label();
  }
}

TEST(Presets, MachineNo1ExactTableRow) {
  const auto& m = machine_by_number(1);
  EXPECT_EQ(m.microarchitecture, "Sandy Bridge");
  EXPECT_EQ(m.memory_bytes, 8ull << 30);
  EXPECT_EQ(m.config_quadruple(), "(2, 1, 1, 8)");
  EXPECT_EQ(m.mapping.describe_functions(), "(6), (14,17), (15,18), (16,19)");
  EXPECT_EQ(describe_bit_ranges(m.mapping.row_bits()), "17-32");
  EXPECT_EQ(describe_bit_ranges(m.mapping.column_bits()), "0-5,7-13");
}

TEST(Presets, MachineNo2WideChannelFunction) {
  const auto& m = machine_by_number(2);
  const std::uint64_t wide = mask_of_bits({7, 8, 9, 12, 13, 18, 19});
  bool found = false;
  for (std::uint64_t f : m.mapping.bank_functions()) found |= f == wide;
  EXPECT_TRUE(found);
}

TEST(Presets, MachineNo5RowsExtendTo33) {
  // The documented Table II typo correction: 16 GiB needs rows up to 33.
  const auto& m = machine_by_number(5);
  EXPECT_EQ(describe_bit_ranges(m.mapping.row_bits()), "18-33");
  EXPECT_TRUE(m.mapping.is_bijective());
}

TEST(Presets, MachineNo6MatchesTableII) {
  const auto& m = machine_by_number(6);
  EXPECT_EQ(m.mapping.describe_functions(),
            "(7,14), (15,19), (16,20), (17,21), (18,22), (8,9,12,13,18,19)");
  EXPECT_EQ(describe_bit_ranges(m.mapping.row_bits()), "19-33");
  EXPECT_EQ(describe_bit_ranges(m.mapping.column_bits()), "0-7,9-13");
}

TEST(Presets, MachinesSixAndNineShareMapping) {
  EXPECT_TRUE(machine_by_number(6).mapping.equivalent_to(
      machine_by_number(9).mapping));
}

TEST(Presets, WidestFunctionRuleHoldsOnAllMachines) {
  // Empirical observation the fine-grained step relies on: when a strictly
  // widest function exists, its lowest bit is not a column bit.
  for (const auto& m : paper_machines()) {
    const auto& funcs = m.mapping.bank_functions();
    std::uint64_t widest = 0;
    int pop = 0;
    bool unique = false;
    for (std::uint64_t f : funcs) {
      const int p = std::popcount(f);
      if (p > pop) {
        pop = p;
        widest = f;
        unique = true;
      } else if (p == pop) {
        unique = false;
      }
    }
    if (!unique) continue;
    const unsigned lowest = bits_of_mask(widest).front();
    const auto& cols = m.mapping.column_bits();
    EXPECT_FALSE(std::binary_search(cols.begin(), cols.end(), lowest))
        << m.label();
  }
}

TEST(Presets, NoisyUnitsAreTheTwoOldMobiles) {
  for (const auto& m : paper_machines()) {
    const bool noisy = m.quality == timing_quality::noisy;
    EXPECT_EQ(noisy, m.number == 3 || m.number == 7) << m.label();
  }
}

TEST(Presets, VulnerabilityOrderingMatchesTableIII) {
  // No.2 floods, No.1 moderate, No.5 barely flips.
  const auto& v1 = machine_by_number(1).vulnerability;
  const auto& v2 = machine_by_number(2).vulnerability;
  const auto& v5 = machine_by_number(5).vulnerability;
  EXPECT_GT(v2.double_sided_flip_chance, v1.double_sided_flip_chance);
  EXPECT_GT(v1.double_sided_flip_chance, v5.double_sided_flip_chance);
  // Double-sided pressure dominates single-sided on every machine.
  for (const auto& m : paper_machines()) {
    EXPECT_GT(m.vulnerability.double_sided_flip_chance,
              5 * m.vulnerability.single_sided_flip_chance)
        << m.label();
  }
}

TEST(Presets, DramDescriptionFormat) {
  EXPECT_EQ(machine_by_number(1).dram_description(), "DDR3, 8GiB");
  EXPECT_EQ(machine_by_number(6).dram_description(), "DDR4, 16GiB");
}

TEST(Presets, DecodeFullCoversHierarchy) {
  // Every hierarchy coordinate stays within the configuration quadruple,
  // and the decomposition is a bijection on the flat bank index.
  rng r(406);
  for (const auto& m : paper_machines()) {
    std::set<std::tuple<unsigned, unsigned, unsigned, unsigned>> seen;
    for (std::uint64_t flat = 0; flat < m.total_banks(); ++flat) {
      // Build an address with this flat bank.
      const auto pa = m.mapping.encode(flat, 1, 0);
      ASSERT_TRUE(pa.has_value());
      const dram_address a = m.decode_full(*pa);
      EXPECT_LT(a.channel, m.channels) << m.label();
      EXPECT_LT(a.dimm, m.dimms_per_channel) << m.label();
      EXPECT_LT(a.rank, m.ranks_per_dimm) << m.label();
      EXPECT_LT(a.bank, m.banks_per_rank) << m.label();
      EXPECT_EQ(a.flat_bank, flat);
      EXPECT_TRUE(
          seen.emplace(a.channel, a.dimm, a.rank, a.bank).second)
          << m.label() << " duplicate hierarchy coordinate";
    }
    EXPECT_EQ(seen.size(), m.total_banks()) << m.label();
  }
}

TEST(Presets, DecodeFullKeepsRowAndColumn) {
  const auto& m = machine_by_number(2);
  const auto pa = m.mapping.encode(5, 123, 456);
  ASSERT_TRUE(pa.has_value());
  const dram_address a = m.decode_full(*pa);
  EXPECT_EQ(a.row, 123u);
  EXPECT_EQ(a.column, 456u);
}

TEST(RandomMachine, ProducesValidMachines) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const unsigned bits = 30 + seed % 5;
    const unsigned funcs = 3 + seed % 4;
    const machine_spec m = random_machine(bits, funcs, seed);
    EXPECT_TRUE(m.mapping.is_bijective()) << "seed " << seed;
    EXPECT_EQ(m.mapping.bank_count(), m.total_banks()) << "seed " << seed;
    EXPECT_EQ(m.mapping.bank_functions().size(), funcs);
    EXPECT_EQ(m.memory_bytes, 1ull << bits);
  }
}

TEST(RandomMachine, DeterministicPerSeed) {
  const machine_spec a = random_machine(32, 4, 77);
  const machine_spec b = random_machine(32, 4, 77);
  EXPECT_TRUE(a.mapping.equivalent_to(b.mapping));
}

TEST(RandomMachine, RejectsBadArguments) {
  EXPECT_THROW((void)random_machine(20, 4, 1), contract_violation);
  EXPECT_THROW((void)random_machine(32, 9, 1), contract_violation);
}

}  // namespace
}  // namespace dramdig::dram

#include "dram/mapping.h"

#include <gtest/gtest.h>

#include <set>

#include "dram/presets.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace dramdig::dram {
namespace {

std::uint64_t fn(std::initializer_list<unsigned> bits) {
  std::uint64_t m = 0;
  for (unsigned b : bits) m |= std::uint64_t{1} << b;
  return m;
}

std::vector<unsigned> range(unsigned lo, unsigned hi) {
  std::vector<unsigned> v;
  for (unsigned b = lo; b <= hi; ++b) v.push_back(b);
  return v;
}

/// A small, fully checkable mapping: 16 MiB (24 bits), 4 banks, rows on
/// top, 13 column bits.
address_mapping tiny_mapping() {
  return address_mapping({fn({13, 16}), fn({14, 17})}, range(15, 23),
                         range(0, 12), 24);
}

TEST(Mapping, BankOfComputesXor) {
  const auto m = tiny_mapping();
  EXPECT_EQ(m.bank_of(0), 0u);
  EXPECT_EQ(m.bank_of(1ull << 13), 0b01u);
  EXPECT_EQ(m.bank_of(1ull << 16), 0b01u);
  EXPECT_EQ(m.bank_of((1ull << 13) | (1ull << 16)), 0b00u);
  EXPECT_EQ(m.bank_of(1ull << 14), 0b10u);
}

TEST(Mapping, RowAndColumnExtraction) {
  const auto m = tiny_mapping();
  const std::uint64_t pa = (3ull << 15) | 0x5a;
  EXPECT_EQ(m.row_of(pa), 3u);
  EXPECT_EQ(m.column_of(pa), 0x5au);
}

TEST(Mapping, DecodeBundlesFields) {
  const auto m = tiny_mapping();
  const std::uint64_t pa = (1ull << 15) | (1ull << 13) | 7;
  const dram_address a = m.decode(pa);
  EXPECT_EQ(a.row, 1u);
  EXPECT_EQ(a.column, 7u);
  EXPECT_EQ(a.flat_bank, 1u);
}

TEST(Mapping, PureBankBits) {
  const auto m = tiny_mapping();
  EXPECT_EQ(m.pure_bank_bits(), (std::vector<unsigned>{13, 14}));
}

TEST(Mapping, TinyMappingIsBijective) {
  EXPECT_TRUE(tiny_mapping().is_bijective());
}

TEST(Mapping, NonBijectiveWhenFunctionDependsOnlyOnRowCols) {
  // A function using only row/column bits adds no bank information.
  const address_mapping bad({fn({15, 16}), fn({13, 14})}, range(15, 23),
                            range(0, 12), 24);
  EXPECT_FALSE(bad.is_bijective());
}

TEST(Mapping, NonBijectiveWhenCountsWrong) {
  // 2 functions but 3 unclassified bits: under-determined.
  const address_mapping bad({fn({13, 16}), fn({14, 17})}, range(16, 23),
                            range(0, 12), 24);
  EXPECT_FALSE(bad.is_bijective());
}

TEST(Mapping, NonBijectiveOnRowColumnOverlap) {
  const address_mapping bad({fn({13, 16}), fn({14, 17})}, range(12, 23),
                            range(0, 12), 24);
  EXPECT_FALSE(bad.is_bijective());
}

TEST(Mapping, EncodeInvertsDecodeExhaustivelyOnTinyMap) {
  // True bijectivity check over a 1 MiB slice of the space.
  const auto m = tiny_mapping();
  for (std::uint64_t pa = 0; pa < (1ull << 20); pa += 4097) {
    const dram_address a = m.decode(pa);
    const auto back = m.encode(a.flat_bank, a.row, a.column);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, pa);
  }
}

TEST(Mapping, EncodeRejectsOutOfRangeCoordinates) {
  const auto m = tiny_mapping();
  EXPECT_FALSE(m.encode(4, 0, 0).has_value());       // bank too big
  EXPECT_FALSE(m.encode(0, 1u << 9, 0).has_value()); // row too big
  EXPECT_FALSE(m.encode(0, 0, 1u << 13).has_value());
}

TEST(Mapping, EncodeOnNonBijectiveHypothesisFailsGracefully) {
  const address_mapping bad({fn({15, 16}), fn({13, 14})}, range(15, 23),
                            range(0, 12), 24);
  // Bank bit 0 is a pure row function: unreachable for fixed row.
  std::size_t failures = 0;
  for (std::uint64_t bank = 0; bank < 4; ++bank) {
    if (!bad.encode(bank, 0, 0).has_value()) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(Mapping, EquivalenceUpToBasisChange) {
  const address_mapping a({fn({13, 16}), fn({14, 17})}, range(15, 23),
                          range(0, 12), 24);
  const address_mapping b({fn({13, 16}), fn({13, 14, 16, 17})}, range(15, 23),
                          range(0, 12), 24);
  EXPECT_TRUE(a.equivalent_to(b));
  EXPECT_TRUE(b.equivalent_to(a));
}

TEST(Mapping, NotEquivalentWhenRowBitsDiffer) {
  const address_mapping a({fn({13, 16}), fn({14, 17})}, range(15, 23),
                          range(0, 12), 24);
  // Same function span, but bit 15 claimed as a column instead of a row.
  std::vector<unsigned> cols = range(0, 12);
  cols.push_back(15);
  const address_mapping b({fn({13, 16}), fn({14, 17})}, range(16, 23), cols,
                          24);
  EXPECT_FALSE(a.equivalent_to(b));
}

TEST(Mapping, NotEquivalentWhenSpanDiffers) {
  const address_mapping a({fn({13, 16}), fn({14, 17})}, range(15, 23),
                          range(0, 12), 24);
  const address_mapping b({fn({13, 17}), fn({14, 16})}, range(15, 23),
                          range(0, 12), 24);
  EXPECT_FALSE(a.equivalent_to(b));
}

TEST(Mapping, DescribeFunctions) {
  EXPECT_EQ(describe_function(fn({14, 17})), "(14,17)");
  EXPECT_EQ(describe_function(fn({6})), "(6)");
}

TEST(Mapping, DescribeBitRanges) {
  EXPECT_EQ(describe_bit_ranges({0, 1, 2, 3, 4, 5, 7, 8}), "0-5,7-8");
  EXPECT_EQ(describe_bit_ranges({17}), "17");
  EXPECT_EQ(describe_bit_ranges({}), "-");
}

TEST(MappingProperty, EncodeDecodeRoundTripOnPaperMachines) {
  rng r(404);
  for (const machine_spec& m : paper_machines()) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t pa =
          r.below(m.memory_bytes) & ~std::uint64_t{63};
      const dram_address a = m.mapping.decode(pa);
      const auto back = m.mapping.encode(a.flat_bank, a.row, a.column);
      ASSERT_TRUE(back.has_value()) << m.label();
      EXPECT_EQ(*back, pa) << m.label();
    }
  }
}

TEST(MappingProperty, BankBalanceOnPaperMachines) {
  // A bijective linear mapping distributes addresses uniformly over banks.
  rng r(405);
  for (const machine_spec& m : paper_machines()) {
    std::vector<unsigned> hits(m.total_banks(), 0);
    const int samples = 4000;
    for (int i = 0; i < samples; ++i) {
      hits[m.mapping.bank_of(r.below(m.memory_bytes))]++;
    }
    const double expect_per_bank =
        static_cast<double>(samples) / m.total_banks();
    for (unsigned b = 0; b < m.total_banks(); ++b) {
      EXPECT_GT(hits[b], expect_per_bank * 0.5) << m.label() << " bank " << b;
      EXPECT_LT(hits[b], expect_per_bank * 1.6) << m.label() << " bank " << b;
    }
  }
}

}  // namespace
}  // namespace dramdig::dram

// The mapping_service determinism contract: batch results are bit-identical
// to direct sequential tool calls on any worker count and under any
// submission order; observers see ordered per-job events; cancellation
// stops pending jobs without touching completed results.
#include "api/mapping_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/drama.h"
#include "baselines/xiao.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "store/mapping_store.h"
#include "sysinfo/system_info.h"
#include "util/expect.h"
#include "util/gf2.h"
#include "util/json.h"
#include "util/log.h"

namespace dramdig::api {
namespace {

baselines::drama_config fast_drama() {
  baselines::drama_config cfg{};
  cfg.pool_size = 2000;
  cfg.calibration_pairs = 300;
  cfg.max_trials = 6;
  return cfg;
}

/// Everything deterministic about an outcome (wall time excluded) in one
/// comparable string: the JSON already serializes the full result schema.
std::string outcome_key(const job_outcome& outcome) {
  return std::to_string(static_cast<int>(outcome.state)) + "|" +
         outcome.result.to_json_string();
}

/// The reference batch for the determinism tests: DRAMDig on three paper
/// machines plus one DRAMA and one Xiao job, mixed seeds.
std::vector<job_spec> reference_jobs() {
  std::vector<job_spec> jobs;
  for (int machine : {1, 4, 7}) {
    jobs.push_back({dram::machine_by_number(machine), "dramdig", {},
                    static_cast<std::uint64_t>(40 + machine)});
  }
  jobs.push_back({dram::machine_by_number(1), "drama",
                  tool_options{}.with_drama(fast_drama()), 5});
  jobs.push_back({dram::machine_by_number(4), "xiao", {}, 7});
  return jobs;
}

TEST(MappingService, ResultsBitIdenticalAcrossThreadCounts) {
  const std::vector<job_spec> jobs = reference_jobs();
  const auto baseline = mapping_service({.threads = 1}).run(jobs);
  for (unsigned threads : {2u, 8u}) {
    const auto outcomes = mapping_service({.threads = threads}).run(jobs);
    ASSERT_EQ(outcomes.size(), baseline.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(outcome_key(outcomes[i]), outcome_key(baseline[i]))
          << "job " << i << " diverged at threads=" << threads;
    }
  }
}

TEST(MappingService, ResultsInvariantUnderShuffledSubmissionOrder) {
  const std::vector<job_spec> jobs = reference_jobs();
  const auto baseline = mapping_service({.threads = 4}).run(jobs);
  // A deterministic permutation (reversal) keeps the test reproducible.
  std::vector<job_spec> shuffled(jobs.rbegin(), jobs.rend());
  const auto outcomes = mapping_service({.threads = 4}).run(shuffled);
  ASSERT_EQ(outcomes.size(), baseline.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(outcome_key(outcomes[jobs.size() - 1 - i]),
              outcome_key(baseline[i]))
        << "job " << i << " depends on its batch position";
  }
}

TEST(MappingService, MatchesDirectSequentialToolCalls) {
  // The acceptance pin: service output must be bit-identical to calling
  // each concrete tool directly, for all three tools.
  const std::vector<job_spec> jobs = reference_jobs();
  const auto outcomes = mapping_service({.threads = 8}).run(jobs);

  for (std::size_t i = 0; i < 3; ++i) {
    core::environment env(jobs[i].machine, jobs[i].seed);
    const core::dramdig_report direct = core::dramdig_tool(env).run();
    const tool_result& r = outcomes[i].result;
    ASSERT_EQ(outcomes[i].state, job_state::completed);
    EXPECT_EQ(r.success, direct.success);
    ASSERT_TRUE(direct.mapping && r.mapping);
    EXPECT_EQ(r.mapping->describe(), direct.mapping->describe());
    EXPECT_EQ(r.measurement_count, direct.total_measurements);
    EXPECT_EQ(r.measurements_saved, direct.measurements_saved);
    EXPECT_EQ(r.virtual_seconds, direct.total_seconds);
    EXPECT_EQ(r.access_count, env.mach().controller().access_count());
  }
  {
    core::environment env(jobs[3].machine, jobs[3].seed);
    const baselines::drama_report direct =
        baselines::drama_tool(env, fast_drama()).run();
    const tool_result& r = outcomes[3].result;
    EXPECT_EQ(r.success, direct.completed);
    EXPECT_EQ(r.measurement_count, direct.total_measurements);
    EXPECT_EQ(r.virtual_seconds, direct.total_seconds);
    ASSERT_TRUE(direct.mapping && r.mapping);
    EXPECT_EQ(r.mapping->describe(), direct.mapping->describe());
  }
  {
    core::environment env(jobs[4].machine, jobs[4].seed);
    const baselines::xiao_report direct = baselines::xiao_tool(env).run();
    const tool_result& r = outcomes[4].result;
    EXPECT_EQ(r.success, direct.success);
    EXPECT_EQ(r.measurement_count, direct.total_measurements);
    EXPECT_EQ(r.virtual_seconds, direct.total_seconds);
    ASSERT_TRUE(direct.mapping && r.mapping);
    EXPECT_EQ(r.mapping->describe(), direct.mapping->describe());
  }
}

TEST(MappingService, UnknownToolFailsTheBatchUpFront) {
  std::vector<job_spec> jobs{
      {dram::machine_by_number(4), "seaborn", {}, 1}};
  EXPECT_THROW((void)mapping_service().run(jobs), contract_violation);
}

TEST(MappingService, JobExceptionMarksOnlyThatJobFailed) {
  // A malformed machine spec trips a contract inside the worker; the job
  // fails, the batch survives, and the healthy job is untouched.
  dram::machine_spec broken = dram::machine_by_number(4);
  broken.memory_bytes = 0;
  std::vector<job_spec> jobs{{broken, "dramdig", {}, 1},
                             {dram::machine_by_number(4), "dramdig", {}, 42}};
  const auto outcomes = mapping_service({.threads = 2}).run(jobs);
  EXPECT_EQ(outcomes[0].state, job_state::failed);
  EXPECT_FALSE(outcomes[0].result.failure_reason.empty());
  EXPECT_EQ(outcomes[1].state, job_state::completed);
  EXPECT_TRUE(outcomes[1].result.verified);
}

/// Records the event stream for one job and cancels after the first
/// completion when armed.
class recording_observer final : public progress_observer {
 public:
  explicit recording_observer(cancellation_token* cancel_after_first = nullptr)
      : cancel_(cancel_after_first) {}

  void on_job_start(std::size_t index, const job_spec&) override {
    events.push_back("start:" + std::to_string(index));
  }
  void on_job_phase(std::size_t index, std::string_view phase,
                    const core::phase_stats& delta) override {
    events.push_back("phase:" + std::to_string(index) + ":" +
                     std::string(phase));
    measurements += delta.measurements;
  }
  void on_job_done(std::size_t index, const job_outcome& outcome) override {
    events.push_back("done:" + std::to_string(index) + ":" +
                     std::to_string(static_cast<int>(outcome.state)));
    if (cancel_ != nullptr) cancel_->cancel();
  }

  std::vector<std::string> events;
  std::uint64_t measurements = 0;

 private:
  cancellation_token* cancel_;
};

TEST(MappingService, ObserverSeesOrderedPhaseEvents) {
  std::vector<job_spec> jobs{
      {dram::machine_by_number(4), "dramdig", {}, 42}};
  recording_observer observer;
  const auto outcomes = mapping_service({.threads = 1}).run(jobs, &observer);
  ASSERT_GE(observer.events.size(), 3u);
  EXPECT_EQ(observer.events.front(), "start:0");
  EXPECT_EQ(observer.events.back(), "done:0:2");  // 2 = completed
  // The pipeline phases stream through (replacing the old ad-hoc timing
  // log): at least calibration, coarse, selection, partition, fine.
  for (const char* phase :
       {"phase:0:calibration", "phase:0:coarse", "phase:0:selection",
        "phase:0:partition", "phase:0:fine"}) {
    EXPECT_NE(std::find(observer.events.begin(), observer.events.end(), phase),
              observer.events.end())
        << phase;
  }
  // Phase deltas add up to the run's metered total.
  EXPECT_EQ(observer.measurements, outcomes[0].result.measurement_count);
}

TEST(MappingService, DramaStreamsPerTrialEvents) {
  // DRAMA used to emit one terminal event; a driver watching a job now
  // sees every trial land, and the trial deltas sum to the exact totals.
  std::vector<job_spec> jobs{{dram::machine_by_number(1), "drama",
                              tool_options{}.with_drama(fast_drama()), 5}};
  recording_observer observer;
  const auto outcomes = mapping_service({.threads = 1}).run(jobs, &observer);
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  const auto trial_events =
      std::count(observer.events.begin(), observer.events.end(),
                 "phase:0:trial");
  EXPECT_GE(trial_events, 2);  // agreement needs two valid trials minimum
  EXPECT_EQ(observer.measurements, outcomes[0].result.measurement_count);
}

TEST(MappingService, DramDigStreamsDesignedProbeRounds) {
  // The bit-probe engine's rounds ride the same observer stream; their
  // cost is metered by the owning coarse/fine phase events, so the
  // measurement sum stays exact (checked by ObserverSeesOrderedPhaseEvents).
  std::vector<job_spec> jobs{{dram::machine_by_number(4), "dramdig", {}, 42}};
  recording_observer observer;
  const auto outcomes = mapping_service({.threads = 1}).run(jobs, &observer);
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  const auto row_rounds =
      std::count(observer.events.begin(), observer.events.end(),
                 "phase:0:probe:coarse.row");
  const auto col_rounds =
      std::count(observer.events.begin(), observer.events.end(),
                 "phase:0:probe:coarse.col");
  EXPECT_GE(row_rounds, 4);  // majority of 7 needs at least 4 rounds
  EXPECT_LE(row_rounds, 7);
  EXPECT_GE(col_rounds, 4);
  EXPECT_GT(outcomes[0].result.probe_rounds.votes_saved, 0u);
}

TEST(MappingService, XiaoStreamsPerStageEvents) {
  // Xiao used to emit one terminal "scan" event after the fact; a driver
  // watching a job now sees each stage land as it completes, and the
  // stage deltas sum to the exact metered totals.
  std::vector<job_spec> jobs{{dram::machine_by_number(4), "xiao", {}, 7}};
  recording_observer observer;
  const auto outcomes = mapping_service({.threads = 1}).run(jobs, &observer);
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  for (const char* phase : {"phase:0:calibration", "phase:0:template"}) {
    EXPECT_NE(std::find(observer.events.begin(), observer.events.end(), phase),
              observer.events.end())
        << phase;
  }
  EXPECT_EQ(observer.measurements, outcomes[0].result.measurement_count);
}

TEST(MappingService, CancellationAbortsRunningXiaoAtScanBoundary) {
  // Machine No.6 stalls the stride scan and charges a 30-minute budget.
  // The observer flips the token as the row scan lands; the bound abort
  // predicate stops the running job at the next stage boundary.
  class stage_cancelling_observer final : public progress_observer {
   public:
    explicit stage_cancelling_observer(cancellation_token* cancel)
        : cancel_(cancel) {}
    void on_job_phase(std::size_t, std::string_view phase,
                      const core::phase_stats&) override {
      if (phase == "row-scan") cancel_->cancel();
    }

   private:
    cancellation_token* cancel_;
  };

  std::vector<job_spec> jobs{{dram::machine_by_number(6), "xiao", {}, 7}};
  cancellation_token cancel;
  stage_cancelling_observer observer(&cancel);
  const auto outcomes =
      mapping_service({.threads = 1}).run(jobs, &observer, &cancel);
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  EXPECT_EQ(outcomes[0].result.outcome, "aborted");
  EXPECT_FALSE(outcomes[0].result.success);
  // Far below the stall budget an uncancelled run would charge.
  EXPECT_LT(outcomes[0].result.virtual_seconds, 900.0);
}

TEST(MappingService, CancellationAbortsRunningDramaAtTrialBoundary) {
  // Machine No.3 never reaches agreement, so an uncancelled run burns all
  // its trials. The observer flips the token after the second trial event;
  // the bound abort predicate stops the running job at the next boundary
  // and the outcome says what happened.
  class trial_cancelling_observer final : public progress_observer {
   public:
    explicit trial_cancelling_observer(cancellation_token* cancel)
        : cancel_(cancel) {}
    void on_job_phase(std::size_t, std::string_view phase,
                      const core::phase_stats&) override {
      if (phase == "trial" && ++trials_ >= 2) cancel_->cancel();
    }

   private:
    cancellation_token* cancel_;
    unsigned trials_ = 0;
  };

  baselines::drama_config cfg = fast_drama();
  cfg.max_trials = 8;
  std::vector<job_spec> jobs{{dram::machine_by_number(3), "drama",
                              tool_options{}.with_drama(cfg), 5}};
  cancellation_token cancel;
  trial_cancelling_observer observer(&cancel);
  const auto outcomes =
      mapping_service({.threads = 1}).run(jobs, &observer, &cancel);
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  EXPECT_EQ(outcomes[0].result.outcome, "aborted");
  EXPECT_FALSE(outcomes[0].result.success);
  EXPECT_EQ(outcomes[0].result.detail, "2 trials");  // 8 without the token
}

TEST(MappingService, CancellationStopsPendingJobsOnly) {
  // One worker, four jobs; the observer cancels as the first job lands.
  std::vector<job_spec> jobs;
  for (std::uint64_t seed : {42u, 43u, 44u, 45u}) {
    jobs.push_back({dram::machine_by_number(4), "dramdig", {}, seed});
  }
  cancellation_token cancel;
  recording_observer observer(&cancel);
  const auto outcomes =
      mapping_service({.threads = 1}).run(jobs, &observer, &cancel);

  ASSERT_EQ(outcomes[0].state, job_state::completed);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].state, job_state::cancelled) << "job " << i;
    EXPECT_EQ(outcomes[i].result.measurement_count, 0u);
    // Cancelled jobs still identify themselves (no on_job_start fires for
    // them, so the done event's outcome is all an observer gets).
    EXPECT_EQ(outcomes[i].result.tool, "dramdig");
    EXPECT_EQ(outcomes[i].result.outcome, "cancelled");
  }
  // The completed result is uncorrupted: identical to an uncancelled run.
  const auto reference =
      mapping_service({.threads = 1}).run({jobs.front()});
  EXPECT_EQ(outcome_key(outcomes[0]), outcome_key(reference[0]));
}

// --- fleet mapping store integration ----------------------------------------

/// One dramdig job for a machine, seed pinned so results compare exactly.
job_spec fleet_job(const dram::machine_spec& machine,
                   std::uint64_t seed = 42) {
  return {machine, "dramdig", {}, seed};
}

TEST(MappingServiceStore, ColdRunSeedsStoreSecondRunVerifies) {
  store::mapping_store store;
  mapping_service service({.threads = 1, .store = &store});
  const dram::machine_spec& m = dram::machine_by_number(1);

  const auto cold = service.run({fleet_job(m)});
  ASSERT_EQ(cold[0].state, job_state::completed);
  EXPECT_EQ(cold[0].store_hit, "cold");
  EXPECT_TRUE(cold[0].result.verified);
  ASSERT_EQ(store.size(), 1u);

  const auto warm = service.run({fleet_job(m)});
  ASSERT_EQ(warm[0].state, job_state::completed);
  EXPECT_EQ(warm[0].store_hit, "verify");
  EXPECT_TRUE(warm[0].result.success);
  EXPECT_TRUE(warm[0].result.verified);
  EXPECT_EQ(warm[0].result.outcome, "verified");
  // Bit-identical mapping at a fraction of the cost: the acceptance
  // criterion pins >=80% fewer measurements on verification-only hits.
  ASSERT_TRUE(cold[0].result.mapping && warm[0].result.mapping);
  EXPECT_EQ(warm[0].result.mapping->describe(),
            cold[0].result.mapping->describe());
  EXPECT_LE(warm[0].result.measurement_count,
            cold[0].result.measurement_count / 5);
  // The entry's history now records the confirmation.
  const auto entry = store.find_exact(sysinfo::fingerprint(m));
  ASSERT_TRUE(entry);
  ASSERT_EQ(entry->history.size(), 2u);
  EXPECT_EQ(entry->history[0].kind, "recovered");
  EXPECT_EQ(entry->history[1].kind, "verified");
}

TEST(MappingServiceStore, PoisonedEntryRequeuesAsFullRecoveryAndOverwrites) {
  const dram::machine_spec& m = dram::machine_by_number(1);
  store::mapping_store store;
  // Seed the store with a poisoned entry: right fingerprint, one wrong
  // bank-function mask.
  {
    mapping_service seeder({.threads = 1, .store = &store});
    (void)seeder.run({fleet_job(m)});
    auto entry = *store.find_exact(sysinfo::fingerprint(m));
    entry.bank_functions.back() = (1ull << 20) ^ (1ull << 24);
    entry.function_span = gf2::row_echelon(entry.bank_functions);
    entry.evidence_digest = entry.compute_evidence_digest();
    store.put(std::move(entry));
  }

  mapping_service service({.threads = 1, .store = &store});
  const auto outcomes = service.run({fleet_job(m)});
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  EXPECT_EQ(outcomes[0].store_hit, "requeued");
  EXPECT_TRUE(outcomes[0].result.verified);

  // The re-run is bit-identical to a storeless cold run (fresh
  // environment, no hints), and the poisoned entry is overwritten with
  // the true functions plus an audit trail of the refutation.
  const auto reference = mapping_service({.threads = 1}).run({fleet_job(m)});
  EXPECT_EQ(outcomes[0].result.to_json_string(),
            reference[0].result.to_json_string());
  const auto entry = store.find_exact(sysinfo::fingerprint(m));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->bank_functions, reference[0].result.mapping->bank_functions());
  ASSERT_GE(entry->history.size(), 2u);
  EXPECT_EQ(entry->history[entry->history.size() - 2].kind, "verify_failed");
  EXPECT_EQ(entry->history.back().kind, "recovered");
}

TEST(MappingServiceStore, GeometrySiblingWarmStartsFullRecovery) {
  const dram::machine_spec& m = dram::machine_by_number(1);
  store::mapping_store store;
  mapping_service service({.threads = 1, .store = &store});
  (void)service.run({fleet_job(m)});

  dram::machine_spec sibling = m;
  sibling.cpu_model = "i5-2500";  // same board geometry, different CPU
  const auto outcomes = service.run({fleet_job(sibling)});
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  EXPECT_EQ(outcomes[0].store_hit, "warm");
  EXPECT_TRUE(outcomes[0].result.success);
  EXPECT_TRUE(outcomes[0].result.verified);
  // The sibling's recovery lands as its own entry.
  EXPECT_EQ(store.size(), 2u);
  const auto entry = store.find_exact(sysinfo::fingerprint(sibling));
  ASSERT_TRUE(entry);
  ASSERT_EQ(entry->history.size(), 1u);
  EXPECT_EQ(entry->history[0].kind, "warm_recovered");
}

TEST(MappingServiceStore, ColdRunPersistsEvidenceAndSiblingWarmStartHalves) {
  const dram::machine_spec& m = dram::machine_by_number(1);
  store::mapping_store store;
  mapping_service service({.threads = 1, .store = &store});

  const auto cold = service.run({fleet_job(m)});
  ASSERT_EQ(cold[0].state, job_state::completed);
  // Schema-v2 evidence lands on the entry: the resolved bank count and
  // the calibrated threshold travel with the mapping.
  const auto entry = store.find_exact(sysinfo::fingerprint(m));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->bank_count, cold[0].result.assumed_bank_count);
  EXPECT_GT(entry->bank_count, 0u);
  EXPECT_EQ(entry->threshold_ns, cold[0].result.threshold_ns);
  EXPECT_GT(entry->threshold_ns, 0.0);

  // A geometry sibling consuming that evidence must beat the cold run by
  // >=50% measurements (the CI floor; No.1 is the fleet's worst case)
  // while recovering a bit-identical mapping.
  dram::machine_spec sibling = m;
  sibling.cpu_model = "i5-2500";
  const auto warm = service.run({fleet_job(sibling)});
  ASSERT_EQ(warm[0].state, job_state::completed);
  EXPECT_EQ(warm[0].store_hit, "warm");
  EXPECT_TRUE(warm[0].result.verified);
  ASSERT_TRUE(cold[0].result.mapping && warm[0].result.mapping);
  EXPECT_EQ(warm[0].result.mapping->describe(),
            cold[0].result.mapping->describe());
  EXPECT_LE(warm[0].result.measurement_count,
            cold[0].result.measurement_count / 2);
}

TEST(MappingServiceStore, PoisonedWarmPriorStillConvergesViaVerification) {
  // A geometry hit whose stored evidence is wrong in every dimension the
  // warm path consumes: masks, bit classification, bank count, threshold.
  // Every warm assignment is still strict-verified, so the run must
  // degrade in place (advisory prior, no re-queue) and converge to the
  // true mapping — a poisoned prior can cost measurements, never the
  // mapping.
  const dram::machine_spec& m = dram::machine_by_number(1);
  store::mapping_store store;
  mapping_service seeder({.threads = 1, .store = &store});
  (void)seeder.run({fleet_job(m)});
  auto entry = *store.find_exact(sysinfo::fingerprint(m));
  entry.bank_functions.back() = (1ull << 20) ^ (1ull << 24);
  entry.function_span = gf2::row_echelon(entry.bank_functions);
  std::swap(entry.row_bits, entry.column_bits);
  entry.bank_count = entry.bank_count == 8 ? 64 : 8;
  entry.threshold_ns *= 3.0;
  entry.evidence_digest = entry.compute_evidence_digest();
  store.put(std::move(entry));

  dram::machine_spec sibling = m;
  sibling.cpu_model = "i5-2500";
  mapping_service service({.threads = 1, .store = &store});
  const auto outcomes = service.run({fleet_job(sibling)});
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  EXPECT_EQ(outcomes[0].store_hit, "warm");
  EXPECT_TRUE(outcomes[0].result.success);
  EXPECT_TRUE(outcomes[0].result.verified);
  // Identical to what a cold recovery of the sibling finds.
  const auto reference =
      mapping_service({.threads = 1}).run({fleet_job(sibling)});
  ASSERT_TRUE(outcomes[0].result.mapping && reference[0].result.mapping);
  EXPECT_EQ(outcomes[0].result.mapping->describe(),
            reference[0].result.mapping->describe());
}

TEST(MappingServiceStore, NonDramdigJobsBypassTheStore) {
  store::mapping_store store;
  mapping_service service({.threads = 1, .store = &store});
  const auto outcomes = service.run(
      {{dram::machine_by_number(1), "drama",
        tool_options{}.with_drama(fast_drama()), 5}});
  ASSERT_EQ(outcomes[0].state, job_state::completed);
  EXPECT_TRUE(outcomes[0].store_hit.empty());
  EXPECT_EQ(store.size(), 0u);
}

TEST(MappingServiceStore, BatchLookupsSnapshotStoreAtEntry) {
  // Two jobs for the same machine in ONE batch: both must plan cold (the
  // store is consulted at run() entry, so outcome[i] cannot depend on a
  // sibling job finishing first), and the post-batch updates collapse to
  // one entry.
  const dram::machine_spec& m = dram::machine_by_number(1);
  store::mapping_store store;
  mapping_service service({.threads = 2, .store = &store});
  const auto outcomes = service.run({fleet_job(m), fleet_job(m)});
  EXPECT_EQ(outcomes[0].store_hit, "cold");
  EXPECT_EQ(outcomes[1].store_hit, "cold");
  EXPECT_EQ(outcomes[0].result.to_json_string(),
            outcomes[1].result.to_json_string());
  EXPECT_EQ(store.size(), 1u);
}

// --- daemon mode -------------------------------------------------------------

TEST(JobFeed, PopsByPriorityThenFifo) {
  job_feed feed;
  const auto t_low = feed.push({dram::machine_by_number(1), "dramdig", {}, 1,
                                /*priority=*/0});
  const auto t_hi1 = feed.push({dram::machine_by_number(2), "dramdig", {}, 2,
                                /*priority=*/5});
  const auto t_hi2 = feed.push({dram::machine_by_number(3), "dramdig", {}, 3,
                                /*priority=*/5});
  const auto t_mid = feed.push({dram::machine_by_number(4), "dramdig", {}, 4,
                                /*priority=*/2});
  EXPECT_EQ(feed.pending(), 4u);
  feed.close();
  // Tickets are nonzero and unique.
  EXPECT_NE(t_low, 0u);
  std::vector<std::uint64_t> served_tickets;
  mapping_service service({.threads = 1});
  const std::size_t n = service.serve(feed, [&](const served_outcome& out) {
    served_tickets.push_back(out.ticket);
  });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(feed.pending(), 0u);
  // Highest priority first; equal priorities keep submission order.
  EXPECT_EQ(served_tickets,
            (std::vector<std::uint64_t>{t_hi1, t_hi2, t_mid, t_low}));
}

TEST(JobFeed, PushAfterCloseIsDroppedWithWarning) {
  job_feed feed;
  feed.close();
  EXPECT_TRUE(feed.closed());
  // The drop is deliberate (racing producers degrade instead of
  // throwing), but it must not be silent: a warning names the job that
  // never ran.
  std::vector<std::string> warnings;
  set_log_sink([&](log_level level, const std::string& message) {
    if (level == log_level::warn) warnings.push_back(message);
  });
  EXPECT_EQ(feed.push({dram::machine_by_number(1), "dramdig", {}, 1}), 0u);
  set_log_sink({});
  EXPECT_EQ(feed.pending(), 0u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("No.1"), std::string::npos) << warnings[0];
  EXPECT_NE(warnings[0].find("dramdig"), std::string::npos) << warnings[0];
  // A serve() on the closed, empty feed returns immediately with nothing.
  mapping_service service({.threads = 1});
  EXPECT_EQ(service.serve(feed, {}), 0u);
}

TEST(MappingServiceServe, StreamsJsonRecordsAndWarmStartsLive) {
  // Daemon mode consults the LIVE store: with one worker, the second job
  // for the same machine (queued before serve even starts) must see the
  // first job's recovery and become a verification-only hit — the
  // incremental warm start run() deliberately forgoes.
  const dram::machine_spec& m = dram::machine_by_number(1);
  store::mapping_store store;
  mapping_service service({.threads = 1, .store = &store});
  job_feed feed;
  (void)feed.push(fleet_job(m));
  (void)feed.push(fleet_job(m));
  feed.close();

  std::vector<served_outcome> records;
  const std::size_t n = service.serve(
      feed, [&](const served_outcome& out) { records.push_back(out); });
  ASSERT_EQ(n, 2u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome.store_hit, "cold");
  EXPECT_EQ(records[1].outcome.store_hit, "verify");
  EXPECT_EQ(records[0].outcome.result.mapping->describe(),
            records[1].outcome.result.mapping->describe());

  // Each streamed record is one parseable, self-contained JSON object.
  for (const served_outcome& record : records) {
    const json_value doc = json_value::parse(record.json);
    EXPECT_EQ(doc.at("ticket").as_u64(), record.ticket);
    EXPECT_EQ(doc.at("machine").as_i64(), m.number);
    EXPECT_EQ(doc.at("tool").as_string(), "dramdig");
    EXPECT_EQ(doc.at("state").as_string(), "completed");
    EXPECT_EQ(doc.at("store_hit").as_string(), record.outcome.store_hit);
    EXPECT_TRUE(doc.at("result").at("success").as_bool());
  }
}

TEST(MappingServiceServe, CancellationDrainsRemainingJobsAsCancelled) {
  store::mapping_store store;
  mapping_service service({.threads = 1, .store = &store});
  job_feed feed;
  for (std::uint64_t seed : {42u, 43u, 44u}) {
    (void)feed.push(fleet_job(dram::machine_by_number(1), seed));
  }
  feed.close();
  cancellation_token cancel;
  cancel.cancel();  // flipped before serve: every job drains cancelled
  std::vector<served_outcome> records;
  const std::size_t n = service.serve(
      feed, [&](const served_outcome& out) { records.push_back(out); },
      &cancel);
  EXPECT_EQ(n, 3u);
  for (const served_outcome& record : records) {
    EXPECT_EQ(record.outcome.state, job_state::cancelled);
    EXPECT_EQ(record.outcome.result.outcome, "cancelled");
  }
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace dramdig::api

// The tool registry and the unified tool interface: name round-trips,
// factory contracts, options validation, and the adapters' result schema.
#include "api/tool.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/environment.h"
#include "dram/presets.h"
#include "util/expect.h"

namespace dramdig::api {
namespace {

/// Cheap DRAMA configuration (the default runs for virtual hours).
baselines::drama_config fast_drama() {
  baselines::drama_config cfg{};
  cfg.pool_size = 2000;
  cfg.calibration_pairs = 300;
  cfg.max_trials = 6;
  return cfg;
}

TEST(ToolRegistry, ListsTheBuiltInTools) {
  const auto names = tool_registry::global().names();
  for (const char* name : {"dramdig", "drama", "xiao"}) {
    EXPECT_TRUE(tool_registry::global().contains(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(tool_registry::global().contains("seaborn"));
}

TEST(ToolRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)make_tool("seaborn"), contract_violation);
}

TEST(ToolRegistry, RejectsDuplicatesAndEmptyNames) {
  tool_registry local;
  local.add("stub", [](const tool_options& o) {
    return tool_registry::global().make("dramdig", o);
  });
  EXPECT_THROW(local.add("stub",
                         [](const tool_options& o) {
                           return tool_registry::global().make("dramdig", o);
                         }),
               contract_violation);
  EXPECT_THROW(local.add("", [](const tool_options& o) {
                 return tool_registry::global().make("dramdig", o);
               }),
               contract_violation);
  EXPECT_TRUE(local.contains("stub"));
  EXPECT_FALSE(tool_registry::global().contains("stub"));
}

TEST(ToolRegistry, RoundTripEveryToolRunsSuccessfully) {
  // Machine No.1 is in every tool's happy path: DRAMDig recovers it, DRAMA
  // completes on the clean desktop, and it is a Sandy Bridge template
  // machine for Xiao et al.
  const tool_options options = tool_options{}.with_drama(fast_drama());
  for (const std::string& name : tool_registry::global().names()) {
    const auto tool = tool_registry::global().make(name, options);
    ASSERT_NE(tool, nullptr) << name;
    EXPECT_EQ(tool->describe().name, name);
    core::environment env(dram::machine_by_number(1), 5);
    const tool_result result = tool->run(env);
    EXPECT_EQ(result.tool, name);
    EXPECT_TRUE(result.success) << name << ": " << result.failure_reason;
    EXPECT_TRUE(result.verified) << name;
    ASSERT_TRUE(result.mapping.has_value()) << name;
    EXPECT_GT(result.measurement_count, 0u) << name;
    EXPECT_GT(result.access_count, 0u) << name;
    EXPECT_GT(result.virtual_seconds, 0.0) << name;
    EXPECT_FALSE(result.phases.empty()) << name;
  }
}

TEST(ToolOptions, SettersValidateEagerly) {
  core::dramdig_config bad_dig{};
  bad_dig.buffer_fraction = 0.0;
  EXPECT_THROW(tool_options{}.with_dramdig(bad_dig), contract_violation);
  bad_dig.buffer_fraction = 1.5;
  EXPECT_THROW(tool_options{}.with_dramdig(bad_dig), contract_violation);

  baselines::drama_config bad_drama{};
  bad_drama.pool_size = 2;
  EXPECT_THROW(tool_options{}.with_drama(bad_drama), contract_violation);

  baselines::xiao_config bad_xiao{};
  bad_xiao.rounds_per_measurement = 0;
  EXPECT_THROW(tool_options{}.with_xiao(bad_xiao), contract_violation);
}

TEST(ToolOptions, ToolSeedReseedsEveryConfig) {
  const tool_options options = tool_options{}.with_tool_seed(99);
  EXPECT_EQ(options.dramdig().tool_seed, 99u);
  EXPECT_EQ(options.drama().tool_seed, 99u);
  EXPECT_EQ(options.xiao().tool_seed, 99u);
}

TEST(ToolResult, JsonCarriesTheUnifiedSchema) {
  core::environment env(dram::machine_by_number(4), 42);
  const tool_result result = make_tool("dramdig")->run(env);
  const std::string json = result.to_json_string();
  for (const char* key :
       {"\"tool\"", "\"success\"", "\"verified\"", "\"outcome\"",
        "\"failure_reason\"", "\"virtual_seconds\"", "\"measurement_count\"",
        "\"measurements_saved\"", "\"access_count\"", "\"mapping\"",
        "\"functions\"", "\"row_bits\"", "\"column_bits\"", "\"phases\"",
        "\"calibration\"", "\"pairs_used\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
}

TEST(ToolResult, JsonRendersMissingMappingAsNull) {
  tool_result result;
  result.tool = "dramdig";
  result.failure_reason = "synthetic";
  const std::string json = result.to_json_string();
  EXPECT_NE(json.find("\"mapping\": null"), std::string::npos) << json;
}

}  // namespace
}  // namespace dramdig::api

#include "util/gf2.h"

#include <gtest/gtest.h>

#include <set>

#include "util/bitops.h"
#include "util/rng.h"

namespace dramdig::gf2 {
namespace {

std::uint64_t fn(std::initializer_list<unsigned> bits) {
  std::uint64_t m = 0;
  for (unsigned b : bits) m |= std::uint64_t{1} << b;
  return m;
}

TEST(Gf2RowEchelon, EmptyMatrix) {
  EXPECT_TRUE(row_echelon({}).empty());
}

TEST(Gf2RowEchelon, DropsZeroRows) {
  EXPECT_TRUE(row_echelon({0, 0}).empty());
}

TEST(Gf2RowEchelon, DropsDuplicates) {
  const matrix m{0b110, 0b110};
  EXPECT_EQ(row_echelon(m).size(), 1u);
}

TEST(Gf2RowEchelon, CanonicalAcrossBasisChoice) {
  // Two bases of the same space echelonize identically.
  const matrix a{0b110, 0b011};
  const matrix b{0b101, 0b011};  // 0b101 = 0b110 ^ 0b011
  EXPECT_EQ(row_echelon(a), row_echelon(b));
}

TEST(Gf2Rank, CountsIndependentRows) {
  EXPECT_EQ(rank({}), 0u);
  EXPECT_EQ(rank({0b1}), 1u);
  EXPECT_EQ(rank({0b01, 0b10, 0b11}), 2u);
}

TEST(Gf2InSpan, DetectsLinearCombinations) {
  const matrix m{fn({14, 17}), fn({15, 18})};
  EXPECT_TRUE(in_span(m, fn({14, 17})));
  EXPECT_TRUE(in_span(m, fn({14, 15, 17, 18})));
  EXPECT_FALSE(in_span(m, fn({14, 18})));
  EXPECT_TRUE(in_span(m, 0));  // zero vector is always in the span
}

TEST(Gf2SameSpan, PaperRedundancyExample) {
  // The paper's example: (14,18), (15,19) have priority over their linear
  // combination (14,15,18,19).
  const matrix a{fn({14, 18}), fn({15, 19})};
  const matrix b{fn({14, 18}), fn({14, 15, 18, 19})};
  EXPECT_TRUE(same_span(a, b));
  const matrix c{fn({14, 18}), fn({15, 18})};
  EXPECT_FALSE(same_span(a, c));
}

TEST(Gf2MinimalBasis, PrefersFewerBits) {
  // Given the redundant triple, the minimal basis keeps the two 2-bit
  // functions and drops the 4-bit combination.
  const matrix funcs{fn({14, 15, 18, 19}), fn({14, 18}), fn({15, 19})};
  const matrix basis = minimal_basis(funcs);
  ASSERT_EQ(basis.size(), 2u);
  EXPECT_EQ(basis[0], fn({14, 18}));
  EXPECT_EQ(basis[1], fn({15, 19}));
}

TEST(Gf2MinimalBasis, DropsZeroAndDuplicates) {
  const matrix basis = minimal_basis({0, 0b10, 0b10, 0});
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0], 0b10u);
}

TEST(Gf2MinimalBasis, SpansInput) {
  rng r(7);
  for (int trial = 0; trial < 50; ++trial) {
    matrix funcs;
    for (int i = 0; i < 8; ++i) funcs.push_back(r.below(1u << 20));
    const matrix basis = minimal_basis(funcs);
    EXPECT_TRUE(same_span(funcs, basis));
    EXPECT_EQ(basis.size(), rank(funcs));
  }
}

TEST(Gf2Solve, SingleEquation) {
  // parity(x, {14,17}) == 1 with support {14}.
  const auto x = solve({fn({14, 17})}, 0b1, fn({14}));
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, fn({14}));
}

TEST(Gf2Solve, InconsistentSystem) {
  // parity(x, {5}) == 1 but bit 5 is outside the support.
  EXPECT_FALSE(solve({fn({5})}, 0b1, fn({6, 7})).has_value());
}

TEST(Gf2Solve, ZeroRhsHasZeroSolution) {
  const auto x = solve({fn({3, 4}), fn({4, 5})}, 0, fn({3, 4, 5}));
  ASSERT_TRUE(x.has_value());
  for (std::uint64_t f : matrix{fn({3, 4}), fn({4, 5})}) {
    EXPECT_EQ(parity(*x, f), 0u);
  }
}

TEST(Gf2Solve, SatisfiesAllEquations) {
  // Machine No.2's functions: find x within the bank bits with chosen
  // target parities.
  const matrix funcs{fn({14, 18}), fn({15, 19}), fn({16, 20}), fn({17, 21}),
                     fn({7, 8, 9, 12, 13, 18, 19})};
  const std::uint64_t support =
      fn({7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21});
  for (std::uint64_t want = 0; want < 32; ++want) {
    const auto x = solve(funcs, want, support);
    ASSERT_TRUE(x.has_value()) << "rhs " << want;
    EXPECT_EQ(*x & ~support, 0u);
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      EXPECT_EQ(parity(*x, funcs[i]), (want >> i) & 1u);
    }
  }
}

TEST(Gf2SolvePinnedBit, BankInvariantDeltaForSharedRowBit) {
  // The fine-grained Step 3 use case on machine No.2: a delta containing
  // bit 18 that keeps all five functions invariant must also flip 19 (via
  // the wide function), 15 (via (15,19)) and 14 (via (14,18)).
  matrix system{fn({14, 18}), fn({15, 19}), fn({16, 20}), fn({17, 21}),
                fn({7, 8, 9, 12, 13, 18, 19})};
  system.push_back(fn({18}));  // pin bit 18
  const std::uint64_t support =
      fn({7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21});
  const auto delta = solve(system, std::uint64_t{1} << 5, support);
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(bit(*delta, 18));
  for (std::size_t i = 0; i + 1 < system.size(); ++i) {
    EXPECT_EQ(parity(*delta, system[i]), 0u) << "function " << i;
  }
}

TEST(Gf2NullSpace, VectorsAnnihilateAllFunctionals) {
  const matrix funcs{fn({14, 18}), fn({15, 19}),
                     fn({7, 8, 9, 12, 13, 18, 19})};
  const std::uint64_t support =
      fn({7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19});
  const matrix kernel = null_space(funcs, support);
  // dim(kernel) = |support| - rank = 11 - 3 = 8.
  EXPECT_EQ(rank(kernel), 8u);
  for (std::uint64_t v : kernel) {
    EXPECT_NE(v, 0u);
    EXPECT_EQ(v & ~support, 0u);
    for (std::uint64_t f : funcs) EXPECT_EQ(parity(v, f), 0u);
  }
}

TEST(Gf2NullSpace, FullRankSquareSystemHasTrivialKernel) {
  const matrix funcs{fn({0}), fn({1}), fn({2})};
  EXPECT_TRUE(null_space(funcs, fn({0, 1, 2})).empty());
}

TEST(Gf2EnumerateSpan, ListsEveryNonzeroVectorOnce) {
  const matrix basis{fn({14, 18}), fn({15, 19}), fn({16, 20})};
  const matrix span = enumerate_span(basis);
  ASSERT_EQ(span.size(), 7u);  // 2^3 - 1
  std::set<std::uint64_t> unique(span.begin(), span.end());
  EXPECT_EQ(unique.size(), 7u);
  EXPECT_FALSE(unique.contains(0));
  for (std::uint64_t v : span) EXPECT_TRUE(in_span(basis, v));
}

TEST(Gf2EnumerateSpan, CollapsesDependentInput) {
  // A redundant generator must not inflate the span.
  const matrix basis{fn({1}), fn({2}), fn({1, 2})};
  EXPECT_EQ(enumerate_span(basis).size(), 3u);
  EXPECT_TRUE(enumerate_span({}).empty());
}

TEST(Gf2NullSpaceProperty, SpanEqualsBruteForceAnnihilators) {
  // The function-detection contract: nullspace + enumerate_span must list
  // exactly the nonzero support subsets orthogonal to every functional.
  rng r(321);
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned width = 6 + static_cast<unsigned>(r.below(5));  // 6..10
    const std::uint64_t support = (std::uint64_t{1} << width) - 1;
    matrix funcs;
    const unsigned n = 1 + static_cast<unsigned>(r.below(4));
    for (unsigned i = 0; i < n; ++i) funcs.push_back(1 + r.below(support));
    std::set<std::uint64_t> brute;
    for (std::uint64_t m = 1; m <= support; ++m) {
      bool ok = true;
      for (std::uint64_t f : funcs) ok = ok && parity(m, f) == 0;
      if (ok) brute.insert(m);
    }
    const matrix span = enumerate_span(nullspace(funcs, support));
    const std::set<std::uint64_t> got(span.begin(), span.end());
    EXPECT_EQ(got, brute) << "trial " << trial;
  }
}

TEST(Gf2Property, SolveRoundTripOnRandomSystems) {
  rng r(123);
  for (int trial = 0; trial < 100; ++trial) {
    matrix funcs;
    const unsigned n = 3 + static_cast<unsigned>(r.below(4));
    for (unsigned i = 0; i < n; ++i) {
      funcs.push_back(1 + r.below((1u << 16) - 1));
    }
    const std::uint64_t support = (1u << 16) - 1;
    const std::uint64_t want = r.below(1u << n);
    const auto x = solve(funcs, want, support);
    if (!x) continue;  // inconsistent system: fine for random input
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      EXPECT_EQ(parity(*x, funcs[i]), (want >> i) & 1u);
    }
  }
}

}  // namespace
}  // namespace dramdig::gf2

#include "util/table.h"

#include <gtest/gtest.h>

#include "util/expect.h"

namespace dramdig {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  text_table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a | bb |"), std::string::npos);
  EXPECT_NE(out.find("|---|----|"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 2  |"), std::string::npos);
}

TEST(TextTable, ColumnsAutoSizeToWidestCell) {
  text_table t({"x"});
  t.add_row({"wide-cell"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(text_table({}), contract_violation);
}

TEST(FmtDouble, FixedDecimals) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(FmtDuration, SecondsOnly) {
  EXPECT_EQ(fmt_duration_s(12.34), "12.3s");
}

TEST(FmtDuration, MinutesAndSeconds) {
  EXPECT_EQ(fmt_duration_s(69.0), "1m 09.0s");
  EXPECT_EQ(fmt_duration_s(600.0), "10m 00.0s");
}

TEST(FmtDuration, NegativeMeansUnavailable) {
  EXPECT_EQ(fmt_duration_s(-1.0), "n/a");
}

}  // namespace
}  // namespace dramdig

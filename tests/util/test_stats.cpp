#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/expect.h"

namespace dramdig {
namespace {

TEST(Stats, MeanOfConstants) {
  EXPECT_DOUBLE_EQ(mean({5, 5, 5}), 5.0);
}

TEST(Stats, MeanOfMixedValues) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
}

TEST(Stats, MeanRejectsEmpty) {
  EXPECT_THROW((void)mean({}), contract_violation);
}

TEST(Stats, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(variance({3, 3, 3, 3}), 0.0);
}

TEST(Stats, VariancePopulationFormula) {
  EXPECT_DOUBLE_EQ(variance({1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(stddev({1, 3}), 1.0);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({9, 1, 5}), 5.0);
}

TEST(Stats, MedianEvenCountAverages) {
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, MedianSingle) {
  EXPECT_DOUBLE_EQ(median({42}), 42.0);
}

TEST(Stats, MedianRobustToOutlier) {
  // The reason the timing channel medians its samples: one contaminated
  // value does not move the median.
  EXPECT_DOUBLE_EQ(median({165, 166, 164, 165, 560}), 165.0);
}

TEST(Stats, MedianU64) {
  EXPECT_EQ(median_u64({7, 3, 9}), 7u);
  EXPECT_EQ(median_u64({1}), 1u);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

TEST(Stats, PercentileRejectsOutOfRange) {
  EXPECT_THROW((void)percentile({1.0}, 101), contract_violation);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

}  // namespace
}  // namespace dramdig

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <thread>

#include "util/rng.h"

namespace dramdig {
namespace {

TEST(ParallelShards, PlanCoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    for (unsigned shards : {1u, 2u, 3u, 8u, 16u}) {
      const auto plan = make_shards(n, shards);
      std::vector<int> hits(n, 0);
      for (const shard& s : plan) {
        EXPECT_LE(s.begin, s.end);
        for (std::size_t i = s.begin; i < s.end; ++i) ++hits[i];
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "n=" << n << " shards=" << shards;
      }
      EXPECT_LE(plan.size(), std::max<std::size_t>(n, 1));
    }
  }
}

TEST(ParallelShards, NeverMoreShardsThanItems) {
  EXPECT_EQ(make_shards(3, 16).size(), 3u);
  EXPECT_TRUE(make_shards(0, 4).empty());
}

TEST(ParallelShards, ResultsIndependentOfShardCount) {
  // The canonical usage: each item writes its own slot. Any shard count
  // must produce the identical output vector.
  const std::size_t n = 503;
  auto run = [n](unsigned shards) {
    std::vector<std::uint64_t> out(n, 0);
    parallel_for_shards(n, shards, [&](const shard& s) {
      for (std::size_t i = s.begin; i < s.end; ++i) {
        out[i] = i * 2654435761u + s.index * 0;  // value depends on i only
      }
    });
    return out;
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(5));
  EXPECT_EQ(one, run(16));
}

TEST(ParallelShards, AllItemsProcessedConcurrently) {
  const std::size_t n = 10000;
  std::atomic<std::uint64_t> sum{0};
  parallel_for_shards(n, 4, [&](const shard& s) {
    std::uint64_t local = 0;
    for (std::size_t i = s.begin; i < s.end; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ParallelShards, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for_shards(8, 4,
                          [](const shard& s) {
                            if (s.index == 2) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
}

TEST(ParallelShards, ForkRngsDeterministicAndIndependent) {
  rng a(99), b(99);
  auto fa = fork_rngs(a, 4);
  auto fb = fork_rngs(b, 4);
  ASSERT_EQ(fa.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fa[i].below(1u << 30), fb[i].below(1u << 30));
  }
  // Distinct shards draw distinct streams.
  rng c(99);
  auto fc = fork_rngs(c, 2);
  EXPECT_NE(fc[0].below(1ull << 62), fc[1].below(1ull << 62));
}

TEST(ParallelShards, DefaultShardCountSane) {
  const unsigned n = default_shard_count();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

TEST(WorkerPool, ReusedAcrossManyBatches) {
  // The whole point of the pool: thousands of small batches on the same
  // threads. Every index of every batch must run exactly once.
  worker_pool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int round = 0; round < 2000; ++round) {
    std::atomic<int> hits{0};
    pool.run(8, [&](std::size_t) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), 8);
  }
}

TEST(WorkerPool, NestedSubmissionDoesNotDeadlock) {
  // A pool worker that submits its own batch (mapping_service job fanning
  // out into measure_pairs) must not block on work only it could run: the
  // submitter always participates in its own batch.
  worker_pool pool(4);
  std::atomic<int> inner_hits{0};
  pool.run(4, [&](std::size_t) {
    pool.run(4, [&](std::size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 16);
}

TEST(WorkerPool, ExceptionPropagatesAndPoolStaysUsable) {
  worker_pool pool(4);
  EXPECT_THROW(pool.run(16,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("task 5");
                        }),
               std::runtime_error);
  // A throwing batch must not poison the pool.
  std::atomic<int> hits{0};
  pool.run(16, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 16);
}

TEST(WorkerPool, LowestIndexExceptionWins) {
  // Matches the old thread-per-shard semantics: the first shard's error is
  // the one rethrown when several tasks fail.
  worker_pool pool(4);
  try {
    pool.run(8, [](std::size_t i) {
      if (i == 2 || i == 6) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
}

TEST(WorkerPool, ConcurrentExternalSubmitters) {
  // Several threads submitting batches to one pool at once (the
  // mapping_service worker pattern): every batch completes with its own
  // results intact.
  worker_pool pool(4);
  std::vector<std::thread> submitters;
  std::array<std::atomic<int>, 6> sums{};
  for (int t = 0; t < 6; ++t) {
    submitters.emplace_back([&pool, &sums, t] {
      for (int round = 0; round < 100; ++round) {
        pool.run(10, [&sums, t](std::size_t i) {
          sums[t].fetch_add(static_cast<int>(i) + 1);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const auto& s : sums) EXPECT_EQ(s.load(), 100 * 55);
}

TEST(WorkerPool, SingleThreadPoolRunsInline) {
  worker_pool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id self = std::this_thread::get_id();
  pool.run(4, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), self); });
}

}  // namespace
}  // namespace dramdig

// The JSON reader the fleet mapping store depends on: strict parsing,
// exact 64-bit integer round-trips through json_writer output, and loud
// json_parse_error failures on malformed, truncated, or trailing-garbage
// documents (a half-parsed store entry must never look like a valid one).
#include "util/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/expect.h"

namespace dramdig {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_value::parse("null").is_null());
  EXPECT_TRUE(json_value::parse("true").as_bool());
  EXPECT_FALSE(json_value::parse("false").as_bool());
  EXPECT_EQ(json_value::parse("42").as_u64(), 42u);
  EXPECT_EQ(json_value::parse("-17").as_i64(), -17);
  EXPECT_DOUBLE_EQ(json_value::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(json_value::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(json_value::parse("  7  ").as_u64(), 7u);  // outer whitespace ok
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_value::parse(R"("a\"b\\c\nd\te")").as_string(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(json_value::parse(R"("A\u00e9")").as_string(),
            "A\xc3\xa9");  // BMP escape decodes to UTF-8
}

TEST(JsonParse, Containers) {
  const json_value doc =
      json_value::parse(R"({"a": [1, 2, 3], "b": {"c": true}, "d": null})");
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a")[2].as_u64(), 3u);
  EXPECT_TRUE(doc.at("b").at("c").as_bool());
  EXPECT_TRUE(doc.at("d").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), json_parse_error);
  // Members preserve document order.
  EXPECT_EQ(doc.members()[0].first, "a");
  EXPECT_EQ(doc.members()[2].first, "d");
}

TEST(JsonParse, Uint64SurvivesExactly) {
  // Hashes and XOR masks exceed 2^53 — a parse through double would
  // corrupt them, which is why numbers keep their source token.
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(json_value::parse(std::to_string(big)).as_u64(), big);
  const std::uint64_t hash = 828042820628194189ull;
  EXPECT_EQ(json_value::parse(std::to_string(hash)).as_u64(), hash);
}

TEST(JsonParse, IntegerAccessorsRejectLossyTokens) {
  EXPECT_THROW((void)json_value::parse("2.5").as_u64(), std::exception);
  EXPECT_THROW((void)json_value::parse("-1").as_u64(), std::exception);
  EXPECT_THROW((void)json_value::parse("1e3").as_i64(), std::exception);
  // One past 2^64-1 overflows.
  EXPECT_THROW((void)json_value::parse("18446744073709551616").as_u64(),
               std::exception);
}

TEST(JsonParse, WrongKindThrows) {
  const json_value num = json_value::parse("1");
  EXPECT_THROW((void)num.as_string(), contract_violation);
  EXPECT_THROW((void)num.as_bool(), contract_violation);
  EXPECT_THROW((void)num.at("k"), contract_violation);
  EXPECT_THROW((void)num[0], contract_violation);
}

TEST(JsonParse, MalformedThrows) {
  for (const char* bad :
       {"", "   ", "{", "[1, 2", "{\"a\": }", "{\"a\" 1}", "{'a': 1}",
        "tru", "nul", "01", "+1", "1.", ".5", "\"unterminated",
        "\"bad\\q\"", "{\"a\": 1,}", "[1, 2,]", "{\"a\": 1 \"b\": 2}"}) {
    EXPECT_THROW((void)json_value::parse(bad), json_parse_error) << bad;
  }
}

TEST(JsonParse, TrailingGarbageThrows) {
  EXPECT_THROW((void)json_value::parse("{} extra"), json_parse_error);
  EXPECT_THROW((void)json_value::parse("1 2"), json_parse_error);
  EXPECT_THROW((void)json_value::parse("[] []"), json_parse_error);
}

TEST(JsonParse, TruncationAlwaysThrows) {
  // Every proper prefix of a valid document is invalid — the property the
  // store's corrupted-file degradation rests on.
  const std::string doc =
      R"({"store": "s", "n": 1234567, "list": [1, 2.5, true, "x"]})";
  ASSERT_NO_THROW((void)json_value::parse(doc));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW((void)json_value::parse(doc.substr(0, len)),
                 json_parse_error)
        << "prefix length " << len;
  }
}

TEST(JsonParse, DepthCapThrows) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW((void)json_value::parse(deep), json_parse_error);
}

TEST(JsonRoundTrip, WriterOutputParsesBack) {
  json_writer w;
  w.begin_object();
  w.key("name").value("fleet \"store\"\n");
  w.key("hash").value(std::uint64_t{18446744073709551615ull});
  w.key("signed").value(std::int64_t{-42});
  w.key("ratio").value(0.583052615247719);
  w.key("flag").value(true);
  w.key("none").null_value();
  w.key("masks").begin_array();
  w.value(std::uint64_t{0x2040ull}).value(std::uint64_t{0x44000ull});
  w.end_array();
  w.key("nested").begin_object();
  w.key("empty_list").begin_array().end_array();
  w.key("empty_obj").begin_object().end_object();
  w.end_object();
  w.end_object();

  const json_value doc = json_value::parse(w.str());
  EXPECT_EQ(doc.at("name").as_string(), "fleet \"store\"\n");
  EXPECT_EQ(doc.at("hash").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(doc.at("signed").as_i64(), -42);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_double(), 0.583052615247719);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("masks")[0].as_u64(), 0x2040u);
  EXPECT_EQ(doc.at("masks")[1].as_u64(), 0x44000u);
  EXPECT_EQ(doc.at("nested").at("empty_list").size(), 0u);
  EXPECT_EQ(doc.at("nested").at("empty_obj").size(), 0u);
}

}  // namespace
}  // namespace dramdig

#include "util/combinatorics.h"

#include <gtest/gtest.h>

#include <set>

namespace dramdig {
namespace {

TEST(Combinatorics, ChooseSmallValues) {
  EXPECT_EQ(choose(4, 2), 6u);
  EXPECT_EQ(choose(5, 0), 1u);
  EXPECT_EQ(choose(5, 5), 1u);
  EXPECT_EQ(choose(3, 4), 0u);
  EXPECT_EQ(choose(28, 7), 1184040u);
}

TEST(Combinatorics, EnumeratesAllSingleBits) {
  std::vector<std::uint64_t> masks;
  for_each_bit_combination({3, 5, 9}, 1, 1, [&](std::uint64_t m) {
    masks.push_back(m);
    return true;
  });
  EXPECT_EQ(masks, (std::vector<std::uint64_t>{0b1000, 0b100000, 0b1000000000}));
}

TEST(Combinatorics, CountMatchesChoose) {
  const std::vector<unsigned> pos{1, 2, 3, 4, 5, 6, 7};
  for (unsigned k = 1; k <= 7; ++k) {
    std::size_t n = 0;
    for_each_bit_combination(pos, k, k, [&](std::uint64_t) {
      ++n;
      return true;
    });
    EXPECT_EQ(n, choose(7, k)) << "k=" << k;
  }
}

TEST(Combinatorics, MasksAreDistinctAndHaveRightPopcount) {
  const std::vector<unsigned> pos{0, 2, 4, 6, 8, 10};
  std::set<std::uint64_t> seen;
  for_each_bit_combination(pos, 2, 3, [&](std::uint64_t m) {
    EXPECT_TRUE(seen.insert(m).second) << "duplicate mask";
    const int pc = std::popcount(m);
    EXPECT_TRUE(pc == 2 || pc == 3);
    return true;
  });
  EXPECT_EQ(seen.size(), choose(6, 2) + choose(6, 3));
}

TEST(Combinatorics, OrderIsWidthAscending) {
  // Algorithm 3's priority: fewer-bit masks come first.
  std::vector<int> widths;
  for_each_bit_combination({1, 2, 3}, 1, 3, [&](std::uint64_t m) {
    widths.push_back(std::popcount(m));
    return true;
  });
  EXPECT_TRUE(std::is_sorted(widths.begin(), widths.end()));
}

TEST(Combinatorics, EarlyStopHonored) {
  std::size_t visits = 0;
  for_each_bit_combination({1, 2, 3, 4}, 1, 4, [&](std::uint64_t) {
    ++visits;
    return visits < 3;
  });
  EXPECT_EQ(visits, 3u);
}

TEST(Combinatorics, MaxBitsClampedToPositionCount) {
  std::size_t visits = 0;
  for_each_bit_combination({1, 2}, 1, 99, [&](std::uint64_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 3u);  // C(2,1) + C(2,2)
}

TEST(Combinatorics, AllBitCombinationsCollects) {
  const auto all = all_bit_combinations({0, 1}, 1, 2);
  EXPECT_EQ(all, (std::vector<std::uint64_t>{0b01, 0b10, 0b11}));
}

}  // namespace
}  // namespace dramdig

#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dramdig {
namespace {

TEST(Histogram, BinningBasics) {
  histogram h(0, 10, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  histogram h(0, 10, 10);
  h.add(-100);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinGeometry) {
  histogram h(100, 200, 10);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 105.0);
  EXPECT_DOUBLE_EQ(h.bin_low(9), 190.0);
}

TEST(Histogram, ModeBin) {
  histogram h(0, 10, 10);
  h.add_all({1.5, 1.5, 1.5, 7.5});
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, AsciiRendersAllBins) {
  histogram h(0, 4, 4);
  h.add_all({0.5, 1.5, 2.5});
  const std::string art = h.ascii(10);
  // One line per bin.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

/// Synthesize the timing channel's bimodal latency distribution.
std::vector<double> bimodal(std::size_t fast, std::size_t slow,
                            std::uint64_t seed) {
  rng r(seed);
  std::vector<double> xs;
  for (std::size_t i = 0; i < fast; ++i) xs.push_back(r.gaussian(165, 3));
  for (std::size_t i = 0; i < slow; ++i) xs.push_back(r.gaussian(330, 3));
  return xs;
}

TEST(ValleyThreshold, SeparatesBalancedModes) {
  const double t = valley_threshold(bimodal(500, 500, 1));
  EXPECT_GT(t, 200);
  EXPECT_LT(t, 300);
}

TEST(ValleyThreshold, SeparatesSkewedModes) {
  // Realistic calibration sample: ~1/banks of pairs conflict.
  const double t = valley_threshold(bimodal(1500, 40, 2));
  EXPECT_GT(t, 185);
  EXPECT_LT(t, 320);
}

TEST(ValleyThreshold, SurvivesContamination) {
  rng r(3);
  auto xs = bimodal(1400, 60, 3);
  for (int i = 0; i < 30; ++i) {
    xs.push_back(165 + r.uniform() * 400);  // one-sided heavy tail
  }
  const double t = valley_threshold(xs);
  EXPECT_GT(t, 180);
  EXPECT_LT(t, 330);
}

TEST(ValleyThreshold, UnimodalFallsBackGracefully) {
  // No slow mode at all: any threshold above the mode is acceptable; the
  // function must not crash or return garbage far outside the range.
  rng r(4);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(r.gaussian(165, 3));
  const double t = valley_threshold(xs);
  EXPECT_GT(t, 100);
  EXPECT_LT(t, 200);
}

TEST(OtsuThreshold, SeparatesModes) {
  const double t = otsu_threshold(bimodal(800, 200, 5));
  EXPECT_GT(t, 180);
  EXPECT_LT(t, 330);
}

TEST(ThresholdProperty, ClassifiesBothModesAcrossSeeds) {
  for (std::uint64_t seed = 10; seed < 30; ++seed) {
    const auto xs = bimodal(1200, 80, seed);
    const double t = valley_threshold(xs);
    // Every fast sample below, every slow sample above.
    std::size_t misclassified = 0;
    for (double x : xs) {
      const bool is_slow = x > 250;
      if ((x > t) != is_slow) ++misclassified;
    }
    EXPECT_LE(misclassified, xs.size() / 100) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dramdig

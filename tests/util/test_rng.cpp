#include "util/rng.h"

#include <gtest/gtest.h>

namespace dramdig {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.below(1000), b.below(1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.below(1'000'000) == b.below(1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  rng r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  rng r(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowZeroRejected) {
  rng r(7);
  EXPECT_THROW((void)r.below(0), contract_violation);
}

TEST(Rng, BetweenInclusive) {
  rng r(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  rng r(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GaussianMoments) {
  rng r(12);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.gaussian(100, 15);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 100, 1.0);
  EXPECT_NEAR(var, 225, 20.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  rng a(13);
  rng child = a.fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.below(1'000'000) == child.below(1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicGivenParentSeed) {
  rng a(14), b(14);
  rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ca.below(1000), cb.below(1000));
  }
}

}  // namespace
}  // namespace dramdig

#include "util/bitops.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dramdig {
namespace {

TEST(Bitops, ParityOfEmptyMaskIsZero) {
  EXPECT_EQ(parity(0xdeadbeef, 0), 0u);
}

TEST(Bitops, ParitySingleBit) {
  EXPECT_EQ(parity(0b100, 0b100), 1u);
  EXPECT_EQ(parity(0b011, 0b100), 0u);
}

TEST(Bitops, ParityIsXorOfSelectedBits) {
  // (14,17)-style bank function.
  const std::uint64_t mask = (1ull << 14) | (1ull << 17);
  EXPECT_EQ(parity(1ull << 14, mask), 1u);
  EXPECT_EQ(parity(1ull << 17, mask), 1u);
  EXPECT_EQ(parity((1ull << 14) | (1ull << 17), mask), 0u);
}

TEST(Bitops, ParityIgnoresBitsOutsideMask) {
  const std::uint64_t mask = 0b1010;
  EXPECT_EQ(parity(0b0101, mask), 0u);
  EXPECT_EQ(parity(0b1111, mask), 0u);
  EXPECT_EQ(parity(0b0111, mask), 1u);  // only bit 1 is selected
}

TEST(Bitops, BitReadsSingleBits) {
  EXPECT_TRUE(bit(0b100, 2));
  EXPECT_FALSE(bit(0b100, 1));
  EXPECT_FALSE(bit(0, 63));
}

TEST(Bitops, WithBitSetsAndClears) {
  EXPECT_EQ(with_bit(0, 5, true), 32u);
  EXPECT_EQ(with_bit(32, 5, false), 0u);
  EXPECT_EQ(with_bit(32, 5, true), 32u);
}

TEST(Bitops, MaskOfBitsBuildsUnion) {
  EXPECT_EQ(mask_of_bits({0, 3, 5}), 0b101001u);
  EXPECT_EQ(mask_of_bits({}), 0u);
}

TEST(Bitops, MaskOfBitsRejectsOutOfRange) {
  EXPECT_THROW((void)mask_of_bits({64}), contract_violation);
}

TEST(Bitops, BitsOfMaskRoundTrips) {
  const std::vector<unsigned> bits{1, 7, 13, 63};
  EXPECT_EQ(bits_of_mask(mask_of_bits(bits)), bits);
  EXPECT_TRUE(bits_of_mask(0).empty());
}

TEST(Bitops, GatherBitsExtractsDenseIndex) {
  // Row extraction: bits {17, 18, 19} of an address become a 3-bit index.
  const std::vector<unsigned> row_bits{17, 18, 19};
  EXPECT_EQ(gather_bits(1ull << 17, row_bits), 0b001u);
  EXPECT_EQ(gather_bits(1ull << 19, row_bits), 0b100u);
  EXPECT_EQ(gather_bits((1ull << 17) | (1ull << 19), row_bits), 0b101u);
}

TEST(Bitops, ScatterBitsInvertsGather) {
  const std::vector<unsigned> bits{3, 9, 21, 33};
  for (std::uint64_t dense = 0; dense < 16; ++dense) {
    EXPECT_EQ(gather_bits(scatter_bits(dense, bits), bits), dense);
  }
}

TEST(Bitops, GatherScatterWithEmptyBitList) {
  EXPECT_EQ(gather_bits(0xffffu, {}), 0u);
  EXPECT_EQ(scatter_bits(0xffffu, {}), 0u);
}

TEST(Bitops, Log2ExactOnPowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(log2_exact(1ull << 33), 33u);
}

TEST(Bitops, Log2ExactRejectsNonPowers) {
  EXPECT_THROW((void)log2_exact(0), contract_violation);
  EXPECT_THROW((void)log2_exact(3), contract_violation);
  EXPECT_THROW((void)log2_exact(4097), contract_violation);
}

// --- decode_banks: the dispatched (possibly SIMD) kernel vs the portable
// scalar kernel vs the per-bit parity definition. The two kernels must be
// exact bit operations, so equality is == — no tolerance.

/// Reference semantics, straight from the spec: out[i] bit f is
/// parity(addrs[i], functions[f]).
[[nodiscard]] std::vector<std::uint64_t> decode_banks_reference(
    const std::vector<std::uint64_t>& addrs,
    const std::vector<std::uint64_t>& functions) {
  std::vector<std::uint64_t> out(addrs.size(), 0);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    for (std::size_t f = 0; f < functions.size(); ++f) {
      out[i] |= static_cast<std::uint64_t>(parity(addrs[i], functions[f]))
                << f;
    }
  }
  return out;
}

TEST(Bitops, DecodeBanksMatchesParityDefinition) {
  rng r(101);
  const std::vector<std::uint64_t> functions{
      (1ull << 14) | (1ull << 17), (1ull << 15) | (1ull << 18),
      (1ull << 16) | (1ull << 19), (1ull << 6)};
  std::vector<std::uint64_t> addrs(1000);
  for (auto& a : addrs) a = r.below(1ull << 34);

  const auto expected = decode_banks_reference(addrs, functions);
  std::vector<std::uint64_t> got(addrs.size());
  decode_banks(addrs.data(), addrs.size(), functions.data(), functions.size(),
               got.data());
  EXPECT_EQ(got, expected);
}

TEST(Bitops, DecodeBanksDispatchEqualsScalarOnRandomFunctionSets) {
  // Random masks (not just realistic bank functions) across sizes that
  // straddle the kernel's 64-address block boundary, including the ragged
  // tail and the empty batch.
  rng r(103);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{1000}, std::size_t{4096}}) {
    for (std::size_t function_count = 0; function_count <= 6;
         ++function_count) {
      std::vector<std::uint64_t> functions(function_count);
      for (auto& f : functions) f = r.below(~std::uint64_t{0});
      std::vector<std::uint64_t> addrs(n);
      for (auto& a : addrs) a = r.below(~std::uint64_t{0});

      std::vector<std::uint64_t> dispatched(n), scalar(n);
      decode_banks(addrs.data(), n, functions.data(), function_count,
                   dispatched.data());
      decode_banks_scalar(addrs.data(), n, functions.data(), function_count,
                          scalar.data());
      EXPECT_EQ(dispatched, scalar)
          << "n=" << n << " functions=" << function_count;
      EXPECT_EQ(scalar, decode_banks_reference(addrs, functions))
          << "n=" << n << " functions=" << function_count;
    }
  }
}

TEST(Bitops, DecodeBanksSimdFlagIsStable) {
  // Dispatch resolves once; repeated queries agree (whatever the host and
  // DRAMDIG_FORCE_SCALAR_DECODE decided).
  const bool first = decode_banks_uses_simd();
  EXPECT_EQ(decode_banks_uses_simd(), first);
}

}  // namespace
}  // namespace dramdig

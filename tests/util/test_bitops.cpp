#include "util/bitops.h"

#include <gtest/gtest.h>

namespace dramdig {
namespace {

TEST(Bitops, ParityOfEmptyMaskIsZero) {
  EXPECT_EQ(parity(0xdeadbeef, 0), 0u);
}

TEST(Bitops, ParitySingleBit) {
  EXPECT_EQ(parity(0b100, 0b100), 1u);
  EXPECT_EQ(parity(0b011, 0b100), 0u);
}

TEST(Bitops, ParityIsXorOfSelectedBits) {
  // (14,17)-style bank function.
  const std::uint64_t mask = (1ull << 14) | (1ull << 17);
  EXPECT_EQ(parity(1ull << 14, mask), 1u);
  EXPECT_EQ(parity(1ull << 17, mask), 1u);
  EXPECT_EQ(parity((1ull << 14) | (1ull << 17), mask), 0u);
}

TEST(Bitops, ParityIgnoresBitsOutsideMask) {
  const std::uint64_t mask = 0b1010;
  EXPECT_EQ(parity(0b0101, mask), 0u);
  EXPECT_EQ(parity(0b1111, mask), 0u);
  EXPECT_EQ(parity(0b0111, mask), 1u);  // only bit 1 is selected
}

TEST(Bitops, BitReadsSingleBits) {
  EXPECT_TRUE(bit(0b100, 2));
  EXPECT_FALSE(bit(0b100, 1));
  EXPECT_FALSE(bit(0, 63));
}

TEST(Bitops, WithBitSetsAndClears) {
  EXPECT_EQ(with_bit(0, 5, true), 32u);
  EXPECT_EQ(with_bit(32, 5, false), 0u);
  EXPECT_EQ(with_bit(32, 5, true), 32u);
}

TEST(Bitops, MaskOfBitsBuildsUnion) {
  EXPECT_EQ(mask_of_bits({0, 3, 5}), 0b101001u);
  EXPECT_EQ(mask_of_bits({}), 0u);
}

TEST(Bitops, MaskOfBitsRejectsOutOfRange) {
  EXPECT_THROW((void)mask_of_bits({64}), contract_violation);
}

TEST(Bitops, BitsOfMaskRoundTrips) {
  const std::vector<unsigned> bits{1, 7, 13, 63};
  EXPECT_EQ(bits_of_mask(mask_of_bits(bits)), bits);
  EXPECT_TRUE(bits_of_mask(0).empty());
}

TEST(Bitops, GatherBitsExtractsDenseIndex) {
  // Row extraction: bits {17, 18, 19} of an address become a 3-bit index.
  const std::vector<unsigned> row_bits{17, 18, 19};
  EXPECT_EQ(gather_bits(1ull << 17, row_bits), 0b001u);
  EXPECT_EQ(gather_bits(1ull << 19, row_bits), 0b100u);
  EXPECT_EQ(gather_bits((1ull << 17) | (1ull << 19), row_bits), 0b101u);
}

TEST(Bitops, ScatterBitsInvertsGather) {
  const std::vector<unsigned> bits{3, 9, 21, 33};
  for (std::uint64_t dense = 0; dense < 16; ++dense) {
    EXPECT_EQ(gather_bits(scatter_bits(dense, bits), bits), dense);
  }
}

TEST(Bitops, GatherScatterWithEmptyBitList) {
  EXPECT_EQ(gather_bits(0xffffu, {}), 0u);
  EXPECT_EQ(scatter_bits(0xffffu, {}), 0u);
}

TEST(Bitops, Log2ExactOnPowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(log2_exact(1ull << 33), 33u);
}

TEST(Bitops, Log2ExactRejectsNonPowers) {
  EXPECT_THROW((void)log2_exact(0), contract_violation);
  EXPECT_THROW((void)log2_exact(3), contract_violation);
  EXPECT_THROW((void)log2_exact(4097), contract_violation);
}

}  // namespace
}  // namespace dramdig

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dramdig {
namespace {

// The counter engine backs the simulator's parallel measurement tail, so
// these tests pin the two properties everything rests on: each draw is a
// pure function of (key, domain, index) — order and batching never matter —
// and the draws actually follow the distributions the timing model asks
// for. The statistical bands use a fixed seed, so they are deterministic
// regression checks, sized from the usual standard errors at n = 2^20.

TEST(NoiseStream, SameSeedSameDraws) {
  const auto a = noise_stream::from_seed(42);
  const auto b = noise_stream::from_seed(42);
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(a.block(0, i).v0, b.block(0, i).v0);
    EXPECT_DOUBLE_EQ(a.gaussian(1, i, 3.0, 2.0), b.gaussian(1, i, 3.0, 2.0));
  }
}

TEST(NoiseStream, AdjacentSeedsDecorrelate) {
  // splitmix64 key expansion: seeds 7 and 8 must not yield related streams.
  const auto a = noise_stream::from_seed(7);
  const auto b = noise_stream::from_seed(8);
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    same += a.block(0, i).v0 == b.block(0, i).v0;
  }
  EXPECT_EQ(same, 0);
}

TEST(NoiseStream, DomainsAreIndependent) {
  const auto s = noise_stream::from_seed(5);
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    same += s.block(0, i).v0 == s.block(1, i).v0;
  }
  EXPECT_EQ(same, 0);
}

TEST(NoiseStream, DrawsAreOrderFree) {
  // The property the parallel tail exploits: reading indices backwards,
  // shuffled, or twice yields exactly the forward sequence's values.
  const auto s = noise_stream::from_seed(11);
  std::vector<double> forward(512);
  for (std::uint64_t i = 0; i < forward.size(); ++i) {
    forward[i] = s.gaussian(3, i, 0.0, 1.0);
  }
  for (std::uint64_t i = forward.size(); i-- > 0;) {
    EXPECT_DOUBLE_EQ(s.gaussian(3, i, 0.0, 1.0), forward[i]);
  }
}

TEST(NoiseStream, FillMatchesScalarCalls) {
  const auto s = noise_stream::from_seed(23);
  constexpr std::size_t kN = 1024;
  constexpr std::uint64_t kBase = 777;

  std::vector<double> g(kN), u(kN);
  std::vector<std::uint8_t> b(kN);
  s.fill_gaussian(1, kBase, kN, 5.0, 2.5, g.data());
  s.fill_uniform(2, kBase, kN, u.data());
  s.fill_bernoulli(4, kBase, kN, 0.3, b.data());

  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(g[i], s.gaussian(1, kBase + i, 5.0, 2.5));
    EXPECT_DOUBLE_EQ(u[i], s.uniform(2, kBase + i));
    EXPECT_EQ(b[i] != 0, s.bernoulli(4, kBase + i, 0.3));
  }
}

TEST(NoiseStream, FillSplitsConcatenate) {
  // Splitting one fill across disjoint index ranges (what the sharded tail
  // does per thread) must reproduce the single-call fill exactly.
  const auto s = noise_stream::from_seed(29);
  constexpr std::size_t kN = 1000;
  std::vector<double> whole(kN), parts(kN);
  s.fill_gaussian(0, 0, kN, 0.0, 9.0, whole.data());
  s.fill_gaussian(0, 0, 337, 0.0, 9.0, parts.data());
  s.fill_gaussian(0, 337, 400, 0.0, 9.0, parts.data() + 337);
  s.fill_gaussian(0, 737, kN - 737, 0.0, 9.0, parts.data() + 737);
  EXPECT_EQ(whole, parts);
}

TEST(NoiseStream, UniformKolmogorovSmirnov) {
  // KS test of 2^20 uniforms against U(0,1). The critical value at
  // alpha = 1e-3 is ~1.95/sqrt(n) ~= 0.0019; 0.0025 leaves slack while
  // still catching any real distributional defect.
  const auto s = noise_stream::from_seed(31);
  constexpr std::size_t kN = 1u << 20;
  std::vector<double> u(kN);
  s.fill_uniform(0, 0, kN, u.data());
  std::sort(u.begin(), u.end());
  double d = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_GE(u[i], 0.0);
    EXPECT_LT(u[i], 1.0);
    const double lo = static_cast<double>(i) / kN;
    const double hi = static_cast<double>(i + 1) / kN;
    d = std::max({d, u[i] - lo, hi - u[i]});
  }
  EXPECT_LT(d, 0.0025);
}

TEST(NoiseStream, GaussianMomentsAndTails) {
  // 2^20 standard-normal deviates via the Acklam inverse CDF. Standard
  // errors at this n: mean ~0.001, variance ~0.0014, tail fractions
  // ~5e-5 — each band below is several standard errors wide.
  const auto s = noise_stream::from_seed(37);
  constexpr std::size_t kN = 1u << 20;
  std::vector<double> z(kN);
  s.fill_gaussian(0, 0, kN, 0.0, 1.0, z.data());

  double sum = 0.0, sq = 0.0, cube = 0.0;
  std::size_t over1 = 0, over2 = 0, over3 = 0;
  for (const double x : z) {
    sum += x;
    sq += x * x;
    cube += x * x * x;
    const double a = std::abs(x);
    over1 += a > 1.0;
    over2 += a > 2.0;
    over3 += a > 3.0;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
  EXPECT_NEAR(cube / kN, 0.0, 0.03);  // symmetric: third moment vanishes
  // Two-sided tail masses: 2*(1 - Phi(z)).
  EXPECT_NEAR(over1 / double(kN), 0.3173, 0.005);
  EXPECT_NEAR(over2 / double(kN), 0.0455, 0.002);
  EXPECT_NEAR(over3 / double(kN), 0.0027, 0.0006);
}

TEST(NoiseStream, GaussianScalesMeanAndSigma) {
  const auto s = noise_stream::from_seed(41);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const double z = s.gaussian(0, i, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(s.gaussian(0, i, 100.0, 15.0), 100.0 + 15.0 * z);
  }
}

TEST(NoiseStream, BernoulliRateMatchesProbability) {
  const auto s = noise_stream::from_seed(43);
  constexpr std::size_t kN = 1u << 20;
  std::vector<std::uint8_t> hits(kN);
  for (const double p : {0.0, 0.02, 0.3, 1.0}) {
    s.fill_bernoulli(0, 0, kN, p, hits.data());
    std::size_t on = 0;
    for (const auto h : hits) on += h;
    EXPECT_NEAR(on / double(kN), p, 0.002) << "p=" << p;
  }
}

TEST(NoiseStream, CounterGaussianInvertsKnownQuantiles) {
  // Spot-check the inverse CDF against textbook quantiles by feeding words
  // whose counter_unit image is the target u. |rel err| of Acklam's
  // approximation is < 1.2e-9, so 1e-6 absolute is generous.
  const auto word_for = [](double u) {
    return static_cast<std::uint64_t>(u * 0x1.0p53) << 11;
  };
  EXPECT_NEAR(counter_gaussian(word_for(0.5)), 0.0, 1e-6);
  EXPECT_NEAR(counter_gaussian(word_for(0.975)), 1.959964, 1e-5);
  EXPECT_NEAR(counter_gaussian(word_for(0.025)), -1.959964, 1e-5);
  EXPECT_NEAR(counter_gaussian(word_for(0.999)), 3.090232, 1e-5);
  // Tail branch (u < 0.02425) engages and stays finite.
  EXPECT_NEAR(counter_gaussian(word_for(0.001)), -3.090232, 1e-5);
  EXPECT_TRUE(std::isfinite(counter_gaussian(0)));
  EXPECT_TRUE(std::isfinite(counter_gaussian(~std::uint64_t{0})));
}

}  // namespace
}  // namespace dramdig

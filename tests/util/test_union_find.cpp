#include "util/union_find.h"

#include <gtest/gtest.h>

#include <vector>

namespace dramdig {
namespace {

TEST(UnionFind, SingletonsAreDistinct) {
  union_find uf;
  const std::size_t a = uf.make_set();
  const std::size_t b = uf.make_set();
  EXPECT_EQ(uf.node_count(), 2u);
  EXPECT_EQ(uf.set_count(), 2u);
  EXPECT_FALSE(uf.same(a, b));
  EXPECT_EQ(uf.class_size(a), 1u);
}

TEST(UnionFind, UniteMergesAndReportsRoots) {
  union_find uf;
  const std::size_t a = uf.make_set();
  const std::size_t b = uf.make_set();
  const auto first = uf.unite(a, b);
  EXPECT_TRUE(first.merged);
  EXPECT_NE(first.winner, first.loser);
  EXPECT_TRUE(uf.same(a, b));
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.class_size(a), 2u);
  // Re-uniting the same class is a no-op with winner == loser.
  const auto again = uf.unite(a, b);
  EXPECT_FALSE(again.merged);
  EXPECT_EQ(again.winner, again.loser);
  EXPECT_EQ(uf.set_count(), 1u);
}

TEST(UnionFind, TransitivityAcrossChains) {
  union_find uf;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(uf.make_set());
  // Two interleaved chains: evens and odds.
  for (int i = 0; i + 2 < 64; ++i) (void)uf.unite(ids[i], ids[i + 2]);
  EXPECT_EQ(uf.set_count(), 2u);
  EXPECT_TRUE(uf.same(ids[0], ids[62]));
  EXPECT_TRUE(uf.same(ids[1], ids[63]));
  EXPECT_FALSE(uf.same(ids[0], ids[1]));
  EXPECT_EQ(uf.class_size(ids[0]), 32u);
  (void)uf.unite(ids[10], ids[11]);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_TRUE(uf.same(ids[0], ids[1]));
}

TEST(UnionFind, DeterministicRegardlessOfQueryOrder) {
  // find() with path halving must not change any answer, only speed.
  union_find left, right;
  for (int i = 0; i < 32; ++i) {
    (void)left.make_set();
    (void)right.make_set();
  }
  for (int i = 0; i < 31; i += 2) {
    (void)left.unite(i, i + 1);
    (void)right.unite(i, i + 1);
  }
  // Query `right` heavily before the next unions.
  for (int i = 0; i < 32; ++i) (void)right.find(i);
  for (int i = 0; i < 30; i += 4) {
    (void)left.unite(i, i + 2);
    (void)right.unite(i, i + 2);
  }
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      EXPECT_EQ(left.same(i, j), right.same(i, j)) << i << "," << j;
    }
  }
}

TEST(UnionFind, FindRejectsUnknownIds) {
  union_find uf;
  (void)uf.make_set();
  EXPECT_THROW((void)uf.find(1), contract_violation);
}

}  // namespace
}  // namespace dramdig

// Differential tests for the measurement-accounting modes: the O(1)
// closed-form aggregate (default) against the per-access row-buffer
// state-machine loop (timing_model::closed_form_accounting = false). The
// two must be bit-identical — latencies, contamination flags, virtual
// time, counters AND rng consumption — on every timing preset, because the
// loop is the oracle the closed form is trusted against.
#include <gtest/gtest.h>

#include <vector>

#include "dram/presets.h"
#include "sim/machine.h"
#include "sim/memory_controller.h"
#include "sim/profiles.h"
#include "sim/virtual_clock.h"
#include "util/rng.h"

namespace dramdig::sim {
namespace {

/// Drive both controllers through an identical measurement schedule and
/// require bit-identical observable state afterwards.
void expect_identical_accounting(const dram::machine_spec& spec,
                                 timing_model timing, std::uint64_t seed) {
  timing_model closed = timing, loop = timing;
  closed.closed_form_accounting = true;
  loop.closed_form_accounting = false;

  virtual_clock clock_a, clock_b;
  memory_controller a(spec.mapping, closed, clock_a, rng(seed));
  memory_controller b(spec.mapping, loop, clock_b, rng(seed));

  rng addr(seed ^ 0xadd2);
  std::vector<addr_pair> pairs;
  for (int i = 0; i < 400; ++i) {
    pairs.emplace_back(addr.below(spec.memory_bytes) & ~63ull,
                       addr.below(spec.memory_bytes) & ~63ull);
  }
  // Mixed schedule: scalar pairs, raw accesses, then a batch — the raw
  // accesses perturb the row-buffer state so the first accesses of the
  // following measurements exercise all three transient classes.
  for (int i = 0; i < 50; ++i) {
    const auto ma = a.measure_pair(pairs[i].first, pairs[i].second, 37);
    const auto mb = b.measure_pair(pairs[i].first, pairs[i].second, 37);
    ASSERT_DOUBLE_EQ(ma.mean_access_ns, mb.mean_access_ns) << "pair " << i;
    ASSERT_EQ(ma.contaminated, mb.contaminated) << "pair " << i;
    ASSERT_DOUBLE_EQ(a.access(pairs[i].second), b.access(pairs[i].second));
  }
  const auto batch_a = a.measure_pairs(pairs, 123);
  const auto batch_b = b.measure_pairs(pairs, 123);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_DOUBLE_EQ(batch_a[i].mean_access_ns, batch_b[i].mean_access_ns)
        << "batch pair " << i;
    ASSERT_EQ(batch_a[i].contaminated, batch_b[i].contaminated);
  }

  // Identical virtual time and counters...
  EXPECT_EQ(clock_a.now_ns(), clock_b.now_ns());
  EXPECT_EQ(a.access_count(), b.access_count());
  EXPECT_EQ(a.measurement_count(), b.measurement_count());
  // ...and identical rng consumption: the next measurement still agrees.
  const auto tail_a = a.measure_pair(pairs[0].first, pairs[0].second, 11);
  const auto tail_b = b.measure_pair(pairs[0].first, pairs[0].second, 11);
  EXPECT_DOUBLE_EQ(tail_a.mean_access_ns, tail_b.mean_access_ns);
  EXPECT_EQ(tail_a.contaminated, tail_b.contaminated);
}

TEST(AccessAccounting, ClosedFormMatchesLoopOnEveryPaperMachine) {
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    SCOPED_TRACE(spec.label());
    expect_identical_accounting(spec, timing_profile_for(spec),
                                1000 + spec.number);
  }
}

TEST(AccessAccounting, ClosedFormMatchesLoopOnFractionalTimings) {
  // Non-integral charge values stress the integer per-access truncation:
  // the closed form multiplies counts by truncated charges, the loop adds
  // them one access at a time — totals must still match exactly.
  timing_model odd{};
  odd.row_hit_ns = 164.37;
  odd.row_closed_ns = 249.91;
  odd.row_conflict_ns = 331.13;
  odd.clflush_ns = 54.49;
  odd.loop_overhead_ns = 15.77;
  odd.access_noise_sigma_ns = 8.31;
  odd.contamination_chance = 0.12;
  expect_identical_accounting(dram::machine_by_number(1), odd, 77);
}

TEST(AccessAccounting, ClosedFormMatchesLoopUnderHeavyBursts) {
  // Bursty contamination reads the burst schedule off the virtual clock;
  // any clock divergence between the modes would desynchronize verdicts.
  timing_model bursty{};
  bursty.burst_mean_interval_s = 0.001;
  bursty.burst_mean_duration_s = 2.0;
  bursty.burst_contamination_factor = 40.0;
  expect_identical_accounting(dram::machine_by_number(3), bursty, 5);
}

TEST(AccessAccounting, TransientFirstAccessesAreCharged) {
  // A measurement's first access to a precharged bank pays row_closed, not
  // the steady-state latency: with zero noise the observed mean must sit
  // exactly at the tally's closed-form value.
  timing_model quiet{};
  quiet.access_noise_sigma_ns = 0.0;
  quiet.contamination_chance = 0.0;
  const auto& spec = dram::machine_by_number(1);
  virtual_clock clock;
  memory_controller mc(spec.mapping, quiet, clock, rng(1));
  // Fresh controller: both banks precharged. Same-bank-different-row pair
  // (bit 20 is row-only on No.1): first access closed, second conflict,
  // rest conflicts.
  const unsigned rounds = 10;
  const auto m = mc.measure_pair(0, 1ull << 20, rounds);
  const double want =
      (quiet.row_closed_ns + (2.0 * rounds - 1.0) * quiet.row_conflict_ns) /
      (2.0 * rounds);
  EXPECT_DOUBLE_EQ(m.mean_access_ns, want);
  // Cross-bank pair (bit 6 switches channels on No.1): the fresh bank pays
  // one activate, the bank left open by the previous measurement hits
  // immediately, and the steady state is all hits.
  const auto cross = mc.measure_pair(1ull << 6, 1ull << 20, rounds);
  const double want_cross =
      (quiet.row_closed_ns + (2.0 * rounds - 1.0) * quiet.row_hit_ns) /
      (2.0 * rounds);
  EXPECT_DOUBLE_EQ(cross.mean_access_ns, want_cross);
}

TEST(AccessAccounting, LoopModeCountsMatchClosedForm) {
  // Counters are mode-independent: 2*rounds accesses per measurement.
  timing_model loop{};
  loop.closed_form_accounting = false;
  const auto& spec = dram::machine_by_number(1);
  virtual_clock clock;
  memory_controller mc(spec.mapping, loop, clock, rng(3));
  (void)mc.measure_pair(0, 64, 250);
  EXPECT_EQ(mc.measurement_count(), 1u);
  EXPECT_EQ(mc.access_count(), 500u);
}

}  // namespace
}  // namespace dramdig::sim

#include "sim/fault_model.h"

#include <gtest/gtest.h>

#include "dram/presets.h"
#include "sim/virtual_clock.h"

namespace dramdig::sim {
namespace {

struct fault_fixture {
  dram::machine_spec spec = dram::machine_by_number(2);  // most vulnerable
  virtual_clock clock;
  fault_model faults;

  explicit fault_fixture(std::uint64_t seed = 7)
      : faults(spec.mapping, spec.vulnerability, timing_model{}, clock, seed) {}

  /// Physical addresses of (bank, row, col 0).
  [[nodiscard]] std::uint64_t at(std::uint64_t bank, std::uint64_t row) const {
    return *spec.mapping.encode(bank, row, 0);
  }
};

TEST(FaultModel, WindowDurationIsOneRefreshInterval) {
  fault_fixture f;
  EXPECT_NEAR(f.faults.window_ns(), 64e6, 1e6);
}

TEST(FaultModel, HammerAdvancesClock) {
  fault_fixture f;
  const auto t0 = f.clock.now_ns();
  (void)f.faults.hammer_pair(f.at(0, 10), f.at(0, 12));
  EXPECT_NEAR(static_cast<double>(f.clock.now_ns() - t0), 64e6, 1e6);
}

TEST(FaultModel, CrossBankPairIsIneffective) {
  fault_fixture f;
  std::uint64_t flips = 0;
  for (int i = 0; i < 200; ++i) {
    const auto out = f.faults.hammer_pair(f.at(0, 10 + i), f.at(1, 12 + i));
    EXPECT_FALSE(out.effective_hammer);
    flips += out.new_flips;
  }
  EXPECT_EQ(flips, 0u);
}

TEST(FaultModel, SameRowPairIsIneffective) {
  fault_fixture f;
  const auto out = f.faults.hammer_pair(f.at(0, 10), f.at(0, 10));
  EXPECT_FALSE(out.effective_hammer);
  EXPECT_EQ(out.new_flips, 0u);
}

TEST(FaultModel, DoubleSidedLayoutRecognized) {
  fault_fixture f;
  const auto out = f.faults.hammer_pair(f.at(3, 100), f.at(3, 102));
  EXPECT_TRUE(out.effective_hammer);
  EXPECT_TRUE(out.effective_double_sided);
}

TEST(FaultModel, NonAdjacentSbdrIsSingleSidedOnly) {
  fault_fixture f;
  const auto out = f.faults.hammer_pair(f.at(3, 100), f.at(3, 200));
  EXPECT_TRUE(out.effective_hammer);
  EXPECT_FALSE(out.effective_double_sided);
}

TEST(FaultModel, DoubleSidedYieldsFarMoreFlipsThanSingleSided) {
  fault_fixture ds(11), ss(11);
  std::uint64_t ds_flips = 0, ss_flips = 0;
  for (std::uint64_t v = 10; v < 2010; v += 4) {
    ds_flips += ds.faults.hammer_pair(ds.at(0, v - 1), ds.at(0, v + 1)).new_flips;
    ss_flips += ss.faults.hammer_pair(ss.at(0, v), ss.at(0, v + 1000)).new_flips;
  }
  EXPECT_GT(ds_flips, 50u);
  EXPECT_GT(ds_flips, ss_flips * 3);
}

TEST(FaultModel, FlipsAreUniqueCells) {
  fault_fixture f;
  // Hammer the same victim repeatedly: the weak cells flip once.
  std::uint64_t total = 0;
  for (int i = 0; i < 50; ++i) {
    total += f.faults.hammer_pair(f.at(0, 99), f.at(0, 101)).new_flips;
  }
  EXPECT_LE(total, f.spec.vulnerability.max_flips_per_row + 2u);
  EXPECT_EQ(total, f.faults.total_flips());
}

TEST(FaultModel, ResetRestoresFlippedCells) {
  fault_fixture f;
  std::uint64_t first = 0;
  for (int i = 0; i < 50; ++i) {
    first += f.faults.hammer_pair(f.at(0, 99), f.at(0, 101)).new_flips;
  }
  f.faults.reset_flips();
  EXPECT_EQ(f.faults.total_flips(), 0u);
  std::uint64_t second = 0;
  for (int i = 0; i < 50; ++i) {
    second += f.faults.hammer_pair(f.at(0, 99), f.at(0, 101)).new_flips;
  }
  EXPECT_EQ(first, second);  // same weak cells, deterministic weakness
}

TEST(FaultModel, WeakCellsAreStablePerMachineSeed) {
  fault_fixture a(5), b(5), c(6);
  int same_ab = 0, same_ac = 0;
  for (std::uint64_t row = 0; row < 200; ++row) {
    same_ab += a.faults.weak_cells(0, row) == b.faults.weak_cells(0, row);
    same_ac += a.faults.weak_cells(0, row) == c.faults.weak_cells(0, row);
  }
  EXPECT_EQ(same_ab, 200);
  EXPECT_LT(same_ac, 200);  // different machines have different weak cells
}

TEST(FaultModel, WeakCellDensityMatchesModel) {
  fault_fixture f;
  int zero = 0;
  for (std::uint64_t row = 0; row < 3000; ++row) {
    if (f.faults.weak_cells(1, row) == 0) ++zero;
  }
  // ~37% of rows have no weak cell.
  EXPECT_NEAR(zero / 3000.0, 0.37, 0.05);
}

TEST(FaultModel, FlippedInRowTracksVictims) {
  fault_fixture f;
  // Find a victim row with weak cells, hammer until it flips.
  std::uint64_t victim = 0;
  for (std::uint64_t v = 50; v < 500; ++v) {
    if (f.faults.weak_cells(0, v) > 0) {
      victim = v;
      break;
    }
  }
  ASSERT_GT(victim, 0u);
  EXPECT_EQ(f.faults.flipped_in_row(0, victim), 0u);
  for (int w = 0; w < 60; ++w) {
    (void)f.faults.hammer_pair(f.at(0, victim - 1), f.at(0, victim + 1));
  }
  EXPECT_GT(f.faults.flipped_in_row(0, victim), 0u);
  EXPECT_LE(f.faults.flipped_in_row(0, victim),
            f.faults.weak_cells(0, victim));
  f.faults.reset_flips();
  EXPECT_EQ(f.faults.flipped_in_row(0, victim), 0u);
}

TEST(FaultModel, FlippedInRowIgnoresOtherRows) {
  fault_fixture f;
  for (int w = 0; w < 60; ++w) {
    (void)f.faults.hammer_pair(f.at(0, 99), f.at(0, 101));
  }
  // Rows far away remain clean.
  EXPECT_EQ(f.faults.flipped_in_row(0, 5000), 0u);
  EXPECT_EQ(f.faults.flipped_in_row(3, 100), 0u);
}

TEST(FaultModel, VulnerabilityProfilesScaleFlips) {
  // No.5 (barely vulnerable) vs No.2 (highly vulnerable), same workload.
  auto run = [](int machine, std::uint64_t seed) {
    const auto spec = dram::machine_by_number(machine);
    virtual_clock clock;
    fault_model faults(spec.mapping, spec.vulnerability, timing_model{}, clock,
                       seed);
    std::uint64_t flips = 0;
    for (std::uint64_t v = 10; v < 1210; v += 4) {
      const auto a = *spec.mapping.encode(0, v - 1, 0);
      const auto b = *spec.mapping.encode(0, v + 1, 0);
      flips += faults.hammer_pair(a, b).new_flips;
    }
    return flips;
  };
  EXPECT_GT(run(2, 3), 20 * run(5, 3) + 10);
}

}  // namespace
}  // namespace dramdig::sim

#include "sim/memory_controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "dram/presets.h"
#include "sim/virtual_clock.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dramdig::sim {
namespace {

// Contracts of the counter-rng measurement tail: the shard-parallel noise
// pass is bit-identical on any thread count (the whole point of counter
// addressing), the legacy mt19937 path survives as an exact sequential
// oracle behind timing_model::use_counter_rng = false, and the two streams
// — while concretely different — are statistically the same channel.

struct tail_fixture {
  dram::machine_spec spec = dram::machine_by_number(1);
  virtual_clock clock;
  timing_model timing{};
  memory_controller mc;

  explicit tail_fixture(std::uint64_t seed = 1, timing_model t = {})
      : timing(t), mc(spec.mapping, t, clock, rng(seed)) {}
};

/// A deterministic batch large enough to cross the controller's parallel
/// threshold, so the sharded tail actually engages.
[[nodiscard]] std::vector<addr_pair> big_batch(std::uint64_t memory_bytes,
                                               std::size_t count = 6000) {
  rng addr(77);
  std::vector<addr_pair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(addr.below(memory_bytes) & ~63ull,
                       addr.below(memory_bytes) & ~63ull);
  }
  return pairs;
}

TEST(CounterTail, BitIdenticalAcrossThreadCounts) {
  // Identical controllers, worker pools of 1, 4 and 8 threads injected.
  // Every observable — measurements, virtual clock, counters, row-buffer
  // state — must agree exactly; the pool only changes who computes what.
  tail_fixture one(9), four(9), eight(9);
  worker_pool p1(1), p4(4), p8(8);
  one.mc.set_worker_pool(&p1);
  four.mc.set_worker_pool(&p4);
  eight.mc.set_worker_pool(&p8);

  const auto pairs = big_batch(one.spec.memory_bytes);
  const auto r1 = one.mc.measure_pairs(pairs, 300);
  const auto r4 = four.mc.measure_pairs(pairs, 300);
  const auto r8 = eight.mc.measure_pairs(pairs, 300);

  ASSERT_EQ(r1.size(), pairs.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r4[i].mean_access_ns, r1[i].mean_access_ns) << i;
    EXPECT_DOUBLE_EQ(r8[i].mean_access_ns, r1[i].mean_access_ns) << i;
    EXPECT_EQ(r4[i].contaminated, r1[i].contaminated) << i;
    EXPECT_EQ(r8[i].contaminated, r1[i].contaminated) << i;
  }
  EXPECT_EQ(four.clock.now_ns(), one.clock.now_ns());
  EXPECT_EQ(eight.clock.now_ns(), one.clock.now_ns());
  EXPECT_EQ(four.mc.access_count(), one.mc.access_count());
  EXPECT_EQ(eight.mc.access_count(), one.mc.access_count());
  EXPECT_EQ(four.mc.measurement_count(), one.mc.measurement_count());
  // Row-buffer tables converged identically: the next access agrees.
  // (access() is stateful — sample the reference controller only once.)
  const double next = one.mc.access(0);
  EXPECT_DOUBLE_EQ(four.mc.access(0), next);
  EXPECT_DOUBLE_EQ(eight.mc.access(0), next);
}

TEST(CounterTail, InjectedPoolBatchStillMatchesScalarSequence) {
  // Thread identity composed with the batch contract: an 8-thread batch
  // equals the scalar measure_pair sequence, draw for draw.
  tail_fixture scalar(13), batched(13);
  worker_pool p8(8);
  batched.mc.set_worker_pool(&p8);

  const auto pairs = big_batch(scalar.spec.memory_bytes, 5000);
  std::vector<pair_measurement> expected;
  expected.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    expected.push_back(scalar.mc.measure_pair(a, b, 200));
  }
  const auto got = batched.mc.measure_pairs(pairs, 200);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].mean_access_ns, expected[i].mean_access_ns) << i;
    EXPECT_EQ(got[i].contaminated, expected[i].contaminated) << i;
  }
  EXPECT_EQ(batched.clock.now_ns(), scalar.clock.now_ns());
}

TEST(CounterTail, LegacyOracleBatchMatchesScalarSequence) {
  // With use_counter_rng off the historical sequential mt19937 tail runs;
  // batch and scalar must still be bit-identical (the pre-counter
  // contract, pinned so the oracle stays a faithful replica).
  timing_model legacy{};
  legacy.use_counter_rng = false;
  tail_fixture scalar(17, legacy), batched(17, legacy);

  const auto pairs = big_batch(scalar.spec.memory_bytes, 5000);
  std::vector<pair_measurement> expected;
  expected.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    expected.push_back(scalar.mc.measure_pair(a, b, 200));
  }
  const auto got = batched.mc.measure_pairs(pairs, 200);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].mean_access_ns, expected[i].mean_access_ns) << i;
    EXPECT_EQ(got[i].contaminated, expected[i].contaminated) << i;
  }
  EXPECT_EQ(batched.clock.now_ns(), scalar.clock.now_ns());
  EXPECT_EQ(batched.mc.access_count(), scalar.mc.access_count());
  EXPECT_DOUBLE_EQ(batched.mc.access(0), scalar.mc.access(0));
}

TEST(CounterTail, CounterAndLegacyStreamsAgreeStatistically) {
  // The two noise modes are different concrete streams of the same
  // distributions. Over many measurements of one SBDR pair the sample
  // means must agree within the standard error of the channel (sigma/
  // sqrt(rounds) per measurement, averaged over kMeas measurements), and
  // the contamination rates must match the configured chance.
  timing_model legacy{};
  legacy.use_counter_rng = false;
  legacy.burst_mean_interval_s = 1e9;  // no bursts: rate is exactly chance
  timing_model counter = legacy;
  counter.use_counter_rng = true;

  tail_fixture lf(21, legacy), cf(21, counter);
  constexpr int kMeas = 2000;
  constexpr unsigned kRounds = 100;
  const addr_pair sbdr{0, 1ull << 20};  // bit 20 is row-only on No.1

  double legacy_sum = 0.0, counter_sum = 0.0;
  int legacy_contam = 0, counter_contam = 0;
  for (int i = 0; i < kMeas; ++i) {
    const auto lm = lf.mc.measure_pair(sbdr.first, sbdr.second, kRounds);
    const auto cm = cf.mc.measure_pair(sbdr.first, sbdr.second, kRounds);
    if (!lm.contaminated) legacy_sum += lm.mean_access_ns;
    if (!cm.contaminated) counter_sum += cm.mean_access_ns;
    legacy_contam += lm.contaminated;
    counter_contam += cm.contaminated;
  }
  const double legacy_mean = legacy_sum / (kMeas - legacy_contam);
  const double counter_mean = counter_sum / (kMeas - counter_contam);
  // Clean means sit on the ideal conflict latency for both streams.
  EXPECT_NEAR(legacy_mean, lf.timing.row_conflict_ns, 0.1);
  EXPECT_NEAR(counter_mean, cf.timing.row_conflict_ns, 0.1);
  EXPECT_NEAR(legacy_mean, counter_mean, 0.1);
  // Contamination rates both track the configured 1% chance.
  EXPECT_NEAR(legacy_contam / double(kMeas), legacy.contamination_chance,
              0.01);
  EXPECT_NEAR(counter_contam / double(kMeas), counter.contamination_chance,
              0.01);
}

}  // namespace
}  // namespace dramdig::sim

#include "sim/memory_controller.h"

#include <gtest/gtest.h>

#include "dram/presets.h"
#include "sim/virtual_clock.h"
#include "util/rng.h"

namespace dramdig::sim {
namespace {

struct controller_fixture {
  dram::machine_spec spec = dram::machine_by_number(1);
  virtual_clock clock;
  timing_model timing{};
  memory_controller mc;

  explicit controller_fixture(std::uint64_t seed = 1, timing_model t = {})
      : timing(t), mc(spec.mapping, t, clock, rng(seed)) {}

  /// Two addresses in the same bank, different rows.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> sbdr_pair() const {
    const std::uint64_t p = 0;
    // Flipping a pure row bit keeps the bank: bit 20 is row-only on No.1.
    return {p, p | (1ull << 20)};
  }
  /// Two addresses in different banks.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> cross_bank_pair()
      const {
    // Bit 6 is the channel function on No.1.
    return {0, 1ull << 6};
  }
  /// Same bank, same row, different column.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> same_row_pair() const {
    return {0, 1ull << 8};
  }
};

TEST(MemoryController, IdealLatencyClassifiesRelationships) {
  controller_fixture f;
  const auto [a1, a2] = f.sbdr_pair();
  EXPECT_DOUBLE_EQ(f.mc.ideal_pair_latency_ns(a1, a2),
                   f.timing.row_conflict_ns);
  const auto [b1, b2] = f.cross_bank_pair();
  EXPECT_DOUBLE_EQ(f.mc.ideal_pair_latency_ns(b1, b2), f.timing.row_hit_ns);
  const auto [c1, c2] = f.same_row_pair();
  EXPECT_DOUBLE_EQ(f.mc.ideal_pair_latency_ns(c1, c2), f.timing.row_hit_ns);
}

TEST(MemoryController, MeasurePairTracksIdealWithinNoise) {
  controller_fixture f;
  const auto [a1, a2] = f.sbdr_pair();
  for (int i = 0; i < 20; ++i) {
    const auto m = f.mc.measure_pair(a1, a2, 1000);
    if (!m.contaminated) {
      EXPECT_NEAR(m.mean_access_ns, f.timing.row_conflict_ns, 2.0);
    }
  }
}

TEST(MemoryController, MeasurementSeparationIsClean) {
  // The SBDR gap must be much larger than the sampling noise — this is
  // the whole premise of the timing channel.
  controller_fixture f;
  const auto [a1, a2] = f.sbdr_pair();
  const auto [b1, b2] = f.cross_bank_pair();
  for (int i = 0; i < 50; ++i) {
    const double slow = f.mc.measure_pair(a1, a2, 1000).mean_access_ns;
    const double fast = f.mc.measure_pair(b1, b2, 1000).mean_access_ns;
    EXPECT_GT(slow, fast);
  }
}

TEST(MemoryController, AccessUpdatesRowBuffer) {
  controller_fixture f;
  // First touch: bank closed. Second touch same row (bit 7 is a column
  // bit on No.1; bit 6 would switch channels): hit. Conflict after
  // another row in the same bank.
  const double first = f.mc.access(0);
  EXPECT_NEAR(first, f.timing.row_closed_ns, 50);
  const double hit = f.mc.access(128);
  EXPECT_NEAR(hit, f.timing.row_hit_ns, 50);
  const double conflict = f.mc.access(1ull << 20);
  EXPECT_NEAR(conflict, f.timing.row_conflict_ns, 50);
}

TEST(MemoryController, ClockAdvancesWithWork) {
  controller_fixture f;
  const std::uint64_t before = f.clock.now_ns();
  (void)f.mc.measure_pair(0, 1ull << 20, 500);
  const std::uint64_t after = f.clock.now_ns();
  // 1000 accesses x ~(330 + 55 + 15) ns.
  EXPECT_GT(after - before, 300'000u);
  EXPECT_LT(after - before, 600'000u);
}

TEST(MemoryController, CountsAccessesAndMeasurements) {
  controller_fixture f;
  (void)f.mc.measure_pair(0, 64, 250);
  (void)f.mc.access(0);
  EXPECT_EQ(f.mc.measurement_count(), 1u);
  EXPECT_EQ(f.mc.access_count(), 501u);
}

TEST(MemoryController, RejectsOutOfRangeAddresses) {
  controller_fixture f;
  EXPECT_THROW((void)f.mc.access(f.spec.memory_bytes), contract_violation);
  EXPECT_THROW((void)f.mc.measure_pair(0, f.spec.memory_bytes, 10),
               contract_violation);
}

TEST(MemoryController, ContaminationIsOneSided) {
  timing_model noisy{};
  noisy.contamination_chance = 0.5;
  controller_fixture f(3, noisy);
  const auto [b1, b2] = f.cross_bank_pair();
  for (int i = 0; i < 200; ++i) {
    const auto m = f.mc.measure_pair(b1, b2, 1000);
    // Contamination only ever inflates the reading.
    EXPECT_GT(m.mean_access_ns, f.timing.row_hit_ns - 5.0);
  }
}

TEST(MemoryController, ContaminationFrequencyMatchesConfig) {
  timing_model noisy{};
  noisy.contamination_chance = 0.25;
  noisy.burst_mean_interval_s = 1e9;  // no bursts
  controller_fixture f(4, noisy);
  int contaminated = 0;
  for (int i = 0; i < 2000; ++i) {
    contaminated += f.mc.measure_pair(0, 64, 10).contaminated;
  }
  EXPECT_NEAR(contaminated / 2000.0, 0.25, 0.05);
}

TEST(MemoryController, BurstsElevateContamination) {
  timing_model bursty{};
  bursty.contamination_chance = 0.01;
  bursty.burst_mean_interval_s = 0.001;  // essentially always bursting
  bursty.burst_mean_duration_s = 1000.0;
  bursty.burst_contamination_factor = 50.0;
  controller_fixture f(5, bursty);
  int contaminated = 0;
  for (int i = 0; i < 500; ++i) {
    contaminated += f.mc.measure_pair(0, 64, 10).contaminated;
  }
  // 0.01 * 50 = 0.5 while bursting.
  EXPECT_GT(contaminated, 150);
}

TEST(MemoryController, BatchMatchesScalarSequence) {
  // The batched engine's core contract: measure_pairs is bit-identical to
  // the equivalent sequence of scalar measure_pair calls — same noise
  // draws, same clock, same counters, same row-buffer state.
  controller_fixture scalar(11), batched(11);
  rng addr(77);
  std::vector<addr_pair> pairs;
  for (int i = 0; i < 5000; ++i) {
    pairs.emplace_back(addr.below(scalar.spec.memory_bytes) & ~63ull,
                       addr.below(scalar.spec.memory_bytes) & ~63ull);
  }
  std::vector<pair_measurement> expected;
  expected.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    expected.push_back(scalar.mc.measure_pair(a, b, 300));
  }
  const auto got = batched.mc.measure_pairs(pairs, 300);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].mean_access_ns, expected[i].mean_access_ns) << i;
    EXPECT_EQ(got[i].contaminated, expected[i].contaminated) << i;
  }
  EXPECT_EQ(batched.clock.now_ns(), scalar.clock.now_ns());
  EXPECT_EQ(batched.mc.access_count(), scalar.mc.access_count());
  EXPECT_EQ(batched.mc.measurement_count(), scalar.mc.measurement_count());
  // Row-buffer state converged identically: subsequent accesses agree.
  EXPECT_DOUBLE_EQ(batched.mc.access(0), scalar.mc.access(0));
}

TEST(MemoryController, BatchRejectsOutOfRangeBeforeMeasuring) {
  controller_fixture f;
  const std::vector<addr_pair> bad{{0, 64}, {f.spec.memory_bytes, 0}};
  EXPECT_THROW((void)f.mc.measure_pairs(bad, 10), contract_violation);
  // Validation happens in the decode phase, before any noise is drawn.
  EXPECT_EQ(f.mc.measurement_count(), 0u);
}

TEST(MemoryController, EmptyBatchIsANoOp) {
  controller_fixture f;
  EXPECT_TRUE(f.mc.measure_pairs({}, 10).empty());
  EXPECT_EQ(f.mc.access_count(), 0u);
}

TEST(MemoryController, DeterministicForEqualSeeds) {
  controller_fixture a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.mc.measure_pair(0, 1ull << 20, 100).mean_access_ns,
                     b.mc.measure_pair(0, 1ull << 20, 100).mean_access_ns);
  }
}

}  // namespace
}  // namespace dramdig::sim

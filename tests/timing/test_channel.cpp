#include "timing/channel.h"

#include <gtest/gtest.h>

#include "dram/presets.h"
#include "sim/virtual_clock.h"
#include "util/rng.h"

namespace dramdig::timing {
namespace {

struct channel_fixture {
  dram::machine_spec spec = dram::machine_by_number(1);
  sim::virtual_clock clock;
  sim::timing_model timing{};
  sim::memory_controller mc;
  channel ch;

  explicit channel_fixture(std::uint64_t seed = 1,
                           sim::timing_model t = {},
                           channel_config cfg = {})
      : timing(t), mc(spec.mapping, t, clock, rng(seed)),
        ch(mc, cfg, rng(seed ^ 0xc)) {}

  /// Random pool spanning banks and rows.
  [[nodiscard]] std::vector<std::uint64_t> pool(std::size_t n,
                                                std::uint64_t seed) const {
    rng r(seed);
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(r.below(spec.memory_bytes) & ~std::uint64_t{63});
    }
    return out;
  }
};

TEST(Channel, CalibrationLandsBetweenModes) {
  channel_fixture f;
  const double t = f.ch.calibrate(f.pool(512, 9));
  EXPECT_GT(t, f.timing.row_hit_ns);
  EXPECT_LT(t, f.timing.row_conflict_ns);
  EXPECT_TRUE(f.ch.calibrated());
}

TEST(Channel, UncalibratedChannelRefusesToClassify) {
  channel_fixture f;
  EXPECT_FALSE(f.ch.calibrated());
  EXPECT_THROW((void)f.ch.is_sbdr(0, 64), contract_violation);
}

TEST(Channel, ClassifiesGroundTruthRelationships) {
  channel_fixture f;
  (void)f.ch.calibrate(f.pool(512, 9));
  // Row-only bit flip on No.1 (bit 20): same bank, different row.
  EXPECT_TRUE(f.ch.is_sbdr(0, 1ull << 20));
  // Channel bit flip (bit 6): different bank.
  EXPECT_FALSE(f.ch.is_sbdr(0, 1ull << 6));
  // Column bit flip (bit 8): same row.
  EXPECT_FALSE(f.ch.is_sbdr(0, 1ull << 8));
}

TEST(Channel, FastAndStrictAgreeOnCleanMachine) {
  channel_fixture f;
  (void)f.ch.calibrate(f.pool(512, 10));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f.ch.is_sbdr_fast(0, 1ull << 20),
              f.ch.is_sbdr_strict(0, 1ull << 20));
  }
}

TEST(Channel, StrictRejectsContaminationFalsePositives) {
  // Crank contamination so single samples frequently lie; the min-filter
  // must still classify a non-conflicting pair as fast.
  sim::timing_model noisy{};
  noisy.contamination_chance = 0.4;
  noisy.burst_mean_interval_s = 1e9;
  channel_fixture f(3, noisy);
  (void)f.ch.calibrate(f.pool(1024, 11));
  int strict_wrong = 0;
  for (int i = 0; i < 200; ++i) {
    strict_wrong += f.ch.is_sbdr_strict(0, 1ull << 6);
  }
  EXPECT_LE(strict_wrong, 4);
  // And no false negatives on real conflicts.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.ch.is_sbdr_strict(0, 1ull << 20));
  }
}

TEST(Channel, LatencyMedianFiltersOutliers) {
  sim::timing_model noisy{};
  noisy.contamination_chance = 0.25;
  noisy.burst_mean_interval_s = 1e9;
  channel_fixture f(4, noisy);
  (void)f.ch.calibrate(f.pool(1024, 12));
  int wrong = 0;
  for (int i = 0; i < 200; ++i) {
    if (f.ch.latency(0, 1ull << 6) > f.ch.threshold_ns()) ++wrong;
  }
  // Median-of-3 needs two contaminated samples to lie: ~3 * 0.2^2 ~ 12%.
  EXPECT_LT(wrong, 40);
}

TEST(Channel, CalibrationSamplesExposed) {
  channel_config cfg{};
  cfg.calibration_pairs = 300;
  channel_fixture f(5, {}, cfg);
  (void)f.ch.calibrate(f.pool(256, 13));
  EXPECT_EQ(f.ch.calibration_samples().size(), 300u);
}

TEST(Channel, AdaptiveCalibratorStopsEarlyWithSaneThreshold) {
  // The adaptive schedule must spend well under the fixed budget on a
  // clean machine — the valley stabilizes after a few hundred pairs — and
  // still land the threshold between the latency modes.
  channel_fixture f(8);
  const double t = f.ch.calibrate(f.pool(512, 9));
  EXPECT_GT(t, f.timing.row_hit_ns);
  EXPECT_LT(t, f.timing.row_conflict_ns);
  EXPECT_GE(f.ch.calibration_pairs_used(), 300u);
  EXPECT_LT(f.ch.calibration_pairs_used(), 1200u);
  // The channel still classifies ground truth correctly.
  EXPECT_TRUE(f.ch.is_sbdr(0, 1ull << 20));
  EXPECT_FALSE(f.ch.is_sbdr(0, 1ull << 6));
}

TEST(Channel, FixedScheduleFlagRestoresFullBudget) {
  channel_config cfg{};
  cfg.adaptive_calibration = false;
  channel_fixture f(8, {}, cfg);
  (void)f.ch.calibrate(f.pool(512, 9));
  EXPECT_EQ(f.ch.calibration_pairs_used(), 1200u);
  EXPECT_EQ(f.ch.calibration_samples().size(), 1200u);
}

TEST(Channel, AdaptiveCalibratorSurvivesNoisyProfile) {
  // Contamination widens the histogram; the stability window must not
  // latch a premature threshold that misclassifies ground truth.
  sim::timing_model noisy{};
  noisy.contamination_chance = 0.04;
  noisy.contamination_max_ns = 500.0;
  channel_fixture f(9, noisy);
  (void)f.ch.calibrate(f.pool(1024, 15));
  int errors = 0;
  for (int i = 0; i < 100; ++i) {
    errors += !f.ch.is_sbdr_strict(0, 1ull << 20);
    errors += f.ch.is_sbdr_strict(0, 1ull << 8);
  }
  EXPECT_LE(errors, 2);
}

TEST(Channel, InjectedThresholdCalibratesTheChannel) {
  // Baselines calibrate their own way and inject the result; the channel
  // must accept it and classify with it.
  channel_fixture f(10);
  EXPECT_FALSE(f.ch.calibrated());
  EXPECT_THROW(f.ch.set_threshold(0.0), contract_violation);
  f.ch.set_threshold((f.timing.row_hit_ns + f.timing.row_conflict_ns) / 2);
  ASSERT_TRUE(f.ch.calibrated());
  EXPECT_TRUE(f.ch.is_sbdr(0, 1ull << 20));
  EXPECT_FALSE(f.ch.is_sbdr(0, 1ull << 6));
}

TEST(Channel, MeasurementCountScalesWithSamples) {
  channel_config cfg{};
  cfg.samples_per_latency = 5;
  channel_fixture f(6, {}, cfg);
  (void)f.ch.calibrate(f.pool(256, 14));
  const auto before = f.mc.measurement_count();
  (void)f.ch.latency(0, 64);
  EXPECT_EQ(f.mc.measurement_count() - before, 5u);
}

TEST(Channel, FastBatchMatchesScalarLoop) {
  channel_fixture a(21), b(21);
  (void)a.ch.calibrate(a.pool(512, 9));
  (void)b.ch.calibrate(b.pool(512, 9));
  const auto partners = a.pool(400, 33);
  std::vector<char> scalar;
  scalar.reserve(partners.size());
  for (std::uint64_t p : partners) {
    scalar.push_back(a.ch.is_sbdr_fast(0, p) ? 1 : 0);
  }
  const auto batch = b.ch.is_sbdr_fast_batch(0, partners);
  EXPECT_EQ(batch, scalar);
  EXPECT_EQ(a.clock.now_ns(), b.clock.now_ns());
}

TEST(Channel, StrictBatchMatchesScalarLoop) {
  channel_fixture a(22), b(22);
  (void)a.ch.calibrate(a.pool(512, 9));
  (void)b.ch.calibrate(b.pool(512, 9));
  std::vector<sim::addr_pair> pairs;
  for (unsigned i = 0; i < 64; ++i) {
    pairs.emplace_back(0, (std::uint64_t{i} << 14) & (a.spec.memory_bytes - 1));
  }
  std::vector<char> scalar;
  scalar.reserve(pairs.size());
  for (const auto& [p1, p2] : pairs) {
    scalar.push_back(a.ch.is_sbdr_strict(p1, p2) ? 1 : 0);
  }
  EXPECT_EQ(b.ch.is_sbdr_strict_batch(pairs), scalar);
  EXPECT_EQ(a.mc.measurement_count(), b.mc.measurement_count());
}

TEST(Channel, BatchRequiresCalibration) {
  channel_fixture f;
  const std::vector<std::uint64_t> partners{64};
  EXPECT_THROW((void)f.ch.is_sbdr_fast_batch(0, partners),
               contract_violation);
}

TEST(Channel, WorksOnNoisyMachineProfile) {
  // End-to-end sanity on the No.7-class noise profile: strict classifier
  // still separates the modes.
  channel_fixture f(7, [] {
    sim::timing_model t{};
    t.contamination_chance = 0.04;
    t.contamination_max_ns = 500.0;
    return t;
  }());
  (void)f.ch.calibrate(f.pool(1024, 15));
  int errors = 0;
  for (int i = 0; i < 100; ++i) {
    errors += !f.ch.is_sbdr_strict(0, 1ull << 20);
    errors += f.ch.is_sbdr_strict(0, 1ull << 8);
  }
  EXPECT_LE(errors, 2);
}

}  // namespace
}  // namespace dramdig::timing

// End-to-end reproduction of Table II: DRAMDig must deterministically
// uncover the exact mapping of every paper machine.
#include <gtest/gtest.h>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"

namespace dramdig::core {
namespace {

class DramDigOnPaperMachine : public ::testing::TestWithParam<int> {};

TEST_P(DramDigOnPaperMachine, UncoversGroundTruthMapping) {
  const auto& spec = dram::machine_by_number(GetParam());
  environment env(spec, /*seed=*/2024);
  dramdig_tool tool(env);
  const dramdig_report report = tool.run();

  ASSERT_TRUE(report.success) << report.failure_reason;
  ASSERT_TRUE(report.mapping.has_value());
  EXPECT_TRUE(report.mapping->equivalent_to(spec.mapping))
      << "got:   " << report.mapping->describe() << "\n"
      << "truth: " << spec.mapping.describe();
  EXPECT_TRUE(report.mapping->is_bijective());
  EXPECT_EQ(report.assumed_bank_count, spec.total_banks());
}

TEST_P(DramDigOnPaperMachine, ReportsPlausibleCost) {
  const auto& spec = dram::machine_by_number(GetParam());
  environment env(spec, /*seed=*/11);
  dramdig_tool tool(env);
  const dramdig_report report = tool.run();
  ASSERT_TRUE(report.success);
  // "within minutes": well under DRAMA's hours on every machine.
  EXPECT_GT(report.total_seconds, 0.1);
  EXPECT_LT(report.total_seconds, 30 * 60.0);
  EXPECT_GT(report.total_measurements, 100u);
  // Phase accounting adds up (within the odd measurement between phases).
  const std::uint64_t phase_sum =
      report.calibration.measurements + report.coarse.measurements +
      report.selection.measurements + report.partition.measurements +
      report.functions.measurements + report.fine.measurements;
  EXPECT_EQ(phase_sum, report.total_measurements);
}

INSTANTIATE_TEST_SUITE_P(AllNineMachines, DramDigOnPaperMachine,
                         ::testing::Range(1, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "No" + std::to_string(info.param);
                         });

class DramDigDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(DramDigDeterminism, SameMappingAcrossSeeds) {
  // The paper's headline property: deterministic output. Different seeds
  // change noise, allocation layout and pivot choices; the uncovered
  // mapping must not change.
  const auto& spec = dram::machine_by_number(GetParam());
  for (std::uint64_t seed : {1ull, 99ull, 777ull}) {
    environment env(spec, seed);
    dramdig_tool tool(env);
    const auto report = tool.run();
    ASSERT_TRUE(report.success) << "seed " << seed << ": "
                                << report.failure_reason;
    EXPECT_TRUE(report.mapping->equivalent_to(spec.mapping))
        << "seed " << seed;
  }
}

// The noisy mobile units are the interesting determinism cases (DRAMA
// fails there); include a clean desktop and the wide-function machine too.
INSTANTIATE_TEST_SUITE_P(KeyMachines, DramDigDeterminism,
                         ::testing::Values(2, 3, 7, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "No" + std::to_string(info.param);
                         });

TEST(DramDigPhases, PartitionDominatesOnLargePoolMachines) {
  // Section IV-B: "most of the time cost comes from the physical address
  // partition".
  environment env(dram::machine_by_number(6), 5);
  dramdig_tool tool(env);
  const auto report = tool.run();
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.partition.seconds, report.calibration.seconds);
  EXPECT_GT(report.partition.seconds, report.coarse.seconds);
  EXPECT_GT(report.partition.seconds, report.total_seconds * 0.5);
}

TEST(DramDigPoolSizes, MatchSectionIVB) {
  // No.6/No.9 select the most addresses (almost 16,000).
  environment env6(dram::machine_by_number(6), 3);
  const auto r6 = dramdig_tool(env6).run();
  ASSERT_TRUE(r6.success);
  EXPECT_EQ(r6.pool_size, 16384u);

  environment env8(dram::machine_by_number(8), 3);
  const auto r8 = dramdig_tool(env8).run();
  ASSERT_TRUE(r8.success);
  EXPECT_LT(r8.pool_size, r6.pool_size / 10);
}

TEST(DramDigFailure, FragmentedMemoryReportsCleanly) {
  environment env(dram::machine_by_number(3), 5, /*fragmentation=*/0.98);
  dramdig_tool tool(env);
  const auto report = tool.run();
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure_reason.find("contiguous"), std::string::npos);
  EXPECT_GE(report.total_seconds, 0.0);
}

}  // namespace
}  // namespace dramdig::core

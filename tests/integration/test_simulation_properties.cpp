// Cross-cutting simulation properties: invariants that hold across the
// whole platform rather than within one module.
#include <gtest/gtest.h>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "rowhammer/harness.h"
#include "sim/profiles.h"
#include "util/log.h"

namespace dramdig {
namespace {

TEST(SimulationProperties, FlipYieldScalesWithDuration) {
  // Twice the hammer time, roughly twice the (fresh-victim) flips.
  const auto& spec = dram::machine_by_number(2);
  auto flips_for = [&](double seconds) {
    sim::machine machine(spec, 12, sim::timing_profile_for(spec));
    rng r(12);
    rowhammer::hammer_config cfg{};
    cfg.duration_seconds = seconds;
    return rowhammer::run_double_sided_test(machine, spec.mapping, r, cfg)
        .bit_flips;
  };
  const auto short_run = flips_for(60);
  const auto long_run = flips_for(240);
  EXPECT_GT(long_run, short_run * 2);
  EXPECT_LT(long_run, short_run * 8 + 40);
}

TEST(SimulationProperties, VirtualTimeIsDeterministic) {
  // Same spec + seed => bit-identical virtual cost, the property Fig. 2
  // rests on.
  auto run_seconds = [](std::uint64_t seed) {
    core::environment env(dram::machine_by_number(4), seed);
    core::dramdig_tool tool(env);
    return tool.run().total_seconds;
  };
  EXPECT_DOUBLE_EQ(run_seconds(77), run_seconds(77));
}

TEST(SimulationProperties, MeasurementCountDrivesVirtualTime) {
  // Virtual seconds and measurement counts move together: the cost model
  // is measurements, not wall luck.
  core::environment small_env(dram::machine_by_number(4), 3);
  const auto small = core::dramdig_tool(small_env).run();
  core::environment large_env(dram::machine_by_number(6), 3);
  const auto large = core::dramdig_tool(large_env).run();
  ASSERT_TRUE(small.success);
  ASSERT_TRUE(large.success);
  EXPECT_GT(large.total_measurements, small.total_measurements * 10);
  EXPECT_GT(large.total_seconds, small.total_seconds * 10);
}

TEST(SimulationProperties, EnvironmentSeedControlsEverything) {
  // Two environments with equal seed produce identical pipelines end to
  // end (mapping AND cost), different seeds may differ in cost only.
  const auto& spec = dram::machine_by_number(8);
  core::environment a(spec, 5), b(spec, 5), c(spec, 6);
  const auto ra = core::dramdig_tool(a).run();
  const auto rb = core::dramdig_tool(b).run();
  const auto rc = core::dramdig_tool(c).run();
  EXPECT_DOUBLE_EQ(ra.total_seconds, rb.total_seconds);
  ASSERT_TRUE(ra.mapping && rb.mapping && rc.mapping);
  EXPECT_TRUE(ra.mapping->equivalent_to(*rb.mapping));
  EXPECT_TRUE(ra.mapping->equivalent_to(*rc.mapping));  // determinism
}

TEST(SimulationProperties, LogLevelsAreHonored) {
  set_log_level(log_level::off);
  EXPECT_EQ(current_log_level(), log_level::off);
  set_log_level(log_level::debug);
  EXPECT_EQ(current_log_level(), log_level::debug);
  // Emitting at any level must not crash regardless of the setting.
  log_info("info line");
  log_debug("debug line");
  log_error("error line");
  set_log_level(log_level::off);
}

TEST(SimulationProperties, TimingProfilesOrderByQuality) {
  dram::machine_spec clean = dram::machine_by_number(1);
  dram::machine_spec mobile = dram::machine_by_number(2);
  dram::machine_spec noisy = dram::machine_by_number(3);
  const auto tc = sim::timing_profile_for(clean);
  const auto tm = sim::timing_profile_for(mobile);
  const auto tn = sim::timing_profile_for(noisy);
  EXPECT_LT(tc.contamination_chance, tm.contamination_chance);
  EXPECT_LT(tm.contamination_chance, tn.contamination_chance);
  EXPECT_GT(tc.burst_mean_interval_s, tn.burst_mean_interval_s);
}

}  // namespace
}  // namespace dramdig

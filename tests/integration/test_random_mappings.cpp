// Property suite: DRAMDig is generic — it must recover arbitrary
// Intel-shaped mappings, not just the nine published ones. Machines are
// generated with random (but valid) XOR-function layouts across address
// widths and bank counts.
#include <gtest/gtest.h>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"

namespace dramdig::core {
namespace {

struct random_case {
  unsigned address_bits;
  unsigned functions;
  std::uint64_t seed;
};

class DramDigOnRandomMachine : public ::testing::TestWithParam<random_case> {};

TEST_P(DramDigOnRandomMachine, RecoversGeneratedMapping) {
  const auto p = GetParam();
  const dram::machine_spec spec =
      dram::random_machine(p.address_bits, p.functions, p.seed);
  environment env(spec, p.seed ^ 0xabcdef);
  dramdig_tool tool(env);
  const auto report = tool.run();
  ASSERT_TRUE(report.success)
      << "mapping " << spec.mapping.describe() << "\n"
      << report.failure_reason;
  EXPECT_TRUE(report.mapping->equivalent_to(spec.mapping))
      << "got:   " << report.mapping->describe() << "\n"
      << "truth: " << spec.mapping.describe();
}

std::vector<random_case> sweep() {
  std::vector<random_case> cases;
  std::uint64_t seed = 1;
  for (unsigned bits : {30u, 32u, 33u, 34u}) {
    for (unsigned funcs : {3u, 4u, 5u, 6u}) {
      cases.push_back({bits, funcs, seed++});
      cases.push_back({bits, funcs, seed++ + 50});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DramDigOnRandomMachine, ::testing::ValuesIn(sweep()),
    [](const ::testing::TestParamInfo<random_case>& info) {
      return "bits" + std::to_string(info.param.address_bits) + "_funcs" +
             std::to_string(info.param.functions) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dramdig::core

// Ablations of the "knowledge-assisted" ingredients — what the design
// claims each piece of domain knowledge buys.
#include <gtest/gtest.h>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"

namespace dramdig::core {
namespace {

TEST(AblationSystemInfo, UnknownBankCountCostsTimeButCanRecover) {
  // Without dmidecode/decode-dimms the tool sweeps candidate bank counts.
  const auto& spec = dram::machine_by_number(4);

  environment with_env(spec, 42);
  dramdig_config with_cfg{};
  const auto with = dramdig_tool(with_env, with_cfg).run();
  ASSERT_TRUE(with.success);

  environment without_env(spec, 42);
  dramdig_config without_cfg{};
  without_cfg.use_system_info = false;
  const auto without = dramdig_tool(without_env, without_cfg).run();

  if (without.success) {
    EXPECT_TRUE(without.mapping->equivalent_to(spec.mapping));
    // The blind sweep tries wrong bank counts first: strictly more work.
    EXPECT_GT(without.total_seconds, with.total_seconds);
  }
}

TEST(AblationSpecCounts, WithoutJedecCountsSharedBitsStayCovered) {
  // Machine No.1 has three shared row bits; without the spec's row-count
  // the fine-grained step cannot know to recover them.
  const auto& spec = dram::machine_by_number(1);
  environment env(spec, 43);
  dramdig_config cfg{};
  cfg.use_spec_counts = false;
  const auto report = dramdig_tool(env, cfg).run();
  EXPECT_FALSE(report.success);
  ASSERT_TRUE(report.mapping.has_value());
  // The coarse-only mapping misses rows 17-19.
  EXPECT_LT(report.mapping->row_bits().size(),
            spec.mapping.row_bits().size());
  EXPECT_FALSE(report.mapping->is_bijective());
}

TEST(AblationVerification, UnverifiedPartitionFailsOnNoisyUnits) {
  // Turn off the positive-verification pass: on the noisy mobile units the
  // single-sample scan pollutes piles and the function intersection
  // collapses (this is essentially what breaks DRAMA there).
  const auto& spec = dram::machine_by_number(7);
  int failures = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    environment env(spec, seed);
    dramdig_config cfg{};
    cfg.partition.verify_positives = false;
    cfg.max_attempts = 1;
    const auto report = dramdig_tool(env, cfg).run();
    if (!report.success ||
        !report.mapping->equivalent_to(spec.mapping)) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0) << "noisy machine should break unverified piles";
}

TEST(AblationVerification, VerifiedPartitionSurvivesNoisyUnits) {
  const auto& spec = dram::machine_by_number(7);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    environment env(spec, seed);
    const auto report = dramdig_tool(env).run();
    ASSERT_TRUE(report.success) << "seed " << seed;
    EXPECT_TRUE(report.mapping->equivalent_to(spec.mapping));
  }
}

TEST(AblationBufferFraction, TinyBufferCannotCoverBankBits) {
  // The real tool maps most of RAM for a reason: Algorithm 1 needs a
  // contiguous run covering the highest bank bit, and coarse detection
  // needs partners for high row bits.
  const auto& spec = dram::machine_by_number(6);
  environment env(spec, 44);
  dramdig_config cfg{};
  cfg.buffer_fraction = 0.01;  // 160 MiB of 16 GiB
  const auto report = dramdig_tool(env, cfg).run();
  // Either outright failure or a wrong mapping is acceptable — the claim
  // is only that the full-size buffer matters.
  if (report.success) {
    EXPECT_FALSE(report.mapping->equivalent_to(spec.mapping));
  }
}

}  // namespace
}  // namespace dramdig::core

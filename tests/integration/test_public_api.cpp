// The umbrella-header experience: everything a downstream user needs in
// one include, plus contract checks on the public configuration structs.
#include "dramdig.h"

#include <gtest/gtest.h>

namespace {

using namespace dramdig;

TEST(PublicApi, UmbrellaHeaderCoversTheQuickstartPath) {
  core::environment env(dram::machine_by_number(4), 2026);
  core::dramdig_tool tool(env);
  const auto report = tool.run();
  ASSERT_TRUE(report.success);
  EXPECT_TRUE(report.mapping->equivalent_to(env.spec().mapping));
}

TEST(PublicApi, UmbrellaHeaderCoversTheUnifiedApiPath) {
  // The documented one-tool and many-run paths, exactly as the umbrella
  // header's comment advertises them.
  core::environment env(dram::machine_by_number(4), 2026);
  const api::tool_result result = api::make_tool("dramdig")->run(env);
  EXPECT_TRUE(result.verified);

  const auto outcomes = api::mapping_service().run(
      {{dram::machine_by_number(4), "dramdig", {}, 2026}});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].state, api::job_state::completed);
  EXPECT_EQ(outcomes[0].result.to_json_string(), result.to_json_string());
}

TEST(PublicApi, ToolConfigContractsAreEnforced) {
  core::environment env(dram::machine_by_number(4), 1);
  core::dramdig_config bad{};
  bad.buffer_fraction = 0.0;
  EXPECT_THROW(core::dramdig_tool(env, bad), contract_violation);
  bad.buffer_fraction = 1.5;
  EXPECT_THROW(core::dramdig_tool(env, bad), contract_violation);
}

TEST(PublicApi, DramaConfigContractsAreEnforced) {
  core::environment env(dram::machine_by_number(4), 1);
  baselines::drama_config bad{};
  bad.pool_size = 2;
  EXPECT_THROW(baselines::drama_tool(env, bad), contract_violation);
}

TEST(PublicApi, HammerConfigContractsAreEnforced) {
  const auto& spec = dram::machine_by_number(4);
  sim::machine machine(spec, 1, sim::timing_profile_for(spec));
  rng r(1);
  rowhammer::hammer_config bad{};
  bad.duration_seconds = 0.0;
  EXPECT_THROW(
      (void)rowhammer::run_double_sided_test(machine, spec.mapping, r, bad),
      contract_violation);
}

TEST(PublicApi, SpanEquivalentHypothesesHammerIdentically) {
  // A downstream consumer may hold any basis of the function space; both
  // place aggressors identically.
  const auto& spec = dram::machine_by_number(1);
  const auto& truth = spec.mapping;
  std::vector<std::uint64_t> alt = truth.bank_functions();
  alt[1] ^= alt[2];  // different basis, same span
  const dram::address_mapping rebased(alt, truth.row_bits(),
                                      truth.column_bits(),
                                      truth.address_bits());
  ASSERT_TRUE(rebased.equivalent_to(truth));

  sim::machine m1(spec, 4, sim::timing_profile_for(spec));
  sim::machine m2(spec, 4, sim::timing_profile_for(spec));
  rng r1(9), r2(9);
  rowhammer::hammer_config cfg{};
  cfg.duration_seconds = 30;
  const auto a = rowhammer::run_double_sided_test(m1, truth, r1, cfg);
  const auto b = rowhammer::run_double_sided_test(m2, rebased, r2, cfg);
  EXPECT_EQ(a.true_double_sided, a.windows);
  EXPECT_EQ(b.true_double_sided, b.windows);
}

}  // namespace

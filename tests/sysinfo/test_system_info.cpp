#include "sysinfo/system_info.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/presets.h"

namespace dramdig::sysinfo {
namespace {

TEST(Sysinfo, DmidecodeMentionsEveryDimm) {
  const auto& m = dram::machine_by_number(1);  // 2 channels x 1 DIMM
  const std::string out = render_dmidecode(m);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n') > 0, true);
  std::size_t devices = 0, pos = 0;
  while ((pos = out.find("Memory Device", pos)) != std::string::npos) {
    ++devices;
    pos += 1;
  }
  EXPECT_EQ(devices, 2u);
}

TEST(Sysinfo, DecodeDimmsMentionsGeneration) {
  EXPECT_NE(render_decode_dimms(dram::machine_by_number(1)).find("DDR3 SDRAM"),
            std::string::npos);
  EXPECT_NE(render_decode_dimms(dram::machine_by_number(6)).find("DDR4 SDRAM"),
            std::string::npos);
}

TEST(Sysinfo, ProbeRoundTripsEveryPaperMachine) {
  for (const auto& m : dram::paper_machines()) {
    const system_info info = probe(m);
    EXPECT_EQ(info.total_bytes, m.memory_bytes) << m.label();
    EXPECT_EQ(info.total_banks(), m.total_banks()) << m.label();
    EXPECT_EQ(info.generation, m.generation) << m.label();
    EXPECT_EQ(info.banks_per_rank, m.banks_per_rank) << m.label();
    EXPECT_EQ(info.ranks_per_dimm, m.ranks_per_dimm) << m.label();
    EXPECT_EQ(info.ecc, m.ecc) << m.label();
  }
}

TEST(Sysinfo, ParserRejectsEmptyReports) {
  EXPECT_THROW((void)parse_reports("", ""), std::runtime_error);
}

TEST(Sysinfo, ParserRejectsMissingGeneration) {
  const auto& m = dram::machine_by_number(1);
  EXPECT_THROW((void)parse_reports(render_dmidecode(m), "no spd here"),
               std::runtime_error);
}

TEST(Sysinfo, ParserRejectsMissingSizes) {
  const auto& m = dram::machine_by_number(1);
  EXPECT_THROW(
      (void)parse_reports("garbage with Rank: 1", render_decode_dimms(m)),
      std::runtime_error);
}

TEST(Sysinfo, ParserToleratesExtraNoiseLines) {
  const auto& m = dram::machine_by_number(2);
  const std::string noisy_dmi =
      "# some banner\n" + render_dmidecode(m) + "\ntrailing junk\n";
  const std::string noisy_spd =
      "prefix\n" + render_decode_dimms(m) + "\nsuffix\n";
  const system_info info = parse_reports(noisy_dmi, noisy_spd);
  EXPECT_EQ(info.total_bytes, m.memory_bytes);
  EXPECT_EQ(info.total_banks(), m.total_banks());
}

TEST(Sysinfo, EccReportedWhenPresent) {
  dram::machine_spec m = dram::machine_by_number(4);
  m.ecc = true;
  const system_info info =
      parse_reports(render_dmidecode(m), render_decode_dimms(m));
  EXPECT_TRUE(info.ecc);
}

TEST(Sysinfo, TotalBanksProduct) {
  system_info info{};
  info.channels = 2;
  info.dimms_per_channel = 1;
  info.ranks_per_dimm = 2;
  info.banks_per_rank = 16;
  EXPECT_EQ(info.total_banks(), 64u);
}

}  // namespace
}  // namespace dramdig::sysinfo

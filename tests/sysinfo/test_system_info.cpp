#include "sysinfo/system_info.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/presets.h"

namespace dramdig::sysinfo {
namespace {

TEST(Sysinfo, DmidecodeMentionsEveryDimm) {
  const auto& m = dram::machine_by_number(1);  // 2 channels x 1 DIMM
  const std::string out = render_dmidecode(m);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n') > 0, true);
  std::size_t devices = 0, pos = 0;
  while ((pos = out.find("Memory Device", pos)) != std::string::npos) {
    ++devices;
    pos += 1;
  }
  EXPECT_EQ(devices, 2u);
}

TEST(Sysinfo, DecodeDimmsMentionsGeneration) {
  EXPECT_NE(render_decode_dimms(dram::machine_by_number(1)).find("DDR3 SDRAM"),
            std::string::npos);
  EXPECT_NE(render_decode_dimms(dram::machine_by_number(6)).find("DDR4 SDRAM"),
            std::string::npos);
}

TEST(Sysinfo, ProbeRoundTripsEveryPaperMachine) {
  for (const auto& m : dram::paper_machines()) {
    const system_info info = probe(m);
    EXPECT_EQ(info.total_bytes, m.memory_bytes) << m.label();
    EXPECT_EQ(info.total_banks(), m.total_banks()) << m.label();
    EXPECT_EQ(info.generation, m.generation) << m.label();
    EXPECT_EQ(info.banks_per_rank, m.banks_per_rank) << m.label();
    EXPECT_EQ(info.ranks_per_dimm, m.ranks_per_dimm) << m.label();
    EXPECT_EQ(info.ecc, m.ecc) << m.label();
  }
}

TEST(Sysinfo, ParserRejectsEmptyReports) {
  EXPECT_THROW((void)parse_reports("", ""), std::runtime_error);
}

TEST(Sysinfo, ParserRejectsMissingGeneration) {
  const auto& m = dram::machine_by_number(1);
  EXPECT_THROW((void)parse_reports(render_dmidecode(m), "no spd here"),
               std::runtime_error);
}

TEST(Sysinfo, ParserRejectsMissingSizes) {
  const auto& m = dram::machine_by_number(1);
  EXPECT_THROW(
      (void)parse_reports("garbage with Rank: 1", render_decode_dimms(m)),
      std::runtime_error);
}

TEST(Sysinfo, ParserToleratesExtraNoiseLines) {
  const auto& m = dram::machine_by_number(2);
  const std::string noisy_dmi =
      "# some banner\n" + render_dmidecode(m) + "\ntrailing junk\n";
  const std::string noisy_spd =
      "prefix\n" + render_decode_dimms(m) + "\nsuffix\n";
  const system_info info = parse_reports(noisy_dmi, noisy_spd);
  EXPECT_EQ(info.total_bytes, m.memory_bytes);
  EXPECT_EQ(info.total_banks(), m.total_banks());
}

TEST(Sysinfo, EccReportedWhenPresent) {
  dram::machine_spec m = dram::machine_by_number(4);
  m.ecc = true;
  const system_info info =
      parse_reports(render_dmidecode(m), render_decode_dimms(m));
  EXPECT_TRUE(info.ecc);
}

TEST(Sysinfo, TotalBanksProduct) {
  system_info info{};
  info.channels = 2;
  info.dimms_per_channel = 1;
  info.ranks_per_dimm = 2;
  info.banks_per_rank = 16;
  EXPECT_EQ(info.total_banks(), 64u);
}

// --- machine fingerprints (the fleet store's lookup key) --------------------

TEST(Fingerprint, SameSpecIsIdentical) {
  const auto& m = dram::machine_by_number(3);
  const machine_fingerprint a = fingerprint(m);
  const machine_fingerprint b = fingerprint(m);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.geometry_hash(), b.geometry_hash());
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(Fingerprint, IgnoresMappingIrrelevantFields) {
  // Table labels, ground-truth mapping, hammer profile and timing quality
  // say nothing about what mapping the controller uses — perturbing them
  // must not move the fingerprint.
  const auto& base = dram::machine_by_number(2);
  dram::machine_spec perturbed = base;
  perturbed.number = 99;
  perturbed.microarchitecture = "Imaginary Lake";
  perturbed.quality = dram::timing_quality::noisy;
  perturbed.vulnerability.double_sided_flip_chance = 0.5;
  EXPECT_EQ(fingerprint(base), fingerprint(perturbed));
  EXPECT_EQ(fingerprint(base).hash(), fingerprint(perturbed).hash());
}

TEST(Fingerprint, FieldAssignmentOrderIrrelevant) {
  // The canonical string is built from the struct in one fixed field
  // order, so two fingerprints carrying the same values hash identically
  // however their fields were populated.
  system_info a{};
  a.total_bytes = 1ull << 33;
  a.channels = 2;
  a.dimms_per_channel = 1;
  a.ranks_per_dimm = 2;
  a.banks_per_rank = 8;
  system_info b{};
  b.banks_per_rank = 8;
  b.ranks_per_dimm = 2;
  b.dimms_per_channel = 1;
  b.channels = 2;
  b.total_bytes = 1ull << 33;
  EXPECT_EQ(fingerprint(a, "i7-4770").hash(), fingerprint(b, "i7-4770").hash());
}

TEST(Fingerprint, CpuModelSplitsHashButNotGeometry) {
  const auto& m = dram::machine_by_number(1);
  dram::machine_spec sibling = m;
  sibling.cpu_model = "i5-2500";  // same board, different CPU bin
  const machine_fingerprint a = fingerprint(m);
  const machine_fingerprint b = fingerprint(sibling);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.geometry_hash(), b.geometry_hash());
}

TEST(Fingerprint, DistinctGeometriesDistinctHashes) {
  // Every pair of paper machines with different canonical geometry must
  // land on a different geometry hash (and a different full hash).
  const auto& machines = dram::paper_machines();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    for (std::size_t j = i + 1; j < machines.size(); ++j) {
      const machine_fingerprint a = fingerprint(machines[i]);
      const machine_fingerprint b = fingerprint(machines[j]);
      if (a.geometry_canonical() != b.geometry_canonical()) {
        EXPECT_NE(a.geometry_hash(), b.geometry_hash())
            << machines[i].label() << " vs " << machines[j].label();
      }
      if (a.canonical() != b.canonical()) {
        EXPECT_NE(a.hash(), b.hash())
            << machines[i].label() << " vs " << machines[j].label();
      }
    }
  }
}

TEST(Fingerprint, HashIsPinned) {
  // The store format persists these hashes, so they must stay stable
  // across platforms and releases — a change here is a store schema break
  // and needs a version bump in src/store/mapping_store.cpp.
  const machine_fingerprint fp = fingerprint(dram::machine_by_number(1));
  EXPECT_EQ(fp.canonical(),
            "cpu=i5-2400|gen=DDR3|bytes=8589934592|channels=2|dimms=1|"
            "ranks=1|banks=8|ecc=0");
  EXPECT_EQ(fp.hash(), 828042820628194189ull);
  EXPECT_EQ(fp.geometry_hash(), 1107971280693805017ull);
}

}  // namespace
}  // namespace dramdig::sysinfo

#include "core/fine_detect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/coarse_detect.h"
#include "core_test_util.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

/// Run coarse detection, then hand the machine's true functions to the
/// fine-grained step (isolating Step 3 from Algorithm 2/3).
fine_outcome fine_with_truth(pipeline_fixture& f) {
  const auto coarse =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  return run_fine_detection(f.channel, f.buffer, f.knowledge, coarse,
                            f.env.spec().mapping.bank_functions(), f.r);
}

TEST(FineDetect, MachineNo1RecoversSharedRows) {
  pipeline_fixture f(1);
  const auto out = fine_with_truth(f);
  EXPECT_EQ(out.row_bits, f.env.spec().mapping.row_bits());
  EXPECT_EQ(out.column_bits, f.env.spec().mapping.column_bits());
  EXPECT_EQ(out.shared_row_bits, (std::vector<unsigned>{17, 18, 19}));
  EXPECT_TRUE(out.shared_column_bits.empty());
  EXPECT_TRUE(out.counts_satisfied);
}

TEST(FineDetect, MachineNo2RecoversSharedColumns) {
  pipeline_fixture f(2);
  const auto out = fine_with_truth(f);
  EXPECT_EQ(out.row_bits, f.env.spec().mapping.row_bits());
  EXPECT_EQ(out.column_bits, f.env.spec().mapping.column_bits());
  // 8,9,12,13 are the shared column bits; 7 is excluded by the
  // widest-function rule.
  EXPECT_EQ(out.shared_column_bits, (std::vector<unsigned>{8, 9, 12, 13}));
}

TEST(FineDetect, MachineNo6SharedBitsRecovered) {
  pipeline_fixture f(6);
  const auto out = fine_with_truth(f);
  EXPECT_EQ(out.row_bits, f.env.spec().mapping.row_bits());
  // Bit 7 ends up a column via the widest-function exclusion of bit 8.
  EXPECT_EQ(out.shared_column_bits, (std::vector<unsigned>{7, 9, 12, 13}));
}

TEST(FineDetect, MachineNo6RefutesPureBankCandidateWhenOverAsked) {
  // Force the refutation path: doctor the spec knowledge to demand one
  // more row bit than exists. After the four true shared rows are
  // accepted, (7,14) proposes bit 14 — a pure bank bit — and the timed
  // bank-invariant delta {7,14} measures fast (same row, same bank) and
  // refutes it.
  pipeline_fixture f(6);
  const auto coarse =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  domain_knowledge doctored = f.knowledge;
  doctored.expected_row_bits += 1;
  const auto out =
      run_fine_detection(f.channel, f.buffer, doctored, coarse,
                         f.env.spec().mapping.bank_functions(), f.r);
  EXPECT_TRUE(std::find(out.rejected_candidates.begin(),
                        out.rejected_candidates.end(),
                        14u) != out.rejected_candidates.end());
  // The surplus row can only come from the knowledge fallback, which
  // flags the result as not fully timing-verified.
  EXPECT_FALSE(out.timing_verified);
}

TEST(FineDetect, MachineNo7ColumnBitSix) {
  pipeline_fixture f(7);
  const auto out = fine_with_truth(f);
  EXPECT_EQ(out.column_bits, f.env.spec().mapping.column_bits());
  EXPECT_EQ(out.shared_column_bits, (std::vector<unsigned>{6}));
}

TEST(FineDetect, MachineNo7RefutesCandidate13WhenOverAsked) {
  // As above: with an inflated row count, (6,13) proposes bit 13 (pure
  // bank); the delta {6,13} flips a column and keeps the bank -> fast ->
  // refuted.
  pipeline_fixture f(7);
  const auto coarse =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  domain_knowledge doctored = f.knowledge;
  doctored.expected_row_bits += 1;
  const auto out =
      run_fine_detection(f.channel, f.buffer, doctored, coarse,
                         f.env.spec().mapping.bank_functions(), f.r);
  EXPECT_TRUE(std::find(out.rejected_candidates.begin(),
                        out.rejected_candidates.end(),
                        13u) != out.rejected_candidates.end());
}

TEST(FineDetect, AllMachinesEndWithSpecCounts) {
  for (int machine = 1; machine <= 9; ++machine) {
    pipeline_fixture f(machine, 31);
    const auto out = fine_with_truth(f);
    EXPECT_TRUE(out.counts_satisfied) << "No." << machine;
    EXPECT_EQ(out.row_bits, f.env.spec().mapping.row_bits())
        << "No." << machine;
    EXPECT_EQ(out.column_bits, f.env.spec().mapping.column_bits())
        << "No." << machine;
  }
}

TEST(FineDetect, RowsAndColumnsStayDisjoint) {
  for (int machine : {2, 6, 7}) {
    pipeline_fixture f(machine, 17);
    const auto out = fine_with_truth(f);
    for (unsigned b : out.row_bits) {
      EXPECT_FALSE(std::binary_search(out.column_bits.begin(),
                                      out.column_bits.end(), b))
          << "No." << machine << " bit " << b;
    }
  }
}

TEST(FineDetect, UnsolvableInvariantDeltaFallsBackToKnowledge) {
  // A candidate whose invariant system has no solution: the 1-bit function
  // {19} pins bit 19 to zero in every bank-invariant delta while the
  // candidate constraint pins it to one, so no timed probe exists. The
  // paper's knowledge fallback accepts the candidate but the outcome must
  // say so (timing_verified = false).
  pipeline_fixture f(1);
  const auto coarse =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  const std::vector<std::uint64_t> funcs{(1ull << 14) | (1ull << 19),
                                         1ull << 19};
  const auto out = run_fine_detection(f.channel, f.buffer, f.knowledge,
                                      coarse, funcs, f.r);
  EXPECT_FALSE(out.timing_verified);
  EXPECT_TRUE(std::find(out.shared_row_bits.begin(), out.shared_row_bits.end(),
                        19u) != out.shared_row_bits.end());
  EXPECT_TRUE(out.rejected_candidates.empty());
}

TEST(FineDetect, RequiresBankFunctions) {
  pipeline_fixture f(1);
  const auto coarse =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  EXPECT_THROW((void)run_fine_detection(f.channel, f.buffer, f.knowledge,
                                        coarse, {}, f.r),
               contract_violation);
}

}  // namespace
}  // namespace dramdig::core

#include "core/measurement_plan.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/address_selection.h"
#include "core/partition.h"
#include "core_test_util.h"
#include "util/rng.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

std::vector<std::uint64_t> pool_for(pipeline_fixture& f,
                                    std::vector<unsigned> bank_bits) {
  const auto sel = select_addresses(f.buffer, bank_bits);
  EXPECT_TRUE(sel.found);
  return sel.pool;
}

scan_options default_scan() {
  scan_options s{};
  s.verify_positives = true;
  s.prescreen_sample = 0;  // exercised separately
  return s;
}

TEST(MeasurementPlan, CacheOffMatchesPlainChannelScan) {
  // reuse_verdicts = false must reproduce the pre-scheduler scan sequence
  // bit for bit: fast batch, then the strict batch over the positives.
  pipeline_fixture a(1), b(1);
  const auto pool = pool_for(a, {6, 14, 15, 16, 17, 18, 19});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  measurement_plan plan(a.channel, {.reuse_verdicts = false});
  const auto got = plan.classify_partners(pivot, partners, default_scan());
  ASSERT_FALSE(got.prescreen_rejected);
  EXPECT_EQ(got.reused, 0u);

  const std::vector<char> fast = b.channel.is_sbdr_fast_batch(pivot, partners);
  std::vector<sim::addr_pair> candidates;
  std::vector<std::size_t> candidate_idx;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    if (fast[i]) {
      candidates.emplace_back(pivot, partners[i]);
      candidate_idx.push_back(i);
    }
  }
  std::vector<char> want(partners.size(), 0);
  const std::vector<char> strict = b.channel.is_sbdr_strict_batch(candidates);
  for (std::size_t j = 0; j < strict.size(); ++j) {
    want[candidate_idx[j]] = strict[j];
  }
  EXPECT_EQ(got.member, want);
  EXPECT_EQ(a.env.mach().controller().measurement_count(),
            b.env.mach().controller().measurement_count());
}

TEST(MeasurementPlan, RescanIsAnsweredEntirelyFromCache) {
  pipeline_fixture f(1);
  const auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  measurement_plan plan(f.channel);
  const auto first = plan.classify_partners(pivot, partners, default_scan());
  const std::uint64_t after_first =
      f.env.mach().controller().measurement_count();
  const auto second = plan.classify_partners(pivot, partners, default_scan());
  EXPECT_EQ(f.env.mach().controller().measurement_count(), after_first)
      << "rescan paid for measurements the cache already holds";
  EXPECT_EQ(second.member, first.member);
  EXPECT_EQ(second.reused, partners.size());
  EXPECT_GT(plan.stats().measurements_saved, partners.size());
}

TEST(MeasurementPlan, RelationTracksVerdictsTransitively) {
  pipeline_fixture f(1);
  const auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  measurement_plan plan(f.channel);
  EXPECT_EQ(plan.relation(pivot, partners[0]), pair_relation::unknown);
  const auto scan = plan.classify_partners(pivot, partners, default_scan());

  std::vector<std::uint64_t> members, outsiders;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    (scan.member[i] ? members : outsiders).push_back(partners[i]);
  }
  ASSERT_GE(members.size(), 2u);
  ASSERT_FALSE(outsiders.empty());
  EXPECT_EQ(plan.relation(pivot, members[0]), pair_relation::same_bank);
  // Transitivity through the union-find: two members never measured
  // against each other are still known same-bank.
  EXPECT_EQ(plan.relation(members[0], members[1]), pair_relation::same_bank);
  EXPECT_EQ(plan.relation(pivot, outsiders[0]), pair_relation::cross_pile);
  // The ground truth agrees with every cached member relation.
  const auto& truth = f.env.spec().mapping;
  for (std::uint64_t m : members) {
    EXPECT_EQ(truth.bank_of(m), truth.bank_of(pivot));
  }
}

TEST(MeasurementPlan, StrictMemoAnswersRepeatedVotes) {
  pipeline_fixture f(1);
  std::vector<sim::addr_pair> pairs;
  for (unsigned i = 1; i <= 32; ++i) {
    pairs.emplace_back(0, (std::uint64_t{i} << 14) &
                              (f.env.spec().memory_bytes - 1));
  }
  // Include an in-batch duplicate (symmetric order, too).
  pairs.push_back(pairs.front());
  pairs.emplace_back(pairs.front().second, pairs.front().first);

  measurement_plan plan(f.channel);
  const auto first = plan.is_sbdr_strict_batch(pairs);
  EXPECT_EQ(first[first.size() - 2], first.front());
  EXPECT_EQ(first.back(), first.front());
  const std::uint64_t issued = f.env.mach().controller().measurement_count();
  const auto second = plan.is_sbdr_strict_batch(pairs);
  EXPECT_EQ(second, first);
  EXPECT_EQ(f.env.mach().controller().measurement_count(), issued);
}

TEST(MeasurementPlan, ScanSampleReuseSavesOneStrictMeasurementPerMember) {
  // With reuse off, every verified candidate costs strict_samples() fresh
  // measurements on top of its scan sample; with reuse on, one of them is
  // the scan sample itself.
  pipeline_fixture with(1), without(1);
  const auto pool = pool_for(with, {6, 14, 15, 16, 17, 18, 19});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  measurement_plan reuse(with.channel, {.reuse_scan_sample = true});
  measurement_plan fresh(without.channel, {.reuse_scan_sample = false});
  const auto got_reuse = reuse.classify_partners(pivot, partners, default_scan());
  const auto got_fresh = fresh.classify_partners(pivot, partners, default_scan());

  const std::uint64_t count_reuse =
      with.env.mach().controller().measurement_count();
  const std::uint64_t count_fresh =
      without.env.mach().controller().measurement_count();
  // Same fixtures up to the scan, so the fast verdicts agree; the reuse
  // run then pays exactly one measurement less per candidate.
  EXPECT_LT(count_reuse, count_fresh);
  std::size_t members = 0;
  for (char m : got_reuse.member) members += m != 0;
  EXPECT_GE(members, 2u);
  // Both scans classify the true bank: the verdict distribution is
  // unchanged by substituting one iid sample.
  const auto& truth = with.env.spec().mapping;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    if (got_reuse.member[i]) {
      EXPECT_EQ(truth.bank_of(partners[i]), truth.bank_of(pivot));
    }
    if (got_fresh.member[i]) {
      EXPECT_EQ(truth.bank_of(partners[i]), truth.bank_of(pivot));
    }
  }
}

TEST(MeasurementPlan, PrescreenRejectsHopelessPivotCheaply) {
  // A window sized for 8x the machine's real bank count: every pivot's
  // projected pile is ~8x oversized, so the pre-screen must reject from
  // its sample alone — this is the wrong-bank-count sweep's fast path.
  pipeline_fixture f(6);
  const auto pool = pool_for(f, {7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20,
                                 21, 22});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  scan_options scan = default_scan();
  scan.prescreen_sample = 64;
  const double pile = static_cast<double>(pool.size()) /
                      static_cast<double>(8 * f.knowledge.total_banks);
  scan.window = {0.6 * pile, 1.2 * pile};

  measurement_plan plan(f.channel);
  const std::uint64_t before = f.env.mach().controller().measurement_count();
  const auto got = plan.classify_partners(pivot, partners, scan);
  const std::uint64_t spent =
      f.env.mach().controller().measurement_count() - before;
  EXPECT_TRUE(got.prescreen_rejected);
  EXPECT_EQ(plan.stats().prescreen_rejections, 1u);
  // Far below a full scan (pool fast samples + strict verification).
  EXPECT_LT(spent, partners.size() / 2);
}

TEST(MeasurementPlan, PrescreenPassesInWindowPivots) {
  // The true window on the same machine: the pre-screen must not reject a
  // legitimate pivot, and the final members must be the true bank.
  pipeline_fixture f(6);
  const auto pool = pool_for(f, {7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20,
                                 21, 22});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  scan_options scan = default_scan();
  scan.prescreen_sample = 64;
  const double pile = static_cast<double>(pool.size()) /
                      static_cast<double>(f.knowledge.total_banks);
  scan.window = {0.6 * pile, 1.2 * pile};

  measurement_plan plan(f.channel);
  const auto got = plan.classify_partners(pivot, partners, scan);
  ASSERT_FALSE(got.prescreen_rejected);
  const auto& truth = f.env.spec().mapping;
  std::size_t members = 0;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    if (!got.member[i]) continue;
    ++members;
    EXPECT_EQ(truth.bank_of(partners[i]), truth.bank_of(pivot));
  }
  EXPECT_GT(static_cast<double>(members + 1), scan.window.lo);
}

TEST(MeasurementPlan, ResetDropsEveryCachedRelation) {
  // The pipeline's retry loop resets the plan so a poisoned merge cannot
  // outlive the attempt that produced it: after reset, nothing is implied
  // and a rescan pays for fresh measurements again.
  pipeline_fixture f(1);
  const auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  measurement_plan plan(f.channel);
  const auto first = plan.classify_partners(pivot, partners, default_scan());
  ASSERT_GT(plan.class_count(), 0u);
  plan.reset();
  EXPECT_EQ(plan.class_count(), 0u);
  EXPECT_EQ(plan.relation(pivot, partners[0]), pair_relation::unknown);
  const std::uint64_t before = f.env.mach().controller().measurement_count();
  const auto second = plan.classify_partners(pivot, partners, default_scan());
  EXPECT_GT(f.env.mach().controller().measurement_count(), before)
      << "reset plan must re-measure";
  EXPECT_EQ(second.reused, 0u);
  // Verdicts still classify the true bank.
  const auto& truth = f.env.spec().mapping;
  for (std::size_t i = 0; i < partners.size(); ++i) {
    if (second.member[i]) {
      EXPECT_EQ(truth.bank_of(partners[i]), truth.bank_of(pivot));
    }
  }
  (void)first;
}

TEST(MeasurementPlan, DeterministicOnParallelBatchPath) {
  // A >4096-partner scan pushes the controller's batched decode onto its
  // multi-shard path; the plan's verdicts, class structure and stats must
  // be identical to an equally seeded run (the controller guarantees
  // bit-identical batches on any thread count, and the plan must not add
  // any ordering of its own on top).
  pipeline_fixture a(6, 11), b(6, 11);
  const auto pool = pool_for(a, {7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20,
                                 21, 22});
  ASSERT_GT(pool.size(), 4096u);
  const std::uint64_t pivot = pool.front();
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());

  measurement_plan plan_a(a.channel), plan_b(b.channel);
  const auto got_a = plan_a.classify_partners(pivot, partners, default_scan());
  const auto got_b = plan_b.classify_partners(pivot, partners, default_scan());
  EXPECT_EQ(got_a.member, got_b.member);
  EXPECT_EQ(plan_a.class_count(), plan_b.class_count());
  EXPECT_EQ(plan_a.stats().measurements_issued,
            plan_b.stats().measurements_issued);
  EXPECT_EQ(plan_a.stats().classes_merged, plan_b.stats().classes_merged);
  EXPECT_EQ(plan_a.stats().negatives_recorded,
            plan_b.stats().negatives_recorded);
  EXPECT_EQ(a.env.mach().clock().now_ns(), b.env.mach().clock().now_ns());
}

TEST(MeasurementPlan, RepeatedPartitionsGetSuperlinearlyCheaper) {
  // The headline reuse property: re-partitioning an already classified
  // pool (the bank-count sweep, the attempt loop) costs less every time.
  // Run 2 gets the class members for free and seeds a second row-distinct
  // witness on every negative; by run 3 the witness pairs answer the
  // negatives too, and scans cost almost nothing. Pinned to the pivot-scan
  // driver: this is the plan's own reuse property, independent of the
  // classifier's class directory (which has its own test).
  pipeline_fixture f(1);
  const auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  measurement_plan plan(f.channel);
  auto& controller = f.env.mach().controller();
  partition_config cfg{};
  cfg.use_representatives = false;

  const std::uint64_t base = controller.measurement_count();
  const auto first = partition_pool(plan, pool, 16, f.r, cfg);
  ASSERT_TRUE(first.success);
  const std::uint64_t cost1 = controller.measurement_count() - base;

  const auto second = partition_pool(plan, pool, 16, f.r, cfg);
  ASSERT_TRUE(second.success);
  const std::uint64_t cost2 = controller.measurement_count() - base - cost1;

  const auto third = partition_pool(plan, pool, 16, f.r, cfg);
  ASSERT_TRUE(third.success);
  const std::uint64_t cost3 =
      controller.measurement_count() - base - cost1 - cost2;

  EXPECT_LT(cost2, cost1 * 3 / 4);
  EXPECT_LT(cost3, cost2);
  EXPECT_LT(cost3, cost1 / 4);
  EXPECT_GT(second.reused_verdicts, 0u);
  EXPECT_GT(third.reused_verdicts, second.reused_verdicts);
  // Piles stay pure banks throughout.
  const auto& truth = f.env.spec().mapping;
  for (const auto* outcome : {&first, &second, &third}) {
    for (const auto& pile : outcome->piles) {
      for (std::uint64_t p : pile) {
        EXPECT_EQ(truth.bank_of(p), truth.bank_of(pile.front()));
      }
    }
  }
}

TEST(MeasurementPlan, ClassifyPairsVerdictsMatchGroundTruthAndFeedCache) {
  pipeline_fixture f(1);
  const auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const auto& truth = f.env.spec().mapping;

  // Anchor the pool's first address against every other: the verdict must
  // be "same bank AND different row", and every verdict must be queryable
  // from the cache afterwards.
  std::vector<sim::addr_pair> pairs;
  for (std::size_t i = 1; i < pool.size(); ++i) {
    pairs.emplace_back(pool.front(), pool[i]);
  }
  measurement_plan plan(f.channel);
  const auto votes = plan.classify_pairs(pairs, /*verify_positives=*/true);
  EXPECT_EQ(votes.reused, 0u);
  std::size_t positives = 0;
  for (std::size_t j = 0; j < pairs.size(); ++j) {
    const bool same_bank_diff_row =
        truth.bank_of(pairs[j].first) == truth.bank_of(pairs[j].second) &&
        truth.row_of(pairs[j].first) != truth.row_of(pairs[j].second);
    EXPECT_EQ(votes.member[j] != 0, same_bank_diff_row);
    positives += votes.member[j] != 0;
    const pair_relation rel = plan.relation(pairs[j].first, pairs[j].second);
    EXPECT_EQ(rel, votes.member[j] ? pair_relation::same_bank
                                   : pair_relation::cross_pile);
  }
  ASSERT_GT(positives, 0u);

  // A repeat of the same votes answers entirely from the cache.
  const std::uint64_t count = f.env.mach().controller().measurement_count();
  const auto again = plan.classify_pairs(pairs, true);
  EXPECT_EQ(again.member, votes.member);
  EXPECT_EQ(again.reused, pairs.size());
  EXPECT_EQ(f.env.mach().controller().measurement_count(), count);
}

TEST(MeasurementPlan, WitnessListsAreBoundedWithLruEviction) {
  // A long-lived service must not grow the witness lists without bound:
  // with max_witnesses = 2, a third rejecting anchor evicts the oldest
  // entry — that relation degrades to unknown (re-measurable), while the
  // recently recorded ones stay cached.
  pipeline_fixture f(1);
  const auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const auto& truth = f.env.spec().mapping;

  // One subject plus several anchors in other banks.
  const std::uint64_t subject = pool.front();
  std::vector<std::uint64_t> anchors;
  for (std::size_t i = 1; i < pool.size() && anchors.size() < 4; ++i) {
    if (truth.bank_of(pool[i]) != truth.bank_of(subject)) {
      anchors.push_back(pool[i]);
    }
  }
  ASSERT_EQ(anchors.size(), 4u);

  measurement_plan plan(f.channel, {.max_witnesses = 2});
  for (const std::uint64_t a : anchors) {
    const sim::addr_pair pair{a, subject};
    const auto votes = plan.classify_pairs({&pair, 1}, true);
    EXPECT_EQ(votes.member.front(), 0);
  }
  EXPECT_GE(plan.stats().witnesses_evicted, 2u);
  // The two most recent anchors are still cached; the first was evicted.
  EXPECT_EQ(plan.relation(anchors[3], subject), pair_relation::cross_pile);
  EXPECT_EQ(plan.relation(anchors[2], subject), pair_relation::cross_pile);
  EXPECT_EQ(plan.relation(anchors[0], subject), pair_relation::unknown);

  // Unbounded config never evicts on the same sequence.
  pipeline_fixture g(1);
  measurement_plan unbounded(g.channel, {.max_witnesses = 0});
  for (const std::uint64_t a : anchors) {
    const sim::addr_pair pair{a, subject};
    (void)unbounded.classify_pairs({&pair, 1}, true);
  }
  EXPECT_EQ(unbounded.stats().witnesses_evicted, 0u);
  EXPECT_EQ(unbounded.relation(anchors[0], subject),
            pair_relation::cross_pile);
}

TEST(MeasurementPlan, ArenaIndexMatchesMapBackendOnMixedWorkload) {
  // The arena index (use_arena_index, the default) is pinned bit-identical
  // to the unordered_map oracle: same verdicts, class structure, stats
  // counters and controller traffic on the same workload, stage by stage.
  pipeline_fixture fa(1), fb(1);
  const auto pool = pool_for(fa, {6, 14, 15, 16, 17, 18, 19});
  measurement_plan arena(fa.channel, {.use_arena_index = true});
  measurement_plan legacy(fb.channel, {.use_arena_index = false});

  const auto same_state = [&](const char* stage) {
    SCOPED_TRACE(stage);
    EXPECT_EQ(arena.stats().measurements_issued,
              legacy.stats().measurements_issued);
    EXPECT_EQ(arena.stats().measurements_saved,
              legacy.stats().measurements_saved);
    EXPECT_EQ(arena.stats().classes_merged, legacy.stats().classes_merged);
    EXPECT_EQ(arena.stats().negatives_recorded,
              legacy.stats().negatives_recorded);
    EXPECT_EQ(arena.stats().prescreen_rejections,
              legacy.stats().prescreen_rejections);
    EXPECT_EQ(arena.stats().witnesses_evicted,
              legacy.stats().witnesses_evicted);
    EXPECT_EQ(arena.class_count(), legacy.class_count());
    EXPECT_EQ(fa.env.mach().controller().measurement_count(),
              fb.env.mach().controller().measurement_count());
  };

  // Pivot scans: fill classes and witness lists, then rescan from cache.
  for (std::size_t p = 0; p < 3; ++p) {
    std::vector<std::uint64_t> partners;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i != p) partners.push_back(pool[i]);
    }
    const auto got_a = arena.classify_partners(pool[p], partners,
                                               default_scan());
    const auto got_b = legacy.classify_partners(pool[p], partners,
                                                default_scan());
    EXPECT_EQ(got_a.member, got_b.member);
    EXPECT_EQ(got_a.reused, got_b.reused);
  }
  same_state("after pivot scans");

  // Random representative votes (anchor, subject).
  rng votes_rng(424242);
  std::vector<sim::addr_pair> votes;
  while (votes.size() < 200) {
    const std::uint64_t a = pool[votes_rng.below(pool.size())];
    const std::uint64_t b = pool[votes_rng.below(pool.size())];
    if (a != b) votes.emplace_back(a, b);
  }
  const auto va = arena.classify_pairs(votes, /*verify_positives=*/true);
  const auto vb = legacy.classify_pairs(votes, /*verify_positives=*/true);
  EXPECT_EQ(va.member, vb.member);
  EXPECT_EQ(va.reused, vb.reused);
  same_state("after classify_pairs");

  // Designed-probe votes (pairs must be distinct within the call).
  std::vector<sim::addr_pair> probes;
  for (std::size_t i = 0; i + 1 < pool.size() && probes.size() < 64; i += 2) {
    probes.emplace_back(pool[i], pool[i + 1]);
  }
  const auto pa = arena.probe_pairs(probes);
  const auto pb = legacy.probe_pairs(probes);
  EXPECT_EQ(pa.sbdr, pb.sbdr);
  EXPECT_EQ(pa.reused, pb.reused);
  same_state("after probe_pairs");

  // Strict batch with in-batch duplicates (symmetric order, too).
  std::vector<sim::addr_pair> strict(votes.begin(), votes.begin() + 32);
  strict.push_back(strict.front());
  strict.emplace_back(strict.front().second, strict.front().first);
  EXPECT_EQ(arena.is_sbdr_strict_batch(strict),
            legacy.is_sbdr_strict_batch(strict));
  same_state("after strict batch");

  // Every cached relation agrees (relation() never measures).
  for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
    ASSERT_EQ(arena.relation(pool[i], pool[i + 1]),
              legacy.relation(pool[i], pool[i + 1]));
    ASSERT_EQ(arena.known_strict_positive(pool[i], pool[i + 1]),
              legacy.known_strict_positive(pool[i], pool[i + 1]));
  }
  same_state("after relation sweep");

  // reset() drops both backends to the same empty state; the rescan
  // re-measures identically.
  arena.reset();
  legacy.reset();
  EXPECT_EQ(arena.class_count(), 0u);
  EXPECT_EQ(legacy.class_count(), 0u);
  const std::vector<std::uint64_t> partners(pool.begin() + 1, pool.end());
  const auto ra = arena.classify_partners(pool.front(), partners,
                                          default_scan());
  const auto rb = legacy.classify_partners(pool.front(), partners,
                                           default_scan());
  EXPECT_EQ(ra.member, rb.member);
  EXPECT_EQ(ra.reused, 0u);
  EXPECT_EQ(rb.reused, 0u);
  same_state("after reset and rescan");
}

TEST(MeasurementPlan, ArenaIndexMatchesMapBackendUnderLruEviction) {
  // max_witnesses = 2 forces constant LRU churn: the eviction order (which
  // cached relation degrades back to unknown, and hence which rescans pay
  // for re-measurement) must match the map oracle exactly.
  pipeline_fixture fa(1), fb(1);
  const auto pool = pool_for(fa, {6, 14, 15, 16, 17, 18, 19});
  measurement_plan arena(fa.channel,
                         {.max_witnesses = 2, .use_arena_index = true});
  measurement_plan legacy(fb.channel,
                          {.max_witnesses = 2, .use_arena_index = false});

  rng pivots(7);
  for (unsigned round = 0; round < 6; ++round) {
    const std::size_t p = pivots.below(pool.size());
    std::vector<std::uint64_t> partners;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i != p) partners.push_back(pool[i]);
    }
    const auto got_a = arena.classify_partners(pool[p], partners,
                                               default_scan());
    const auto got_b = legacy.classify_partners(pool[p], partners,
                                                default_scan());
    EXPECT_EQ(got_a.member, got_b.member) << "round " << round;
    EXPECT_EQ(got_a.reused, got_b.reused) << "round " << round;
  }
  EXPECT_GT(arena.stats().witnesses_evicted, 0u);
  EXPECT_EQ(arena.stats().witnesses_evicted,
            legacy.stats().witnesses_evicted);
  EXPECT_EQ(arena.stats().measurements_saved,
            legacy.stats().measurements_saved);
  EXPECT_EQ(arena.stats().negatives_recorded,
            legacy.stats().negatives_recorded);
  EXPECT_EQ(fa.env.mach().controller().measurement_count(),
            fb.env.mach().controller().measurement_count());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size() && j < i + 8; ++j) {
      ASSERT_EQ(arena.relation(pool[i], pool[j]),
                legacy.relation(pool[i], pool[j]));
    }
  }
}

}  // namespace
}  // namespace dramdig::core

#include "core/coarse_detect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core_test_util.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

bool contains(const std::vector<unsigned>& v, unsigned b) {
  return std::find(v.begin(), v.end(), b) != v.end();
}

TEST(CoarseDetect, MachineNo1Partition) {
  pipeline_fixture f(1);
  const auto res =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  // Row-only bits 20..32 (17,18,19 are shared with bank functions).
  for (unsigned b = 20; b <= 32; ++b) EXPECT_TRUE(contains(res.row_bits, b));
  for (unsigned b : {17u, 18u, 19u}) EXPECT_FALSE(contains(res.row_bits, b));
  // Column-only bits: 0..5 by knowledge, 7..13 by timing; 6 is the channel.
  for (unsigned b = 0; b <= 13; ++b) {
    if (b == 6) {
      EXPECT_FALSE(contains(res.column_bits, b));
    } else {
      EXPECT_TRUE(contains(res.column_bits, b));
    }
  }
  // Covered: the channel bit, pure bank bits, shared rows.
  for (unsigned b : {6u, 14u, 15u, 16u, 17u, 18u, 19u}) {
    EXPECT_TRUE(contains(res.bank_bits, b)) << b;
  }
  EXPECT_EQ(res.bank_bits.size(), 7u);
  EXPECT_TRUE(res.untestable_bits.empty());
}

TEST(CoarseDetect, MachineNo2SharedColumnsStayCovered) {
  pipeline_fixture f(2);
  const auto res =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  // 8,9,12,13 feed the wide channel function: not detectable as columns.
  for (unsigned b : {8u, 9u, 12u, 13u}) {
    EXPECT_FALSE(contains(res.column_bits, b)) << b;
    EXPECT_TRUE(contains(res.bank_bits, b)) << b;
  }
  // 10,11 are plain columns.
  EXPECT_TRUE(contains(res.column_bits, 10));
  EXPECT_TRUE(contains(res.column_bits, 11));
  // Shared rows 18..21 covered; 22..32 detected.
  for (unsigned b = 18; b <= 21; ++b) EXPECT_TRUE(contains(res.bank_bits, b));
  for (unsigned b = 22; b <= 32; ++b) EXPECT_TRUE(contains(res.row_bits, b));
}

TEST(CoarseDetect, ClassesAreDisjointAndCoverProbedBits) {
  for (int machine : {1, 4, 6, 8}) {
    pipeline_fixture f(machine);
    const auto res =
        run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
    std::vector<unsigned> all;
    all.insert(all.end(), res.row_bits.begin(), res.row_bits.end());
    all.insert(all.end(), res.column_bits.begin(), res.column_bits.end());
    all.insert(all.end(), res.bank_bits.begin(), res.bank_bits.end());
    all.insert(all.end(), res.untestable_bits.begin(),
               res.untestable_bits.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "machine " << machine << ": classes overlap";
    EXPECT_EQ(all.size(), f.knowledge.address_bits)
        << "machine " << machine << ": bits unaccounted";
  }
}

TEST(CoarseDetect, DeterministicAcrossNoiseSeeds) {
  const auto baseline = [] {
    pipeline_fixture f(3, 100);
    return run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  }();
  for (std::uint64_t seed : {101, 102, 103}) {
    pipeline_fixture f(3, seed);
    const auto res =
        run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
    EXPECT_EQ(res.row_bits, baseline.row_bits) << "seed " << seed;
    EXPECT_EQ(res.column_bits, baseline.column_bits) << "seed " << seed;
    EXPECT_EQ(res.bank_bits, baseline.bank_bits) << "seed " << seed;
  }
}

TEST(CoarseDetect, UntestableBitsAreReportedNotClassified) {
  // Bits above installed memory can never find a backed partner page, so
  // every vote pick fails and the bit lands in untestable_bits — in both
  // the designed engine and the legacy oracle.
  pipeline_fixture f(1);
  domain_knowledge doctored = f.knowledge;
  const unsigned true_bits = f.knowledge.address_bits;
  doctored.address_bits = true_bits + 2;
  for (const bool designed : {false, true}) {
    coarse_config cfg{};
    cfg.probe.use_designed = designed;
    const auto res =
        run_coarse_detection(f.channel, f.buffer, doctored, f.r, cfg);
    EXPECT_EQ(res.untestable_bits,
              (std::vector<unsigned>{true_bits, true_bits + 1}))
        << (designed ? "designed" : "legacy");
    // The real bits still classify exactly as without the doctoring.
    for (unsigned b = 20; b <= 32; ++b) EXPECT_TRUE(contains(res.row_bits, b));
    EXPECT_EQ(res.bank_bits.size(), 7u);
  }
}

TEST(CoarseDetect, NoRowBitsIsAFailureReturnNotACrash) {
  // Shrink the probed range below the lowest row-only bit: every probed
  // delta is a column or bank bit, the row pass finds nothing, and the
  // failure contract is "empty row_bits, the probed remainder in
  // bank_bits, no column knowledge applied".
  pipeline_fixture f(1);
  domain_knowledge doctored = f.knowledge;
  doctored.address_bits = 17;  // rows start at 17 on machine No.1
  for (const bool designed : {false, true}) {
    coarse_config cfg{};
    cfg.probe.use_designed = designed;
    const auto res =
        run_coarse_detection(f.channel, f.buffer, doctored, f.r, cfg);
    EXPECT_TRUE(res.row_bits.empty()) << (designed ? "designed" : "legacy");
    EXPECT_EQ(res.bank_bits.size(), 11u);  // bits 6..16
    EXPECT_TRUE(res.column_bits.empty());
  }
}

TEST(CoarseDetect, WorksOnNoisyMachine) {
  // Machine No.7 has the worst timing quality in the fleet; the voted,
  // median-filtered coarse pass must still classify correctly.
  pipeline_fixture f(7, 55);
  const auto res =
      run_coarse_detection(f.channel, f.buffer, f.knowledge, f.r);
  for (unsigned b = 18; b <= 31; ++b) EXPECT_TRUE(contains(res.row_bits, b));
  for (unsigned b : {6u, 13u, 14u, 15u, 16u, 17u}) {
    EXPECT_TRUE(contains(res.bank_bits, b)) << b;
  }
}

}  // namespace
}  // namespace dramdig::core

#include "core/address_selection.h"

#include <gtest/gtest.h>

#include <set>

#include "core_test_util.h"
#include "util/bitops.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

TEST(AddressSelection, MachineNo1PoolShape) {
  pipeline_fixture f(1);
  // Coarse bank bits on No.1: {6, 14..19}.
  const std::vector<unsigned> bank_bits{6, 14, 15, 16, 17, 18, 19};
  const auto sel = select_addresses(f.buffer, bank_bits);
  ASSERT_TRUE(sel.found);
  EXPECT_EQ(sel.b_min, 6u);
  EXPECT_EQ(sel.b_max, 19u);
  EXPECT_EQ(sel.miss_mask, mask_of_bits({7, 8, 9, 10, 11, 12, 13}));
  // One address per bank-bit combination.
  EXPECT_EQ(sel.pool.size(), 128u);
}

TEST(AddressSelection, MachineNo6PoolMatchesPaperCount) {
  // Section IV-B: the Skylake 16 GiB machines select "almost 16,000"
  // addresses.
  pipeline_fixture f(6);
  const std::vector<unsigned> bank_bits{7,  8,  9,  12, 13, 14, 15,
                                        16, 17, 18, 19, 20, 21, 22};
  const auto sel = select_addresses(f.buffer, bank_bits);
  ASSERT_TRUE(sel.found);
  EXPECT_EQ(sel.pool.size(), 16384u);
}

TEST(AddressSelection, PoolEnumeratesEveryBankBitCombinationOnce) {
  pipeline_fixture f(1);
  const std::vector<unsigned> bank_bits{6, 14, 15, 16, 17, 18, 19};
  const auto sel = select_addresses(f.buffer, bank_bits);
  ASSERT_TRUE(sel.found);
  const std::uint64_t selector = mask_of_bits(bank_bits);
  std::set<std::uint64_t> patterns;
  for (std::uint64_t p : sel.pool) {
    patterns.insert(p & selector);
  }
  EXPECT_EQ(patterns.size(), sel.pool.size()) << "duplicate bank patterns";
  EXPECT_EQ(patterns.size(), 128u) << "missing combinations";
}

TEST(AddressSelection, NonCandidateBitsAreConstantAcrossPool) {
  pipeline_fixture f(3);
  const std::vector<unsigned> bank_bits{13, 14, 15, 16, 17, 18, 19, 20};
  const auto sel = select_addresses(f.buffer, bank_bits);
  ASSERT_TRUE(sel.found);
  const std::uint64_t variable = mask_of_bits(bank_bits);
  std::set<std::uint64_t> fixed_parts;
  for (std::uint64_t p : sel.pool) fixed_parts.insert(p & ~variable);
  EXPECT_EQ(fixed_parts.size(), 1u);
}

TEST(AddressSelection, PoolAddressesAreBacked) {
  pipeline_fixture f(2);
  const std::vector<unsigned> bank_bits{7, 8, 9, 12, 13, 14, 15, 16,
                                        17, 18, 19, 20, 21};
  const auto sel = select_addresses(f.buffer, bank_bits);
  ASSERT_TRUE(sel.found);
  for (std::uint64_t p : sel.pool) {
    EXPECT_TRUE(f.buffer.contains_page(p / os::kPageSize));
  }
}

TEST(AddressSelection, FailsOnHeavilyFragmentedMemory) {
  // With fragmentation near 1 the buffer has no multi-MiB contiguous run,
  // so the bank-bit span (up to bit 21) cannot be covered.
  environment env(dram::machine_by_number(3), 5, /*fragmentation=*/0.98);
  const auto& buffer = env.space().map_buffer(env.spec().memory_bytes / 2);
  const std::vector<unsigned> bank_bits{13, 14, 15, 16, 17, 18, 19, 20};
  const auto sel = select_addresses(buffer, bank_bits);
  EXPECT_FALSE(sel.found);
  EXPECT_TRUE(sel.pool.empty());
}

TEST(AddressSelection, RejectsEmptyBankBits) {
  pipeline_fixture f(1);
  EXPECT_THROW((void)select_addresses(f.buffer, {}), contract_violation);
}

TEST(AddressSelection, RejectsUnsortedBankBits) {
  pipeline_fixture f(1);
  EXPECT_THROW((void)select_addresses(f.buffer, {14, 6}), contract_violation);
}

}  // namespace
}  // namespace dramdig::core

#include "core/function_detect.h"

#include <gtest/gtest.h>

#include <map>

#include "dram/presets.h"
#include "sim/virtual_clock.h"
#include "util/bitops.h"
#include "util/gf2.h"
#include "util/rng.h"

namespace dramdig::core {
namespace {

/// Synthesize noise-free piles straight from a ground-truth mapping: every
/// combination of the bank bits, grouped by true flat bank. This isolates
/// Algorithm 3 from the timing layer.
std::vector<std::vector<std::uint64_t>> piles_for(
    const dram::address_mapping& truth,
    const std::vector<unsigned>& bank_bits) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> by_bank;
  const std::uint64_t combos = std::uint64_t{1} << bank_bits.size();
  for (std::uint64_t c = 0; c < combos; ++c) {
    const std::uint64_t pa = scatter_bits(c, bank_bits);
    by_bank[truth.bank_of(pa)].push_back(pa);
  }
  std::vector<std::vector<std::uint64_t>> piles;
  for (auto& [bank, pile] : by_bank) piles.push_back(std::move(pile));
  return piles;
}

TEST(FunctionDetect, RecoversMachineNo1Functions) {
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(1);
  const std::vector<unsigned> bank_bits{6, 14, 15, 16, 17, 18, 19};
  const auto out =
      detect_functions(piles_for(m.mapping, bank_bits), bank_bits, 16, clock);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(out.numbering_ok);
  EXPECT_EQ(out.functions.size(), 4u);
  EXPECT_TRUE(gf2::same_span(out.functions, m.mapping.bank_functions()));
}

TEST(FunctionDetect, RecoversWideChannelFunction) {
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(2);
  const std::vector<unsigned> bank_bits{7,  8,  9,  12, 13, 14, 15,
                                        16, 17, 18, 19, 20, 21};
  const auto out =
      detect_functions(piles_for(m.mapping, bank_bits), bank_bits, 32, clock);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.functions.size(), 5u);
  EXPECT_TRUE(gf2::same_span(out.functions, m.mapping.bank_functions()));
}

TEST(FunctionDetect, AllPaperMachinesRecoverable) {
  for (const auto& m : dram::paper_machines()) {
    sim::virtual_clock clock;
    std::vector<unsigned> bank_bits;
    for (std::uint64_t f : m.mapping.bank_functions()) {
      for (unsigned b : bits_of_mask(f)) bank_bits.push_back(b);
    }
    std::sort(bank_bits.begin(), bank_bits.end());
    bank_bits.erase(std::unique(bank_bits.begin(), bank_bits.end()),
                    bank_bits.end());
    const auto out = detect_functions(piles_for(m.mapping, bank_bits),
                                      bank_bits, m.total_banks(), clock);
    ASSERT_TRUE(out.success) << m.label() << ": " << out.failure_reason;
    EXPECT_TRUE(gf2::same_span(out.functions, m.mapping.bank_functions()))
        << m.label();
  }
}

TEST(FunctionDetect, PrefersMinimalFunctions) {
  // Even though (14,15,18,19) is constant per bank, the reported basis
  // keeps the two-bit functions (the paper's priority rule).
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(1);
  const std::vector<unsigned> bank_bits{6, 14, 15, 16, 17, 18, 19};
  const auto out =
      detect_functions(piles_for(m.mapping, bank_bits), bank_bits, 16, clock);
  ASSERT_TRUE(out.success);
  for (std::uint64_t f : out.functions) {
    EXPECT_LE(std::popcount(f), 2);
  }
}

TEST(FunctionDetect, FailsWhenPilesLackInformation) {
  // A single pile cannot pin down any function set of full rank.
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(1);
  const std::vector<unsigned> bank_bits{6, 14, 15, 16, 17, 18, 19};
  auto piles = piles_for(m.mapping, bank_bits);
  piles.resize(1);
  const auto out = detect_functions(piles, bank_bits, 16, clock);
  // With one pile every mask constant on it survives, giving far too many
  // independent candidates and no consistent numbering.
  EXPECT_FALSE(out.success && out.numbering_ok);
}

TEST(FunctionDetect, PollutedPileKillsDetection) {
  // One wrong-bank member erases the true functions from the
  // intersection — the reason partition re-verifies its positives.
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(4);
  const std::vector<unsigned> bank_bits{13, 14, 15, 16, 17, 18};
  auto piles = piles_for(m.mapping, bank_bits);
  piles[0].push_back(piles[1].front());
  const auto out = detect_functions(piles, bank_bits, 8, clock);
  EXPECT_FALSE(out.success);
  EXPECT_FALSE(out.failure_reason.empty());
}

TEST(FunctionDetect, NumberingCountsAllBanks) {
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(4);
  const std::vector<unsigned> bank_bits{13, 14, 15, 16, 17, 18};
  const auto out =
      detect_functions(piles_for(m.mapping, bank_bits), bank_bits, 8, clock);
  ASSERT_TRUE(out.success);
  EXPECT_TRUE(out.numbering_ok);
}

TEST(FunctionDetect, ChargesCpuTimeToClock) {
  sim::virtual_clock clock;
  const auto& m = dram::machine_by_number(1);
  const std::vector<unsigned> bank_bits{6, 14, 15, 16, 17, 18, 19};
  (void)detect_functions(piles_for(m.mapping, bank_bits), bank_bits, 16,
                         clock);
  EXPECT_GT(clock.now_ns(), 0u);
}

TEST(FunctionDetect, NullspaceMatchesEnumerationOnAllPresets) {
  // Differential test for the default null-space path: on every paper
  // machine (DDR3 and DDR4) it must recover the identical function basis
  // and candidate count the legacy 2^B mask enumeration produces.
  function_config nullspace_cfg{};
  function_config oracle_cfg{};
  oracle_cfg.use_nullspace = false;
  for (const auto& m : dram::paper_machines()) {
    std::vector<unsigned> bank_bits;
    for (std::uint64_t f : m.mapping.bank_functions()) {
      for (unsigned b : bits_of_mask(f)) bank_bits.push_back(b);
    }
    std::sort(bank_bits.begin(), bank_bits.end());
    bank_bits.erase(std::unique(bank_bits.begin(), bank_bits.end()),
                    bank_bits.end());
    const auto piles = piles_for(m.mapping, bank_bits);
    sim::virtual_clock fast_clock, slow_clock;
    const auto fast = detect_functions(piles, bank_bits, m.total_banks(),
                                       fast_clock, nullspace_cfg);
    const auto slow = detect_functions(piles, bank_bits, m.total_banks(),
                                       slow_clock, oracle_cfg);
    ASSERT_TRUE(fast.success) << m.label() << ": " << fast.failure_reason;
    ASSERT_TRUE(slow.success) << m.label() << ": " << slow.failure_reason;
    EXPECT_EQ(fast.functions, slow.functions) << m.label();
    EXPECT_EQ(fast.raw_candidates, slow.raw_candidates) << m.label();
    EXPECT_EQ(fast.numbering_ok, slow.numbering_ok) << m.label();
    // The whole point: the null-space path charges far less virtual CPU.
    EXPECT_LT(fast_clock.now_ns(), slow_clock.now_ns()) << m.label();
  }
}

TEST(FunctionDetect, NullspaceMatchesEnumerationOnRandomPiles) {
  // Property test over random mappings with up to 12 bank bits: identical
  // outcome (success flag, functions, candidate count) on both paths —
  // including degenerate inputs where detection fails.
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const auto m = dram::random_machine(30, 3 + seed % 3, seed);
    std::vector<unsigned> bank_bits;
    for (std::uint64_t f : m.mapping.bank_functions()) {
      for (unsigned b : bits_of_mask(f)) bank_bits.push_back(b);
    }
    std::sort(bank_bits.begin(), bank_bits.end());
    bank_bits.erase(std::unique(bank_bits.begin(), bank_bits.end()),
                    bank_bits.end());
    if (bank_bits.size() > 12) continue;
    auto piles = piles_for(m.mapping, bank_bits);
    // Every other seed, degrade the piles so the failure paths get
    // differential coverage too.
    if (seed % 2 == 0 && piles.size() > 2) piles.resize(piles.size() / 2);
    function_config oracle_cfg{};
    oracle_cfg.use_nullspace = false;
    sim::virtual_clock c1, c2;
    const auto fast =
        detect_functions(piles, bank_bits, m.total_banks(), c1);
    const auto slow =
        detect_functions(piles, bank_bits, m.total_banks(), c2, oracle_cfg);
    EXPECT_EQ(fast.success, slow.success) << "seed " << seed;
    EXPECT_EQ(fast.functions, slow.functions) << "seed " << seed;
    EXPECT_EQ(fast.raw_candidates, slow.raw_candidates) << "seed " << seed;
    EXPECT_EQ(fast.numbering_ok, slow.numbering_ok) << "seed " << seed;
  }
}

TEST(FunctionDetect, RandomMappingsProperty) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto m = dram::random_machine(32, 4, seed);
    sim::virtual_clock clock;
    std::vector<unsigned> bank_bits;
    for (std::uint64_t f : m.mapping.bank_functions()) {
      for (unsigned b : bits_of_mask(f)) bank_bits.push_back(b);
    }
    std::sort(bank_bits.begin(), bank_bits.end());
    bank_bits.erase(std::unique(bank_bits.begin(), bank_bits.end()),
                    bank_bits.end());
    const auto out = detect_functions(piles_for(m.mapping, bank_bits),
                                      bank_bits, m.total_banks(), clock);
    ASSERT_TRUE(out.success) << "seed " << seed;
    EXPECT_TRUE(gf2::same_span(out.functions, m.mapping.bank_functions()))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dramdig::core

// The designed-experiment engine's acceptance pins: designed mode and the
// legacy fixed-vote oracle must classify every bit identically on every
// paper preset and under noisy seeds, while the designed mode pays
// measurably less; probe_pairs must reuse the plan's evidence.
#include "core/bit_probe.h"

#include <gtest/gtest.h>

#include "core/coarse_detect.h"
#include "core/fine_detect.h"
#include "core_test_util.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

struct probed_run {
  coarse_result coarse;
  fine_outcome fine;
  std::uint64_t measurements = 0;
  probe_stats stats;
};

/// Coarse + fine (with the machine's true functions, isolating the probed
/// phases from partition) in one mode, on a fresh fixture.
probed_run run_probed_phases(int machine, std::uint64_t seed, bool designed) {
  pipeline_fixture f(machine, seed);
  measurement_plan plan(f.channel);
  bit_probe_engine engine(plan, f.buffer);
  coarse_config coarse_cfg{};
  coarse_cfg.probe.use_designed = designed;
  fine_config fine_cfg{};
  fine_cfg.probe.use_designed = designed;
  probed_run out;
  const std::uint64_t m0 = f.env.mach().controller().measurement_count();
  out.coarse = run_coarse_detection(engine, f.knowledge, f.r, coarse_cfg);
  out.fine = run_fine_detection(engine, f.knowledge, out.coarse,
                                f.env.spec().mapping.bank_functions(), f.r,
                                fine_cfg);
  out.measurements = f.env.mach().controller().measurement_count() - m0;
  out.stats = engine.stats();
  return out;
}

void expect_identical_classifications(const probed_run& legacy,
                                      const probed_run& designed,
                                      const std::string& label) {
  EXPECT_EQ(legacy.coarse.row_bits, designed.coarse.row_bits) << label;
  EXPECT_EQ(legacy.coarse.column_bits, designed.coarse.column_bits) << label;
  EXPECT_EQ(legacy.coarse.bank_bits, designed.coarse.bank_bits) << label;
  EXPECT_EQ(legacy.coarse.untestable_bits, designed.coarse.untestable_bits)
      << label;
  EXPECT_EQ(legacy.fine.row_bits, designed.fine.row_bits) << label;
  EXPECT_EQ(legacy.fine.column_bits, designed.fine.column_bits) << label;
  EXPECT_EQ(legacy.fine.shared_row_bits, designed.fine.shared_row_bits)
      << label;
  EXPECT_EQ(legacy.fine.shared_column_bits, designed.fine.shared_column_bits)
      << label;
  EXPECT_EQ(legacy.fine.counts_satisfied, designed.fine.counts_satisfied)
      << label;
}

TEST(BitProbeDifferential, IdenticalClassificationsOnEveryPreset) {
  for (int machine = 1; machine <= 9; ++machine) {
    const probed_run legacy = run_probed_phases(machine, 7, false);
    const probed_run designed = run_probed_phases(machine, 7, true);
    expect_identical_classifications(legacy, designed,
                                     "No." + std::to_string(machine));
  }
}

TEST(BitProbeDifferential, IdenticalClassificationsOnNoisySeeds) {
  // The noisy mobile units, across randomized seeds: single-sample
  // negatives plus strict-verified positives must land on the legacy
  // all-strict verdicts every time.
  for (int machine : {3, 7}) {
    for (std::uint64_t seed : {11u, 23u, 55u, 101u}) {
      const probed_run legacy = run_probed_phases(machine, seed, false);
      const probed_run designed = run_probed_phases(machine, seed, true);
      expect_identical_classifications(
          legacy, designed,
          "No." + std::to_string(machine) + " seed " + std::to_string(seed));
    }
  }
}

TEST(BitProbe, DesignedCutsCoarseFineMeasurementsOnSmallMachines) {
  // The acceptance floor behind bench_guard --min-probe-reduction: the
  // small machines were dominated by coarse voting.
  for (int machine : {1, 4, 7}) {
    const probed_run legacy = run_probed_phases(machine, 7, false);
    const probed_run designed = run_probed_phases(machine, 7, true);
    EXPECT_LE(designed.measurements * 10, legacy.measurements * 7)
        << "No." << machine << ": designed " << designed.measurements
        << " vs legacy " << legacy.measurements;
  }
}

TEST(BitProbe, EarlyTerminationAndRoundBatchingShowInStats) {
  const probed_run designed = run_probed_phases(1, 7, true);
  // Unanimous experiments stop after ceil(votes/2) votes, so the engine
  // must save a large share of the legacy 7-votes-per-bit budget...
  EXPECT_GT(designed.stats.votes_saved, designed.stats.experiments);
  EXPECT_LT(designed.stats.votes_cast, designed.stats.experiments * 7);
  // ...and the whole coarse phase collapses into a handful of cross-bit
  // rounds (the legacy row pass alone was ~27 per-bit batches).
  EXPECT_LE(designed.stats.rounds,
            7u * 2u + designed.fine.shared_row_bits.size() * 3u +
                designed.fine.rejected_candidates.size() * 3u);
  // Shared bases serve a meaningful share of the votes.
  EXPECT_GT(designed.stats.shared_base_votes, designed.stats.votes_cast / 4);
}

TEST(BitProbe, LegacyModeIsUntouchedByTheEngineWrapper) {
  // The oracle path must replay the pre-engine loops bit for bit: same rng
  // consumption, same verdicts — pinned by comparing against a literal
  // transcription of the old vote loop.
  pipeline_fixture f(4, 19);
  measurement_plan plan(f.channel);
  bit_probe_engine engine(plan, f.buffer);
  const std::uint64_t delta = std::uint64_t{1} << 20;

  rng transcript_rng(99);
  std::vector<sim::addr_pair> pairs;
  for (unsigned v = 0; v < 7; ++v) {
    const auto pair = pick_pair_with_delta(f.buffer, delta, transcript_rng, 256);
    if (pair) pairs.push_back(*pair);
  }
  ASSERT_FALSE(pairs.empty());
  const std::vector<char> verdicts = plan.is_sbdr_strict_batch(pairs);
  unsigned high = 0;
  for (char v : verdicts) high += v != 0;
  const bool expected = high * 2 > pairs.size();

  // Fresh fixture (same machine/seed) so the simulated noise sequence and
  // pagemap match; the engine must reproduce the verdict exactly.
  pipeline_fixture g(4, 19);
  measurement_plan plan2(g.channel);
  bit_probe_engine engine2(plan2, g.buffer);
  rng engine_rng(99);
  probe_config legacy{};
  legacy.use_designed = false;
  const auto verdict = engine2.run_one(delta, legacy, engine_rng);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, expected);
}

TEST(BitProbe, UntestableDeltaReturnsNulloptInBothModes) {
  pipeline_fixture f(4, 7);
  measurement_plan plan(f.channel);
  bit_probe_engine engine(plan, f.buffer);
  // A delta far above installed memory: no partner page can ever back it.
  const std::uint64_t delta = std::uint64_t{1} << 40;
  for (const bool designed : {false, true}) {
    probe_config cfg{};
    cfg.use_designed = designed;
    EXPECT_EQ(engine.run_one(delta, cfg, f.r), std::nullopt)
        << (designed ? "designed" : "legacy");
  }
}

TEST(BitProbe, ProbePairsAnswersRepeatsFromThePlanCache) {
  pipeline_fixture f(1, 7);
  measurement_plan plan(f.channel);
  std::vector<sim::addr_pair> pairs;
  for (unsigned b = 20; b < 26; ++b) {
    const auto pair =
        pick_pair_with_delta(f.buffer, std::uint64_t{1} << b, f.r, 256);
    ASSERT_TRUE(pair.has_value());
    pairs.push_back(*pair);
  }
  const auto first = plan.probe_pairs(pairs);
  EXPECT_EQ(first.reused, 0u);
  const std::uint64_t measured =
      f.env.mach().controller().measurement_count();
  const auto second = plan.probe_pairs(pairs);
  EXPECT_EQ(second.sbdr, first.sbdr);
  EXPECT_EQ(second.reused, pairs.size());
  EXPECT_EQ(f.env.mach().controller().measurement_count(), measured)
      << "repeat probes must not touch the controller";
}

TEST(BitProbe, ProbePairsMatchesStrictVerdicts) {
  // The designed vote's adaptive economics (single-sample negatives,
  // strict-verified positives) must land on the same verdicts as the
  // all-strict predicate, pair for pair.
  pipeline_fixture f(7, 31);
  measurement_plan probe_plan(f.channel);
  std::vector<sim::addr_pair> pairs;
  for (unsigned b = f.knowledge.min_probe_bit; b < f.knowledge.address_bits;
       ++b) {
    const auto pair =
        pick_pair_with_delta(f.buffer, std::uint64_t{1} << b, f.r, 256);
    if (pair) pairs.push_back(*pair);
  }
  ASSERT_GT(pairs.size(), 10u);
  const auto probed = probe_plan.probe_pairs(pairs);

  pipeline_fixture g(7, 31);
  measurement_plan strict_plan(g.channel);
  // Same physical pairs measured strictly on an identical twin machine.
  const std::vector<char> strict = strict_plan.is_sbdr_strict_batch(pairs);
  EXPECT_EQ(probed.sbdr, strict);
}

}  // namespace
}  // namespace dramdig::core

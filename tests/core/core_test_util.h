// Shared fixture for core-pipeline tests: a simulated machine with its OS,
// a mapped buffer and a calibrated timing channel — the state every
// pipeline stage expects to run on.
#pragma once

#include "core/domain_knowledge.h"
#include "core/environment.h"
#include "core/probe_util.h"
#include "sysinfo/system_info.h"
#include "timing/channel.h"

namespace dramdig::core::testing {

struct pipeline_fixture {
  environment env;
  domain_knowledge knowledge;
  const os::mapping_region& buffer;
  timing::channel channel;
  rng r;

  explicit pipeline_fixture(int machine_number, std::uint64_t seed = 7,
                            double buffer_fraction = 0.55)
      : env(dram::machine_by_number(machine_number), seed),
        knowledge(domain_knowledge::from_system_info(
            sysinfo::probe(env.spec()))),
        buffer(env.space().map_buffer(static_cast<std::uint64_t>(
            buffer_fraction *
            static_cast<double>(env.spec().memory_bytes)))),
        channel(env.mach().controller(),
                {.rounds_per_measurement = 1000,
                 .samples_per_latency = 3,
                 .calibration_pairs = 1200},
                rng(seed ^ 0xc0ffee)),
        r(seed ^ 0x7e57) {
    channel.calibrate(sample_addresses(buffer, 1024, r));
  }
};

}  // namespace dramdig::core::testing

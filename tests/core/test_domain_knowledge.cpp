#include "core/domain_knowledge.h"

#include <gtest/gtest.h>

#include "dram/presets.h"
#include "sysinfo/system_info.h"

namespace dramdig::core {
namespace {

TEST(DomainKnowledge, MachineNo1) {
  const auto dk = domain_knowledge::from_system_info(
      sysinfo::probe(dram::machine_by_number(1)));
  EXPECT_EQ(dk.address_bits, 33u);
  EXPECT_EQ(dk.total_banks, 16u);
  EXPECT_EQ(dk.bank_function_count, 4u);
  EXPECT_EQ(dk.expected_row_bits, 16u);
  EXPECT_EQ(dk.expected_column_bits, 13u);
  EXPECT_EQ(dk.min_probe_bit, 6u);
}

TEST(DomainKnowledge, MachineNo6) {
  const auto dk = domain_knowledge::from_system_info(
      sysinfo::probe(dram::machine_by_number(6)));
  EXPECT_EQ(dk.address_bits, 34u);
  EXPECT_EQ(dk.total_banks, 64u);
  EXPECT_EQ(dk.bank_function_count, 6u);
  EXPECT_EQ(dk.expected_row_bits, 15u);
  EXPECT_EQ(dk.expected_column_bits, 13u);
}

TEST(DomainKnowledge, BitAccountingHoldsForAllMachines) {
  for (const auto& m : dram::paper_machines()) {
    const auto dk = domain_knowledge::from_system_info(sysinfo::probe(m));
    EXPECT_EQ(dk.expected_row_bits + dk.expected_column_bits +
                  dk.bank_function_count,
              dk.address_bits)
        << m.label();
    // The knowledge-predicted counts must match the ground truth mapping.
    EXPECT_EQ(dk.expected_row_bits, m.mapping.row_bits().size()) << m.label();
    EXPECT_EQ(dk.expected_column_bits, m.mapping.column_bits().size())
        << m.label();
  }
}

}  // namespace
}  // namespace dramdig::core

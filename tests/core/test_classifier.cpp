#include "core/classifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/address_selection.h"
#include "core_test_util.h"
#include "util/bitops.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

/// The machine's coarse "covered" bit set — every bit feeding a bank
/// function, shared row bits included — i.e. what Step 2 hands to the
/// partition stage.
std::vector<unsigned> covered_bits(const pipeline_fixture& f) {
  std::uint64_t covered = 0;
  for (const std::uint64_t fn : f.env.spec().mapping.bank_functions()) {
    covered |= fn;
  }
  return bits_of_mask(covered);
}

std::vector<std::uint64_t> pool_for(pipeline_fixture& f) {
  const auto sel = select_addresses(f.buffer, covered_bits(f));
  EXPECT_TRUE(sel.found);
  return sel.pool;
}

/// Pure piles, no two piles of one bank, and (for the representative
/// driver) every pile inside the delta window — the partition contract
/// both drivers must satisfy on every machine.
void expect_sound_partition(const partition_outcome& out,
                            const dram::address_mapping& truth,
                            std::size_t pool_size, unsigned bank_count,
                            const partition_config& config,
                            const char* label) {
  ASSERT_TRUE(out.success) << label;
  const double pile_sz =
      static_cast<double>(pool_size) / static_cast<double>(bank_count);
  std::set<std::uint64_t> banks_seen;
  std::set<std::uint64_t> addresses;
  for (const auto& pile : out.piles) {
    const std::uint64_t bank = truth.bank_of(pile.front());
    for (const std::uint64_t p : pile) {
      EXPECT_EQ(truth.bank_of(p), bank) << label << ": polluted pile";
      EXPECT_TRUE(addresses.insert(p).second)
          << label << ": address in two piles";
    }
    EXPECT_TRUE(banks_seen.insert(bank).second)
        << label << ": two piles of one bank";
    EXPECT_GE(static_cast<double>(pile.size()),
              (1.0 - config.delta_lower) * pile_sz)
        << label;
    EXPECT_LE(static_cast<double>(pile.size()),
              (1.0 + config.delta) * pile_sz + 1)
        << label;
  }
  EXPECT_GE(out.partitioned, pool_size * 85 / 100) << label;
}

TEST(Classifier, DifferentialPathsAgreeOnEveryPaperMachine) {
  // The two drivers must produce the same same-bank partition on every
  // paper preset: piles pure, one pile per bank, delta window honoured —
  // so any pair of addresses assigned by both paths is co-piled in one
  // exactly when it is co-piled in the other.
  for (int machine = 1; machine <= 9; ++machine) {
    pipeline_fixture pivot_f(machine), rep_f(machine);
    const auto pool = pool_for(pivot_f);
    const unsigned banks =
        static_cast<unsigned>(pivot_f.env.spec().mapping.bank_count());

    partition_config pivot_cfg{};
    pivot_cfg.use_representatives = false;
    const auto pivot_out =
        partition_pool(pivot_f.channel, pool, banks, pivot_f.r, pivot_cfg);
    partition_config rep_cfg{};  // representative driver is the default
    const auto rep_out =
        partition_pool(rep_f.channel, pool, banks, rep_f.r, rep_cfg);

    const auto& truth = pivot_f.env.spec().mapping;
    expect_sound_partition(pivot_out, truth, pool.size(), banks, pivot_cfg,
                           ("No." + std::to_string(machine) + " pivot")
                               .c_str());
    expect_sound_partition(rep_out, truth, pool.size(), banks, rep_cfg,
                           ("No." + std::to_string(machine) + " rep")
                               .c_str());
    // Both drivers honour the same per_threshold coverage contract; the
    // representative driver stops exactly at the target while the pivot
    // loop overshoots by up to one pile, so equality is not required —
    // the 85% floor inside expect_sound_partition is the real claim.
  }
}

TEST(Classifier, DeltaWindowHoldsOnNoisyProfilesAcrossSeeds) {
  // The ROADMAP flagged the representative path's noise profile as the
  // open question: validate the delta window and pile purity on the two
  // noisy mobile units across several measurement-noise seeds.
  for (const int machine : {3, 7}) {
    for (const std::uint64_t seed : {7ull, 21ull, 77ull}) {
      pipeline_fixture f(machine, seed);
      const auto pool = pool_for(f);
      const unsigned banks =
          static_cast<unsigned>(f.env.spec().mapping.bank_count());
      const partition_config cfg{};
      const auto out = partition_pool(f.channel, pool, banks, f.r, cfg);
      expect_sound_partition(
          out, f.env.spec().mapping, pool.size(), banks, cfg,
          ("No." + std::to_string(machine) + " seed " + std::to_string(seed))
              .c_str());
    }
  }
}

TEST(Classifier, RepresentativesArePairwiseRowDistinctVerifiedMembers) {
  // The property the fallback vote rests on: a class's representatives
  // are same-bank members sitting in pairwise different rows, so an
  // address can share a row with at most one of them.
  for (const int machine : {1, 2, 6}) {
    pipeline_fixture f(machine);
    const auto pool = pool_for(f);
    const unsigned banks =
        static_cast<unsigned>(f.env.spec().mapping.bank_count());
    measurement_plan plan(f.channel);
    bank_classifier engine(plan);
    const auto out = partition_pool(engine, pool, banks, f.r, {});
    ASSERT_TRUE(out.success);
    ASSERT_FALSE(engine.classes().empty());
    const auto& truth = f.env.spec().mapping;
    for (const bank_class& c : engine.classes()) {
      ASSERT_FALSE(c.representatives.empty());
      for (const std::uint64_t rep : c.representatives) {
        EXPECT_NE(std::find(c.members.begin(), c.members.end(), rep),
                  c.members.end())
            << "representative is not a member";
        EXPECT_EQ(truth.bank_of(rep), truth.bank_of(c.members.front()));
      }
      for (std::size_t i = 0; i < c.representatives.size(); ++i) {
        for (std::size_t j = i + 1; j < c.representatives.size(); ++j) {
          EXPECT_NE(truth.row_of(c.representatives[i]),
                    truth.row_of(c.representatives[j]))
              << "representatives share a row";
        }
      }
    }
  }
}

TEST(Classifier, DirectoryReuseMakesRepeatPartitionsFree) {
  // The bank-count sweep's fast path: a surviving class directory
  // re-resolves the whole pool from the plan's union-find, so repeat
  // partitions of a classified pool cost (almost) nothing.
  pipeline_fixture f(1);
  const auto pool = pool_for(f);
  const unsigned banks =
      static_cast<unsigned>(f.env.spec().mapping.bank_count());
  measurement_plan plan(f.channel);
  bank_classifier engine(plan);
  auto& controller = f.env.mach().controller();

  const std::uint64_t base = controller.measurement_count();
  const auto first = partition_pool(engine, pool, banks, f.r, {});
  ASSERT_TRUE(first.success);
  const std::uint64_t cost1 = controller.measurement_count() - base;

  const auto second = partition_pool(engine, pool, banks, f.r, {});
  ASSERT_TRUE(second.success);
  const std::uint64_t cost2 = controller.measurement_count() - base - cost1;
  EXPECT_LT(cost2, cost1 / 10);
  EXPECT_EQ(second.piles.size(), first.piles.size());
  EXPECT_GE(second.partitioned, first.partitioned);
  EXPECT_GT(second.reused_verdicts, 0u);

  // clear() drops the directory: the next call measures again.
  engine.clear();
  const auto third = partition_pool(engine, pool, banks, f.r, {});
  ASSERT_TRUE(third.success);
  EXPECT_GT(controller.measurement_count() - base - cost1 - cost2, cost2);
}

TEST(Classifier, PivotScanPathIsBitForBitLegacyOracle) {
  // use_representatives = false must reproduce the pre-engine pivot loop
  // exactly: same rng draws, same scans, same measurement count, same
  // piles. The loop below is a literal transcription of that code.
  pipeline_fixture oracle_f(1), engine_f(1);
  const auto pool0 = pool_for(oracle_f);
  const unsigned banks = 16;

  partition_config config{};
  config.use_representatives = false;

  partition_outcome expected;
  {
    measurement_plan plan(oracle_f.channel);
    std::vector<std::uint64_t> pool = pool0;
    const std::size_t pool_sz = pool.size();
    const double pile_sz =
        static_cast<double>(pool_sz) / static_cast<double>(banks);
    const std::size_t stop_at = static_cast<std::size_t>(
        (1.0 - config.per_threshold) * static_cast<double>(pool_sz));
    scan_options scan{};
    scan.verify_positives = config.verify_positives;
    scan.prescreen_sample = config.prescreen_sample;
    scan.prescreen_z = config.prescreen_z;
    scan.window = {(1.0 - config.delta_lower) * pile_sz,
                   (1.0 + config.delta) * pile_sz};
    unsigned attempts = 0;
    while (pool.size() > stop_at) {
      ASSERT_LT(attempts++, 4 * banks + 32);
      const std::size_t pivot_idx = oracle_f.r.below(pool.size());
      const std::uint64_t pivot = pool[pivot_idx];
      std::vector<std::uint64_t> partners;
      std::vector<std::size_t> partner_idx;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (i == pivot_idx) continue;
        partners.push_back(pool[i]);
        partner_idx.push_back(i);
      }
      const auto verdict = plan.classify_partners(pivot, partners, scan);
      if (verdict.prescreen_rejected) continue;
      std::vector<std::size_t> members;
      for (std::size_t j = 0; j < verdict.member.size(); ++j) {
        if (verdict.member[j]) members.push_back(partner_idx[j]);
      }
      const double size = static_cast<double>(members.size() + 1);
      if (size < scan.window.lo || size > scan.window.hi) continue;
      std::vector<std::uint64_t> pile{pivot};
      for (const std::size_t i : members) pile.push_back(pool[i]);
      expected.partitioned += pile.size();
      members.push_back(pivot_idx);
      std::sort(members.begin(), members.end(), std::greater<>());
      for (const std::size_t i : members) {
        pool[i] = pool.back();
        pool.pop_back();
      }
      expected.piles.push_back(std::move(pile));
    }
  }
  const std::uint64_t oracle_count =
      oracle_f.env.mach().controller().measurement_count();

  const auto got =
      partition_pool(engine_f.channel, pool0, banks, engine_f.r, config);
  ASSERT_TRUE(got.success);
  EXPECT_EQ(got.piles, expected.piles);
  EXPECT_EQ(got.partitioned, expected.partitioned);
  EXPECT_EQ(engine_f.env.mach().controller().measurement_count(),
            oracle_count);
}

TEST(Classifier, RepresentativePathRejectsWrongBankCount) {
  // 64 piles requested on a 16-bank machine: every founder scan's pile is
  // ~4x oversized for the window, so the engine must fail without
  // fabricating classes — the blind bank-count sweep depends on it.
  pipeline_fixture f(3);
  const auto pool = pool_for(f);
  partition_config cfg{};
  cfg.max_pivot_attempts = 40;
  cfg.use_representatives = true;
  const auto out = partition_pool(f.channel, pool, 64, f.r, cfg);
  EXPECT_FALSE(out.success);
  EXPECT_TRUE(out.piles.empty());
}

TEST(Classifier, EngineFallsBackToPivotScanWithoutReuseCache) {
  // The representative ladder needs the plan's relation cache as its
  // memory; with reuse off the engine must dispatch to the pivot loop
  // (and still partition correctly) rather than spin.
  pipeline_fixture f(1);
  const auto pool = pool_for(f);
  measurement_plan plan(f.channel, {.reuse_verdicts = false});
  bank_classifier engine(plan);
  const auto out = partition_pool(engine, pool, 16, f.r, {});
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.representative_votes, 0u);
  EXPECT_EQ(out.founder_scans, 0u);
}

TEST(Classifier, PredictionAccountingExposedInOutcome) {
  // On a clean preset the GF(2) prediction should carry nearly all
  // assignments (the knowledge-assisted fast path this engine exists
  // for), with founder scans bounded by the bank count.
  pipeline_fixture f(2);
  const auto pool = pool_for(f);
  const unsigned banks =
      static_cast<unsigned>(f.env.spec().mapping.bank_count());
  const auto out = partition_pool(f.channel, pool, banks, f.r, {});
  ASSERT_TRUE(out.success);
  EXPECT_LE(out.founder_scans, banks + 4);
  EXPECT_GT(out.predicted_assignments, out.partitioned / 2);
  EXPECT_GT(out.representative_votes + out.fallback_votes, 0u);
}

}  // namespace
}  // namespace dramdig::core

#include "core/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "core/address_selection.h"
#include "core_test_util.h"

namespace dramdig::core {
namespace {

using testing::pipeline_fixture;

/// Selection pool for a machine's true coarse bank bits.
std::vector<std::uint64_t> pool_for(pipeline_fixture& f,
                                    std::vector<unsigned> bank_bits) {
  const auto sel = select_addresses(f.buffer, bank_bits);
  EXPECT_TRUE(sel.found);
  return sel.pool;
}

TEST(Partition, MachineNo1PilesAreTrueBanks) {
  pipeline_fixture f(1);
  auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const auto out = partition_pool(f.channel, pool, 16, f.r);
  ASSERT_TRUE(out.success);
  // >= 85% of the pool assigned.
  EXPECT_GE(out.partitioned, pool.size() * 85 / 100);
  // Every pile is pure: all members share the true flat bank.
  const auto& truth = f.env.spec().mapping;
  for (const auto& pile : out.piles) {
    const std::uint64_t bank = truth.bank_of(pile.front());
    for (std::uint64_t p : pile) {
      EXPECT_EQ(truth.bank_of(p), bank);
    }
  }
}

TEST(Partition, PilesAreDisjoint) {
  pipeline_fixture f(1);
  auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  const auto out = partition_pool(f.channel, pool, 16, f.r);
  ASSERT_TRUE(out.success);
  std::set<std::uint64_t> seen;
  for (const auto& pile : out.piles) {
    for (std::uint64_t p : pile) {
      EXPECT_TRUE(seen.insert(p).second) << "address in two piles";
    }
  }
}

TEST(Partition, PileCountApproachesBankCount) {
  pipeline_fixture f(3);
  auto pool = pool_for(f, {13, 14, 15, 16, 17, 18, 19, 20});
  const auto out = partition_pool(f.channel, pool, 16, f.r);
  ASSERT_TRUE(out.success);
  // With per_threshold = 0.85 nearly all banks get a pile.
  EXPECT_GE(out.piles.size(), 13u);
  EXPECT_LE(out.piles.size(), 16u);
}

TEST(Partition, PileSizesWithinDeltaWindow) {
  pipeline_fixture f(3);
  auto pool = pool_for(f, {13, 14, 15, 16, 17, 18, 19, 20});
  const double pile_sz = static_cast<double>(pool.size()) / 16.0;
  const auto out = partition_pool(f.channel, pool, 16, f.r);
  ASSERT_TRUE(out.success);
  for (const auto& pile : out.piles) {
    EXPECT_GE(static_cast<double>(pile.size()), (1.0 - 0.4) * pile_sz);
    EXPECT_LE(static_cast<double>(pile.size()), (1.0 + 0.2) * pile_sz + 1);
  }
}

TEST(Partition, WrongBankCountIsRejected) {
  // Asking for 64 piles on a 16-bank machine: every candidate pile is ~4x
  // oversized relative to pool/64, so the delta window rejects everything.
  pipeline_fixture f(3);
  auto pool = pool_for(f, {13, 14, 15, 16, 17, 18, 19, 20});
  partition_config cfg{};
  cfg.max_pivot_attempts = 40;
  const auto out = partition_pool(f.channel, pool, 64, f.r, cfg);
  EXPECT_FALSE(out.success);
  EXPECT_TRUE(out.piles.empty());
}

TEST(Partition, SurvivesNoisyMachine) {
  pipeline_fixture f(7, 21);
  auto pool = pool_for(f, {6, 13, 14, 15, 16, 17});
  const auto out = partition_pool(f.channel, pool, 8, f.r);
  ASSERT_TRUE(out.success);
  const auto& truth = f.env.spec().mapping;
  for (const auto& pile : out.piles) {
    const std::uint64_t bank = truth.bank_of(pile.front());
    for (std::uint64_t p : pile) {
      EXPECT_EQ(truth.bank_of(p), bank) << "polluted pile on noisy machine";
    }
  }
}

TEST(Partition, RequiresSanePool) {
  pipeline_fixture f(1);
  std::vector<std::uint64_t> tiny{0, 64};
  EXPECT_THROW((void)partition_pool(f.channel, tiny, 16, f.r),
               contract_violation);
}

TEST(Partition, StopThresholdHonored) {
  pipeline_fixture f(1);
  auto pool = pool_for(f, {6, 14, 15, 16, 17, 18, 19});
  partition_config cfg{};
  cfg.per_threshold = 0.5;  // stop earlier
  const auto out = partition_pool(f.channel, pool, 16, f.r, cfg);
  ASSERT_TRUE(out.success);
  EXPECT_GE(out.partitioned, pool.size() / 2);
  // Early stop means fewer piles than banks is acceptable.
  EXPECT_LE(out.piles.size(), 16u);
}

}  // namespace
}  // namespace dramdig::core

// Reproduces **Table III**: double-sided rowhammer tests on machines No.1,
// No.2 and No.5 — five 5-minute tests per machine, bit flips reported as
// DRAMDig/DRAMA.
//
// Protocol mirrors the paper: DRAMDig's mapping is uncovered once per
// machine (it is deterministic); DRAMA is re-run per test because its
// output varies run to run — which is exactly why its flip counts swing
// between "comparable" and zero. Expected shape: DRAMDig >> DRAMA in
// total, DRAMA hitting zero in some tests, and machine vulnerability
// ordering No.2 >> No.1 >> No.5.
#include <cstdio>

#include "baselines/drama.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "rowhammer/harness.h"
#include "util/table.h"

namespace {

using namespace dramdig;

/// One paper test: 5 virtual minutes of double-sided hammering.
std::uint64_t run_test(sim::machine& machine,
                       const dram::address_mapping& hypothesis,
                       std::uint64_t seed) {
  rng r(seed);
  return rowhammer::run_double_sided_test(machine, hypothesis, r).bit_flips;
}

}  // namespace

int main() {
  std::printf("== Table III: double-sided rowhammer, 5 tests x 5 minutes, "
              "bit flips as DRAMDig/DRAMA ==\n\n");
  text_table table({"Machine", "T1", "T2", "T3", "T4", "T5", "Total"});

  for (int machine_no : {1, 2, 5}) {
    const dram::machine_spec& spec = dram::machine_by_number(machine_no);

    // DRAMDig: one deterministic reverse-engineering run.
    core::environment dig_env(spec, 5000 + machine_no);
    const auto dig_report = core::dramdig_tool(dig_env).run();

    std::uint64_t dig_total = 0, drama_total = 0;
    std::vector<std::string> cells;
    for (int t = 0; t < 5; ++t) {
      const std::uint64_t seed =
          7000ull + static_cast<std::uint64_t>(machine_no) * 100 + t;
      std::uint64_t dig_flips = 0;
      if (dig_report.mapping) {
        dig_flips = run_test(dig_env.mach(), *dig_report.mapping, seed);
      }
      // DRAMA: fresh single-pass run per test, the way the tool actually
      // ships — one clustering + brute-force pass, output whatever it
      // found. (The multi-trial agreement loop models the patient Fig. 2
      // protocol; the paper's Table III hammered with the per-run outputs,
      // which is where DRAMA's zeros come from.)
      core::environment drama_env(spec, seed);
      baselines::drama_config drama_cfg{};
      drama_cfg.max_trials = 1;
      const auto drama_report =
          baselines::drama_tool(drama_env, drama_cfg).run();
      std::uint64_t drama_flips = 0;
      if (drama_report.mapping) {
        drama_flips = run_test(drama_env.mach(), *drama_report.mapping, seed);
      }
      dig_total += dig_flips;
      drama_total += drama_flips;
      cells.push_back(std::to_string(dig_flips) + "/" +
                      std::to_string(drama_flips));
      std::fflush(stdout);
    }
    table.add_row({spec.label(), cells[0], cells[1], cells[2], cells[3],
                   cells[4],
                   std::to_string(dig_total) + "/" +
                       std::to_string(drama_total)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper totals for reference — No.1: 2051/1098, No.2: "
              "4863/1875, No.5: 57/7\n");
  return 0;
}

// Perf-regression guard over a freshly emitted BENCH_micro.json: CI runs
// the smoke bench, then this checker, and the build fails when a tracked
// wall-speedup ratio drops below its floor or a differential-identity flag
// flips. The guard deliberately does not link the library (it must stay a
// dumb reader even if the emitter is broken), so instead of util/json.h's
// parser it scans for `"key": value` inside a named section — exactly the
// shape util/json.h emits.
//
// Usage: bench_guard BENCH_micro.json [--min-nullspace=N] [--min-accounting=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

/// Value text of `"key": ...` inside `section`'s object. The emitted
/// sections are flat (no nested objects), so the section extends to the
/// first closing brace after its opening one — bounding the key search
/// there keeps a missing key from silently matching a later section.
std::string value_after(const std::string& doc, const std::string& section,
                        const std::string& key) {
  const std::size_t at = doc.find("\"" + section + "\"");
  if (at == std::string::npos) return {};
  const std::size_t open = doc.find('{', at);
  if (open == std::string::npos) return {};
  const std::size_t close = doc.find('}', open);
  const std::size_t k = doc.find("\"" + key + "\"", at);
  if (k == std::string::npos || (close != std::string::npos && k > close)) {
    return {};
  }
  std::size_t v = doc.find(':', k);
  if (v == std::string::npos) return {};
  ++v;
  while (v < doc.size() && (doc[v] == ' ' || doc[v] == '\t')) ++v;
  std::size_t end = v;
  while (end < doc.size() && doc[end] != ',' && doc[end] != '\n' &&
         doc[end] != '}') {
    ++end;
  }
  return doc.substr(v, end - v);
}

bool check_speedup(const std::string& doc, const std::string& section,
                   double floor, int& failures) {
  const std::string text = value_after(doc, section, "wall_speedup");
  if (text.empty()) {
    std::fprintf(stderr, "guard: %s.wall_speedup missing\n", section.c_str());
    ++failures;
    return false;
  }
  const double speedup = std::strtod(text.c_str(), nullptr);
  if (speedup < floor) {
    std::fprintf(stderr, "guard: %s.wall_speedup %.2fx below floor %.2fx\n",
                 section.c_str(), speedup, floor);
    ++failures;
    return false;
  }
  std::printf("guard: %s.wall_speedup %.2fx (floor %.2fx) ok\n",
              section.c_str(), speedup, floor);
  return true;
}

bool check_ratio(const std::string& doc, const std::string& section,
                 const std::string& key, double floor, int& failures) {
  const std::string text = value_after(doc, section, key);
  if (text.empty()) {
    std::fprintf(stderr, "guard: %s.%s missing\n", section.c_str(),
                 key.c_str());
    ++failures;
    return false;
  }
  const double ratio = std::strtod(text.c_str(), nullptr);
  if (ratio < floor) {
    std::fprintf(stderr, "guard: %s.%s %.2fx below floor %.2fx\n",
                 section.c_str(), key.c_str(), ratio, floor);
    ++failures;
    return false;
  }
  std::printf("guard: %s.%s %.2fx (floor %.2fx) ok\n", section.c_str(),
              key.c_str(), ratio, floor);
  return true;
}

bool check_true(const std::string& doc, const std::string& section,
                const std::string& key, int& failures) {
  const std::string text = value_after(doc, section, key);
  if (text.substr(0, 4) != "true") {
    std::fprintf(stderr, "guard: %s.%s is '%s', want true\n", section.c_str(),
                 key.c_str(), text.c_str());
    ++failures;
    return false;
  }
  std::printf("guard: %s.%s ok\n", section.c_str(), key.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  double min_nullspace = 5.0;
  double min_accounting = 3.0;
  double min_rep_reduction = 0.25;
  double min_probe_reduction = 0.30;
  double min_batch_speedup = 1.0;
  // Whole-pipeline walls are now a few milliseconds (the per-page region
  // index that used to dominate them is gone), so the measured ratio sits
  // at ~1.03 on the smoke machine. The default absorbs scheduler jitter on
  // arbitrary hosts; CI pins 0.98 — reuse must never lose wall time.
  double min_reuse_wall_speedup = 0.95;
  double min_hot_throughput = 2000000.0;
  // Counter sampler vs the sequential mt19937 gaussian (draws/s ratio).
  double min_noise_speedup = 1.3;
  // Wall ratio 1-thread/8-thread of the counter tail: >1 on multi-core
  // hosts (the shards actually spread), and bounded below on single-core
  // CI where an 8-thread pool only adds handoff cost.
  double min_tail_scaling = 0.6;
  // Dispatched decode_banks vs the pinned scalar kernel; 1.0+ wherever a
  // SIMD unit exists, and never far below even on the forced-scalar run.
  double min_decode_speedup = 0.8;
  // Verification-only store hits vs a cold recovery (measurement count
  // reduction, 0.8 = "80% fewer"): the fleet store's acceptance metric.
  double min_warm_reduction = 0.8;
  // Evidence-carrying warm starts (geometry sibling + v2 evidence prior)
  // vs a cold recovery. The bench runs the fleet's worst warm machine, so
  // this floor holds fleet-wide.
  double min_warm_evidence_reduction = 0.5;
  // plan_overhead.ns_per_verdict_ratio is EXPECTED below one (cached
  // verdicts pay bookkeeping per verdict; the win is measurement count,
  // gated by partition_measurement_reuse). The floor only documents that a
  // cached verdict must not become absurdly slower than a raw re-measure.
  double min_verdict_ratio = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-nullspace=", 16) == 0) {
      min_nullspace = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strncmp(argv[i], "--min-accounting=", 17) == 0) {
      min_accounting = std::strtod(argv[i] + 17, nullptr);
    } else if (std::strncmp(argv[i], "--min-rep-reduction=", 20) == 0) {
      min_rep_reduction = std::strtod(argv[i] + 20, nullptr);
    } else if (std::strncmp(argv[i], "--min-probe-reduction=", 22) == 0) {
      min_probe_reduction = std::strtod(argv[i] + 22, nullptr);
    } else if (std::strncmp(argv[i], "--min-batch-speedup=", 20) == 0) {
      min_batch_speedup = std::strtod(argv[i] + 20, nullptr);
    } else if (std::strncmp(argv[i], "--min-reuse-wall-speedup=", 25) == 0) {
      min_reuse_wall_speedup = std::strtod(argv[i] + 25, nullptr);
    } else if (std::strncmp(argv[i], "--min-hot-throughput=", 21) == 0) {
      min_hot_throughput = std::strtod(argv[i] + 21, nullptr);
    } else if (std::strncmp(argv[i], "--min-noise-speedup=", 20) == 0) {
      min_noise_speedup = std::strtod(argv[i] + 20, nullptr);
    } else if (std::strncmp(argv[i], "--min-tail-scaling=", 19) == 0) {
      min_tail_scaling = std::strtod(argv[i] + 19, nullptr);
    } else if (std::strncmp(argv[i], "--min-decode-speedup=", 21) == 0) {
      min_decode_speedup = std::strtod(argv[i] + 21, nullptr);
    } else if (std::strncmp(argv[i], "--min-warm-reduction=", 21) == 0) {
      min_warm_reduction = std::strtod(argv[i] + 21, nullptr);
    } else if (std::strncmp(argv[i], "--min-warm-evidence-reduction=", 30) ==
               0) {
      min_warm_evidence_reduction = std::strtod(argv[i] + 30, nullptr);
    } else if (std::strncmp(argv[i], "--min-verdict-ratio=", 20) == 0) {
      min_verdict_ratio = std::strtod(argv[i] + 20, nullptr);
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_guard BENCH_micro.json [--min-nullspace=N] "
                 "[--min-accounting=N] [--min-rep-reduction=F] "
                 "[--min-probe-reduction=F] [--min-batch-speedup=N] "
                 "[--min-reuse-wall-speedup=N] [--min-hot-throughput=N] "
                 "[--min-noise-speedup=N] [--min-tail-scaling=N] "
                 "[--min-decode-speedup=N] [--min-warm-reduction=F] "
                 "[--min-warm-evidence-reduction=F] "
                 "[--min-verdict-ratio=F]\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "guard: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  int failures = 0;
  check_speedup(doc, "function_detect_synthetic", min_nullspace, failures);
  check_true(doc, "function_detect_synthetic", "identical_functions", failures);
  check_speedup(doc, "measurement_accounting", min_accounting, failures);
  check_true(doc, "measurement_accounting", "identical_results", failures);
  check_true(doc, "partition_measurement_reuse", "ok_cache_on", failures);
  // A failed baseline would make the reduction comparison meaningless.
  check_true(doc, "partition_measurement_reuse", "ok_cache_off", failures);

  // The batch-native hot path must beat the scalar measure_pair loop on
  // wall time, and the plan's bookkeeping must cost less than the
  // measurements it saves over a whole pipeline run.
  check_speedup(doc, "batched_measurement", min_batch_speedup, failures);
  check_speedup(doc, "partition_measurement_reuse", min_reuse_wall_speedup,
                failures);

  // Counter-based noise: the fixed-consumption sampler must stay ahead of
  // the sequential mt19937 draw, the shard-parallel tail must not decay
  // under an oversubscribed pool, and the dispatched decode kernel must
  // match the pinned scalar kernel bit-for-bit.
  check_ratio(doc, "noise_sampling", "speedup", min_noise_speedup, failures);
  check_ratio(doc, "counter_tail", "scaling_8t_vs_1t", min_tail_scaling,
              failures);
  check_ratio(doc, "decode_simd", "speedup", min_decode_speedup, failures);
  check_true(doc, "decode_simd", "identical_results", failures);

  // plan_overhead's per-verdict ratio sits below one on purpose (the
  // emitter annotates it with expected_below_one) — the guard checks the
  // annotation is still there and pins only a pessimistic lower floor, so
  // the committed value reads as intent, not as an unnoticed regression.
  check_true(doc, "plan_overhead", "expected_below_one", failures);
  check_ratio(doc, "plan_overhead", "ns_per_verdict_ratio", min_verdict_ratio,
              failures);

  // Fleet mapping store: a verification-only hit must cost at least the
  // floor fewer measurements than the cold recovery it replaces, while
  // reproducing the stored mapping bit-identically.
  check_true(doc, "fleet_warm_start", "mapping_identical", failures);
  check_true(doc, "fleet_warm_start", "hits_ok", failures);
  const std::string warm_text =
      value_after(doc, "fleet_warm_start", "verify_reduction");
  if (warm_text.empty()) {
    std::fprintf(stderr, "guard: fleet_warm_start.verify_reduction missing\n");
    ++failures;
  } else {
    const double reduction = std::strtod(warm_text.c_str(), nullptr);
    if (reduction < min_warm_reduction) {
      std::fprintf(stderr,
                   "guard: store verification saves only %.0f%% vs a cold "
                   "recovery (floor %.0f%%)\n",
                   reduction * 100.0, min_warm_reduction * 100.0);
      ++failures;
    } else {
      std::printf("guard: store verification saves %.0f%% (floor %.0f%%) ok\n",
                  reduction * 100.0, min_warm_reduction * 100.0);
    }
  }

  // Evidence-carrying warm starts: a geometry sibling run from the v2
  // evidence prior must beat a cold recovery by at least the floor while
  // recovering the stored mapping bit-identically.
  check_true(doc, "fleet_warm_start", "warm_mapping_identical", failures);
  const std::string evidence_text =
      value_after(doc, "fleet_warm_start", "warm_evidence_reduction");
  if (evidence_text.empty()) {
    std::fprintf(stderr,
                 "guard: fleet_warm_start.warm_evidence_reduction missing\n");
    ++failures;
  } else {
    const double reduction = std::strtod(evidence_text.c_str(), nullptr);
    if (reduction < min_warm_evidence_reduction) {
      std::fprintf(stderr,
                   "guard: evidence warm start saves only %.0f%% vs a cold "
                   "recovery (floor %.0f%%)\n",
                   reduction * 100.0, min_warm_evidence_reduction * 100.0);
      ++failures;
    } else {
      std::printf("guard: evidence warm start saves %.0f%% (floor %.0f%%) "
                  "ok\n",
                  reduction * 100.0, min_warm_evidence_reduction * 100.0);
    }
  }

  // Raw hot-path throughput: the slower of decode/measure at 100k pairs
  // must clear the floor (simulated measurements per host second).
  const std::string mps_text =
      value_after(doc, "hot_path_throughput", "min_mps_100k");
  if (mps_text.empty()) {
    std::fprintf(stderr, "guard: hot_path_throughput.min_mps_100k missing\n");
    ++failures;
  } else {
    const double mps = std::strtod(mps_text.c_str(), nullptr);
    if (mps < min_hot_throughput) {
      std::fprintf(stderr,
                   "guard: hot path runs %.2fM meas/s, below the %.2fM floor\n",
                   mps / 1e6, min_hot_throughput / 1e6);
      ++failures;
    } else {
      std::printf("guard: hot path %.2fM meas/s (floor %.2fM) ok\n", mps / 1e6,
                  min_hot_throughput / 1e6);
    }
  }

  // The scheduler must reduce the measurement count, not just match it.
  const std::string off =
      value_after(doc, "partition_measurement_reuse", "measurements_cache_off");
  const std::string on =
      value_after(doc, "partition_measurement_reuse", "measurements_cache_on");
  const double m_off = std::strtod(off.c_str(), nullptr);
  const double m_on = std::strtod(on.c_str(), nullptr);
  if (off.empty() || on.empty() || !(m_on < m_off)) {
    std::fprintf(stderr,
                 "guard: measurement reuse regressed (cache on %s, off %s)\n",
                 on.c_str(), off.c_str());
    ++failures;
  } else {
    std::printf("guard: partition reuse %.0f -> %.0f measurements ok\n", m_off,
                m_on);
  }

  // The representative partition driver must keep beating the pivot-scan
  // loop by at least the floor at every benchmarked bank count — a
  // regression that silently degrades to full scans shows up here even
  // while both paths stay correct.
  check_true(doc, "partition_representatives", "ok", failures);
  const std::string reduction_text =
      value_after(doc, "partition_representatives", "min_reduction");
  if (reduction_text.empty()) {
    std::fprintf(stderr, "guard: partition_representatives.min_reduction "
                         "missing\n");
    ++failures;
  } else {
    const double reduction = std::strtod(reduction_text.c_str(), nullptr);
    if (reduction < min_rep_reduction) {
      std::fprintf(stderr,
                   "guard: representative partition saves only %.0f%% vs "
                   "pivot-scan (floor %.0f%%)\n",
                   reduction * 100.0, min_rep_reduction * 100.0);
      ++failures;
    } else {
      std::printf("guard: representative partition saves %.0f%% "
                  "(floor %.0f%%) ok\n",
                  reduction * 100.0, min_rep_reduction * 100.0);
    }
  }

  // The designed bit-probe engine must keep beating the legacy fixed-vote
  // loops by at least the floor at every benchmarked machine size — a
  // silent fallback to per-bit voting fails the build even while both
  // paths classify correctly.
  check_true(doc, "bit_probe", "ok", failures);
  const std::string probe_text = value_after(doc, "bit_probe", "min_reduction");
  if (probe_text.empty()) {
    std::fprintf(stderr, "guard: bit_probe.min_reduction missing\n");
    ++failures;
  } else {
    const double reduction = std::strtod(probe_text.c_str(), nullptr);
    if (reduction < min_probe_reduction) {
      std::fprintf(stderr,
                   "guard: designed probes save only %.0f%% vs the legacy "
                   "vote loops (floor %.0f%%)\n",
                   reduction * 100.0, min_probe_reduction * 100.0);
      ++failures;
    } else {
      std::printf("guard: designed probes save %.0f%% (floor %.0f%%) ok\n",
                  reduction * 100.0, min_probe_reduction * 100.0);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "guard: %d check(s) failed on %s\n", failures,
                 path.c_str());
    return 1;
  }
  std::printf("guard: all checks passed on %s\n", path.c_str());
  return 0;
}

// Reproduces **Fig. 2**: "Time costs for DRAMDig and DRAMA to uncover DRAM
// mappings on 9 machine settings."
//
// Prints the two series (virtual seconds per machine) plus an ASCII bar
// chart, and writes the full record — wall time, virtual-clock time and
// access/measurement counts per tool per machine — to BENCH_fig2.json so
// the perf trajectory is tracked across PRs. Expected shape, per the
// paper: DRAMDig finishes within minutes on every machine (their range
// 69 s – 17 min, average 7.8 min); DRAMA costs from ~500 s to hours, and
// on the two noisy mobile units (No.3, No.7) it runs ~2 hours without
// producing any result before being killed.
//
// All machine×tool runs are independent jobs submitted to one
// mapping_service batch: the worker pool drains them concurrently and the
// service's determinism contract (each job owns its environment + rng,
// results merged by submission index) makes the table and the JSON
// identical on any thread count. Flags: --machines=1,4 (subset for CI
// smoke runs), --threads=N (worker count; CI pins it to prove the
// contract), --out=PATH (default BENCH_fig2.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/mapping_service.h"
#include "dram/presets.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace dramdig;

std::string bar(double seconds, double max_seconds, std::size_t width = 46) {
  const std::size_t n = static_cast<std::size_t>(
      seconds / max_seconds * static_cast<double>(width));
  return std::string(n, '#');
}

/// One tool's cost record on one machine, extracted from its job outcome.
struct tool_cost {
  double virtual_s = 0;
  double wall_s = 0;
  std::uint64_t measurements = 0;
  /// Answered by the reuse cache. Reported for both tools now that they
  /// share one measurement substrate; DRAMA runs with the cache off (the
  /// original remeasures everything), so its count stays 0 by design.
  std::uint64_t saved = 0;
  std::uint64_t accesses = 0;
  /// DRAMDig only: the coarse + fine phase measurements — the cost the
  /// designed bit-probe engine attacks, tracked so its trajectory is
  /// visible in the committed record.
  std::uint64_t coarse_fine = 0;
  bool ok = false;
};

struct row {
  std::string label;
  tool_cost dramdig;
  tool_cost drama;
};

tool_cost cost_from(const api::job_outcome& outcome) {
  const api::tool_result& r = outcome.result;
  tool_cost c;
  c.virtual_s = r.virtual_seconds;
  c.wall_s = outcome.wall_seconds;
  c.measurements = r.measurement_count;
  c.saved = r.measurements_saved;
  c.accesses = r.access_count;
  for (const api::tool_phase& p : r.phases) {
    if (p.name == "coarse" || p.name == "fine") c.coarse_fine += p.measurements;
  }
  // DRAMDig claims a full mapping, so "ok" is truth-verified; DRAMA's
  // published success notion is completion (two agreeing trials).
  c.ok = r.tool == "dramdig" ? r.verified : r.success;
  return c;
}

void emit_json(const std::string& path, const std::vector<row>& rows) {
  json_writer w;
  w.begin_object();
  w.key("bench").value("fig2_timecosts");
  w.key("machines").begin_array();
  for (const row& r : rows) {
    w.begin_object();
    w.key("label").value(r.label);
    for (const auto& [name, cost] :
         {std::pair<const char*, const tool_cost&>{"dramdig", r.dramdig},
          {"drama", r.drama}}) {
      w.key(name).begin_object();
      w.key("ok").value(cost.ok);
      w.key("virtual_seconds").value(cost.virtual_s);
      w.key("wall_seconds").value(cost.wall_s);
      w.key("measurement_count").value(cost.measurements);
      w.key("measurements_saved").value(cost.saved);
      if (std::strcmp(name, "dramdig") == 0) {
        w.key("coarse_fine_measurements").value(cost.coarse_fine);
      }
      w.key("access_count").value(cost.accesses);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file(path, w.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dramdig;
  std::string out = "BENCH_fig2.json";
  std::vector<int> wanted;  // empty = all paper machines
  unsigned threads = 0;     // 0 = service default
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--machines=", 11) == 0) {
      for (const char* p = argv[i] + 11; *p != '\0'; ++p) {
        if (*p >= '1' && *p <= '9') wanted.push_back(*p - '0');
      }
      if (wanted.empty()) {
        std::fprintf(stderr,
                     "error: --machines needs digits 1-9 (e.g. "
                     "--machines=14 for No.1 and No.4), got '%s'\n",
                     argv[i] + 11);
        return 2;
      }
    }
  }

  std::printf("== Fig. 2: time costs to uncover DRAM mappings ==\n\n");

  std::vector<const dram::machine_spec*> specs;
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    if (wanted.empty() ||
        std::find(wanted.begin(), wanted.end(), spec.number) != wanted.end()) {
      specs.push_back(&spec);
    }
  }

  // Two jobs per machine, all in one service batch. Outcomes merge by
  // submission index, so the record is reproducible on any host and any
  // --threads value.
  std::vector<api::job_spec> jobs;
  for (const dram::machine_spec* spec : specs) {
    const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(spec->number);
    jobs.push_back({*spec, "dramdig", {}, seed});
    jobs.push_back({*spec, "drama", {}, seed});
  }
  const api::mapping_service service({.threads = threads});
  const std::vector<api::job_outcome> outcomes = service.run(jobs);

  std::vector<row> rows(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    rows[i].label = specs[i]->label();
    rows[i].dramdig = cost_from(outcomes[2 * i]);
    rows[i].drama = cost_from(outcomes[2 * i + 1]);
  }

  text_table table({"Machine", "DRAMDig", "DRAMA", "DRAMA outcome"});
  double dig_sum = 0, max_s = 1;
  for (const row& r : rows) {
    dig_sum += r.dramdig.virtual_s;
    max_s = std::max({max_s, r.dramdig.virtual_s, r.drama.virtual_s});
    table.add_row({r.label, fmt_duration_s(r.dramdig.virtual_s),
                   fmt_duration_s(r.drama.virtual_s),
                   r.drama.ok ? "completed" : "no result (killed)"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Time Costs (virtual seconds)\n");
  for (const row& r : rows) {
    std::printf("%-5s DRAMDig %7.0fs |%s\n", r.label.c_str(),
                r.dramdig.virtual_s, bar(r.dramdig.virtual_s, max_s).c_str());
    std::printf("      DRAMA   %7.0fs |%s\n", r.drama.virtual_s,
                bar(r.drama.virtual_s, max_s).c_str());
  }
  if (!rows.empty()) {
    std::printf("\nDRAMDig average: %s (paper: 7.8 minutes)\n",
                fmt_duration_s(dig_sum / static_cast<double>(rows.size()))
                    .c_str());
  }
  std::printf("Shape checks: DRAMDig completes everywhere within minutes; "
              "DRAMA needs %sx more time on average and produces nothing on "
              "the noisy No.3/No.7 units.\n",
              "several");
  emit_json(out, rows);
  std::printf("Machine-readable record written to %s\n", out.c_str());
  return 0;
}

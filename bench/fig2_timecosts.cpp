// Reproduces **Fig. 2**: "Time costs for DRAMDig and DRAMA to uncover DRAM
// mappings on 9 machine settings."
//
// Prints the two series (virtual seconds per machine) plus an ASCII bar
// chart. Expected shape, per the paper: DRAMDig finishes within minutes on
// every machine (their range 69 s – 17 min, average 7.8 min); DRAMA costs
// from ~500 s to hours, and on the two noisy mobile units (No.3, No.7) it
// runs ~2 hours without producing any result before being killed.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/drama.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/table.h"

namespace {

std::string bar(double seconds, double max_seconds, std::size_t width = 46) {
  const std::size_t n = static_cast<std::size_t>(
      seconds / max_seconds * static_cast<double>(width));
  return std::string(n, '#');
}

}  // namespace

int main() {
  using namespace dramdig;
  std::printf("== Fig. 2: time costs to uncover DRAM mappings ==\n\n");

  struct row {
    std::string label;
    double dramdig_s = 0;
    bool dramdig_ok = false;
    double drama_s = 0;
    bool drama_ok = false;
  };
  std::vector<row> rows;

  for (const dram::machine_spec& spec : dram::paper_machines()) {
    row r;
    r.label = spec.label();
    {
      core::environment env(spec, /*seed=*/2000 + spec.number);
      core::dramdig_tool tool(env);
      const auto report = tool.run();
      r.dramdig_s = report.total_seconds;
      r.dramdig_ok = report.success && report.mapping &&
                     report.mapping->equivalent_to(spec.mapping);
    }
    {
      core::environment env(spec, /*seed=*/2000 + spec.number);
      baselines::drama_tool tool(env);
      const auto report = tool.run();
      r.drama_s = report.total_seconds;
      r.drama_ok = report.completed;
    }
    rows.push_back(r);
    std::fflush(stdout);
  }

  text_table table({"Machine", "DRAMDig", "DRAMA", "DRAMA outcome"});
  double dig_sum = 0, max_s = 1;
  for (const row& r : rows) {
    dig_sum += r.dramdig_s;
    max_s = std::max({max_s, r.dramdig_s, r.drama_s});
    table.add_row({r.label, fmt_duration_s(r.dramdig_s),
                   fmt_duration_s(r.drama_s),
                   r.drama_ok ? "completed" : "no result (killed)"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Time Costs (virtual seconds)\n");
  for (const row& r : rows) {
    std::printf("%-5s DRAMDig %7.0fs |%s\n", r.label.c_str(), r.dramdig_s,
                bar(r.dramdig_s, max_s).c_str());
    std::printf("      DRAMA   %7.0fs |%s\n", r.drama_s,
                bar(r.drama_s, max_s).c_str());
  }
  std::printf("\nDRAMDig average: %s (paper: 7.8 minutes)\n",
              fmt_duration_s(dig_sum / static_cast<double>(rows.size())).c_str());
  std::printf("Shape checks: DRAMDig completes everywhere within minutes; "
              "DRAMA needs %sx more time on average and produces nothing on "
              "the noisy No.3/No.7 units.\n",
              "several");
  return 0;
}

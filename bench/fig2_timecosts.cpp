// Reproduces **Fig. 2**: "Time costs for DRAMDig and DRAMA to uncover DRAM
// mappings on 9 machine settings."
//
// Prints the two series (virtual seconds per machine) plus an ASCII bar
// chart, and writes the full record — wall time, virtual-clock time and
// access/measurement counts per tool per machine — to BENCH_fig2.json so
// the perf trajectory is tracked across PRs. Expected shape, per the
// paper: DRAMDig finishes within minutes on every machine (their range
// 69 s – 17 min, average 7.8 min); DRAMA costs from ~500 s to hours, and
// on the two noisy mobile units (No.3, No.7) it runs ~2 hours without
// producing any result before being killed.
//
// Machine runs are independent, so they are fanned across worker threads
// with a deterministic shard split and merged in machine order — output is
// identical on any thread count. Flags: --machines=1,4 (subset for CI
// smoke runs), --out=PATH (default BENCH_fig2.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/drama.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace dramdig;

std::string bar(double seconds, double max_seconds, std::size_t width = 46) {
  const std::size_t n = static_cast<std::size_t>(
      seconds / max_seconds * static_cast<double>(width));
  return std::string(n, '#');
}

/// One tool's cost record on one machine.
struct tool_cost {
  double virtual_s = 0;
  double wall_s = 0;
  std::uint64_t measurements = 0;
  /// Answered by the reuse cache. Reported for both tools now that they
  /// share one measurement substrate; DRAMA runs with the cache off (the
  /// original remeasures everything), so its count stays 0 by design.
  std::uint64_t saved = 0;
  std::uint64_t accesses = 0;
  bool ok = false;
};

struct row {
  std::string label;
  tool_cost dramdig;
  tool_cost drama;
};

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

row run_machine(const dram::machine_spec& spec) {
  row r;
  r.label = spec.label();
  {
    core::environment env(spec, /*seed=*/2000 + spec.number);
    core::dramdig_tool tool(env);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = tool.run();
    r.dramdig.wall_s = wall_seconds_since(t0);
    r.dramdig.virtual_s = report.total_seconds;
    r.dramdig.measurements = report.total_measurements;
    r.dramdig.saved = report.measurements_saved;
    r.dramdig.accesses = env.mach().controller().access_count();
    r.dramdig.ok = report.success && report.mapping &&
                   report.mapping->equivalent_to(spec.mapping);
  }
  {
    core::environment env(spec, /*seed=*/2000 + spec.number);
    baselines::drama_tool tool(env);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = tool.run();
    r.drama.wall_s = wall_seconds_since(t0);
    r.drama.virtual_s = report.total_seconds;
    r.drama.measurements = report.total_measurements;
    r.drama.saved = report.measurements_saved;
    r.drama.accesses = env.mach().controller().access_count();
    r.drama.ok = report.completed;
  }
  return r;
}

void emit_json(const std::string& path, const std::vector<row>& rows) {
  json_writer w;
  w.begin_object();
  w.key("bench").value("fig2_timecosts");
  w.key("machines").begin_array();
  for (const row& r : rows) {
    w.begin_object();
    w.key("label").value(r.label);
    for (const auto& [name, cost] :
         {std::pair<const char*, const tool_cost&>{"dramdig", r.dramdig},
          {"drama", r.drama}}) {
      w.key(name).begin_object();
      w.key("ok").value(cost.ok);
      w.key("virtual_seconds").value(cost.virtual_s);
      w.key("wall_seconds").value(cost.wall_s);
      w.key("measurement_count").value(cost.measurements);
      w.key("measurements_saved").value(cost.saved);
      w.key("access_count").value(cost.accesses);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file(path, w.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dramdig;
  std::string out = "BENCH_fig2.json";
  std::vector<int> wanted;  // empty = all paper machines
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strncmp(argv[i], "--machines=", 11) == 0) {
      for (const char* p = argv[i] + 11; *p != '\0'; ++p) {
        if (*p >= '1' && *p <= '9') wanted.push_back(*p - '0');
      }
      if (wanted.empty()) {
        std::fprintf(stderr,
                     "error: --machines needs digits 1-9 (e.g. "
                     "--machines=14 for No.1 and No.4), got '%s'\n",
                     argv[i] + 11);
        return 2;
      }
    }
  }

  std::printf("== Fig. 2: time costs to uncover DRAM mappings ==\n\n");

  std::vector<const dram::machine_spec*> specs;
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    if (wanted.empty() ||
        std::find(wanted.begin(), wanted.end(), spec.number) != wanted.end()) {
      specs.push_back(&spec);
    }
  }

  // Fan machine runs across threads: shard split and merge order are both
  // functions of the machine index alone, so the table and the JSON are
  // reproducible on any host.
  std::vector<row> rows(specs.size());
  parallel_for_shards(specs.size(), default_shard_count(),
                      [&](const shard& s) {
                        for (std::size_t i = s.begin; i < s.end; ++i) {
                          rows[i] = run_machine(*specs[i]);
                        }
                      });

  text_table table({"Machine", "DRAMDig", "DRAMA", "DRAMA outcome"});
  double dig_sum = 0, max_s = 1;
  for (const row& r : rows) {
    dig_sum += r.dramdig.virtual_s;
    max_s = std::max({max_s, r.dramdig.virtual_s, r.drama.virtual_s});
    table.add_row({r.label, fmt_duration_s(r.dramdig.virtual_s),
                   fmt_duration_s(r.drama.virtual_s),
                   r.drama.ok ? "completed" : "no result (killed)"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Time Costs (virtual seconds)\n");
  for (const row& r : rows) {
    std::printf("%-5s DRAMDig %7.0fs |%s\n", r.label.c_str(),
                r.dramdig.virtual_s, bar(r.dramdig.virtual_s, max_s).c_str());
    std::printf("      DRAMA   %7.0fs |%s\n", r.drama.virtual_s,
                bar(r.drama.virtual_s, max_s).c_str());
  }
  if (!rows.empty()) {
    std::printf("\nDRAMDig average: %s (paper: 7.8 minutes)\n",
                fmt_duration_s(dig_sum / static_cast<double>(rows.size()))
                    .c_str());
  }
  std::printf("Shape checks: DRAMDig completes everywhere within minutes; "
              "DRAMA needs %sx more time on average and produces nothing on "
              "the noisy No.3/No.7 units.\n",
              "several");
  emit_json(out, rows);
  std::printf("Machine-readable record written to %s\n", out.c_str());
  return 0;
}

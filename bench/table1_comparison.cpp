// Reproduces **Table I**: "A comparison of uncovering tools" — generic /
// efficient / deterministic, measured live instead of asserted.
//
//   generic        tool produces a correct mapping on all 9 machines
//   efficient      worst-case time within minutes (vs hours)
//   deterministic  identical output across repeated runs on every machine
//
// Seaborn et al.'s blind-rowhammer approach is scored from its published
// properties (machine-specific analysis of a blind test, hours of
// hammering) — it predates the timing channel and has no tool to run.
#include <cstdio>
#include <set>

#include "baselines/drama.h"
#include "baselines/xiao.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/gf2.h"
#include "util/table.h"

namespace {

using namespace dramdig;

struct tool_score {
  int correct_machines = 0;
  double worst_seconds = 0;
  bool deterministic = true;
};

constexpr std::uint64_t kSeeds[] = {11, 222};

tool_score score_dramdig() {
  tool_score s;
  for (const auto& spec : dram::paper_machines()) {
    std::set<std::string> outputs;
    bool all_ok = true;
    for (std::uint64_t seed : kSeeds) {
      core::environment env(spec, seed);
      const auto report = core::dramdig_tool(env).run();
      s.worst_seconds = std::max(s.worst_seconds, report.total_seconds);
      const bool ok = report.success && report.mapping &&
                      report.mapping->equivalent_to(spec.mapping);
      all_ok &= ok;
      outputs.insert(report.mapping ? report.mapping->describe() : "(none)");
    }
    s.correct_machines += all_ok;
    s.deterministic &= outputs.size() == 1;
  }
  return s;
}

tool_score score_drama() {
  tool_score s;
  for (const auto& spec : dram::paper_machines()) {
    bool all_ok = true;
    for (std::uint64_t seed : kSeeds) {
      core::environment env(spec, seed);
      const auto report = baselines::drama_tool(env).run();
      s.worst_seconds = std::max(s.worst_seconds, report.total_seconds);
      const bool ok =
          report.completed &&
          gf2::same_span(report.functions, spec.mapping.bank_functions());
      all_ok &= ok;
    }
    s.correct_machines += all_ok;
    // Determinism is a property of what a *run of the tool* prints: probe
    // with single-pass runs, the way the tool ships (the multi-trial
    // agreement loop above deliberately discards divergent output, which
    // would mask exactly the behaviour the paper reports).
    std::set<gf2::matrix> outputs;
    for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
      core::environment env(spec, seed);
      baselines::drama_config cfg{};
      cfg.max_trials = 1;
      const auto report = baselines::drama_tool(env, cfg).run();
      outputs.insert(gf2::row_echelon(report.functions));
    }
    s.deterministic &= outputs.size() == 1;
    std::fflush(stdout);
  }
  return s;
}

tool_score score_xiao() {
  tool_score s;
  for (const auto& spec : dram::paper_machines()) {
    bool all_ok = true;
    for (std::uint64_t seed : kSeeds) {
      core::environment env(spec, seed);
      const auto report = baselines::xiao_tool(env).run();
      // Worst case among machines it HANDLES; stalls are genericity
      // failures, not efficiency ones (the paper scores it efficient).
      if (report.success) {
        s.worst_seconds = std::max(s.worst_seconds, report.total_seconds);
      }
      all_ok &= report.success && report.mapping &&
                report.mapping->equivalent_to(spec.mapping);
    }
    s.correct_machines += all_ok;
  }
  return s;
}

std::string yn(bool b) { return b ? "yes" : "x"; }

}  // namespace

int main() {
  std::printf("== Table I: comparison of uncovering tools (measured on the 9 "
              "simulated machines, %zu seeds each) ==\n\n",
              std::size(kSeeds));

  const tool_score dig = score_dramdig();
  const tool_score drama = score_drama();
  const tool_score xiao = score_xiao();

  text_table table({"Uncovering Tool", "Generic", "Efficient",
                    "Deterministic", "Correct machines", "Worst time"});
  table.add_row({"Seaborn et al. [13]", "x", "x (within hours)", "yes",
                 "(one machine, by construction)", "hours"});
  table.add_row({"Xiao et al. [14]", yn(xiao.correct_machines == 9),
                 "yes (within minutes)", "yes",
                 std::to_string(xiao.correct_machines) + "/9",
                 fmt_duration_s(xiao.worst_seconds)});
  table.add_row({"DRAMA [10]", yn(drama.correct_machines == 9),
                 drama.worst_seconds > 3600 ? "x (within hours)" : "yes",
                 yn(drama.deterministic),
                 std::to_string(drama.correct_machines) + "/9",
                 fmt_duration_s(drama.worst_seconds)});
  table.add_row({"DRAMDig", yn(dig.correct_machines == 9),
                 dig.worst_seconds < 3600 ? "yes (within minutes)"
                                          : "x (within hours)",
                 yn(dig.deterministic), std::to_string(dig.correct_machines) +
                 "/9", fmt_duration_s(dig.worst_seconds)});
  std::printf("%s\n", table.render().c_str());
  std::printf("(Seaborn et al. scored from the published methodology; the "
              "other three rows are measured live. Xiao et al. is generic=x "
              "because it handles only its four development machines.)\n");
  return 0;
}

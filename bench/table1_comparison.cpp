// Reproduces **Table I**: "A comparison of uncovering tools" — generic /
// efficient / deterministic, measured live instead of asserted.
//
//   generic        tool produces a correct mapping on all 9 machines
//   efficient      worst-case time within minutes (vs hours)
//   deterministic  identical output across repeated runs on every machine
//
// Seaborn et al.'s blind-rowhammer approach is scored from its published
// properties (machine-specific analysis of a blind test, hours of
// hammering) — it predates the timing channel and has no tool to run.
//
// Every (machine, seed, tool) run is one mapping_service job; the batches
// fan across the worker pool and aggregate by submission index, so the
// scores are identical to the old sequential loops on any thread count.
#include <cstdio>
#include <set>
#include <vector>

#include "api/mapping_service.h"
#include "dram/presets.h"
#include "util/gf2.h"
#include "util/table.h"

namespace {

using namespace dramdig;

struct tool_score {
  int correct_machines = 0;
  double worst_seconds = 0;
  bool deterministic = true;
};

constexpr std::uint64_t kSeeds[] = {11, 222};

/// One job per (machine, seed) for `tool`, in machine-major order.
std::vector<api::job_spec> machine_seed_jobs(const std::string& tool,
                                             const api::tool_options& options) {
  std::vector<api::job_spec> jobs;
  for (const auto& spec : dram::paper_machines()) {
    for (std::uint64_t seed : kSeeds) {
      jobs.push_back({spec, tool, options, seed});
    }
  }
  return jobs;
}

tool_score score_dramdig(const api::mapping_service& service) {
  tool_score s;
  const auto outcomes = service.run(machine_seed_jobs("dramdig", {}));
  std::size_t at = 0;
  for (std::size_t m = 0; m < dram::paper_machines().size(); ++m) {
    std::set<std::string> outputs;
    bool all_ok = true;
    for (std::size_t i = 0; i < std::size(kSeeds); ++i, ++at) {
      const api::tool_result& r = outcomes[at].result;
      s.worst_seconds = std::max(s.worst_seconds, r.virtual_seconds);
      all_ok &= r.verified;
      outputs.insert(r.mapping ? r.mapping->describe() : "(none)");
    }
    s.correct_machines += all_ok;
    s.deterministic &= outputs.size() == 1;
  }
  return s;
}

tool_score score_drama(const api::mapping_service& service) {
  tool_score s;
  const auto outcomes = service.run(machine_seed_jobs("drama", {}));
  // Determinism is a property of what a *run of the tool* prints: probe
  // with single-pass runs, the way the tool ships (the multi-trial
  // agreement loop deliberately discards divergent output, which would
  // mask exactly the behaviour the paper reports).
  baselines::drama_config single_pass{};
  single_pass.max_trials = 1;
  std::vector<api::job_spec> probes;
  for (const auto& spec : dram::paper_machines()) {
    for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
      probes.push_back(
          {spec, "drama", api::tool_options{}.with_drama(single_pass), seed});
    }
  }
  const auto probe_outcomes = service.run(probes);

  std::size_t at = 0;
  for (std::size_t m = 0; m < dram::paper_machines().size(); ++m) {
    bool all_ok = true;
    for (std::size_t i = 0; i < std::size(kSeeds); ++i, ++at) {
      const api::tool_result& r = outcomes[at].result;
      s.worst_seconds = std::max(s.worst_seconds, r.virtual_seconds);
      all_ok &= r.verified;  // completed + function span matches truth
    }
    s.correct_machines += all_ok;
    std::set<gf2::matrix> outputs;
    for (std::size_t i = 0; i < 3; ++i) {
      const api::tool_result& r = probe_outcomes[3 * m + i].result;
      outputs.insert(gf2::row_echelon(
          r.mapping ? r.mapping->bank_functions() : gf2::matrix{}));
    }
    s.deterministic &= outputs.size() == 1;
  }
  return s;
}

tool_score score_xiao(const api::mapping_service& service) {
  tool_score s;
  const auto outcomes = service.run(machine_seed_jobs("xiao", {}));
  std::size_t at = 0;
  for (std::size_t m = 0; m < dram::paper_machines().size(); ++m) {
    bool all_ok = true;
    for (std::size_t i = 0; i < std::size(kSeeds); ++i, ++at) {
      const api::tool_result& r = outcomes[at].result;
      // Worst case among machines it HANDLES; stalls are genericity
      // failures, not efficiency ones (the paper scores it efficient).
      if (r.success) {
        s.worst_seconds = std::max(s.worst_seconds, r.virtual_seconds);
      }
      all_ok &= r.verified;
    }
    s.correct_machines += all_ok;
  }
  return s;
}

std::string yn(bool b) { return b ? "yes" : "x"; }

}  // namespace

int main() {
  std::printf("== Table I: comparison of uncovering tools (measured on the 9 "
              "simulated machines, %zu seeds each) ==\n\n",
              std::size(kSeeds));

  const api::mapping_service service;
  const tool_score dig = score_dramdig(service);
  const tool_score drama = score_drama(service);
  const tool_score xiao = score_xiao(service);

  text_table table({"Uncovering Tool", "Generic", "Efficient",
                    "Deterministic", "Correct machines", "Worst time"});
  table.add_row({"Seaborn et al. [13]", "x", "x (within hours)", "yes",
                 "(one machine, by construction)", "hours"});
  table.add_row({"Xiao et al. [14]", yn(xiao.correct_machines == 9),
                 "yes (within minutes)", "yes",
                 std::to_string(xiao.correct_machines) + "/9",
                 fmt_duration_s(xiao.worst_seconds)});
  table.add_row({"DRAMA [10]", yn(drama.correct_machines == 9),
                 drama.worst_seconds > 3600 ? "x (within hours)" : "yes",
                 yn(drama.deterministic),
                 std::to_string(drama.correct_machines) + "/9",
                 fmt_duration_s(drama.worst_seconds)});
  table.add_row({"DRAMDig", yn(dig.correct_machines == 9),
                 dig.worst_seconds < 3600 ? "yes (within minutes)"
                                          : "x (within hours)",
                 yn(dig.deterministic), std::to_string(dig.correct_machines) +
                 "/9", fmt_duration_s(dig.worst_seconds)});
  std::printf("%s\n", table.render().c_str());
  std::printf("(Seaborn et al. scored from the published methodology; the "
              "other three rows are measured live. Xiao et al. is generic=x "
              "because it handles only its four development machines.)\n");
  return 0;
}

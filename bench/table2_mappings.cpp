// Reproduces **Table II**: "Reverse-Engineered DRAM Mappings on 9 different
// machine settings" — bank address functions, row bits and column bits per
// machine, as uncovered by DRAMDig against the simulated ground truth.
//
// The reported bank functions are one valid GF(2) basis of the function
// space; the paper prints a specific basis, so the `matches` column
// compares span + row/column bit sets rather than literal text. The nine
// runs are one mapping_service batch (independent jobs, merged by
// submission index — same table on any worker count).
#include <cstdio>
#include <vector>

#include "api/mapping_service.h"
#include "dram/presets.h"
#include "util/table.h"

int main() {
  using namespace dramdig;
  std::printf(
      "== Table II: reverse-engineered DRAM mappings on 9 machine settings "
      "==\n\n");

  std::vector<api::job_spec> jobs;
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    jobs.push_back({spec, "dramdig", {},
                    1000 + static_cast<std::uint64_t>(spec.number)});
  }
  const auto outcomes = api::mapping_service().run(jobs);

  text_table table({"No.", "Microarch.", "DRAM Type, Size", "Config.",
                    "Bank Address Functions", "Row Bits", "Column Bits",
                    "Matches paper"});
  int correct = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const dram::machine_spec& spec = jobs[i].machine;
    const api::tool_result& r = outcomes[i].result;
    correct += r.verified;
    table.add_row(
        {spec.label(), spec.microarchitecture + " " + spec.cpu_model,
         spec.dram_description(), spec.config_quadruple(),
         r.mapping ? r.mapping->describe_functions() : "(failed)",
         r.mapping ? dram::describe_bit_ranges(r.mapping->row_bits()) : "-",
         r.mapping ? dram::describe_bit_ranges(r.mapping->column_bits()) : "-",
         r.verified ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("deterministically uncovered: %d/9 machines\n", correct);
  std::printf("(functions shown are the detected GF(2) basis; 'Matches "
              "paper' = same span and identical row/column bits)\n");
  return correct == 9 ? 0 : 1;
}

// Reproduces **Table II**: "Reverse-Engineered DRAM Mappings on 9 different
// machine settings" — bank address functions, row bits and column bits per
// machine, as uncovered by DRAMDig against the simulated ground truth.
//
// The reported bank functions are one valid GF(2) basis of the function
// space; the paper prints a specific basis, so the `matches` column
// compares span + row/column bit sets rather than literal text.
#include <cstdio>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/table.h"

int main() {
  using namespace dramdig;
  std::printf(
      "== Table II: reverse-engineered DRAM mappings on 9 machine settings "
      "==\n\n");
  text_table table({"No.", "Microarch.", "DRAM Type, Size", "Config.",
                    "Bank Address Functions", "Row Bits", "Column Bits",
                    "Matches paper"});
  int correct = 0;
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    core::environment env(spec, /*seed=*/1000 + spec.number);
    core::dramdig_tool tool(env);
    const core::dramdig_report report = tool.run();
    const bool ok = report.success && report.mapping &&
                    report.mapping->equivalent_to(spec.mapping);
    correct += ok;
    table.add_row(
        {spec.label(), spec.microarchitecture + " " + spec.cpu_model,
         spec.dram_description(), spec.config_quadruple(),
         report.mapping ? report.mapping->describe_functions() : "(failed)",
         report.mapping ? dram::describe_bit_ranges(report.mapping->row_bits())
                        : "-",
         report.mapping
             ? dram::describe_bit_ranges(report.mapping->column_bits())
             : "-",
         ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("deterministically uncovered: %d/9 machines\n", correct);
  std::printf("(functions shown are the detected GF(2) basis; 'Matches "
              "paper' = same span and identical row/column bits)\n");
  return correct == 9 ? 0 : 1;
}

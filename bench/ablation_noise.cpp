// Ablation B: robustness of Algorithm 2's tolerances against machine
// noise — contamination sweep x partition parameters. Shows why the paper
// sets delta = 0.2 / per_threshold = 85% and why DRAMDig's verification
// keeps it deterministic where single-sample tools collapse.
#include <cstdio>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/table.h"

namespace {
using namespace dramdig;
}  // namespace

int main() {
  std::printf("== Ablation: partition pile window vs machine noise ==\n\n");
  std::printf("Machine No.2 (wide channel function: each bank class holds "
              "~25%% same-row mates,\nso honest piles sit well below "
              "pool/#banks) under the three noise profiles.\nWindows are "
              "[1-lower, 1+upper] * pool/#banks.\n\n");
  text_table table({"Noise profile", "Window", "Success", "Avg time",
                    "Avg attempts", "Final pool"});

  const struct {
    const char* name;
    dram::timing_quality quality;
  } profiles[] = {
      {"clean (0.2% contamination)", dram::timing_quality::clean},
      {"mobile (0.5% + bursts)", dram::timing_quality::mobile},
      {"noisy (4% + heavy bursts)", dram::timing_quality::noisy},
  };
  const struct {
    const char* label;
    double lower, upper;
  } windows[] = {
      {"sym 0.05 (over-tight)", 0.05, 0.05},
      {"sym 0.20 (paper's delta)", 0.20, 0.20},
      {"asym 0.40/0.20 (shipped)", 0.40, 0.20},
      {"sym 0.60 (over-loose)", 0.60, 0.60},
  };

  for (const auto& profile : profiles) {
    for (const auto& w : windows) {
      int successes = 0;
      double time_sum = 0, attempts_sum = 0, pool_sum = 0;
      constexpr int kRuns = 3;
      for (int run = 0; run < kRuns; ++run) {
        dram::machine_spec spec = dram::machine_by_number(2);
        spec.quality = profile.quality;
        core::environment env(spec, 11000 + run);
        core::dramdig_config cfg{};
        cfg.partition.delta = w.upper;
        cfg.partition.delta_lower = w.lower;
        core::dramdig_tool tool(env, cfg);
        const auto report = tool.run();
        const bool ok = report.success && report.mapping &&
                        report.mapping->equivalent_to(spec.mapping);
        successes += ok;
        time_sum += report.total_seconds;
        attempts_sum += report.attempts_used;
        pool_sum += static_cast<double>(report.pool_size);
      }
      table.add_row({profile.name, w.label,
                     std::to_string(successes) + "/" + std::to_string(kRuns),
                     fmt_duration_s(time_sum / kRuns),
                     fmt_double(attempts_sum / kRuns, 1),
                     fmt_double(pool_sum / kRuns, 0)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading the table: tight symmetric windows reject honest piles (the "
      "same-row mates!) and force pool-extension retries — 2x attempts, 2x "
      "pool, ~10x time; the shipped asymmetric window accepts first-pass "
      "piles on clean and mobile profiles. The noisy row is a known limit: "
      "No.2's wide-function geometry combined with No.3-grade noise defeats "
      "every window (burst-polluted piles kill Algorithm 3's strict "
      "intersection). No physical machine in the paper pairs that geometry "
      "with that noise; on the nine real settings the tool is 9/9.\n");
  return 0;
}

// Microbenchmarks (google-benchmark) for the primitives every experiment
// stands on: mapping decode/encode, GF(2) algebra, the simulated timing
// channel, Algorithm 1 selection, and the XOR-mask search inner loop.
// These measure *host* cost, bounding how long the table/figure harnesses
// take to run — the virtual-time numbers in Fig. 2 are independent.
#include <benchmark/benchmark.h>

#include "core/address_selection.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "sim/machine.h"
#include "sim/profiles.h"
#include "util/combinatorics.h"
#include "util/gf2.h"
#include "util/rng.h"

namespace {

using namespace dramdig;

void BM_MappingDecode(benchmark::State& state) {
  const auto& m = dram::machine_by_number(6).mapping;
  rng r(1);
  std::uint64_t pa = r.below(m.memory_bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.decode(pa));
    pa = (pa + 4097) & (m.memory_bytes() - 1);
  }
}
BENCHMARK(BM_MappingDecode);

void BM_MappingEncode(benchmark::State& state) {
  const auto& m = dram::machine_by_number(6).mapping;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode(i % m.bank_count(), i % 1024, 0));
    ++i;
  }
}
BENCHMARK(BM_MappingEncode);

void BM_Gf2MinimalBasis(benchmark::State& state) {
  rng r(2);
  std::vector<std::uint64_t> funcs;
  for (int i = 0; i < 63; ++i) funcs.push_back(1 + r.below((1u << 22) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf2::minimal_basis(funcs));
  }
}
BENCHMARK(BM_Gf2MinimalBasis);

void BM_Gf2Solve(benchmark::State& state) {
  const auto& m = dram::machine_by_number(2).mapping;
  std::uint64_t want = 0;
  const std::uint64_t support = (1ull << 22) - (1ull << 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gf2::solve(m.bank_functions(), want, support));
    want = (want + 1) % 32;
  }
}
BENCHMARK(BM_Gf2Solve);

void BM_MeasurePair(benchmark::State& state) {
  const auto spec = dram::machine_by_number(1);
  sim::machine machine(spec, 3, sim::timing_profile_for(spec));
  std::uint64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        machine.controller().measure_pair(p, p ^ (1ull << 20), 1000));
    p = (p + (1ull << 14)) & (spec.memory_bytes - 1);
  }
}
BENCHMARK(BM_MeasurePair);

void BM_HammerWindow(benchmark::State& state) {
  const auto spec = dram::machine_by_number(2);
  sim::machine machine(spec, 4, sim::timing_profile_for(spec));
  std::uint64_t row = 10;
  for (auto _ : state) {
    const auto a = *spec.mapping.encode(0, row - 1, 0);
    const auto b = *spec.mapping.encode(0, row + 1, 0);
    benchmark::DoNotOptimize(machine.faults().hammer_pair(a, b));
    row = 10 + (row + 4) % 20000;
  }
}
BENCHMARK(BM_HammerWindow);

void BM_AddressSelection(benchmark::State& state) {
  core::environment env(dram::machine_by_number(6), 5);
  const auto& buffer = env.space().map_buffer(env.spec().memory_bytes / 2);
  const std::vector<unsigned> bank_bits{7,  8,  9,  12, 13, 14, 15,
                                        16, 17, 18, 19, 20, 21, 22};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_addresses(buffer, bank_bits));
  }
}
BENCHMARK(BM_AddressSelection)->Unit(benchmark::kMillisecond);

void BM_XorMaskSweep(benchmark::State& state) {
  // The Algorithm 3 inner loop: all masks over 14 bank bits against one
  // pile of 256 addresses.
  const std::vector<unsigned> bits{7,  8,  9,  12, 13, 14, 15,
                                   16, 17, 18, 19, 20, 21, 22};
  rng r(6);
  std::vector<std::uint64_t> pile;
  for (int i = 0; i < 256; ++i) pile.push_back(r.below(1ull << 23));
  for (auto _ : state) {
    std::size_t alive = 0;
    for_each_bit_combination(bits, 1, 14, [&](std::uint64_t mask) {
      const unsigned want = parity(pile[0], mask);
      for (std::size_t i = 1; i < pile.size(); ++i) {
        if (parity(pile[i], mask) != want) return true;
      }
      ++alive;
      return true;
    });
    benchmark::DoNotOptimize(alive);
  }
}
BENCHMARK(BM_XorMaskSweep)->Unit(benchmark::kMillisecond);

void BM_EndToEndDramDigNo4(benchmark::State& state) {
  // Host cost of a full pipeline run on the smallest machine.
  for (auto _ : state) {
    core::environment env(dram::machine_by_number(4),
                          static_cast<std::uint64_t>(state.iterations()));
    core::dramdig_tool tool(env);
    benchmark::DoNotOptimize(tool.run());
  }
}
BENCHMARK(BM_EndToEndDramDigNo4)->Unit(benchmark::kMillisecond);

}  // namespace

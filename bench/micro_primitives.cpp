// Microbenchmarks (google-benchmark) for the primitives every experiment
// stands on: mapping decode/encode, GF(2) algebra, the simulated timing
// channel, Algorithm 1 selection, and the XOR-mask search inner loop.
// These measure *host* cost, bounding how long the table/figure harnesses
// take to run — the virtual-time numbers in Fig. 2 are independent.
//
// On top of the google-benchmark suite, main() runs two tracked
// comparisons and emits them as machine-readable BENCH_micro.json:
//   * function detection on a 16-bank-bit synthetic config — the GF(2)
//     null-space path against the legacy 2^16 mask enumeration, and
//   * the batched measurement engine against a scalar measure_pair loop.
// Flags: --smoke (skip the google-benchmark suite, shrink the synthetic
// config for CI), --out=PATH (default BENCH_micro.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <span>
#include <string>

#include "api/mapping_service.h"
#include "core/address_selection.h"
#include "core/bit_probe.h"
#include "core/coarse_detect.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "core/fine_detect.h"
#include "core/function_detect.h"
#include "core/probe_util.h"
#include "dram/presets.h"
#include "sysinfo/system_info.h"
#include "sim/machine.h"
#include "sim/profiles.h"
#include "util/bitops.h"
#include "util/combinatorics.h"
#include "util/gf2.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace dramdig;

void BM_MappingDecode(benchmark::State& state) {
  const auto& m = dram::machine_by_number(6).mapping;
  rng r(1);
  std::uint64_t pa = r.below(m.memory_bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.decode(pa));
    pa = (pa + 4097) & (m.memory_bytes() - 1);
  }
}
BENCHMARK(BM_MappingDecode);

void BM_MappingEncode(benchmark::State& state) {
  const auto& m = dram::machine_by_number(6).mapping;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode(i % m.bank_count(), i % 1024, 0));
    ++i;
  }
}
BENCHMARK(BM_MappingEncode);

void BM_Gf2MinimalBasis(benchmark::State& state) {
  rng r(2);
  std::vector<std::uint64_t> funcs;
  for (int i = 0; i < 63; ++i) funcs.push_back(1 + r.below((1u << 22) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf2::minimal_basis(funcs));
  }
}
BENCHMARK(BM_Gf2MinimalBasis);

void BM_Gf2Solve(benchmark::State& state) {
  const auto& m = dram::machine_by_number(2).mapping;
  std::uint64_t want = 0;
  const std::uint64_t support = (1ull << 22) - (1ull << 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gf2::solve(m.bank_functions(), want, support));
    want = (want + 1) % 32;
  }
}
BENCHMARK(BM_Gf2Solve);

void BM_MeasurePair(benchmark::State& state) {
  const auto spec = dram::machine_by_number(1);
  sim::machine machine(spec, 3, sim::timing_profile_for(spec));
  std::uint64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        machine.controller().measure_pair(p, p ^ (1ull << 20), 1000));
    p = (p + (1ull << 14)) & (spec.memory_bytes - 1);
  }
}
BENCHMARK(BM_MeasurePair);

void BM_MeasurePairsBatch4k(benchmark::State& state) {
  // Host throughput of the batched interface servicing 4096 pairs a call.
  const auto spec = dram::machine_by_number(1);
  sim::machine machine(spec, 3, sim::timing_profile_for(spec));
  rng r(9);
  std::vector<sim::addr_pair> pairs;
  for (int i = 0; i < 4096; ++i) {
    pairs.emplace_back(r.below(spec.memory_bytes) & ~63ull,
                       r.below(spec.memory_bytes) & ~63ull);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.controller().measure_pairs(pairs, 1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MeasurePairsBatch4k)->Unit(benchmark::kMillisecond);

void BM_HammerWindow(benchmark::State& state) {
  const auto spec = dram::machine_by_number(2);
  sim::machine machine(spec, 4, sim::timing_profile_for(spec));
  std::uint64_t row = 10;
  for (auto _ : state) {
    const auto a = *spec.mapping.encode(0, row - 1, 0);
    const auto b = *spec.mapping.encode(0, row + 1, 0);
    benchmark::DoNotOptimize(machine.faults().hammer_pair(a, b));
    row = 10 + (row + 4) % 20000;
  }
}
BENCHMARK(BM_HammerWindow);

void BM_AddressSelection(benchmark::State& state) {
  core::environment env(dram::machine_by_number(6), 5);
  const auto& buffer = env.space().map_buffer(env.spec().memory_bytes / 2);
  const std::vector<unsigned> bank_bits{7,  8,  9,  12, 13, 14, 15,
                                        16, 17, 18, 19, 20, 21, 22};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_addresses(buffer, bank_bits));
  }
}
BENCHMARK(BM_AddressSelection)->Unit(benchmark::kMillisecond);

void BM_XorMaskSweep(benchmark::State& state) {
  // The legacy Algorithm 3 inner loop: all masks over 14 bank bits against
  // one pile of 256 addresses.
  const std::vector<unsigned> bits{7,  8,  9,  12, 13, 14, 15,
                                   16, 17, 18, 19, 20, 21, 22};
  rng r(6);
  std::vector<std::uint64_t> pile;
  for (int i = 0; i < 256; ++i) pile.push_back(r.below(1ull << 23));
  for (auto _ : state) {
    std::size_t alive = 0;
    for_each_bit_combination(bits, 1, 14, [&](std::uint64_t mask) {
      const unsigned want = parity(pile[0], mask);
      for (std::size_t i = 1; i < pile.size(); ++i) {
        if (parity(pile[i], mask) != want) return true;
      }
      ++alive;
      return true;
    });
    benchmark::DoNotOptimize(alive);
  }
}
BENCHMARK(BM_XorMaskSweep)->Unit(benchmark::kMillisecond);

void BM_EndToEndDramDigNo4(benchmark::State& state) {
  // Host cost of a full pipeline run on the smallest machine.
  for (auto _ : state) {
    core::environment env(dram::machine_by_number(4),
                          static_cast<std::uint64_t>(state.iterations()));
    core::dramdig_tool tool(env);
    benchmark::DoNotOptimize(tool.run());
  }
}
BENCHMARK(BM_EndToEndDramDigNo4)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Tracked comparisons emitted to BENCH_micro.json.

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Synthetic config: `width` bank bits feeding log2(banks) random
/// independent functions; piles enumerate every bank-bit combination,
/// grouped by true bank — the shape partition hands to Algorithm 3, at a
/// size (16 bank bits on the default run) where the 2^B enumeration hurts.
struct synthetic_piles {
  std::vector<unsigned> bank_bits;
  gf2::matrix functions;
  std::vector<std::vector<std::uint64_t>> piles;
  unsigned bank_count = 0;
};

synthetic_piles make_synthetic(unsigned width, unsigned function_count,
                               std::uint64_t seed) {
  synthetic_piles out;
  for (unsigned i = 0; i < width; ++i) out.bank_bits.push_back(6 + i);
  const std::uint64_t support = mask_of_bits(out.bank_bits);
  rng r(seed);
  while (out.functions.size() < function_count) {
    const std::uint64_t f = scatter_bits(
        1 + r.below((std::uint64_t{1} << width) - 1), out.bank_bits);
    out.functions.push_back(f & support);
    if (gf2::rank(out.functions) != out.functions.size()) {
      out.functions.pop_back();
    }
  }
  out.bank_count = 1u << function_count;
  out.piles.resize(out.bank_count);
  for (std::uint64_t c = 0; c < (std::uint64_t{1} << width); ++c) {
    const std::uint64_t pa = scatter_bits(c, out.bank_bits);
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < out.functions.size(); ++i) {
      id |= static_cast<std::uint64_t>(parity(pa, out.functions[i])) << i;
    }
    out.piles[id].push_back(pa);
  }
  return out;
}

void emit_bench_json(const std::string& path, bool smoke) {
  // 16 bank bits / 8 functions on the full run: the channel+rank+bank-group
  // shape of a large dual-channel DDR4 config, where the 2^16 enumeration
  // pays 255 surviving masks against every pile member.
  const unsigned width = smoke ? 14 : 16;
  const unsigned functions = smoke ? 6 : 8;
  const synthetic_piles s = make_synthetic(width, functions, 42);

  core::function_config nullspace_cfg{};
  core::function_config oracle_cfg{};
  oracle_cfg.use_nullspace = false;

  // Min-of-3 wall times: the nullspace run is sub-millisecond on the
  // smoke config, so a single scheduler stall would sink the CI guard's
  // speedup floor with no code regression. Both runs are deterministic,
  // so the min is the honest host cost.
  sim::virtual_clock nullspace_clock;
  core::function_outcome fast;
  double nullspace_wall_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    sim::virtual_clock clock;
    const auto t0 = std::chrono::steady_clock::now();
    fast = core::detect_functions(s.piles, s.bank_bits, s.bank_count, clock,
                                  nullspace_cfg);
    nullspace_wall_s = std::min(nullspace_wall_s, wall_seconds_since(t0));
    nullspace_clock = clock;
  }

  sim::virtual_clock oracle_clock;
  core::function_outcome slow;
  double oracle_wall_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    sim::virtual_clock clock;
    const auto t0 = std::chrono::steady_clock::now();
    slow = core::detect_functions(s.piles, s.bank_bits, s.bank_count, clock,
                                  oracle_cfg);
    oracle_wall_s = std::min(oracle_wall_s, wall_seconds_since(t0));
    oracle_clock = clock;
  }

  const bool agree = fast.success && slow.success &&
                     fast.functions == slow.functions &&
                     gf2::same_span(fast.functions, s.functions);

  // Batched engine vs scalar loop, identical seeds: same simulated result,
  // host wall time compared.
  const auto spec = dram::machine_by_number(1);
  const std::size_t pair_count = smoke ? 20000 : 100000;
  rng addr(7);
  std::vector<sim::addr_pair> pairs;
  pairs.reserve(pair_count);
  for (std::size_t i = 0; i < pair_count; ++i) {
    pairs.emplace_back(addr.below(spec.memory_bytes) & ~63ull,
                       addr.below(spec.memory_bytes) & ~63ull);
  }
  // Min-of-3 passes on one persistent machine per variant: the production
  // embedding (the timing channel) reuses its controller and result
  // buffers across calls, so steady-state throughput — not first-call
  // buffer growth — is the honest comparison, and the min also absorbs
  // scheduler stalls (the ratio is CI-gated via
  // bench_guard --min-batch-speedup). Both machines run the identical
  // three passes, so their virtual clocks stay comparable.
  auto t0 = std::chrono::steady_clock::now();
  double scalar_wall_s = 1e300, batch_wall_s = 1e300;
  sim::machine scalar_machine(spec, 11, sim::timing_profile_for(spec));
  for (int rep = 0; rep < 3; ++rep) {
    t0 = std::chrono::steady_clock::now();
    for (const auto& [a, b] : pairs) {
      benchmark::DoNotOptimize(
          scalar_machine.controller().measure_pair(a, b, 1000));
    }
    scalar_wall_s = std::min(scalar_wall_s, wall_seconds_since(t0));
  }
  sim::machine batch_machine(spec, 11, sim::timing_profile_for(spec));
  std::vector<sim::pair_measurement> batch_results;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = std::chrono::steady_clock::now();
    batch_machine.controller().measure_pairs(pairs, 1000, batch_results);
    batch_wall_s = std::min(batch_wall_s, wall_seconds_since(t0));
    benchmark::DoNotOptimize(batch_results.data());
  }
  const std::uint64_t batch_virtual_ns = batch_machine.clock().now_ns();
  const std::uint64_t batch_accesses =
      batch_machine.controller().access_count();
  const std::uint64_t batch_measurements =
      batch_machine.controller().measurement_count();

  // Closed-form access accounting vs the per-access loop oracle: same
  // batch, same seeds — the results must be bit-identical while the loop
  // walks 2*rounds row-buffer transitions per measurement. Min-of-3 wall
  // times on fresh machines per repetition: this ratio is CI-gated and
  // the closed-form run is only milliseconds, so a single scheduler stall
  // must not sink the floor.
  double loop_wall_s = 1e300, closed_wall_s = 1e300;
  bool accounting_identical = false;
  for (int rep = 0; rep < 3; ++rep) {
    sim::timing_model loop_timing = sim::timing_profile_for(spec);
    loop_timing.closed_form_accounting = false;
    sim::machine loop_machine(spec, 11, loop_timing);
    t0 = std::chrono::steady_clock::now();
    const auto loop_results =
        loop_machine.controller().measure_pairs(pairs, 1000);
    loop_wall_s = std::min(loop_wall_s, wall_seconds_since(t0));

    sim::machine closed_machine(spec, 11, sim::timing_profile_for(spec));
    t0 = std::chrono::steady_clock::now();
    const auto closed_results =
        closed_machine.controller().measure_pairs(pairs, 1000);
    closed_wall_s = std::min(closed_wall_s, wall_seconds_since(t0));

    accounting_identical =
        loop_machine.clock().now_ns() == closed_machine.clock().now_ns();
    for (std::size_t i = 0; accounting_identical && i < pairs.size(); ++i) {
      accounting_identical =
          loop_results[i].mean_access_ns == closed_results[i].mean_access_ns &&
          loop_results[i].contaminated == closed_results[i].contaminated;
    }
  }

  // Representative engine vs pivot-scan partition at 8/16/32 banks: same
  // machine, same seed, same pool — only the partition driver differs.
  // The measurement count is the paper's cost metric; `min_reduction` is
  // the smallest relative saving across the bank counts and is CI-gated
  // (bench_guard --min-rep-reduction), so a regression that silently
  // falls back to full pivot scans fails the build.
  struct rep_row {
    unsigned banks = 0;
    std::string machine;
    std::uint64_t pivot_measurements = 0;
    std::uint64_t rep_measurements = 0;
    bool ok = false;
  };
  std::vector<rep_row> rep_rows;
  for (const unsigned banks : {8u, 16u, 32u}) {
    const dram::machine_spec* spec = nullptr;
    for (const dram::machine_spec& m : dram::paper_machines()) {
      if (m.mapping.bank_count() == banks) {
        spec = &m;
        break;
      }
    }
    if (spec == nullptr) continue;
    rep_row row;
    row.banks = banks;
    row.machine = spec->label();
    row.ok = true;
    // The pipeline's partition pool: a selection spanning every
    // function-feeding bit (the coarse "covered" set — shared row bits
    // included, exactly what Step 2 hands to Algorithm 2).
    std::uint64_t covered = 0;
    for (const std::uint64_t f : spec->mapping.bank_functions()) covered |= f;
    const std::vector<unsigned> bank_bits = bits_of_mask(covered);
    for (const bool representatives : {false, true}) {
      core::environment env(*spec, 900 + spec->number);
      auto& mc = env.mach().controller();
      const auto& buffer =
          env.space().map_buffer(spec->memory_bytes * 11 / 20);
      rng r(31 ^ spec->number);
      timing::channel channel(mc,
                              {.rounds_per_measurement = 1000,
                               .samples_per_latency = 3,
                               .calibration_pairs = 1200},
                              rng(7 ^ spec->number));
      channel.calibrate(core::sample_addresses(buffer, 1024, r));
      const auto selection = core::select_addresses(buffer, bank_bits);
      core::measurement_plan plan(channel);
      core::partition_config cfg{};
      cfg.use_representatives = representatives;
      const std::uint64_t before = mc.measurement_count();
      const auto outcome =
          core::partition_pool(plan, selection.pool, banks, r, cfg);
      const std::uint64_t cost = mc.measurement_count() - before;
      row.ok = row.ok && selection.found && outcome.success;
      (representatives ? row.rep_measurements : row.pivot_measurements) =
          cost;
    }
    rep_rows.push_back(std::move(row));
  }
  const auto rep_reduction = [](const rep_row& row) {
    return 1.0 - static_cast<double>(row.rep_measurements) /
                     static_cast<double>(
                         std::max<std::uint64_t>(row.pivot_measurements, 1));
  };
  double min_reduction = 1.0;
  bool rep_ok = !rep_rows.empty();
  for (const rep_row& row : rep_rows) {
    rep_ok = rep_ok && row.ok;
    min_reduction = std::min(min_reduction, rep_reduction(row));
  }

  // Designed-experiment bit-probe engine vs the legacy per-bit vote loops:
  // coarse + fine on three machine sizes, same machine/seed/knowledge and
  // the machine's true bank functions (isolating the probed phases from
  // partition). The measurement count is the paper's cost metric;
  // `min_reduction` is CI-gated (bench_guard --min-probe-reduction), so a
  // regression that silently falls back to fixed-count voting fails the
  // build.
  struct probe_row {
    unsigned banks = 0;
    std::string machine;
    std::uint64_t legacy_measurements = 0;
    std::uint64_t designed_measurements = 0;
    bool ok = false;
  };
  std::vector<probe_row> probe_rows;
  for (const unsigned banks : {8u, 16u, 32u}) {
    const dram::machine_spec* spec = nullptr;
    for (const dram::machine_spec& m : dram::paper_machines()) {
      if (m.mapping.bank_count() == banks) {
        spec = &m;
        break;
      }
    }
    if (spec == nullptr) continue;
    probe_row row;
    row.banks = banks;
    row.machine = spec->label();
    row.ok = true;
    for (const bool designed : {false, true}) {
      core::environment env(*spec, 1200 + spec->number);
      auto& mc = env.mach().controller();
      const auto& buffer =
          env.space().map_buffer(spec->memory_bytes * 11 / 20);
      rng r(53 ^ spec->number);
      timing::channel channel(mc,
                              {.rounds_per_measurement = 1000,
                               .samples_per_latency = 3,
                               .calibration_pairs = 1200},
                              rng(7 ^ spec->number));
      channel.calibrate(core::sample_addresses(buffer, 1024, r));
      const core::domain_knowledge knowledge =
          core::domain_knowledge::from_system_info(sysinfo::probe(*spec));
      core::measurement_plan plan(channel);
      core::bit_probe_engine engine(plan, buffer);
      core::coarse_config coarse_cfg{};
      coarse_cfg.probe.use_designed = designed;
      core::fine_config fine_cfg{};
      fine_cfg.probe.use_designed = designed;
      const std::uint64_t before = mc.measurement_count();
      const auto coarse =
          core::run_coarse_detection(engine, knowledge, r, coarse_cfg);
      const auto fine = core::run_fine_detection(
          engine, knowledge, coarse, spec->mapping.bank_functions(), r,
          fine_cfg);
      const std::uint64_t cost = mc.measurement_count() - before;
      row.ok = row.ok && fine.counts_satisfied &&
               fine.row_bits == spec->mapping.row_bits() &&
               fine.column_bits == spec->mapping.column_bits();
      (designed ? row.designed_measurements : row.legacy_measurements) = cost;
    }
    probe_rows.push_back(std::move(row));
  }
  const auto probe_reduction = [](const probe_row& row) {
    return 1.0 - static_cast<double>(row.designed_measurements) /
                     static_cast<double>(
                         std::max<std::uint64_t>(row.legacy_measurements, 1));
  };
  double probe_min_reduction = 1.0;
  bool probe_ok = !probe_rows.empty();
  for (const probe_row& row : probe_rows) {
    probe_ok = probe_ok && row.ok;
    probe_min_reduction = std::min(probe_min_reduction, probe_reduction(row));
  }

  // Hot-path throughput: simulated measurements per second through each
  // layer of the batch-native stack — pure SoA decode, the full batched
  // measure (decode + latency model), and the plan-mediated vote path — at
  // three batch sizes. Min-of-3 on fresh machines per repetition;
  // min_mps_100k (the slower of decode/measure on the mid tier) is
  // CI-gated (bench_guard --min-hot-throughput).
  struct hot_row {
    const char* suffix;
    std::size_t pairs = 0;
    double decode_mps = 0.0;
    double measure_mps = 0.0;
    double plan_mps = 0.0;
  };
  std::vector<hot_row> hot_rows{
      {"10k", 10000}, {"100k", 100000}, {"1m", 1000000}};
  {
    rng hot_addr(7);
    std::vector<sim::addr_pair> hot_pairs;
    hot_pairs.reserve(hot_rows.back().pairs);
    std::vector<sim::pair_measurement> hot_out;
    for (hot_row& row : hot_rows) {
      while (hot_pairs.size() < row.pairs) {
        hot_pairs.emplace_back(hot_addr.below(spec.memory_bytes) & ~63ull,
                               hot_addr.below(spec.memory_bytes) & ~63ull);
      }
      const std::span<const sim::addr_pair> span(hot_pairs.data(), row.pairs);
      double decode_s = 1e300, measure_s = 1e300, plan_s = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        sim::machine m(spec, 11, sim::timing_profile_for(spec));
        auto tick = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(&m.controller().decode_pairs(span));
        decode_s = std::min(decode_s, wall_seconds_since(tick));

        tick = std::chrono::steady_clock::now();
        m.controller().measure_pairs(span, 1000, hot_out);
        measure_s = std::min(measure_s, wall_seconds_since(tick));
        benchmark::DoNotOptimize(hot_out.data());

        core::environment env(spec, 77);
        const auto& buffer = env.space().map_buffer(spec.memory_bytes / 2);
        rng cal(5);
        timing::channel channel(env.mach().controller(),
                                {.rounds_per_measurement = 1000,
                                 .samples_per_latency = 3,
                                 .calibration_pairs = 1200},
                                rng(9));
        channel.calibrate(core::sample_addresses(buffer, 1024, cal));
        core::measurement_plan plan(channel);
        tick = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(
            plan.classify_pairs(span, /*verify_positives=*/false)
                .member.data());
        plan_s = std::min(plan_s, wall_seconds_since(tick));
      }
      const auto mps = [&row](double s) {
        return static_cast<double>(row.pairs) / std::max(s, 1e-12);
      };
      row.decode_mps = mps(decode_s);
      row.measure_mps = mps(measure_s);
      row.plan_mps = mps(plan_s);
    }
  }
  const double min_mps_100k =
      std::min(hot_rows[1].decode_mps, hot_rows[1].measure_mps);

  // Noise sampling: the legacy sequential mt19937 gaussian (per-call
  // normal_distribution construction — the use_counter_rng=false stream)
  // vs the counter stream's fixed-consumption inverse-CDF sampler.
  // Draws/s, min-of-3; the ratio is CI-gated (bench_guard
  // --min-noise-speedup) so the hot-path win cannot silently erode.
  const std::size_t noise_draws = smoke ? (1u << 20) : (1u << 22);
  double legacy_draw_s = 1e300, counter_draw_s = 1e300;
  {
    std::vector<double> sink(noise_draws);
    for (int rep = 0; rep < 3; ++rep) {
      rng legacy(42);
      auto tick = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < noise_draws; ++i) {
        sink[i] = legacy.gaussian(0.0, 9.0);
      }
      benchmark::DoNotOptimize(sink.data());
      legacy_draw_s = std::min(legacy_draw_s, wall_seconds_since(tick));

      const noise_stream counter = noise_stream::from_seed(42);
      tick = std::chrono::steady_clock::now();
      counter.fill_gaussian(/*domain=*/1, /*base_index=*/0, noise_draws, 0.0,
                            9.0, sink.data());
      benchmark::DoNotOptimize(sink.data());
      counter_draw_s = std::min(counter_draw_s, wall_seconds_since(tick));
    }
  }

  // Counter-tail thread scaling: the identical batch serviced through
  // injected worker pools of 1/4/8 threads. The results are bit-identical
  // by construction (asserted in tests/sim/test_memory_controller.cpp);
  // here the walls are tracked so a multi-core host shows the shard win
  // and a single-core host proves oversubscription stays near-free
  // (bench_guard gates tail_mps_8t / tail_mps_1t).
  struct tail_row {
    unsigned threads;
    double wall_s = 1e300;
  };
  std::vector<tail_row> tail_rows{{1}, {4}, {8}};
  const std::size_t tail_pairs = smoke ? 100000 : 200000;
  {
    rng tail_addr(17);
    std::vector<sim::addr_pair> pairs_buf;
    pairs_buf.reserve(tail_pairs);
    for (std::size_t i = 0; i < tail_pairs; ++i) {
      pairs_buf.emplace_back(tail_addr.below(spec.memory_bytes) & ~63ull,
                             tail_addr.below(spec.memory_bytes) & ~63ull);
    }
    std::vector<sim::pair_measurement> tail_out;
    for (tail_row& row : tail_rows) {
      worker_pool pool(row.threads);
      for (int rep = 0; rep < 3; ++rep) {
        sim::machine m(spec, 11, sim::timing_profile_for(spec));
        m.controller().set_worker_pool(&pool);
        const auto tick = std::chrono::steady_clock::now();
        m.controller().measure_pairs(pairs_buf, 1000, tail_out);
        row.wall_s = std::min(row.wall_s, wall_seconds_since(tick));
        benchmark::DoNotOptimize(tail_out.data());
      }
    }
  }

  // SIMD decode kernel: the dispatched decode_banks against the pinned
  // portable kernel on one flat address array (the machine's own function
  // set). Equality of every output word is CI-gated alongside the
  // throughput ratio; simd_available records what the dispatcher resolved
  // on this host (false under DRAMDIG_FORCE_SCALAR_DECODE — the CI run
  // pinning the fallback).
  const std::size_t decode_addrs = smoke ? (1u << 19) : (1u << 21);
  double simd_decode_s = 1e300, scalar_decode_s = 1e300;
  bool decode_identical = false;
  {
    const auto& funcs = spec.mapping.bank_functions();
    rng da(23);
    std::vector<std::uint64_t> addrs(decode_addrs);
    for (std::uint64_t& a : addrs) a = da.below(spec.memory_bytes);
    std::vector<std::uint64_t> out_dispatch(decode_addrs);
    std::vector<std::uint64_t> out_scalar(decode_addrs);
    for (int rep = 0; rep < 3; ++rep) {
      auto tick = std::chrono::steady_clock::now();
      decode_banks(addrs.data(), addrs.size(), funcs.data(), funcs.size(),
                   out_dispatch.data());
      benchmark::DoNotOptimize(out_dispatch.data());
      simd_decode_s = std::min(simd_decode_s, wall_seconds_since(tick));

      tick = std::chrono::steady_clock::now();
      decode_banks_scalar(addrs.data(), addrs.size(), funcs.data(),
                          funcs.size(), out_scalar.data());
      benchmark::DoNotOptimize(out_scalar.data());
      scalar_decode_s = std::min(scalar_decode_s, wall_seconds_since(tick));
    }
    decode_identical = out_dispatch == out_scalar;
  }

  // Plan overhead per verdict: the same vote batch classified three times.
  // With reuse on, passes 2-3 never touch the channel — the wall time is
  // plan bookkeeping (hash lookups, root cache, witness scans); with reuse
  // off every pass re-measures. The emitted ns_per_verdict_ratio (off/on)
  // sits BELOW one by design — see the annotation where it is written; the
  // end-to-end win is CI-gated through partition_measurement_reuse below.
  const std::size_t overhead_pair_count = smoke ? 20000 : 50000;
  double overhead_on_s = 1e300, overhead_off_s = 1e300;
  {
    rng ov_addr(13);
    std::vector<sim::addr_pair> ov_pairs;
    ov_pairs.reserve(overhead_pair_count);
    for (std::size_t i = 0; i < overhead_pair_count; ++i) {
      ov_pairs.emplace_back(ov_addr.below(spec.memory_bytes) & ~63ull,
                            ov_addr.below(spec.memory_bytes) & ~63ull);
    }
    for (int rep = 0; rep < 3; ++rep) {
      for (const bool reuse : {true, false}) {
        core::environment env(spec, 88);
        const auto& buffer = env.space().map_buffer(spec.memory_bytes / 2);
        rng cal(5);
        timing::channel channel(env.mach().controller(),
                                {.rounds_per_measurement = 1000,
                                 .samples_per_latency = 3,
                                 .calibration_pairs = 1200},
                                rng(9));
        channel.calibrate(core::sample_addresses(buffer, 1024, cal));
        core::measurement_plan plan(channel, {.reuse_verdicts = reuse});
        const auto tick = std::chrono::steady_clock::now();
        for (int pass = 0; pass < 3; ++pass) {
          benchmark::DoNotOptimize(
              plan.classify_pairs(ov_pairs, /*verify_positives=*/false)
                  .member.data());
        }
        (reuse ? overhead_on_s : overhead_off_s) = std::min(
            reuse ? overhead_on_s : overhead_off_s, wall_seconds_since(tick));
      }
    }
  }
  const std::uint64_t overhead_verdicts = 3 * overhead_pair_count;

  // Measurement-reuse scheduler: the same full pipeline run with the
  // verdict cache on vs off — the measurement *count* is the paper's cost
  // metric, the wall times bound the host cost. Min-of-3 on fresh
  // environments per repetition: the wall ratio is CI-gated
  // (bench_guard --min-reuse-wall-speedup) as the whole-pipeline proof
  // that the plan's bookkeeping costs less than the measurements it saves.
  // Machine No.2 in both modes: its cache-on run saves >4x measurements,
  // so the wall ratio is signal, not scheduler jitter. (The full pipeline
  // costs ~15ms now that region construction is extent-based — cheap
  // enough for smoke.)
  const auto reuse_spec = dram::machine_by_number(2);
  core::dramdig_config cache_off{};
  cache_off.plan.reuse_verdicts = false;
  core::dramdig_report report_off, report_on;
  double reuse_off_wall_s = 1e300, reuse_on_wall_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    core::environment env_off(reuse_spec, 2000 + reuse_spec.number);
    t0 = std::chrono::steady_clock::now();
    report_off = core::dramdig_tool(env_off, cache_off).run();
    reuse_off_wall_s = std::min(reuse_off_wall_s, wall_seconds_since(t0));

    core::environment env_on(reuse_spec, 2000 + reuse_spec.number);
    t0 = std::chrono::steady_clock::now();
    report_on = core::dramdig_tool(env_on).run();
    reuse_on_wall_s = std::min(reuse_on_wall_s, wall_seconds_since(t0));
  }

  // Fleet warm start: the same machine run four ways through the mapping
  // store — cold (empty store, full recovery), verify (exact fingerprint
  // hit, a few hundred designed probes), warm (geometry sibling, full
  // recovery warm-started from the stored v2 evidence prior: threshold,
  // bit classification, functions, bank count), and span-only warm (the
  // same sibling against a v1-era entry stripped of evidence — the
  // pre-evidence warm path, kept as the contrast run). Two acceptance
  // metrics: a verify hit must cost >=80% fewer measurements
  // (bench_guard --min-warm-reduction) and an evidence-carrying warm run
  // >=50% fewer (--min-warm-evidence-reduction), both while reproducing
  // the stored mapping bit-identically. Machine No.1 is the fleet's
  // WORST warm case (smallest pool, so the partition stratification
  // never fires) — a floor that holds here holds fleet-wide.
  const auto fleet_spec = dram::machine_by_number(1);
  std::uint64_t fleet_cold_m = 0, fleet_verify_m = 0, fleet_warm_m = 0;
  std::uint64_t fleet_span_only_m = 0;
  bool fleet_mapping_identical = false, fleet_hits_ok = false;
  bool fleet_warm_identical = false;
  {
    store::mapping_store fleet_store;  // in-memory: the bench needs no disk
    api::service_config fleet_cfg;
    fleet_cfg.threads = 1;
    fleet_cfg.store = &fleet_store;
    const api::mapping_service fleet(fleet_cfg);
    const std::uint64_t fleet_seed = 777;
    const auto cold = fleet.run({{fleet_spec, "dramdig", {}, fleet_seed}});
    const auto verify = fleet.run({{fleet_spec, "dramdig", {}, fleet_seed}});
    dram::machine_spec sibling = fleet_spec;
    sibling.cpu_model += " (geometry sibling)";
    const auto warm = fleet.run({{sibling, "dramdig", {}, fleet_seed}});

    // Contrast run: the same sibling against the same entry with the v2
    // evidence stripped (bank_count 0 = "no claim" = exactly what a v1
    // document loads as), isolating what the evidence prior buys.
    store::mapping_store v1_store;
    for (store::store_entry e : fleet_store.entries()) {
      if (e.fingerprint.hash() == sysinfo::fingerprint(fleet_spec).hash()) {
        e.bank_count = 0;
        e.threshold_ns = 0.0;
        v1_store.put(std::move(e));
      }
    }
    api::service_config v1_cfg;
    v1_cfg.threads = 1;
    v1_cfg.store = &v1_store;
    const auto span_only =
        api::mapping_service(v1_cfg).run({{sibling, "dramdig", {}, fleet_seed}});

    fleet_cold_m = cold[0].result.measurement_count;
    fleet_verify_m = verify[0].result.measurement_count;
    fleet_warm_m = warm[0].result.measurement_count;
    fleet_span_only_m = span_only[0].result.measurement_count;
    fleet_mapping_identical =
        cold[0].result.mapping && verify[0].result.mapping &&
        cold[0].result.mapping->describe() == verify[0].result.mapping->describe();
    fleet_warm_identical =
        cold[0].result.mapping && warm[0].result.mapping &&
        cold[0].result.mapping->describe() == warm[0].result.mapping->describe();
    fleet_hits_ok = cold[0].store_hit == "cold" &&
                    verify[0].store_hit == "verify" &&
                    warm[0].store_hit == "warm" &&
                    span_only[0].store_hit == "warm" &&
                    cold[0].result.verified && verify[0].result.verified &&
                    warm[0].result.verified && span_only[0].result.verified;
  }
  const auto reduction_vs_cold = [&](std::uint64_t m) {
    return 1.0 - static_cast<double>(m) /
                     static_cast<double>(std::max<std::uint64_t>(fleet_cold_m,
                                                                 1));
  };

  json_writer w;
  w.begin_object();
  w.key("bench").value("micro_primitives");
  w.key("smoke").value(smoke);
  w.key("function_detect_synthetic").begin_object();
  w.key("bank_bit_count").value(std::uint64_t{width});
  w.key("function_count").value(std::uint64_t{functions});
  w.key("bank_count").value(std::uint64_t{s.bank_count});
  w.key("pile_count").value(s.piles.size());
  w.key("enumeration_wall_s").value(oracle_wall_s);
  w.key("nullspace_wall_s").value(nullspace_wall_s);
  w.key("wall_speedup").value(oracle_wall_s /
                              std::max(nullspace_wall_s, 1e-9));
  w.key("enumeration_virtual_ns").value(oracle_clock.now_ns());
  w.key("nullspace_virtual_ns").value(nullspace_clock.now_ns());
  w.key("identical_functions").value(agree);
  w.end_object();
  w.key("batched_measurement").begin_object();
  w.key("pair_count").value(pair_count);
  w.key("scalar_wall_s").value(scalar_wall_s);
  w.key("batch_wall_s").value(batch_wall_s);
  w.key("wall_speedup").value(scalar_wall_s / std::max(batch_wall_s, 1e-9));
  w.key("virtual_ns").value(batch_virtual_ns);
  w.key("access_count").value(batch_accesses);
  w.key("measurement_count").value(batch_measurements);
  w.end_object();
  w.key("hot_path_throughput").begin_object();
  for (const hot_row& row : hot_rows) {
    const std::string suffix = row.suffix;
    w.key("pairs_" + suffix).value(row.pairs);
    w.key("decode_mps_" + suffix).value(row.decode_mps);
    w.key("measure_mps_" + suffix).value(row.measure_mps);
    w.key("plan_mps_" + suffix).value(row.plan_mps);
  }
  w.key("min_mps_100k").value(min_mps_100k);
  w.end_object();
  w.key("noise_sampling").begin_object();
  w.key("draws").value(std::uint64_t{noise_draws});
  w.key("legacy_draws_per_s")
      .value(static_cast<double>(noise_draws) / std::max(legacy_draw_s, 1e-12));
  w.key("counter_draws_per_s")
      .value(static_cast<double>(noise_draws) /
             std::max(counter_draw_s, 1e-12));
  w.key("speedup").value(legacy_draw_s / std::max(counter_draw_s, 1e-9));
  w.end_object();
  w.key("counter_tail").begin_object();
  w.key("pairs").value(std::uint64_t{tail_pairs});
  for (const tail_row& row : tail_rows) {
    const std::string suffix = std::to_string(row.threads) + "t";
    w.key("tail_mps_" + suffix)
        .value(static_cast<double>(tail_pairs) / std::max(row.wall_s, 1e-12));
  }
  w.key("scaling_8t_vs_1t").value(tail_rows[0].wall_s /
                                  std::max(tail_rows[2].wall_s, 1e-12));
  w.end_object();
  w.key("decode_simd").begin_object();
  w.key("addresses").value(std::uint64_t{decode_addrs});
  w.key("simd_available").value(decode_banks_uses_simd());
  w.key("dispatched_mps")
      .value(static_cast<double>(decode_addrs) /
             std::max(simd_decode_s, 1e-12));
  w.key("scalar_mps").value(static_cast<double>(decode_addrs) /
                            std::max(scalar_decode_s, 1e-12));
  w.key("speedup").value(scalar_decode_s / std::max(simd_decode_s, 1e-9));
  w.key("identical_results").value(decode_identical);
  w.end_object();
  w.key("plan_overhead").begin_object();
  w.key("verdicts").value(overhead_verdicts);
  w.key("wall_cache_on_s").value(overhead_on_s);
  w.key("wall_cache_off_s").value(overhead_off_s);
  w.key("ns_per_verdict_on")
      .value(overhead_on_s * 1e9 / static_cast<double>(overhead_verdicts));
  w.key("ns_per_verdict_off")
      .value(overhead_off_s * 1e9 / static_cast<double>(overhead_verdicts));
  // off/on per-verdict wall ratio. Below one BY DESIGN: a cached verdict
  // pays hash lookups and witness scans where a raw re-measure is a tight
  // simulated-latency loop — the cache wins on *measurement count*, which
  // partition_measurement_reuse gates, not on per-verdict nanoseconds.
  // The key is named (and flagged) so nobody "fixes" the <1 value.
  w.key("ns_per_verdict_ratio")
      .value(overhead_off_s / std::max(overhead_on_s, 1e-9));
  w.key("expected_below_one").value(true);
  w.end_object();
  w.key("measurement_accounting").begin_object();
  w.key("pair_count").value(pair_count);
  w.key("loop_wall_s").value(loop_wall_s);
  w.key("closed_form_wall_s").value(closed_wall_s);
  w.key("wall_speedup").value(loop_wall_s / std::max(closed_wall_s, 1e-9));
  w.key("identical_results").value(accounting_identical);
  w.end_object();
  w.key("partition_representatives").begin_object();
  for (const rep_row& row : rep_rows) {
    const std::string suffix = std::to_string(row.banks);
    w.key("machine_" + suffix).value(row.machine);
    w.key("pivot_" + suffix).value(row.pivot_measurements);
    w.key("representative_" + suffix).value(row.rep_measurements);
    w.key("ok_" + suffix).value(row.ok);
  }
  w.key("ok").value(rep_ok);
  w.key("min_reduction").value(min_reduction);
  w.end_object();
  w.key("bit_probe").begin_object();
  for (const probe_row& row : probe_rows) {
    const std::string suffix = std::to_string(row.banks);
    w.key("machine_" + suffix).value(row.machine);
    w.key("legacy_" + suffix).value(row.legacy_measurements);
    w.key("designed_" + suffix).value(row.designed_measurements);
    w.key("ok_" + suffix).value(row.ok);
  }
  w.key("ok").value(probe_ok);
  w.key("min_reduction").value(probe_min_reduction);
  w.end_object();
  w.key("partition_measurement_reuse").begin_object();
  w.key("machine").value(reuse_spec.label());
  w.key("ok_cache_off").value(report_off.success);
  w.key("ok_cache_on").value(report_on.success);
  w.key("measurements_cache_off").value(report_off.total_measurements);
  w.key("measurements_cache_on").value(report_on.total_measurements);
  w.key("measurements_saved").value(report_on.measurements_saved);
  w.key("measurement_reduction")
      .value(static_cast<double>(report_off.total_measurements) /
             static_cast<double>(
                 std::max<std::uint64_t>(report_on.total_measurements, 1)));
  w.key("wall_cache_off_s").value(reuse_off_wall_s);
  w.key("wall_cache_on_s").value(reuse_on_wall_s);
  w.key("wall_speedup")
      .value(reuse_off_wall_s / std::max(reuse_on_wall_s, 1e-9));
  w.end_object();
  w.key("fleet_warm_start").begin_object();
  w.key("machine").value(fleet_spec.label());
  w.key("cold_measurements").value(fleet_cold_m);
  w.key("verify_measurements").value(fleet_verify_m);
  w.key("warm_measurements").value(fleet_warm_m);
  w.key("verify_reduction").value(reduction_vs_cold(fleet_verify_m));
  w.key("warm_reduction").value(reduction_vs_cold(fleet_warm_m));
  // The evidence-carrying warm path vs the v1-era span-only warm start
  // (same sibling, same seed, entry stripped of its evidence block).
  w.key("warm_evidence_measurements").value(fleet_warm_m);
  w.key("warm_evidence_reduction").value(reduction_vs_cold(fleet_warm_m));
  w.key("warm_span_only_measurements").value(fleet_span_only_m);
  w.key("warm_mapping_identical").value(fleet_warm_identical);
  w.key("mapping_identical").value(fleet_mapping_identical);
  w.key("hits_ok").value(fleet_hits_ok);
  w.end_object();
  w.end_object();
  write_file(path, w.str());

  std::printf("\n== tracked comparisons (written to %s) ==\n", path.c_str());
  std::printf("function detect, %u bank bits: enumeration %.3fs, nullspace "
              "%.4fs (%.0fx), identical functions: %s\n",
              width, oracle_wall_s, nullspace_wall_s,
              oracle_wall_s / std::max(nullspace_wall_s, 1e-9),
              agree ? "yes" : "NO");
  std::printf("batched engine, %zu pairs: scalar %.3fs, batch %.3fs (%.1fx)\n",
              pair_count, scalar_wall_s, batch_wall_s,
              scalar_wall_s / std::max(batch_wall_s, 1e-9));
  for (const hot_row& row : hot_rows) {
    std::printf("hot path at %zu pairs: decode %.1fM/s, measure %.1fM/s, "
                "plan %.1fM/s\n",
                row.pairs, row.decode_mps / 1e6, row.measure_mps / 1e6,
                row.plan_mps / 1e6);
  }
  std::printf("plan overhead, %llu verdicts x3 passes: cache on %.0f ns/verdict,"
              " off %.0f ns/verdict (%.1fx)\n",
              static_cast<unsigned long long>(overhead_verdicts),
              overhead_on_s * 1e9 / static_cast<double>(overhead_verdicts),
              overhead_off_s * 1e9 / static_cast<double>(overhead_verdicts),
              overhead_off_s / std::max(overhead_on_s, 1e-9));
  std::printf("accounting, %zu pairs: access loop %.3fs, closed form %.4fs "
              "(%.0fx), identical results: %s\n",
              pair_count, loop_wall_s, closed_wall_s,
              loop_wall_s / std::max(closed_wall_s, 1e-9),
              accounting_identical ? "yes" : "NO");
  for (const rep_row& row : rep_rows) {
    std::printf("partition at %u banks (%s): pivot-scan %llu, representative "
                "%llu measurements (-%.0f%%)%s\n",
                row.banks, row.machine.c_str(),
                static_cast<unsigned long long>(row.pivot_measurements),
                static_cast<unsigned long long>(row.rep_measurements),
                100.0 * rep_reduction(row), row.ok ? "" : " [FAILED]");
  }
  for (const probe_row& row : probe_rows) {
    std::printf("coarse+fine at %u banks (%s): legacy votes %llu, designed "
                "probes %llu measurements (-%.0f%%)%s\n",
                row.banks, row.machine.c_str(),
                static_cast<unsigned long long>(row.legacy_measurements),
                static_cast<unsigned long long>(row.designed_measurements),
                100.0 * probe_reduction(row), row.ok ? "" : " [FAILED]");
  }
  std::printf("measurement reuse on %s: %llu measurements without cache, "
              "%llu with (%llu saved)\n",
              reuse_spec.label().c_str(),
              static_cast<unsigned long long>(report_off.total_measurements),
              static_cast<unsigned long long>(report_on.total_measurements),
              static_cast<unsigned long long>(report_on.measurements_saved));
  std::printf("noise sampling: legacy %.1fM draws/s, counter %.1fM draws/s "
              "(%.2fx)\n",
              static_cast<double>(noise_draws) / legacy_draw_s / 1e6,
              static_cast<double>(noise_draws) / counter_draw_s / 1e6,
              legacy_draw_s / std::max(counter_draw_s, 1e-9));
  std::printf("counter tail, %zu pairs: 1t %.1fM/s, 4t %.1fM/s, 8t %.1fM/s\n",
              tail_pairs,
              static_cast<double>(tail_pairs) / tail_rows[0].wall_s / 1e6,
              static_cast<double>(tail_pairs) / tail_rows[1].wall_s / 1e6,
              static_cast<double>(tail_pairs) / tail_rows[2].wall_s / 1e6);
  std::printf("decode kernel (%s): dispatched %.1fM addr/s, scalar %.1fM "
              "addr/s (%.2fx), identical %s\n",
              decode_banks_uses_simd() ? "AVX2" : "scalar fallback",
              static_cast<double>(decode_addrs) / simd_decode_s / 1e6,
              static_cast<double>(decode_addrs) / scalar_decode_s / 1e6,
              scalar_decode_s / std::max(simd_decode_s, 1e-9),
              decode_identical ? "yes" : "NO");
  std::printf("fleet warm start on %s: cold %llu, verify %llu (-%.0f%%), "
              "warm %llu (-%.0f%%, span-only %llu) measurements, mapping "
              "identical: %s\n",
              fleet_spec.label().c_str(),
              static_cast<unsigned long long>(fleet_cold_m),
              static_cast<unsigned long long>(fleet_verify_m),
              100.0 * reduction_vs_cold(fleet_verify_m),
              static_cast<unsigned long long>(fleet_warm_m),
              100.0 * reduction_vs_cold(fleet_warm_m),
              static_cast<unsigned long long>(fleet_span_only_m),
              fleet_mapping_identical && fleet_warm_identical &&
                      fleet_hits_ok
                  ? "yes"
                  : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  emit_bench_json(out, smoke);
  return 0;
}

// Ablation A: what each piece of domain knowledge buys (DESIGN.md).
//
// Variants, run on a representative machine subset:
//   full            everything on (the tool as shipped)
//   no-sysinfo      bank count unknown -> blind sweep over candidates
//   no-spec-counts  JEDEC row/column counts unknown -> shared bits stay
//                   covered, mapping cannot be completed
//   no-verify       partition accepts single-sample positives -> noisy
//                   machines poison the piles (the DRAMA failure mode)
//
// A second table runs the inverse experiment on the baseline: what if
// DRAMA had DRAMDig's GF(2) algebra (drama_config::use_nullspace)? Same
// trials and functions on the clean machines, the same published failure
// on the noisy unit — knowledge of the *search space* collapses CPU cost
// but cannot repair single-sample clustering.
#include <cstdio>

#include "baselines/drama.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/gf2.h"
#include "util/table.h"

namespace {

using namespace dramdig;

struct variant {
  const char* name;
  core::dramdig_config config;
};

}  // namespace

int main() {
  std::printf("== Ablation: the value of each knowledge ingredient ==\n\n");

  std::vector<variant> variants;
  variants.push_back({"full", {}});
  {
    core::dramdig_config c{};
    c.use_system_info = false;
    variants.push_back({"no-sysinfo", c});
  }
  {
    core::dramdig_config c{};
    c.use_spec_counts = false;
    variants.push_back({"no-spec-counts", c});
  }
  {
    core::dramdig_config c{};
    c.partition.verify_positives = false;
    variants.push_back({"no-verify", c});
  }

  text_table table({"Variant", "Machine", "Outcome", "Correct", "Time",
                    "Notes"});
  for (int machine_no : {1, 4, 7}) {
    const auto& spec = dram::machine_by_number(machine_no);
    for (const variant& v : variants) {
      core::environment env(spec, 9000 + machine_no);
      core::dramdig_tool tool(env, v.config);
      const auto report = tool.run();
      const bool correct = report.success && report.mapping &&
                           report.mapping->equivalent_to(spec.mapping);
      table.add_row({v.name, spec.label(),
                     report.success ? "success" : "failed",
                     correct ? "yes" : "no",
                     fmt_duration_s(report.total_seconds),
                     report.success
                         ? "banks=" + std::to_string(report.assumed_bank_count)
                         : report.failure_reason.substr(0, 44)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: no-sysinfo costs extra time (bank-count sweep); "
              "no-spec-counts cannot complete shared bits; no-verify breaks "
              "everywhere — Algorithm 3's intersection dies on a single "
              "polluted pile member, so even the rare contaminated sample "
              "of a clean machine is fatal without re-verification.\n");

  std::printf("\n== DRAMA arm: what if the baseline had the algebra? ==\n\n");
  text_table drama_table({"Variant", "Machine", "Outcome", "Span", "Trials",
                          "Time", "Measurements"});
  for (int machine_no : {1, 4, 7}) {
    const auto& spec = dram::machine_by_number(machine_no);
    for (const bool nullspace : {false, true}) {
      core::environment env(spec, 9000 + machine_no);
      baselines::drama_config cfg{};
      cfg.use_nullspace = nullspace;
      const auto report = baselines::drama_tool(env, cfg).run();
      const bool span_ok =
          !report.functions.empty() &&
          gf2::same_span(report.functions, spec.mapping.bank_functions());
      drama_table.add_row(
          {nullspace ? "drama+nullspace" : "drama", spec.label(),
           report.completed ? "completed" : "no result (killed)",
           span_ok ? "yes" : "no", std::to_string(report.trials_run),
           fmt_duration_s(report.total_seconds),
           std::to_string(report.total_measurements)});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", drama_table.render().c_str());
  std::printf("Expected: on clean trials the two arms are identical — the "
              "null space of the cluster differences is exactly the mask "
              "set the brute-force sweep accepts — while the per-trial CPU "
              "charge collapses (~2^21 candidate masks down to a few "
              "hundred row operations). A polluted trial can diverge: the "
              "strict algebra drops a tolerated-noise function the sweep "
              "keeps, costing extra agreement trials. And the noisy No.7 "
              "never agrees in either arm: algebra is knowledge about the "
              "search space, not about measurement trust, so DRAMDig's "
              "verified-partition advantage stands.\n");
  return 0;
}

// Visualize the row-buffer timing channel: the latency histogram of random
// address pairs on a simulated machine, with the calibrated threshold.
// The bimodal shape — fast mode (row hits / different banks) vs slow mode
// (row-buffer conflicts) — is the entire signal every tool in this
// repository is built on.
//
//   $ timing_channel_viz [machine_number=1] [seed=5]
#include <cstdio>
#include <cstdlib>

#include "core/environment.h"
#include "core/probe_util.h"
#include "dram/presets.h"
#include "timing/channel.h"
#include "util/histogram.h"

int main(int argc, char** argv) {
  using namespace dramdig;
  const int machine_no = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);

  core::environment env(spec, seed);
  rng r(seed);
  const auto& buffer =
      env.space().map_buffer(spec.memory_bytes / 4);
  timing::channel channel(env.mach().controller(), {}, r.fork());
  const double threshold =
      channel.calibrate(core::sample_addresses(buffer, 2048, r));

  histogram h(100.0, 500.0, 40);
  h.add_all(channel.calibration_samples());

  std::printf("Machine %s (%s) — pair-latency histogram, %zu samples\n\n",
              spec.label().c_str(), spec.microarchitecture.c_str(),
              channel.calibration_samples().size());
  std::printf("%s", h.ascii().c_str());
  std::printf("\ncalibrated threshold: %.1f ns\n", threshold);
  std::printf("fast mode = row hits / different banks; slow mode = row-buffer"
              " conflicts (SBDR)\n");
  return 0;
}

// Reverse-engineer every paper machine — a live rendition of Table II,
// submitted as one mapping_service batch. The worker pool drains the nine
// machines concurrently; a progress observer narrates completions as they
// land (in wall-clock order), while the final table merges by submission
// index, so it is identical however the pool interleaves.
#include <cstdio>
#include <vector>

#include "api/mapping_service.h"
#include "dram/presets.h"
#include "util/table.h"

namespace {

using namespace dramdig;

/// Narrates job completions; the service serializes observer calls, so
/// plain printf needs no locking here.
class narrator final : public api::progress_observer {
 public:
  explicit narrator(const std::vector<api::job_spec>& jobs) : jobs_(jobs) {}

  void on_job_done(std::size_t index,
                   const api::job_outcome& outcome) override {
    std::printf("  [%s %s] %s in %s (wall %.2fs)\n",
                jobs_[index].machine.label().c_str(),
                outcome.result.tool.c_str(), outcome.result.outcome.c_str(),
                fmt_duration_s(outcome.result.virtual_seconds).c_str(),
                outcome.wall_seconds);
  }

 private:
  const std::vector<api::job_spec>& jobs_;
};

}  // namespace

int main() {
  using namespace dramdig;

  std::vector<api::job_spec> jobs;
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    jobs.push_back({spec, "dramdig", {}, /*seed=*/2026});
  }
  std::printf("uncovering %zu machines across the worker pool...\n",
              jobs.size());
  narrator progress(jobs);
  const auto outcomes = api::mapping_service().run(jobs, &progress);

  text_table table({"No.", "Microarch.", "DRAM", "Config.", "Bank functions",
                    "Rows", "Cols", "Time", "OK"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const dram::machine_spec& spec = jobs[i].machine;
    const api::tool_result& r = outcomes[i].result;
    table.add_row({spec.label(), spec.microarchitecture,
                   spec.dram_description(), spec.config_quadruple(),
                   r.mapping ? r.mapping->describe_functions() : "-",
                   r.mapping
                       ? dram::describe_bit_ranges(r.mapping->row_bits())
                       : "-",
                   r.mapping
                       ? dram::describe_bit_ranges(r.mapping->column_bits())
                       : "-",
                   fmt_duration_s(r.virtual_seconds),
                   r.verified ? "yes" : "NO"});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\n(bank functions are one valid GF(2) basis; 'OK' compares "
              "span + bit sets against ground truth)\n");
  return 0;
}

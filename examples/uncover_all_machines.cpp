// Reverse-engineer every paper machine in sequence — a live rendition of
// Table II. For each of the nine settings we print the configuration
// quadruple, the uncovered bank functions, row and column bits, and
// whether the hypothesis is equivalent (same GF(2) span, same bit sets) to
// the ground truth programmed into the simulator.
#include <cstdio>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/table.h"

int main() {
  using namespace dramdig;
  text_table table({"No.", "Microarch.", "DRAM", "Config.", "Bank functions",
                    "Rows", "Cols", "Time", "OK"});

  for (const dram::machine_spec& spec : dram::paper_machines()) {
    core::environment env(spec, /*seed=*/2026);
    core::dramdig_tool tool(env);
    const core::dramdig_report report = tool.run();

    const bool ok = report.success && report.mapping &&
                    report.mapping->equivalent_to(spec.mapping);
    table.add_row({spec.label(), spec.microarchitecture,
                   spec.dram_description(), spec.config_quadruple(),
                   report.mapping ? report.mapping->describe_functions() : "-",
                   report.mapping
                       ? dram::describe_bit_ranges(report.mapping->row_bits())
                       : "-",
                   report.mapping
                       ? dram::describe_bit_ranges(report.mapping->column_bits())
                       : "-",
                   fmt_duration_s(report.total_seconds),
                   ok ? "yes" : "NO"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(bank functions are one valid GF(2) basis; 'OK' compares "
              "span + bit sets against ground truth)\n");
  return 0;
}

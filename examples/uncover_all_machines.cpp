// Reverse-engineer every paper machine — a live rendition of Table II,
// submitted as one mapping_service batch. The worker pool drains the nine
// machines concurrently; a progress observer narrates completions as they
// land (in wall-clock order), while the final table merges by submission
// index, so it is identical however the pool interleaves.
//
//   $ uncover_all_machines [--store <path>] [--machines=1,3,7]
//
// --store points at a persistent fleet mapping store: the first fleet run
// seeds it (every job prints `store_hit: cold`), a repeat run against the
// same store turns every machine into a verification-only job
// (`store_hit: verify`, a few hundred designed probes each) and must
// reproduce the stored mappings bit-identically — the per-machine
// `mapping N: ...` lines exist so a driver can diff the two runs.
// --machines restricts the fleet to a comma-separated list of paper
// machine numbers (the CI round-trip smoke uses a two-machine fleet).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "api/mapping_service.h"
#include "dram/presets.h"
#include "store/mapping_store.h"
#include "util/table.h"

namespace {

using namespace dramdig;

/// Narrates job completions; the service serializes observer calls, so
/// plain printf needs no locking here.
class narrator final : public api::progress_observer {
 public:
  explicit narrator(const std::vector<api::job_spec>& jobs) : jobs_(jobs) {}

  void on_job_done(std::size_t index,
                   const api::job_outcome& outcome) override {
    std::printf("  [%s %s] %s in %s (wall %.2fs)%s%s\n",
                jobs_[index].machine.label().c_str(),
                outcome.result.tool.c_str(), outcome.result.outcome.c_str(),
                fmt_duration_s(outcome.result.virtual_seconds).c_str(),
                outcome.wall_seconds,
                outcome.store_hit.empty() ? "" : " store_hit: ",
                outcome.store_hit.c_str());
  }

 private:
  const std::vector<api::job_spec>& jobs_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dramdig;

  std::string store_path;
  std::string machines_arg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_path = argv[++i];
    } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
      store_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--machines=", 11) == 0) {
      machines_arg = argv[i] + 11;
    } else {
      std::fprintf(stderr, "usage: %s [--store <path>] [--machines=1,2]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<int> wanted;
  for (std::size_t at = 0; at < machines_arg.size();) {
    const std::size_t comma = machines_arg.find(',', at);
    const std::size_t end =
        comma == std::string::npos ? machines_arg.size() : comma;
    const std::string token = machines_arg.substr(at, end - at);
    // Validate against the real fleet: a typo'd id must fail loudly, not
    // silently shrink the run (an empty job list exits "success").
    const int number = std::atoi(token.c_str());
    const auto& fleet = dram::paper_machines();
    const bool known =
        number > 0 &&
        std::any_of(fleet.begin(), fleet.end(),
                    [&](const dram::machine_spec& m) {
                      return m.number == number;
                    });
    if (!known) {
      std::fprintf(stderr,
                   "error: unknown machine id '%s' in --machines (paper "
                   "machines are 1..%zu)\n",
                   token.c_str(), fleet.size());
      return 2;
    }
    wanted.push_back(number);
    at = end + 1;
  }

  std::vector<api::job_spec> jobs;
  for (const dram::machine_spec& spec : dram::paper_machines()) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), spec.number) == wanted.end()) {
      continue;
    }
    jobs.push_back({spec, "dramdig", {}, /*seed=*/2026});
  }
  std::printf("uncovering %zu machines across the worker pool...\n",
              jobs.size());
  narrator progress(jobs);
  std::optional<store::mapping_store> store;
  if (!store_path.empty()) store.emplace(store_path);
  api::service_config config;
  if (store) config.store = &*store;
  const auto outcomes = api::mapping_service(config).run(jobs, &progress);

  text_table table({"No.", "Microarch.", "DRAM", "Config.", "Bank functions",
                    "Rows", "Cols", "Time", "OK"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const dram::machine_spec& spec = jobs[i].machine;
    const api::tool_result& r = outcomes[i].result;
    table.add_row({spec.label(), spec.microarchitecture,
                   spec.dram_description(), spec.config_quadruple(),
                   r.mapping ? r.mapping->describe_functions() : "-",
                   r.mapping
                       ? dram::describe_bit_ranges(r.mapping->row_bits())
                       : "-",
                   r.mapping
                       ? dram::describe_bit_ranges(r.mapping->column_bits())
                       : "-",
                   fmt_duration_s(r.virtual_seconds),
                   r.verified ? "yes" : "NO"});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\n(bank functions are one valid GF(2) basis; 'OK' compares "
              "span + bit sets against ground truth)\n");
  if (!store_path.empty()) {
    // Machine-readable epilogue for the CI round-trip smoke: one line per
    // machine that a second invocation must reproduce byte-identically.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const api::tool_result& r = outcomes[i].result;
      std::printf("mapping %d: %s\n", jobs[i].machine.number,
                  r.mapping ? r.mapping->describe().c_str() : "(none)");
    }
  }
  bool ok = true;
  for (const api::job_outcome& outcome : outcomes) {
    ok = ok && outcome.result.success && outcome.result.verified;
  }
  return ok ? 0 : 1;
}

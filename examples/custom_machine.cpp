// Bring-your-own mapping: define a machine that is *not* one of the nine
// paper presets and watch DRAMDig uncover it. This is the public-API path
// a user would take to study a hypothetical memory controller: build an
// address_mapping (bank XOR functions + row/column bits), wrap it in a
// machine_spec, and run the tool.
#include <cstdio>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/table.h"

int main() {
  using namespace dramdig;

  // A fictional single-channel DDR4 system, 8 GiB, 16 banks, with a
  // 3-wide rank function — unlike any Table II machine.
  auto fn = [](std::initializer_list<unsigned> bits) {
    std::uint64_t m = 0;
    for (unsigned b : bits) m |= std::uint64_t{1} << b;
    return m;
  };
  std::vector<unsigned> rows, cols;
  for (unsigned b = 17; b <= 32; ++b) rows.push_back(b);
  for (unsigned b = 0; b <= 13; ++b) {
    if (b != 9) cols.push_back(b);  // bit 9 feeds the wide function instead
  }
  // Pure bank bits {9, 14, 15, 16}; the wide function mixes bit 9 with two
  // column bits and two row bits.
  dram::address_mapping truth(
      {fn({14, 17}), fn({15, 18}), fn({16, 19}), fn({9, 12, 13, 20, 21})},
      rows, cols, /*address_bits=*/33);

  dram::machine_spec spec{
      /*number=*/42,
      "Custom",
      "hypothetical-mc",
      dram::ddr_generation::ddr4,
      std::uint64_t{8} * 1024 * 1024 * 1024,
      /*channels=*/1,
      /*dimms_per_channel=*/1,
      /*ranks_per_dimm=*/1,
      /*banks_per_rank=*/16,
      /*ecc=*/false,
      truth,
      dram::vulnerability_profile{0.05, 0.002, 2},
      dram::timing_quality::clean};

  std::printf("custom machine: %s\n", truth.describe().c_str());
  core::environment env(spec, /*seed=*/99);
  core::dramdig_tool tool(env);
  const auto report = tool.run();

  std::printf("dramdig:        %s\n",
              report.mapping ? report.mapping->describe().c_str() : "(none)");
  std::printf("success=%s equivalent=%s time=%s\n",
              report.success ? "yes" : "no",
              report.mapping && report.mapping->equivalent_to(truth) ? "yes"
                                                                     : "no",
              fmt_duration_s(report.total_seconds).c_str());
  return report.success ? 0 : 1;
}

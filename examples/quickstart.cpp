// Quickstart: reverse-engineer the DRAM address mapping of one simulated
// machine through the unified tool API and compare against the ground
// truth.
//
//   $ quickstart [machine_number=1] [seed=42] [--json <path>] [--store <path>]
//
// Walks the whole DRAMDig pipeline with info-level narration, prints the
// uncovered bank functions, row bits and column bits in the format of the
// paper's Table II, and with --json writes the run's tool_result as a
// machine-readable record. The exit code reflects tool_result::success, so
// the binary doubles as a CI smoke check.
//
// --store points at a persistent fleet mapping store (created on first
// use): the first invocation runs cold and records the recovered mapping;
// a second invocation against the same store prints `store_hit: verify`
// and re-confirms the stored functions with a few hundred designed probes
// instead of a full recovery — the warm-start demo in two commands.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/mapping_service.h"
#include "api/tool.h"
#include "dram/presets.h"
#include "store/mapping_store.h"
#include "util/json.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dramdig;
  std::string json_path;
  std::string store_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json needs a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --store needs a path\n");
        return 2;
      }
      store_path = argv[++i];
    } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
      store_path = argv[i] + 8;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int machine_no =
      positional.size() > 0 ? std::atoi(positional[0]) : 1;
  const std::uint64_t seed =
      positional.size() > 1 ? std::strtoull(positional[1], nullptr, 10) : 42;

  set_log_level(log_level::info);
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);
  std::printf("Machine %s: %s %s, %s, config %s\n", spec.label().c_str(),
              spec.microarchitecture.c_str(), spec.cpu_model.c_str(),
              spec.dram_description().c_str(), spec.config_quadruple().c_str());

  api::tool_result result;
  std::string store_hit;
  if (store_path.empty()) {
    core::environment env(spec, seed);
    result = api::make_tool("dramdig")->run(env);
  } else {
    // Fleet-store path: the service consults the store before dispatch, so
    // a second run against the same store becomes a verification-only job.
    store::mapping_store store(store_path);
    api::service_config config;
    config.store = &store;
    const auto outcomes =
        api::mapping_service(config).run({{spec, "dramdig", {}, seed}});
    result = outcomes.front().result;
    store_hit = outcomes.front().store_hit;
  }

  std::printf("\n== DRAMDig result ==\n");
  if (!store_hit.empty()) {
    std::printf("store_hit:      %s\n", store_hit.c_str());
  }
  std::printf("success:        %s\n", result.success ? "yes" : "no");
  if (!result.success) {
    std::printf("reason:         %s\n", result.failure_reason.c_str());
  }
  std::printf("virtual time:   %s\n",
              fmt_duration_s(result.virtual_seconds).c_str());
  std::printf("measurements:   %llu (%llu answered by the reuse cache)\n",
              static_cast<unsigned long long>(result.measurement_count),
              static_cast<unsigned long long>(result.measurements_saved));
  std::printf("detail:         %s\n", result.detail.c_str());

  if (result.mapping) {
    std::printf("\nuncovered:      %s\n", result.mapping->describe().c_str());
    std::printf("ground truth:   %s\n", spec.mapping.describe().c_str());
    std::printf("equivalent:     %s\n", result.verified ? "YES" : "NO");
  }

  if (!json_path.empty()) {
    json_writer w;
    w.begin_object();
    w.key("machine").value(spec.label());
    w.key("seed").value(seed);
    w.key("result");
    result.to_json(w);
    w.end_object();
    write_file(json_path, w.str());
    std::printf("\nJSON record written to %s\n", json_path.c_str());
  }
  return result.success ? 0 : 1;
}

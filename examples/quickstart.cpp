// Quickstart: reverse-engineer the DRAM address mapping of one simulated
// machine and compare against the ground truth.
//
//   $ quickstart [machine_number=1] [seed=42]
//
// Walks the whole DRAMDig pipeline with info-level narration and prints
// the uncovered bank functions, row bits and column bits in the format of
// the paper's Table II.
#include <cstdio>
#include <cstdlib>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dramdig;
  const int machine_no = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  set_log_level(log_level::info);
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);
  std::printf("Machine %s: %s %s, %s, config %s\n", spec.label().c_str(),
              spec.microarchitecture.c_str(), spec.cpu_model.c_str(),
              spec.dram_description().c_str(), spec.config_quadruple().c_str());

  core::environment env(spec, seed);
  core::dramdig_tool tool(env);
  const core::dramdig_report report = tool.run();

  std::printf("\n== DRAMDig report ==\n");
  std::printf("success:        %s\n", report.success ? "yes" : "no");
  if (!report.success) {
    std::printf("reason:         %s\n", report.failure_reason.c_str());
  }
  std::printf("virtual time:   %s\n",
              fmt_duration_s(report.total_seconds).c_str());
  std::printf("measurements:   %llu\n",
              static_cast<unsigned long long>(report.total_measurements));
  std::printf("pool size:      %zu\n", report.pool_size);
  std::printf("piles:          %zu\n", report.pile_count);

  if (report.mapping) {
    std::printf("\nuncovered:      %s\n", report.mapping->describe().c_str());
    std::printf("ground truth:   %s\n", spec.mapping.describe().c_str());
    std::printf("equivalent:     %s\n",
                report.mapping->equivalent_to(spec.mapping) ? "YES" : "NO");
  }
  return report.success &&
                 report.mapping->equivalent_to(spec.mapping)
             ? 0
             : 1;
}

// Run all three reverse-engineering tools — DRAMDig, DRAMA (Pessl et al.)
// and Xiao et al. — against the same simulated machine and compare
// outcome, output quality and virtual time cost. This is the per-machine
// view behind Table I.
//
//   $ baseline_compare [machine_number=2] [seed=7]
#include <cstdio>
#include <cstdlib>

#include "baselines/drama.h"
#include "baselines/xiao.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dramdig;
  const int machine_no = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);

  std::printf("Machine %s (%s, %s, config %s), seed %llu\n\n",
              spec.label().c_str(), spec.microarchitecture.c_str(),
              spec.dram_description().c_str(), spec.config_quadruple().c_str(),
              static_cast<unsigned long long>(seed));

  text_table table({"Tool", "Outcome", "Mapping correct", "Time", "Notes"});

  {
    core::environment env(spec, seed);
    core::dramdig_tool tool(env);
    const auto report = tool.run();
    table.add_row(
        {"DRAMDig", report.success ? "success" : "failed",
         report.mapping && report.mapping->equivalent_to(spec.mapping) ? "yes"
                                                                       : "no",
         fmt_duration_s(report.total_seconds),
         report.success ? "pool " + std::to_string(report.pool_size)
                        : report.failure_reason});
  }
  {
    core::environment env(spec, seed);
    baselines::drama_tool tool(env);
    const auto report = tool.run();
    const bool correct =
        report.mapping &&
        gf2::same_span(report.functions, spec.mapping.bank_functions()) &&
        report.mapping->row_bits() == spec.mapping.row_bits();
    table.add_row({"DRAMA", report.completed ? "completed"
                            : report.timed_out ? "timeout (2h)"
                                               : "no agreement",
                   correct ? "yes" : "no",
                   fmt_duration_s(report.total_seconds),
                   std::to_string(report.trials_run) + " trials"});
  }
  {
    core::environment env(spec, seed);
    baselines::xiao_tool tool(env);
    const auto report = tool.run();
    table.add_row(
        {"Xiao et al.", report.success ? "success"
                        : report.stalled ? "stuck"
                                         : "failed",
         report.mapping && report.mapping->equivalent_to(spec.mapping) ? "yes"
                                                                       : "no",
         fmt_duration_s(report.total_seconds), report.note});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

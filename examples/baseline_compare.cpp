// Run all three reverse-engineering tools — DRAMDig, DRAMA (Pessl et al.)
// and Xiao et al. — against the same simulated machine and compare
// outcome, output quality and virtual time cost. This is the per-machine
// view behind Table I, expressed as one three-job mapping_service batch:
// the tools run concurrently (each on its own copy of the machine) and the
// unified tool_result schema renders one row per tool.
//
//   $ baseline_compare [machine_number=2] [seed=7]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/mapping_service.h"
#include "dram/presets.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dramdig;
  const int machine_no = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);

  std::printf("Machine %s (%s, %s, config %s), seed %llu\n\n",
              spec.label().c_str(), spec.microarchitecture.c_str(),
              spec.dram_description().c_str(), spec.config_quadruple().c_str(),
              static_cast<unsigned long long>(seed));

  std::vector<api::job_spec> jobs;
  std::vector<std::string> titles;
  for (const std::string& tool : api::tool_registry::global().names()) {
    jobs.push_back({spec, tool, {}, seed});
    titles.push_back(api::make_tool(tool)->describe().title);
  }
  const auto outcomes = api::mapping_service().run(jobs);

  text_table table({"Tool", "Outcome", "Mapping correct", "Time", "Notes"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const api::tool_result& r = outcomes[i].result;
    // "Mapping correct" means the whole mapping: DRAMA's verified covers
    // only the bank-function span (its claim), so its fixed row heuristic
    // must additionally match the truth to earn a "yes" here.
    const bool correct =
        r.tool == "drama"
            ? r.verified && r.mapping &&
                  r.mapping->row_bits() == spec.mapping.row_bits()
            : r.verified;
    table.add_row({titles[i], r.outcome, correct ? "yes" : "no",
                   fmt_duration_s(r.virtual_seconds),
                   r.success ? r.detail : r.failure_reason});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

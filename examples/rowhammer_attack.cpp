// Double-sided rowhammer driven by a reverse-engineered mapping — the
// experiment of Table III. Reverse-engineers the machine with DRAMDig and
// with DRAMA, then hammers for five (virtual) minutes with each tool's
// hypothesis and reports bit flips plus the fraction of hammer windows
// that were *physically* double-sided (the mapping-fidelity number that
// explains the flip gap).
//
//   $ rowhammer_attack [machine_number=1] [seed=11]
#include <cstdio>
#include <cstdlib>

#include "baselines/drama.h"
#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "rowhammer/harness.h"
#include "util/table.h"

namespace {

void hammer_with(const char* label, dramdig::sim::machine& machine,
                 const dramdig::dram::address_mapping& hypothesis,
                 std::uint64_t seed, dramdig::text_table& table) {
  using namespace dramdig;
  rng r(seed);
  const auto stats = rowhammer::run_double_sided_test(machine, hypothesis, r);
  table.add_row({label, std::to_string(stats.bit_flips),
                 std::to_string(stats.windows),
                 fmt_double(100.0 * stats.double_sided_fidelity(), 1) + "%",
                 std::to_string(stats.encode_failures)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dramdig;
  const int machine_no = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);

  std::printf("Double-sided rowhammer on %s (%s), 5-minute tests\n\n",
              spec.label().c_str(), spec.dram_description().c_str());
  text_table table({"Mapping source", "Bit flips", "Windows",
                    "True double-sided", "Placement failures"});

  // DRAMDig hypothesis.
  {
    core::environment env(spec, seed);
    core::dramdig_tool tool(env);
    const auto report = tool.run();
    if (report.mapping) {
      hammer_with("DRAMDig", env.mach(), *report.mapping, seed ^ 0xbeef,
                  table);
    }
  }
  // DRAMA hypothesis (fresh environment: independent run of the machine).
  {
    core::environment env(spec, seed);
    baselines::drama_tool tool(env);
    const auto report = tool.run();
    if (report.mapping) {
      hammer_with("DRAMA", env.mach(), *report.mapping, seed ^ 0xbeef, table);
    } else {
      table.add_row({"DRAMA", "-", "-", "-", "no mapping produced"});
    }
  }
  // Oracle: ground truth (upper bound for this machine's vulnerability).
  {
    core::environment env(spec, seed);
    hammer_with("ground truth", env.mach(), spec.mapping, seed ^ 0xbeef,
                table);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// Rowhammer DRAM PUF (the application class the paper's intro cites via
// Schaller et al. [11]): the *pattern* of flippable cells is a stable,
// device-unique physical fingerprint. Enrolling and verifying a PUF
// requires hammering precisely chosen rows — i.e., a correct DRAM address
// mapping — so PUF quality is another downstream consumer of DRAMDig.
//
// This example enrolls a fingerprint from a region of a machine (which
// rows flip under double-sided pressure), re-measures it on the same
// machine (should match) and on a second physical unit with identical
// model/mapping (should differ): intra- vs inter-device Hamming distance.
//
//   $ rowhammer_puf [machine_number=2]
#include <cstdio>
#include <vector>

#include "core/dramdig.h"
#include "core/environment.h"
#include "dram/presets.h"
#include "sim/machine.h"
#include "sim/profiles.h"
#include "util/rng.h"

namespace {

using namespace dramdig;

/// Hammer rows [first, first+count) of bank 0 and record which victims
/// flipped: the PUF response bitstring.
std::vector<bool> enroll(sim::machine& machine,
                         const dram::address_mapping& mapping,
                         std::uint64_t first_row, std::size_t rows) {
  std::vector<bool> response;
  for (std::size_t i = 0; i < rows; ++i) {
    // Scan-and-refill before each victim so leakage from the previous
    // pair's aggressors cannot mask this row's own response.
    machine.faults().reset_flips();
    const std::uint64_t victim = first_row + i;
    const auto above = mapping.encode(0, victim - 1, 0);
    const auto below = mapping.encode(0, victim + 1, 0);
    bool flipped = false;
    if (above && below) {
      // Enough windows that a weak cell responds with near-certainty; PUF
      // enrollment hammers each row many refresh intervals. The response
      // bit comes from scanning the victim row itself (neighbour leakage
      // from the aggressors' outer sides must not pollute it).
      const std::uint64_t true_bank = machine.spec().mapping.bank_of(*above);
      const std::uint64_t true_row =
          machine.spec().mapping.row_of(*above) + 1;
      for (int w = 0; w < 30 && !flipped; ++w) {
        (void)machine.faults().hammer_pair(*above, *below);
        flipped = machine.faults().flipped_in_row(true_bank, true_row) > 0;
      }
    }
    response.push_back(flipped);
  }
  return response;
}

std::size_t hamming(const std::vector<bool>& a, const std::vector<bool>& b) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a[i] != b[i];
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const int machine_no = argc > 1 ? std::atoi(argv[1]) : 2;
  const dram::machine_spec& spec = dram::machine_by_number(machine_no);
  constexpr std::size_t kRows = 512;
  constexpr std::uint64_t kFirstRow = 1000;

  // Uncover the mapping first — the PUF protocol needs it to address rows.
  core::environment env(spec, /*seed=*/31337);
  const auto report = core::dramdig_tool(env).run();
  if (!report.success || !report.mapping) {
    std::fprintf(stderr, "reverse engineering failed: %s\n",
                 report.failure_reason.c_str());
    return 1;
  }

  // Device A: enroll + re-measure. Device B: same model, different unit.
  const auto fp_a1 = enroll(env.mach(), *report.mapping, kFirstRow, kRows);
  const auto fp_a2 = enroll(env.mach(), *report.mapping, kFirstRow, kRows);
  sim::machine device_b(spec, /*seed=*/777, sim::timing_profile_for(spec));
  const auto fp_b = enroll(device_b, *report.mapping, kFirstRow, kRows);

  std::size_t ones = 0;
  for (bool b : fp_a1) ones += b;
  std::printf("Rowhammer PUF on %s (%s), %zu rows of bank 0\n\n",
              spec.label().c_str(), spec.dram_description().c_str(), kRows);
  std::printf("fingerprint weight:          %zu/%zu rows flip\n", ones, kRows);
  std::printf("intra-device distance:       %zu bits (re-measurement, same "
              "unit)\n",
              hamming(fp_a1, fp_a2));
  std::printf("inter-device distance:       %zu bits (different unit, same "
              "model)\n",
              hamming(fp_a1, fp_b));
  std::printf("\nA usable PUF needs intra << inter: the weak-cell pattern is "
              "a stable per-unit property, reachable only through a correct "
              "address mapping.\n");
  return 0;
}
